"""Ablation: PCSR inside the *baselines* (the paper's concluding claim).

Section IX: "all pattern matching algorithms using N(v, l) extraction
can benefit from the PCSR structure."  We test that literally: swap
GpSM's and GunrockSM's CSR for PCSR and measure join GLD and time.
"""

from __future__ import annotations

import pytest

from repro.baselines import GpSMEngine, GunrockSMEngine
from repro.bench.reporting import drop_pct, render_table
from repro.bench.runner import (
    DEFAULT_MAX_ROWS,
    DEFAULT_THRESHOLD_MS,
    run_workload,
)

from bench_common import record_report


def factory(engine_cls, storage_kind):
    def make(graph):
        return engine_cls(graph, budget_ms=DEFAULT_THRESHOLD_MS,
                          max_intermediate_rows=DEFAULT_MAX_ROWS,
                          storage_kind=storage_kind)
    return make


@pytest.fixture(scope="module")
def pcsr_everywhere(workloads):
    out = {}
    for name in ("watdiv", "dbpedia"):
        wl = workloads[name]
        for engine_cls in (GpSMEngine, GunrockSMEngine):
            csr = run_workload(factory(engine_cls, "csr"), wl)
            pcsr = run_workload(factory(engine_cls, "pcsr"), wl)
            out[(name, engine_cls.name)] = (csr, pcsr)
    rows = []
    for (name, engine), (csr, pcsr) in out.items():
        rows.append([
            name, engine,
            f"{csr.avg_join_gld:.0f}", f"{pcsr.avg_join_gld:.0f}",
            drop_pct(csr.avg_join_gld, pcsr.avg_join_gld),
            f"{csr.avg_ms:.2f}", f"{pcsr.avg_ms:.2f}",
        ])
    report = render_table(
        "Ablation: PCSR inside the edge-join baselines (Section IX "
        "claim)",
        ["dataset", "engine", "GLD csr", "GLD pcsr", "drop",
         "ms csr", "ms pcsr"],
        rows,
        note="the paper's conclusion: any N(v,l)-based matcher benefits "
             "from PCSR")
    record_report("ablation_pcsr_everywhere", report)
    return out


def test_pcsr_reduces_baseline_gld(pcsr_everywhere):
    for key, (csr, pcsr) in pcsr_everywhere.items():
        assert pcsr.avg_join_gld <= csr.avg_join_gld, key


def test_results_unchanged(pcsr_everywhere):
    for key, (csr, pcsr) in pcsr_everywhere.items():
        assert csr.total_matches == pcsr.total_matches, key


def test_pcsr_never_slower(pcsr_everywhere):
    for key, (csr, pcsr) in pcsr_everywhere.items():
        assert pcsr.avg_ms <= csr.avg_ms * 1.05, key


@pytest.mark.parametrize("kind", ["csr", "pcsr"])
def test_bench_gpsm_storage(benchmark, watdiv_workload, kind,
                            pcsr_everywhere):
    engine = factory(GpSMEngine, kind)(watdiv_workload.graph)
    q = watdiv_workload.queries[0]
    benchmark.pedantic(lambda: engine.match(q), rounds=2, iterations=1)
