"""Figure 14: vary the number of vertex / edge labels (gowalla analog).

Expected shape: run time falls as either label count grows; the
vertex-label curve falls faster initially (candidate sets shrink
directly) then flattens; edge labels keep paying off by shrinking
N(v, l).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import render_series
from repro.bench.runner import gsi_factory, run_workload
from repro.bench.workloads import Workload
from repro.core.config import GSIConfig
from repro.graph.generators import scale_free_graph

from bench_common import NUM_QUERIES, QUERY_VERTICES, record_report

VERTEX_LABEL_COUNTS = [2, 4, 8, 16, 32]
EDGE_LABEL_COUNTS = [4, 8, 16, 32, 64]
BASE_LV = 8
BASE_LE = 8
N_VERTICES = 1200


def run_point(num_vlabels, num_elabels):
    g = scale_free_graph(N_VERTICES, 6, num_vlabels, num_elabels, seed=11)
    wl = Workload.for_graph("gowalla-var", g, num_queries=NUM_QUERIES,
                            query_vertices=QUERY_VERTICES)
    s = run_workload(gsi_factory(GSIConfig.gsi_opt()), wl)
    return None if s.timed_out else s.avg_ms


@pytest.fixture(scope="module")
def fig14():
    vertex_curve = [run_point(k, BASE_LE) for k in VERTEX_LABEL_COUNTS]
    edge_curve = [run_point(BASE_LV, k) for k in EDGE_LABEL_COUNTS]
    report = render_series(
        "Figure 14 analog: vary vertex / edge label counts",
        "#labels (vertex: 2-32, edge: 4-64)",
        [f"{v}/{e}" for v, e in zip(VERTEX_LABEL_COUNTS,
                                    EDGE_LABEL_COUNTS)],
        {"vertex labels": vertex_curve, "edge labels": edge_curve},
        y_label="avg query ms; paper: both fall, vertex-label curve "
                "drops sharper then flattens")
    record_report("fig14_labels", report)
    return vertex_curve, edge_curve


def _first_finite(curve):
    return next(v for v in curve if v is not None)


def test_more_vertex_labels_not_slower(fig14):
    vertex_curve, _ = fig14
    assert vertex_curve[-1] is not None
    assert vertex_curve[-1] <= _first_finite(vertex_curve) * 1.05


def test_more_edge_labels_not_slower(fig14):
    _, edge_curve = fig14
    assert edge_curve[-1] is not None
    assert edge_curve[-1] <= _first_finite(edge_curve) * 1.05


def test_bench_few_labels(benchmark, fig14):
    g = scale_free_graph(N_VERTICES, 6, 2, BASE_LE, seed=11)
    wl = Workload.for_graph("few", g, num_queries=1,
                            query_vertices=QUERY_VERTICES)
    engine = gsi_factory(GSIConfig.gsi_opt())(g)
    benchmark.pedantic(lambda: engine.match(wl.queries[0]), rounds=2,
                       iterations=1)


def test_bench_many_labels(benchmark, fig14):
    g = scale_free_graph(N_VERTICES, 6, 32, BASE_LE, seed=11)
    wl = Workload.for_graph("many", g, num_queries=1,
                            query_vertices=QUERY_VERTICES)
    engine = gsi_factory(GSIConfig.gsi_opt())(g)
    benchmark.pedantic(lambda: engine.match(wl.queries[0]), rounds=2,
                       iterations=1)
