"""Graph construction throughput: vectorized vs. per-edge build.

``LabeledGraph.__init__`` used to validate, deduplicate and fill the
``src``/``dst``/``lab`` incidence arrays one edge at a time in Python;
it now does all of that with bulk NumPy ops.  This benchmark times the
current constructor on a ~100k-edge graph against a faithful
reimplementation of the whole seed constructor loop, and asserts the
vectorized path wins.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Tuple

import numpy as np
import pytest

from repro.bench.reporting import render_table
from repro.graph.generators import scale_free_graph
from repro.graph.labeled_graph import LabeledGraph

from bench_common import record_report, write_bench_json

TARGET_EDGES = int(os.environ.get("GSI_BENCH_BUILD_EDGES", "100000"))


def _seed_build(n, edges):
    """The seed implementation's per-edge constructor body."""
    edge_map: Dict[Tuple[int, int], int] = {}
    for u, v, lab in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError
        if u == v:
            raise ValueError
        key = (u, v) if u < v else (v, u)
        prev = edge_map.get(key)
        if prev is not None and prev != lab:
            raise ValueError
        edge_map[key] = lab
    m = len(edge_map)
    src = np.empty(2 * m, dtype=np.int64)
    dst = np.empty(2 * m, dtype=np.int64)
    lab_arr = np.empty(2 * m, dtype=np.int64)
    for i, ((u, v), lab) in enumerate(edge_map.items()):
        src[2 * i], dst[2 * i], lab_arr[2 * i] = u, v, lab
        src[2 * i + 1], dst[2 * i + 1], lab_arr[2 * i + 1] = v, u, lab
    order = np.lexsort((dst, lab_arr, src))
    counts: Dict[int, int] = {}
    for lab in edge_map.values():
        counts[lab] = counts.get(lab, 0) + 1
    return src[order], dst[order], lab_arr[order], counts


def run_graph_build(target_edges: int = TARGET_EDGES):
    """Time both constructor paths once; returns ``(outcomes, table)``."""
    num_vertices = max(2, target_edges // 4)
    graph = scale_free_graph(num_vertices, 4, 5, 8, seed=1)
    edges = list(graph.edges())
    vlabels = list(graph.vertex_labels)

    def best_of(fn, repeats=3):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, (time.perf_counter() - t0) * 1000.0)
        return best, result

    vectorized_ms, rebuilt = best_of(lambda: LabeledGraph(vlabels, edges))
    loop_ms, (src, dst, lab_arr, counts) = best_of(
        lambda: _seed_build(len(vlabels), edges))

    # Same incidence layout and statistics either way.
    assert np.array_equal(rebuilt._nbr, dst)
    assert np.array_equal(rebuilt._elab, lab_arr)
    assert rebuilt._edge_label_freq == counts

    table = render_table(
        f"graph build time ({rebuilt.num_edges} edges, "
        f"{rebuilt.num_vertices} vertices)",
        ["path", "ms", "speedup"],
        [["vectorized LabeledGraph.__init__",
          f"{vectorized_ms:.1f}", f"{loop_ms / vectorized_ms:.1f}x"],
         ["per-edge seed constructor", f"{loop_ms:.1f}", "1.0x"]],
        note="both paths validate, dedup, lay out the sorted CSR "
             "incidence arrays, and count label frequencies")
    return ({"vectorized_ms": vectorized_ms, "loop_ms": loop_ms,
             "graph": rebuilt}, table)


@pytest.fixture(scope="module")
def build_timing():
    outcomes, table = run_graph_build()
    record_report("graph_build", table)
    return outcomes


def test_vectorized_build_beats_seed_loop(build_timing):
    assert build_timing["vectorized_ms"] < build_timing["loop_ms"]


def test_benchmark_graph_is_at_scale(build_timing):
    assert build_timing["graph"].num_edges >= 0.9 * TARGET_EDGES


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="graph-construction benchmark (also runs under "
                    "pytest with assertions)")
    parser.add_argument("--edges", type=int, default=TARGET_EDGES)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write BENCH_graph_build.json here "
                             "(a directory, or an exact .json path)")
    cli_args = parser.parse_args()

    outcomes, report_table = run_graph_build(cli_args.edges)
    print(report_table)
    assert outcomes["vectorized_ms"] < outcomes["loop_ms"], (
        "vectorized constructor must beat the per-edge seed loop")
    print(f"OK: vectorized build "
          f"{outcomes['loop_ms'] / outcomes['vectorized_ms']:.1f}x "
          f"faster on {outcomes['graph'].num_edges} edges")
    if cli_args.json is not None:
        payload = {
            "bench": "graph_build",
            "params": {"target_edges": cli_args.edges},
            "edges": outcomes["graph"].num_edges,
            "vertices": outcomes["graph"].num_vertices,
            "vectorized_ms": outcomes["vectorized_ms"],
            "loop_ms": outcomes["loop_ms"],
            "speedup": outcomes["loop_ms"] / outcomes["vectorized_ms"],
        }
        written = write_bench_json("graph_build", payload,
                                   cli_args.json)
        print(f"wrote {written}")
