"""Serving-subsystem traffic benchmark: open/closed loops over GSIServer.

Not a paper table — this measures the repo's always-on serving front
end (:mod:`repro.serve`) under the traffic shape it was built for:
many small, repetitive, concurrent requests.  The workload is a
Zipf-skewed rotation over a fixed pool of query shapes (a hot head the
plan cache and in-flight dedup feed on, plus a cold tail), issued by
mixed tenants, with a fraction of requests submitted as *renumbered*
isomorphic copies so the dedup fan-out's result translation is on the
measured path.

Two arrival models run against the same server configuration:

* **closed-loop** — ``concurrency`` clients submit back-to-back
  (offered load self-throttles to capacity; measures throughput);
* **open-loop** — requests fire at Poisson arrival times regardless of
  completions (measures latency under a fixed offered rate, queueing
  delay included).

Correctness is asserted, not assumed: every response's match set must
equal a serial, no-server replay of the exact submitted query through a
fresh engine, and the skewed workload must show in-flight dedup > 0 and
plan-cache hits > 0.  ``--json`` persists ``BENCH_bench_serving.json``.

Run::

    python benchmarks/bench_serving.py --quick --json benchmarks/results
    python -m pytest benchmarks/bench_serving.py   # smoke-sized arms
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np
import pytest

from repro.bench.reporting import render_table
from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.serve import GSIServer, ServeOutcome
from repro.service import BatchEngine, make_executor

from bench_common import (
    poisson_arrival_times,
    record_report,
    run_closed_loop,
    run_open_loop,
    write_bench_json,
    zipf_indices,
)

SERVE_VERTICES = int(os.environ.get("GSI_BENCH_SERVE_VERTICES", "400"))
SERVE_REQUESTS = int(os.environ.get("GSI_BENCH_SERVE_REQUESTS", "96"))
SERVE_SHAPES = int(os.environ.get("GSI_BENCH_SERVE_SHAPES", "12"))
SERVE_TENANTS = int(os.environ.get("GSI_BENCH_SERVE_TENANTS", "4"))
RELABEL_FRACTION = 0.25  # isomorphic-renumbered submissions


def relabel_query(query: LabeledGraph, seed: int) -> LabeledGraph:
    """An isomorphic copy of ``query`` under a random vertex renaming.

    Same labeled graph up to renumbering — the canonical fingerprint is
    identical, so the server dedups it against the original and must
    translate the shared result back onto this numbering.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(query.num_vertices)  # perm[old] = new id
    labels = [0] * query.num_vertices
    for old, new in enumerate(perm):
        labels[new] = query.vertex_label(old)
    edges = [(int(perm[u]), int(perm[v]), lab)
             for u, v, lab in query.edges()]
    return LabeledGraph(labels, edges)


def build_workload(vertices: int, num_shapes: int, num_requests: int,
                   num_tenants: int, seed: int = 9
                   ) -> Tuple[LabeledGraph,
                              List[Tuple[LabeledGraph, str]]]:
    """The skewed mixed-tenant request stream over one data graph."""
    graph = scale_free_graph(vertices, 4, 6, 6, seed=seed)
    shapes = [random_walk_query(graph, 4 + (s % 3), seed=100 + s)
              for s in range(num_shapes)]
    picks = zipf_indices(num_shapes, num_requests, seed=seed)
    rng = np.random.default_rng(seed + 1)
    requests: List[Tuple[LabeledGraph, str]] = []
    for i, pick in enumerate(picks):
        query = shapes[pick]
        if rng.random() < RELABEL_FRACTION:
            query = relabel_query(query, seed=1000 + i)
        requests.append((query, f"tenant{i % num_tenants}"))
    return graph, requests


async def _drive(server: GSIServer,
                 requests: Sequence[Tuple[LabeledGraph, str]],
                 mode: str, concurrency: int, rate_qps: float,
                 seed: int) -> Tuple[List[ServeOutcome], float]:
    """Run one arrival-model arm; returns (outcomes, wall_ms)."""

    async def submit(item: Tuple[LabeledGraph, str]) -> ServeOutcome:
        query, tenant = item
        return await server.submit(query, tenant=tenant)

    t0 = time.perf_counter()
    if mode == "closed":
        outcomes = await run_closed_loop(submit, requests, concurrency)
    else:
        arrivals = poisson_arrival_times(rate_qps, len(requests),
                                         seed=seed)
        outcomes = await run_open_loop(submit, requests, arrivals)
    return outcomes, (time.perf_counter() - t0) * 1000.0


def run_serving_arm(graph: LabeledGraph,
                    requests: Sequence[Tuple[LabeledGraph, str]],
                    mode: str,
                    max_batch: int = 8,
                    max_delay_ms: float = 2.0,
                    concurrency: int = 16,
                    rate_qps: float = 400.0,
                    executor_kind: str = "serial",
                    workers: int = 2,
                    seed: int = 9) -> Dict:
    """Serve ``requests`` through a fresh server; return measurements."""

    async def _run() -> Dict:
        with make_executor(executor_kind, workers) as executor:
            engine = BatchEngine(graph, GSIConfig.gsi_opt(),
                                 executor=executor)
            async with GSIServer(engine, max_batch=max_batch,
                                 max_delay_ms=max_delay_ms) as server:
                outcomes, wall_ms = await _drive(
                    server, requests, mode, concurrency, rate_qps,
                    seed)
            stats = server.stats()["metrics"]
        return {"outcomes": outcomes, "wall_ms": wall_ms,
                "stats": stats}

    arm = asyncio.run(_run())
    outcomes: List[ServeOutcome] = arm["outcomes"]
    bad = [o.status for o in outcomes if o.status != "ok"]
    if bad:
        raise AssertionError(
            f"{len(bad)} requests failed in the {mode} arm: "
            f"{bad[:5]}")
    stats = arm["stats"]
    arm["summary"] = {
        "mode": mode,
        "requests": len(outcomes),
        "wall_ms": arm["wall_ms"],
        "qps": len(outcomes) / (arm["wall_ms"] / 1000.0),
        "latency_ms": stats["latency_ms"],
        "deduped": stats["requests"]["deduped"],
        "dedup_rate": (stats["requests"]["deduped"]
                       / max(1, stats["requests"]["admitted"])),
        "plan_cache": stats["cache"],
        "batches": stats["batches"]["executed"],
        "mean_batch": stats["batches"]["mean_size"],
        "shed": stats["requests"]["shed"],
        "quota_rejected": stats["requests"]["quota_rejected"],
    }
    return arm


def serial_replay(graph: LabeledGraph,
                  requests: Sequence[Tuple[LabeledGraph, str]]
                  ) -> List[set]:
    """The no-server ground truth: each query through a fresh engine
    path, serially, no batching, no dedup, no cache sharing."""
    engine = GSIEngine(graph, GSIConfig.gsi_opt())
    return [engine.match(query).match_set() for query, _ in requests]


def assert_match_sets_equal(outcomes: Sequence[ServeOutcome],
                            expected: Sequence[set]) -> None:
    for i, (outcome, want) in enumerate(zip(outcomes, expected)):
        got = outcome.result.match_set()
        if got != want:
            raise AssertionError(
                f"request {i}: served match set diverged from the "
                f"serial replay ({len(got)} vs {len(want)} matches)")


def run_bench(vertices: int = SERVE_VERTICES,
              num_requests: int = SERVE_REQUESTS,
              num_shapes: int = SERVE_SHAPES,
              num_tenants: int = SERVE_TENANTS,
              max_batch: int = 8, max_delay_ms: float = 2.0,
              concurrency: int = 16, rate_qps: float = 400.0,
              executor_kind: str = "serial", workers: int = 2,
              seed: int = 9) -> Dict:
    """Both arrival-model arms + the serial-replay differential check."""
    graph, requests = build_workload(vertices, num_shapes,
                                     num_requests, num_tenants,
                                     seed=seed)
    expected = serial_replay(graph, requests)

    arms = {}
    rows = []
    for mode in ("closed", "open"):
        arm = run_serving_arm(graph, requests, mode,
                              max_batch=max_batch,
                              max_delay_ms=max_delay_ms,
                              concurrency=concurrency,
                              rate_qps=rate_qps,
                              executor_kind=executor_kind,
                              workers=workers, seed=seed)
        assert_match_sets_equal(arm["outcomes"], expected)
        arms[mode] = arm
        s = arm["summary"]
        rows.append([
            mode, s["requests"], f"{s['wall_ms']:.0f}",
            f"{s['qps']:.0f}",
            f"{s['latency_ms']['p50']:.1f}/"
            f"{s['latency_ms']['p95']:.1f}/"
            f"{s['latency_ms']['p99']:.1f}",
            s["deduped"], f"{100.0 * s['dedup_rate']:.0f}%",
            f"{100.0 * s['plan_cache']['hit_rate']:.0f}%",
            f"{s['mean_batch']:.1f}",
        ])

    table = render_table(
        f"serving traffic ({num_requests} requests, {num_shapes} "
        f"shapes, {num_tenants} tenants, zipf-skewed, "
        f"{100 * RELABEL_FRACTION:.0f}% renumbered; max_batch="
        f"{max_batch}, max_delay={max_delay_ms}ms; closed: "
        f"{concurrency} clients, open: poisson {rate_qps:.0f} q/s)",
        ["arrivals", "reqs", "wall ms", "q/s", "p50/p95/p99 ms",
         "dedup", "dedup %", "plan hit %", "mean batch"],
        rows,
        note="every arm's match sets asserted identical to a serial "
             "no-server replay; dedup and plan-cache hits must both "
             "be > 0 on this skewed workload")
    return {"arms": arms, "table": table, "requests": requests,
            "expected": expected}


# ----------------------------------------------------------------------
# pytest mode (smoke-sized by env knobs; CI bench-smoke runs this)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def serving_outcome():
    outcome = run_bench()
    record_report("serving", outcome["table"])
    return outcome


def test_serving_matches_serial_replay(serving_outcome):
    # run_bench asserts per-arm already; re-assert explicitly so a
    # regression fails with a named test.
    for arm in serving_outcome["arms"].values():
        assert_match_sets_equal(arm["outcomes"],
                                serving_outcome["expected"])


def test_skewed_workload_dedups_and_caches(serving_outcome):
    for mode, arm in serving_outcome["arms"].items():
        s = arm["summary"]
        assert s["deduped"] > 0, f"{mode}: no in-flight dedup"
        assert s["plan_cache"]["hit_rate"] > 0.0, \
            f"{mode}: no plan-cache hits"


def test_microbatching_actually_batches(serving_outcome):
    closed = serving_outcome["arms"]["closed"]["summary"]
    assert closed["mean_batch"] > 1.0, (
        "closed-loop concurrency should fill micro-batches beyond "
        "size 1")


def test_per_tenant_latency_reported(serving_outcome):
    stats = serving_outcome["arms"]["closed"]["stats"]
    assert len(stats["tenants"]) == SERVE_TENANTS
    for series in stats["tenants"].values():
        assert series["completed"] > 0
        assert series["latency_ms"]["p50"] > 0.0
        assert (series["latency_ms"]["p50"]
                <= series["latency_ms"]["p95"]
                <= series["latency_ms"]["p99"])


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="serving-subsystem traffic benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="smoke-sized workload (CI)")
    parser.add_argument("--vertices", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--shapes", type=int, default=None)
    parser.add_argument("--tenants", type=int, default=SERVE_TENANTS)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-delay-ms", type=float, default=2.0)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--rate-qps", type=float, default=400.0)
    parser.add_argument("--executor", default="serial",
                        choices=["serial", "thread", "process"])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write BENCH_bench_serving.json here (a "
                             "directory, or an exact .json path)")
    cli_args = parser.parse_args()

    if cli_args.quick:
        defaults = {"vertices": 250, "requests": 48, "shapes": 8}
    else:
        defaults = {"vertices": SERVE_VERTICES,
                    "requests": SERVE_REQUESTS,
                    "shapes": SERVE_SHAPES}
    vertices = cli_args.vertices or defaults["vertices"]
    num_requests = cli_args.requests or defaults["requests"]
    num_shapes = cli_args.shapes or defaults["shapes"]

    outcome = run_bench(vertices=vertices, num_requests=num_requests,
                        num_shapes=num_shapes,
                        num_tenants=cli_args.tenants,
                        max_batch=cli_args.max_batch,
                        max_delay_ms=cli_args.max_delay_ms,
                        concurrency=cli_args.concurrency,
                        rate_qps=cli_args.rate_qps,
                        executor_kind=cli_args.executor,
                        workers=cli_args.workers,
                        seed=cli_args.seed)
    print(outcome["table"])

    failed = False
    for mode, arm in outcome["arms"].items():
        s = arm["summary"]
        if s["deduped"] <= 0:
            print(f"FAIL: {mode} arm saw no in-flight dedup")
            failed = True
        if s["plan_cache"]["hit_rate"] <= 0.0:
            print(f"FAIL: {mode} arm saw no plan-cache hits")
            failed = True
    print("OK: match sets identical to the serial no-server replay "
          "in both arms" if not failed else
          "(correctness held; dedup/cache assertions failed)")

    payload = {
        "bench": "serving",
        "params": {"vertices": vertices, "requests": num_requests,
                   "shapes": num_shapes, "tenants": cli_args.tenants,
                   "max_batch": cli_args.max_batch,
                   "max_delay_ms": cli_args.max_delay_ms,
                   "concurrency": cli_args.concurrency,
                   "rate_qps": cli_args.rate_qps,
                   "executor": cli_args.executor,
                   "relabel_fraction": RELABEL_FRACTION},
        "arms": {mode: arm["summary"]
                 for mode, arm in outcome["arms"].items()},
    }
    if cli_args.json is not None:
        written = write_bench_json("bench_serving", payload,
                                   cli_args.json)
        print(f"wrote {written}")
    if failed:
        sys.exit(1)
