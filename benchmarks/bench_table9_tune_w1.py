"""Table IX: tuning W1 (layer-1 load-balance threshold) on WatDiv.

Expected shape: U-curve — too small W1 launches too many dedicated
kernels, too large W1 leaves giant tasks unbalanced; the paper's best
value is 4096.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.reporting import render_table
from repro.bench.runner import gsi_factory, run_workload
from repro.core.config import GSIConfig

from bench_common import record_report

W1_VALUES = [2048, 3072, 4096, 5120, 6144]


@pytest.fixture(scope="module")
def table9(watdiv_workload):
    times = {}
    for w1 in W1_VALUES:
        cfg = replace(GSIConfig.with_lb(), w1=w1)
        times[w1] = run_workload(gsi_factory(cfg), watdiv_workload).avg_ms
    report = render_table(
        "Table IX analog: tuning of W1 (WatDiv)",
        ["W1"] + [str(w) for w in W1_VALUES],
        [["time (ms)"] + [f"{times[w]:.2f}" for w in W1_VALUES]],
        note="paper row: 2.00K 1.44K 1.30K 2.51K 3.73K (best at 4096)")
    record_report("table9_tune_w1", report)
    return times


@pytest.fixture(scope="module")
def synthetic_w1():
    """Paper-scale task-bag sweep through the real 4-layer splitter.

    At our reduced graph scale no neighbor list reaches W1 (hub degree
    ~300 vs W1 >= 2048), so the end-to-end sweep is flat; this isolates
    the mechanism at the workload skew the paper tunes against: a
    power-law bag with tasks well beyond W1.
    """
    import numpy as np

    from repro.core.load_balance import balanced_makespan
    from repro.gpusim.scheduler import LoadBalanceConfig

    rng = np.random.default_rng(11)
    units = (rng.pareto(1.2, size=4000) * 300.0 + 10.0).tolist()
    # A couple of hub-monster rows (the DBpedia 2.2M-degree vertex of
    # Table III): these are what layer 1 exists for.
    units += [2_000_000.0, 3_000_000.0]
    sweep = [1100, 2048, 4096, 16384, 65536, 10_000_000]
    times = {}
    for w1 in sweep:
        cfg = LoadBalanceConfig(w1=w1)
        times[w1] = balanced_makespan(units, cfg, slots=960)
    report = render_table(
        "Table IX supplement: wide W1 sweep on a paper-scale synthetic "
        "bag",
        ["W1"] + [str(w) for w in sweep],
        [["makespan (cycles)"] + [f"{times[w]:.0f}" for w in sweep]],
        note="both failure modes: small W1 over-launches dedicated "
             "kernels, huge W1 leaves giants unsplit; the tuned region "
             "sits between (exact optimum depends on launch-latency "
             "constants)")
    record_report("table9_tune_w1_synthetic", report)
    return times


def test_synthetic_w1_u_shape(synthetic_w1):
    """Some interior value must beat both extremes (a U exists)."""
    times = synthetic_w1
    keys = sorted(times)
    interior_best = min(times[k] for k in keys[1:-1])
    assert interior_best <= times[keys[0]]
    assert interior_best <= times[keys[-1]]


def test_all_w1_produce_same_result(watdiv_workload):
    counts = set()
    for w1 in (W1_VALUES[0], W1_VALUES[-1]):
        cfg = replace(GSIConfig.with_lb(), w1=w1)
        counts.add(run_workload(gsi_factory(cfg),
                                watdiv_workload).total_matches)
    assert len(counts) == 1


def test_times_finite(table9):
    assert all(t > 0 for t in table9.values())


@pytest.mark.parametrize("w1", [2048, 4096, 6144])
def test_bench_w1(benchmark, watdiv_workload, w1, table9, synthetic_w1):
    cfg = replace(GSIConfig.with_lb(), w1=w1)
    engine = gsi_factory(cfg)(watdiv_workload.graph)
    q = watdiv_workload.queries[0]
    benchmark.pedantic(lambda: engine.match(q), rounds=2, iterations=1)
