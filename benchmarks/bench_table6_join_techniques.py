"""Table VI: the join-phase technique chain GSI- -> +DS -> +PC -> +SO.

For every dataset: join-phase global-memory load transactions (GLD) and
query response time, adding one technique at a time.  Expected shape:
each step drops GLD; +PC's speedup stays below 2x (it can at most halve
the work); +SO gives the largest wins on match-heavy datasets.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import drop_pct, render_table, speedup
from repro.bench.runner import gsi_factory, run_workload
from repro.core.config import GSIConfig

from bench_common import record_report

CHAIN = [("GSI-", GSIConfig.baseline()),
         ("+DS", GSIConfig.with_ds()),
         ("+PC", GSIConfig.with_pc()),
         ("+SO", GSIConfig.gsi())]


@pytest.fixture(scope="module")
def table6(workloads):
    out = {}
    for name, wl in workloads.items():
        out[name] = [
            (label, run_workload(gsi_factory(cfg), wl))
            for label, cfg in CHAIN
        ]
    rows = []
    for name, chain in out.items():
        row = [name]
        prev = None
        for label, s in chain:
            row.append(f"{s.avg_join_gld:.0f}")
            if prev is not None:
                row.append(drop_pct(prev.avg_join_gld, s.avg_join_gld))
            prev = s
        prev = None
        for label, s in chain:
            row.append(f"{s.avg_ms:.2f}")
            if prev is not None:
                row.append(speedup(prev.avg_ms, s.avg_ms))
            prev = s
        rows.append(row)
    headers = (["dataset", "GLD GSI-", "GLD +DS", "drop", "GLD +PC",
                "drop", "GLD +SO", "drop", "ms GSI-", "ms +DS",
                "speedup", "ms +PC", "speedup", "ms +SO", "speedup"])
    report = render_table(
        "Table VI analog: join-phase techniques", headers, rows,
        note="paper: DS ~30% GLD drop / ~2x; PC >=21% / <=2x; "
             "SO ~40% / up to 6.3x")
    record_report("table6_join_techniques", report)
    return out


def test_matches_invariant_across_chain(table6):
    for name, chain in table6.items():
        counts = {s.total_matches for _, s in chain}
        assert len(counts) == 1, name


def test_gld_monotonically_drops(table6):
    for name, chain in table6.items():
        glds = [s.avg_join_gld for _, s in chain]
        assert glds == sorted(glds, reverse=True), name


def test_pc_speedup_below_two(table6):
    for name, chain in table6.items():
        ds, pc = chain[1][1], chain[2][1]
        assert ds.avg_ms / pc.avg_ms < 2.2, name


@pytest.mark.parametrize("label,cfg", CHAIN, ids=[c[0] for c in CHAIN])
def test_bench_chain_on_watdiv(benchmark, watdiv_workload, label, cfg,
                               table6):
    factory = gsi_factory(cfg)
    engine = factory(watdiv_workload.graph)
    q = watdiv_workload.queries[0]
    benchmark.pedantic(lambda: engine.match(q), rounds=2, iterations=1)
