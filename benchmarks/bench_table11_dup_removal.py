"""Table XI: duplicate removal details — GLD and time, with vs without.

Expected shape: GLD drops a few percent on small datasets and ~20% on
the RDF-like ones (where many rows share hub vertices); time moves less
(the paper: 0-17%), bounded by the block-sized sharing region.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import drop_pct, render_table
from repro.bench.runner import gsi_factory, run_workload
from repro.core.config import GSIConfig

from bench_common import record_report


@pytest.fixture(scope="module")
def table11(workloads):
    out = {}
    for name, wl in workloads.items():
        with_dup = run_workload(gsi_factory(GSIConfig.with_lb()), wl)
        removed = run_workload(gsi_factory(GSIConfig.gsi_opt()), wl)
        out[name] = (with_dup, removed)
    rows = []
    for name, (wd, dr) in out.items():
        rows.append([
            name, f"{wd.avg_join_gld:.0f}", f"{dr.avg_join_gld:.0f}",
            drop_pct(wd.avg_join_gld, dr.avg_join_gld),
            f"{wd.avg_ms:.2f}", f"{dr.avg_ms:.2f}",
            drop_pct(wd.avg_ms, dr.avg_ms),
        ])
    report = render_table(
        "Table XI analog: duplicate removal",
        ["dataset", "GLD with dups", "GLD removed", "drop",
         "ms with dups", "ms removed", "drop"],
        rows,
        note="paper drops: GLD 3-23%, time 0-17%")
    record_report("table11_dup_removal", report)
    return out


def test_dr_never_increases_gld(table11):
    for name, (wd, dr) in table11.items():
        assert dr.avg_join_gld <= wd.avg_join_gld * 1.001, name


def test_results_unchanged(table11):
    for name, (wd, dr) in table11.items():
        assert wd.total_matches == dr.total_matches, name


def test_bench_dup_removal(benchmark, watdiv_workload, table11):
    engine = gsi_factory(GSIConfig.gsi_opt())(watdiv_workload.graph)
    q = watdiv_workload.queries[0]
    benchmark.pedantic(lambda: engine.match(q), rounds=2, iterations=1)
