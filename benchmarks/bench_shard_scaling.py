"""Shard scaling: per-shard work reduction vs. halo replication cost.

Not a paper table — this measures the repo's sharded subsystem.  The
same mesh (road-like) workload is served by a single engine and by
scatter-gather :class:`~repro.shard.ShardedEngine` instances across
shard counts {1, 2, 4, 8} and both partitioners.  Three things are
pinned:

* **exactness** — every sharded arm's match sets are identical to the
  single-engine reference (the halo/ownership argument, measured, not
  assumed);
* **per-shard work reduction** — the busiest shard's simulated
  transaction total decreases as the shard count grows (the hash
  partitioner's contiguous blocks keep halos thin on the mesh, so
  candidate filtering and joining scale with shard size, not |V|);
* **replication overhead** — the halo's vertex/edge replication factor
  is reported per configuration; it *grows* with shard count, which is
  exactly the trade-off a deployment tunes (ROADMAP open item).

The workload is mesh-shaped on purpose: a large-diameter graph is
where partition locality exists to be exploited.  (On small-world
graphs every h-hop halo swallows most of the graph and sharding
degenerates to replication — the table makes that visible for the
label-balancing partitioner, which scatters ownership.)

Run ``python benchmarks/bench_shard_scaling.py`` for the table, with
``--quick`` for the CI smoke size, or via pytest for the assertions.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.reporting import render_table
from repro.core.engine import GSIEngine
from repro.graph.generators import mesh_graph, random_walk_query
from repro.shard import ShardedEngine, ShardedGraph

from bench_common import record_report, write_bench_json

SHARD_COUNTS = (1, 2, 4, 8)
PARTITIONERS = ("hash", "label")
HALO_HOPS = 2

MESH_SIDE = int(os.environ.get("GSI_BENCH_SHARD_MESH", "24"))
NUM_QUERIES = int(os.environ.get("GSI_BENCH_SHARD_QUERIES", "6"))


def run_shard_scaling(mesh_side: int = MESH_SIDE,
                      num_queries: int = NUM_QUERIES,
                      seed: int = 3):
    """One full sweep; returns ``(outcomes, reference, table)``.

    ``outcomes[(partitioner, shards)]`` carries the report, its match
    sets, the busiest shard's transactions, and replication factors.
    ``reference`` is the single-engine arm (match sets + transactions).
    """
    graph = mesh_graph(mesh_side, mesh_side, 5, 4, seed=seed)
    queries = [random_walk_query(graph, 3 + (s % 3), seed=s)
               for s in range(num_queries)]

    single = GSIEngine(graph)
    reference = {"match_sets": [], "transactions": 0}
    for query in queries:
        result = single.match(query)
        reference["match_sets"].append(result.match_set())
        reference["transactions"] += result.counters.transactions

    outcomes = {}
    rows = []
    for partitioner in PARTITIONERS:
        for shards in SHARD_COUNTS:
            engine = ShardedEngine(ShardedGraph(
                graph, shards, partitioner=partitioner,
                halo_hops=HALO_HOPS))
            report = engine.run_batch(queries)
            info = report.info
            outcomes[(partitioner, shards)] = {
                "report": report,
                "match_sets": [item.result.match_set()
                               for item in report.items],
                "max_shard_tx": report.max_shard_transactions,
                "total_tx": report.total_transactions,
                "vertex_replication": info.vertex_replication,
                "edge_replication": info.edge_replication,
            }
            rows.append([
                partitioner, shards,
                report.max_shard_transactions,
                report.total_transactions,
                f"""{report.max_shard_transactions
                    / max(1, reference['transactions']):.2f}""",
                f"{info.vertex_replication:.2f}x",
                f"{info.edge_replication:.2f}x",
                report.total_matches,
            ])
    table = render_table(
        f"shard scaling on a {mesh_side}x{mesh_side} mesh "
        f"({num_queries} queries, halo {HALO_HOPS})",
        ["partitioner", "shards", "max shard tx", "total tx",
         "max/single", "V repl", "E repl", "matches"],
        rows,
        note=f"single-engine reference: "
             f"{reference['transactions']} tx, "
             f"{sum(len(m) for m in reference['match_sets'])} matches; "
             f"per-shard max tx must fall as shards grow (hash "
             f"partitioner) while match sets stay identical; "
             f"replication is the price the halo pays for "
             f"shard-local exactness")
    return outcomes, reference, table


@pytest.fixture(scope="module")
def scaling():
    outcomes, reference, table = run_shard_scaling()
    record_report("shard_scaling", table)
    return outcomes, reference


@pytest.mark.parametrize("partitioner", PARTITIONERS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_identical_to_single_engine(scaling, partitioner,
                                            shards):
    outcomes, reference = scaling
    assert outcomes[(partitioner, shards)]["match_sets"] == \
        reference["match_sets"], (
        f"{partitioner}/{shards}-shard match sets diverged from the "
        f"single-engine reference")


def test_per_shard_work_decreases_with_shard_count(scaling):
    outcomes, _ = scaling
    series = [outcomes[("hash", s)]["max_shard_tx"]
              for s in SHARD_COUNTS]
    for smaller, bigger in zip(series, series[1:]):
        assert bigger < smaller, (
            f"per-shard max transactions must decrease as shards grow; "
            f"got {dict(zip(SHARD_COUNTS, series))}")


def test_replication_grows_with_shard_count(scaling):
    outcomes, _ = scaling
    series = [outcomes[("hash", s)]["vertex_replication"]
              for s in SHARD_COUNTS]
    assert series[0] == pytest.approx(1.0)
    assert series[-1] > series[0]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="shard scaling benchmark (also runs under pytest "
                    "with assertions)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke size (16x16 mesh, 4 queries)")
    parser.add_argument("--mesh-side", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write BENCH_shard_scaling.json here "
                             "(a directory, or an exact .json path)")
    cli_args = parser.parse_args()

    side = cli_args.mesh_side or (16 if cli_args.quick else MESH_SIDE)
    nq = cli_args.queries or (4 if cli_args.quick else NUM_QUERIES)
    outcomes, reference, report_table = run_shard_scaling(
        mesh_side=side, num_queries=nq)
    print(report_table)
    for key, out in outcomes.items():
        assert out["match_sets"] == reference["match_sets"], (
            f"{key} diverged from the single-engine reference")
    hash_series = [outcomes[("hash", s)]["max_shard_tx"]
                   for s in SHARD_COUNTS]
    assert all(b < a for a, b in zip(hash_series, hash_series[1:])), (
        f"per-shard max tx not decreasing: {hash_series}")
    print(f"OK: all {len(outcomes)} sharded arms byte-identical to the "
          f"single engine; hash per-shard max tx {hash_series} "
          f"strictly decreasing")
    if cli_args.json is not None:
        payload = {
            "bench": "shard_scaling",
            "params": {"mesh_side": side, "queries": nq,
                       "halo_hops": HALO_HOPS},
            "reference_tx": reference["transactions"],
            "arms": {
                f"{partitioner}/{shards}": {
                    "max_shard_tx": out["max_shard_tx"],
                    "total_tx": out["total_tx"],
                    "vertex_replication": out["vertex_replication"],
                    "edge_replication": out["edge_replication"],
                }
                for (partitioner, shards), out in outcomes.items()
            },
        }
        written = write_bench_json("shard_scaling", payload,
                                   cli_args.json)
        print(f"wrote {written}")
