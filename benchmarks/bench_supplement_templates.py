"""Supplement: template-workload comparison across engines.

The paper evaluates on random-walk queries only; the wider literature
(TurboISO, CFL-Match) also reports template families.  This supplement
runs star / path / clique workloads through the CPU engines and GSI,
demonstrating (a) result agreement on structured shapes and (b) the
TurboISO extension's NEC advantage on symmetric stars.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import render_table
from repro.bench.runner import baseline_factory, gsi_factory, run_workload
from repro.bench.workloads import Workload
from repro.core.config import GSIConfig
from repro.graph.datasets import gowalla_like
from repro.graph.templates import template_workload

from bench_common import record_report

TEMPLATES = [("star", 6), ("path", 5), ("clique", 3)]
ENGINES = [("VF3", lambda: baseline_factory("vf3")),
           ("TurboISO", lambda: baseline_factory("turbo")),
           ("GSI-opt", lambda: gsi_factory(GSIConfig.gsi_opt()))]


@pytest.fixture(scope="module")
def template_results():
    graph = gowalla_like()
    out = {}
    for template, size in TEMPLATES:
        queries = template_workload(graph, template, size, count=3,
                                    seed=21)
        wl = Workload(name=template, graph=graph, queries=queries)
        for ename, make in ENGINES:
            out[(template, ename)] = run_workload(make(), wl)
    rows = []
    for template, size in TEMPLATES:
        cells = [f"{template}({size})"]
        for ename, _ in ENGINES:
            s = out[(template, ename)]
            cells.append("-" if s.timed_out else f"{s.avg_ms:.3f}")
        cells.append(out[(template, ENGINES[0][0])].total_matches)
        rows.append(cells)
    report = render_table(
        "Supplement: template workloads (gowalla analog)",
        ["template"] + [e for e, _ in ENGINES] + ["matches"],
        rows,
        note="avg ms; TurboISO's NEC merging targets the symmetric "
             "star family")
    record_report("supplement_templates", report)
    return out


def test_engines_agree_on_templates(template_results):
    for template, _ in TEMPLATES:
        counts = {
            template_results[(template, ename)].total_matches
            for ename, _ in ENGINES
            if not template_results[(template, ename)].timed_out
        }
        assert len(counts) == 1, template


def test_turbo_not_slower_than_vf3_on_stars(template_results):
    star_turbo = template_results[("star", "TurboISO")]
    star_vf3 = template_results[("star", "VF3")]
    if star_turbo.total_matches > 100:
        assert star_turbo.avg_ms <= star_vf3.avg_ms * 1.1


@pytest.mark.parametrize("template,size", TEMPLATES,
                         ids=[t for t, _ in TEMPLATES])
def test_bench_templates_gsi(benchmark, template, size, template_results):
    graph = gowalla_like()
    queries = template_workload(graph, template, size, count=1, seed=5)
    engine = gsi_factory(GSIConfig.gsi_opt())(graph)
    benchmark.pedantic(lambda: engine.match(queries[0]), rounds=2,
                       iterations=1)
