"""Figure 12: overall comparison of all six engines on all datasets.

Expected shape: GPU engines beat CPU engines wherever the search space is
non-trivial; among GPU engines there is no clear GpSM-vs-GunrockSM winner
but both lose to GSI; GSI-opt <= GSI.  CPU engines that exceed the time
threshold show "-" (the paper's missing bars).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import render_table
from repro.bench.runner import (
    DEFAULT_THRESHOLD_MS,
    baseline_factory,
    gsi_factory,
    run_workload,
)
from repro.core.config import GSIConfig

from bench_common import record_report

ENGINES = [
    ("VF3", lambda: baseline_factory("vf3")),
    ("CFL-Match", lambda: baseline_factory("cfl")),
    ("GpSM", lambda: baseline_factory("gpsm")),
    ("GunrockSM", lambda: baseline_factory("gunrock")),
    ("GSI", lambda: gsi_factory(GSIConfig.gsi())),
    ("GSI-opt", lambda: gsi_factory(GSIConfig.gsi_opt())),
]


@pytest.fixture(scope="module")
def fig12(workloads):
    out = {}
    for wname, wl in workloads.items():
        row = {}
        for ename, make in ENGINES:
            row[ename] = run_workload(make(), wl)
        out[wname] = row
    rows = []
    for wname, row in out.items():
        cells = [wname]
        for ename, _ in ENGINES:
            s = row[ename]
            cells.append("-" if s.timed_out else f"{s.avg_ms:.2f}")
        rows.append(cells)
    report = render_table(
        "Figure 12 analog: overall comparison (avg query ms, '-' = "
        f"exceeded {DEFAULT_THRESHOLD_MS:.0f} ms threshold)",
        ["dataset"] + [e for e, _ in ENGINES], rows,
        note="paper: GPU >> CPU, GSI fastest, GSI-opt <= GSI; VF3/CFL "
             "missing on the large datasets")
    record_report("fig12_overall", report)
    return out


def test_gsi_beats_gpu_baselines(fig12):
    for wname, row in fig12.items():
        if row["GpSM"].timed_out:
            continue
        assert row["GSI-opt"].avg_ms <= row["GpSM"].avg_ms * 1.5, wname
        assert row["GSI-opt"].avg_ms <= row["GunrockSM"].avg_ms * 1.5, wname


def test_gsi_opt_not_slower_than_gsi(fig12):
    for wname, row in fig12.items():
        assert row["GSI-opt"].avg_ms <= row["GSI"].avg_ms * 1.05, wname


def test_all_finishing_engines_agree(fig12):
    for wname, row in fig12.items():
        counts = {s.total_matches for s in row.values()
                  if not s.timed_out and s.timeouts == 0}
        assert len(counts) <= 1, wname


def test_gsi_beats_cpu_on_match_heavy_datasets(fig12):
    """Where the search space is non-trivial, the GPU must win."""
    heavy = max(fig12, key=lambda w: fig12[w]["GSI-opt"].total_matches)
    row = fig12[heavy]
    for cpu in ("VF3", "CFL-Match"):
        if not row[cpu].timed_out:
            assert row["GSI-opt"].avg_ms < row[cpu].avg_ms, (heavy, cpu)


@pytest.mark.parametrize("ename,make", ENGINES, ids=[e for e, _ in ENGINES])
def test_bench_engines_on_gowalla(benchmark, gowalla_workload, ename,
                                  make, fig12):
    engine = make()(gowalla_workload.graph)
    q = gowalla_workload.queries[0]
    benchmark.pedantic(lambda: engine.match(q), rounds=2, iterations=1)
