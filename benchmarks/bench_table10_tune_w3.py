"""Table X: tuning W3 (layer-3 load-balance threshold) on WatDiv.

Expected shape: shallow U-curve — small W3 pays task-merging overhead,
large W3 leaves in-block imbalance; the paper's best value is 256 and
the fluctuation is small (bounded by the block size).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.reporting import render_table
from repro.bench.runner import gsi_factory, run_workload
from repro.core.config import GSIConfig

from bench_common import record_report

W3_VALUES = [192, 224, 256, 288, 320]


@pytest.fixture(scope="module")
def table10(watdiv_workload):
    times = {}
    for w3 in W3_VALUES:
        cfg = replace(GSIConfig.with_lb(), w3=w3)
        times[w3] = run_workload(gsi_factory(cfg), watdiv_workload).avg_ms
    report = render_table(
        "Table X analog: tuning of W3 (WatDiv)",
        ["W3"] + [str(w) for w in W3_VALUES],
        [["time (ms)"] + [f"{times[w]:.2f}" for w in W3_VALUES]],
        note="paper row: 1.40K 1.35K 1.30K 1.61K 1.92K (best 256, "
             "small fluctuation)")
    record_report("table10_tune_w3", report)
    return times


@pytest.fixture(scope="module")
def synthetic_w3():
    """W3 sweep through the real splitter on a layer-3-heavy bag."""
    import numpy as np

    from repro.core.load_balance import balanced_makespan
    from repro.gpusim.scheduler import LoadBalanceConfig

    rng = np.random.default_rng(13)
    units = (rng.pareto(1.5, size=30_000) * 120.0 + 5.0)
    units = np.clip(units, None, 1000.0).tolist()  # keep inside layer 3
    times = {}
    for w3 in W3_VALUES + [64, 960]:
        cfg = LoadBalanceConfig(w3=w3)
        times[w3] = balanced_makespan(units, cfg, slots=960)
    report = render_table(
        "Table X supplement: W3 sweep on a paper-scale synthetic bag",
        ["W3"] + [str(w) for w in W3_VALUES + [64, 960]],
        [["makespan (cycles)"] + [f"{times[w]:.0f}"
                                  for w in W3_VALUES + [64, 960]]],
        note="small W3 pays merge overhead, large W3 leaves in-block "
             "imbalance; fluctuation modest as the paper observes")
    record_report("table10_tune_w3_synthetic", report)
    return times


def test_synthetic_w3_extremes_not_better(synthetic_w3):
    times = synthetic_w3
    best_swept = min(times[w] for w in W3_VALUES)
    assert best_swept <= times[64] * 1.05 or best_swept <= times[960] * 1.05


def test_fluctuation_is_bounded(table10):
    """The paper notes W3's effect is limited by the block size."""
    ts = list(table10.values())
    assert max(ts) <= 3.0 * min(ts)


def test_results_invariant(watdiv_workload):
    counts = set()
    for w3 in (192, 320):
        cfg = replace(GSIConfig.with_lb(), w3=w3)
        counts.add(run_workload(gsi_factory(cfg),
                                watdiv_workload).total_matches)
    assert len(counts) == 1


@pytest.mark.parametrize("w3", [192, 256, 320])
def test_bench_w3(benchmark, watdiv_workload, w3, table10, synthetic_w3):
    cfg = replace(GSIConfig.with_lb(), w3=w3)
    engine = gsi_factory(cfg)(watdiv_workload.graph)
    q = watdiv_workload.queries[0]
    benchmark.pedantic(lambda: engine.match(q), rounds=2, iterations=1)
