"""Shared helpers for the paper-reproduction benchmarks.

Every ``bench_*`` file reproduces one table or figure of the paper.  The
rendered paper-style tables are collected here and printed in the
terminal summary (pytest captures per-test stdout, terminal-summary
output always reaches the console / tee).  Tables are also written to
``benchmarks/results/`` for later inspection.

This lives outside ``conftest.py`` so benchmark modules can import it as
``from bench_common import record_report`` without colliding with the
test suite's ``tests/conftest.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, List, Optional

_REPORTS: List[str] = []
_RESULTS_DIR = Path(__file__).parent / "results"

#: benchmark-wide workload knobs (paper: 100 queries, |V(Q)| = 12; we
#: default smaller so the whole suite runs in minutes — raise via env)
NUM_QUERIES = int(os.environ.get("GSI_BENCH_QUERIES", "3"))
QUERY_VERTICES = int(os.environ.get("GSI_BENCH_QUERY_VERTICES", "12"))


def record_report(name: str, text: str) -> None:
    """Register a rendered table for terminal-summary printing and save
    it under ``benchmarks/results/<name>.txt``."""
    _REPORTS.append(text)
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                              encoding="utf-8")


def collected_reports() -> List[str]:
    """All tables recorded so far (consumed by the terminal summary)."""
    return list(_REPORTS)


def write_bench_json(name: str, payload: Any,
                     path: Optional[str] = None) -> Path:
    """Persist a benchmark's machine-readable outcome as JSON.

    ``path`` is the user-supplied ``--json`` argument: a path ending in
    ``.json`` is used verbatim; anything else is treated as a directory
    receiving ``BENCH_<name>.json``.  With no ``path`` the file lands in
    ``benchmarks/results/``.  Returns the path written.
    """
    if path is None:
        target = _RESULTS_DIR / f"BENCH_{name}.json"
    else:
        candidate = Path(path)
        if candidate.suffix == ".json":
            target = candidate
        else:
            target = candidate / f"BENCH_{name}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                 default=str) + "\n", encoding="utf-8")
    return target
