"""Shared helpers for the paper-reproduction benchmarks.

Every ``bench_*`` file reproduces one table or figure of the paper.  The
rendered paper-style tables are collected here and printed in the
terminal summary (pytest captures per-test stdout, terminal-summary
output always reaches the console / tee).  Tables are also written to
``benchmarks/results/`` for later inspection.

This lives outside ``conftest.py`` so benchmark modules can import it as
``from bench_common import record_report`` without colliding with the
test suite's ``tests/conftest.py``.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from typing import Any, Awaitable, Callable, List, Optional, Sequence

import numpy as np

from repro.obs.metrics import get_registry

_REPORTS: List[str] = []
_RESULTS_DIR = Path(__file__).parent / "results"

#: benchmark-wide workload knobs (paper: 100 queries, |V(Q)| = 12; we
#: default smaller so the whole suite runs in minutes — raise via env)
NUM_QUERIES = int(os.environ.get("GSI_BENCH_QUERIES", "3"))
QUERY_VERTICES = int(os.environ.get("GSI_BENCH_QUERY_VERTICES", "12"))


def record_report(name: str, text: str) -> None:
    """Register a rendered table for terminal-summary printing and save
    it under ``benchmarks/results/<name>.txt``."""
    _REPORTS.append(text)
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                              encoding="utf-8")


def collected_reports() -> List[str]:
    """All tables recorded so far (consumed by the terminal summary)."""
    return list(_REPORTS)


def write_bench_json(name: str, payload: Any,
                     path: Optional[str] = None) -> Path:
    """Persist a benchmark's machine-readable outcome as JSON.

    ``path`` is the user-supplied ``--json`` argument: a path ending in
    ``.json`` is used verbatim; anything else is treated as a directory
    receiving ``BENCH_<name>.json``.  With no ``path`` the file lands in
    ``benchmarks/results/``.  Returns the path written.

    Dict payloads additionally get an ``obs_metrics`` key holding the
    process metrics-registry snapshot at write time (cache hit rates,
    shipped bytes, batch fill levels, ...), so every ``--json``
    artifact doubles as an observability record of its own run.
    """
    if isinstance(payload, dict) and "obs_metrics" not in payload:
        payload = dict(payload)
        payload["obs_metrics"] = get_registry().snapshot()
    if path is None:
        target = _RESULTS_DIR / f"BENCH_{name}.json"
    else:
        candidate = Path(path)
        if candidate.suffix == ".json":
            target = candidate
        else:
            target = candidate / f"BENCH_{name}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                 default=str) + "\n", encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# Traffic generators (shared by the serving / traffic benchmarks)
# ----------------------------------------------------------------------


def poisson_arrival_times(rate_qps: float, num: int,
                          seed: int = 0) -> List[float]:
    """Absolute arrival offsets (seconds) of a Poisson process.

    Interarrival gaps are i.i.d. exponential with mean ``1/rate_qps``;
    the returned offsets are their running sum starting at 0.0.  This
    is the *open-loop* arrival model: clients fire on a clock,
    regardless of whether earlier requests completed, so queueing delay
    is visible instead of self-throttled away.
    """
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
    if num < 0:
        raise ValueError(f"num must be >= 0, got {num}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_qps, size=num)
    return np.concatenate([[0.0], np.cumsum(gaps)[:-1]]).tolist() \
        if num else []


def zipf_indices(num_items: int, num_picks: int, seed: int = 0,
                 exponent: float = 1.1) -> List[int]:
    """``num_picks`` indices into ``0..num_items-1``, Zipf-skewed.

    The classic skewed-repetition workload: a few hot query shapes
    dominate (what plan caches and in-flight dedup feed on) with a long
    tail of cold ones.  ``exponent`` controls the skew (larger =
    hotter head).
    """
    if num_items < 1:
        raise ValueError(f"num_items must be >= 1, got {num_items}")
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, num_items + 1, dtype=np.float64) \
        ** exponent
    weights /= weights.sum()
    return rng.choice(num_items, size=num_picks, p=weights).tolist()


async def run_closed_loop(submit: Callable[[Any], Awaitable[Any]],
                          items: Sequence[Any],
                          concurrency: int) -> List[Any]:
    """Closed-loop load: ``concurrency`` clients, each back-to-back.

    Client ``c`` owns items ``c, c+concurrency, ...`` and submits them
    sequentially, awaiting each response before the next request — the
    think-time-zero closed-loop model, where offered load self-throttles
    to the service's capacity.  Returns responses in item order.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    results: List[Any] = [None] * len(items)

    async def client(start: int) -> None:
        for i in range(start, len(items), concurrency):
            results[i] = await submit(items[i])

    await asyncio.gather(*[client(c) for c in range(concurrency)])
    return results


async def run_open_loop(submit: Callable[[Any], Awaitable[Any]],
                        items: Sequence[Any],
                        arrival_times: Sequence[float]) -> List[Any]:
    """Open-loop load: item ``i`` fires at ``arrival_times[i]``.

    Arrivals are scheduled on the loop clock (offsets relative to call
    time, e.g. from :func:`poisson_arrival_times`) and never wait for
    earlier responses.  Returns responses in item order.
    """
    if len(items) != len(arrival_times):
        raise ValueError("need one arrival time per item")
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def fire(i: int) -> Any:
        delay = start + arrival_times[i] - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        return await submit(items[i])

    return list(await asyncio.gather(
        *[fire(i) for i in range(len(items))]))
