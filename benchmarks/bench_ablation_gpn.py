"""Ablation: PCSR's GPN parameter (Section IV, "Parameter Setting").

The paper argues GPN = 16 fills a 128 B transaction exactly: smaller GPN
saves space but overflows groups (longer probe chains, more transactions
per N(v, l)); GPN = 16 showed no overflow in any of their experiments.
We sweep GPN over the allowed range and measure probe transactions,
chain lengths, and space.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import render_table
from repro.storage.pcsr import PCSRStorage

from bench_common import record_report

GPN_VALUES = [2, 4, 8, 16]


@pytest.fixture(scope="module")
def gpn_sweep(workloads):
    graph = workloads["dbpedia"].graph
    rng = np.random.default_rng(5)
    labels = graph.distinct_edge_labels()
    probes = [(int(rng.integers(graph.num_vertices)),
               labels[int(rng.integers(len(labels)))])
              for _ in range(300)]
    rows = []
    measurements = {}
    for gpn in GPN_VALUES:
        store = PCSRStorage(graph, gpn=gpn)
        avg_tx = np.mean([store.lookup_transactions(v, l)
                          for v, l in probes])
        chain = store.max_chain_length()
        space = store.space_words()
        measurements[gpn] = (avg_tx, chain, space)
        rows.append([gpn, f"{avg_tx:.2f}", chain, space])
    report = render_table(
        "Ablation: PCSR GPN parameter (dbpedia analog)",
        ["GPN", "avg tx / N(v,l)", "max chain", "space (words)"],
        rows,
        note="paper: GPN=16 fills one 128 B transaction; no overflow "
             "observed in any experiment")
    record_report("ablation_gpn", report)
    return measurements


def test_gpn16_has_shortest_chains(gpn_sweep):
    chains = {gpn: m[1] for gpn, m in gpn_sweep.items()}
    assert chains[16] <= min(chains.values()) + 0  # the minimum
    assert chains[16] <= 2


def test_small_gpn_saves_space(gpn_sweep):
    spaces = {gpn: m[2] for gpn, m in gpn_sweep.items()}
    assert spaces[2] < spaces[16]


def test_probe_cost_improves_with_gpn(gpn_sweep):
    txs = {gpn: m[0] for gpn, m in gpn_sweep.items()}
    assert txs[16] <= txs[2]


@pytest.mark.parametrize("gpn", GPN_VALUES)
def test_bench_pcsr_build(benchmark, workloads, gpn, gpn_sweep):
    graph = workloads["enron"].graph
    benchmark.pedantic(lambda: PCSRStorage(graph, gpn=gpn), rounds=2,
                       iterations=1)
