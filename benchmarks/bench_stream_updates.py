"""Streaming updates: incremental maintenance vs. rebuild-and-rerun.

Not a paper table — this measures the dynamic subsystem.  Two arms
serve the same continuous queries over the same update stream:

* **incremental**: one :class:`StreamEngine` maintains the signature
  table and PCSR partitions in place and emits per-batch delta matches.
* **rebuild**: after every batch, a cold :class:`GSIEngine` is built
  over the committed snapshot (full signature table + full PCSR) and
  every registered query re-runs from scratch.

Both arms are differentially checked against each other at the end of
every stream, then compared on host wall-clock and simulated memory
transactions, across update-batch sizes.  The paper's PCSR hash-group
layout was chosen *because* it admits in-place insertion; this is where
that claim becomes a measurement.

**Commit-heavy mode** (``python benchmarks/bench_stream_updates.py
--commit-heavy``, or the ``commit_heavy``-prefixed pytest cases)
isolates the snapshot-commit path itself: an O(changes) CSR splice
(:meth:`LabeledGraph.apply_changes`) versus the old full CSR rebuild,
on a ~100k-edge graph, proving commit transactions scale with the
change set, not with ``|E|``.

**Executor mode** (``python benchmarks/bench_stream_updates.py
--executor process``) replays one stream once per executor kind —
serial, thread pool, process pool — over many registered continuous
queries, proving every executor emits identical per-batch deltas and
final match sets while the pools overlap the per-query extension work
on the shared batch seed.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench.reporting import render_table
from repro.core.engine import GSIEngine
from repro.dynamic import (
    DynamicGraph,
    StreamEngine,
    full_commit_transactions,
    full_rebuild_transactions,
    random_update_stream,
)
from repro.gpusim.meter import MemoryMeter
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph

from bench_common import record_report, write_bench_json

NUM_BATCHES = int(os.environ.get("GSI_BENCH_STREAM_BATCHES", "4"))
BATCH_SIZES = [1, 8, 32]
GRAPH_VERTICES = int(os.environ.get("GSI_BENCH_STREAM_VERTICES", "1200"))
NUM_QUERIES = 3

COMMIT_EDGES = int(os.environ.get("GSI_BENCH_COMMIT_EDGES", "100000"))
COMMIT_BATCHES = int(os.environ.get("GSI_BENCH_COMMIT_BATCHES", "4"))
COMMIT_BATCH_SIZES = [1, 4, 16]


@pytest.fixture(scope="module")
def stream_comparison():
    graph = scale_free_graph(GRAPH_VERTICES, 4, 5, 6, seed=9)
    queries = [random_walk_query(graph, 4, seed=s)
               for s in range(NUM_QUERIES)]

    rows = []
    outcomes = {}
    for batch_size in BATCH_SIZES:
        stream = random_update_stream(
            graph, num_batches=NUM_BATCHES, batch_size=batch_size,
            seed=batch_size)

        # --- incremental arm -----------------------------------------
        engine = StreamEngine(graph)
        qids = [engine.register(q) for q in queries]
        t0 = time.perf_counter()
        inc_tx = 0
        for delta in stream:
            report = engine.apply_batch(delta)
            inc_tx += (report.maintenance.gld + report.maintenance.gst
                       + report.commit_transactions)
        inc_ms = (time.perf_counter() - t0) * 1000.0
        inc_sets = [engine.matches(qid) for qid in qids]

        # --- rebuild-and-rerun arm -----------------------------------
        shadow = DynamicGraph(graph)
        t0 = time.perf_counter()
        reb_tx = 0
        reb_sets = None
        for delta in stream:
            shadow.apply(delta)
            snapshot = shadow.commit().snapshot
            cold = GSIEngine(snapshot)
            reb_tx += (full_rebuild_transactions(snapshot)
                       + full_commit_transactions(snapshot))
            reb_sets = [cold.match(q).match_set() for q in queries]
        reb_ms = (time.perf_counter() - t0) * 1000.0

        assert reb_sets is not None
        for a, b in zip(inc_sets, reb_sets):
            assert a == b, "incremental and rebuild arms disagree"

        outcomes[batch_size] = {
            "inc_ms": inc_ms, "reb_ms": reb_ms,
            "inc_tx": inc_tx, "reb_tx": reb_tx,
        }
        rows.append([
            batch_size,
            f"{inc_ms:.0f}", f"{reb_ms:.0f}",
            f"{reb_ms / inc_ms:.1f}x",
            inc_tx, reb_tx,
            f"{reb_tx / max(1, inc_tx):.1f}x",
        ])

    table = render_table(
        f"incremental vs rebuild over {NUM_BATCHES}-batch streams "
        f"(|V|={GRAPH_VERTICES}, {NUM_QUERIES} continuous queries)",
        ["batch size", "inc ms", "rebuild ms", "wall win",
         "inc tx", "rebuild tx", "tx win"],
        rows,
        note="tx = simulated maintenance transactions (gld+gst); the "
             "rebuild arm pays a full signature-table + PCSR "
             "construction per batch")
    record_report("stream_updates", table)
    return outcomes


def test_incremental_beats_rebuild_on_small_batches(stream_comparison):
    small = stream_comparison[BATCH_SIZES[0]]
    assert small["inc_tx"] < small["reb_tx"], (
        "incremental maintenance must cost fewer simulated transactions "
        "than a per-batch full rebuild for single-update batches")
    assert small["inc_ms"] < small["reb_ms"], (
        "incremental maintenance + delta matching must beat "
        "rebuild-and-rerun wall-clock for single-update batches")


def test_incremental_transaction_win_shrinks_with_batch_size(
        stream_comparison):
    # Larger batches amortize the rebuild, so the per-stream tx ratio
    # must be monotonically less favorable to the incremental arm.
    ratios = [stream_comparison[b]["reb_tx"]
              / max(1, stream_comparison[b]["inc_tx"])
              for b in BATCH_SIZES]
    assert ratios[0] > ratios[-1]


def test_both_arms_agree(stream_comparison):
    # The fixture already differentially compared the match sets; this
    # test exists so a disagreement fails attributably even when the
    # perf assertions would pass.
    assert set(stream_comparison) == set(BATCH_SIZES)


# ----------------------------------------------------------------------
# Bulk mode: GPMA-style batched PCSR maintenance vs per-edge updates
# ----------------------------------------------------------------------

BULK_BATCH_SIZES = [32, 128, 512]


def run_bulk_updates(batch_sizes=tuple(BULK_BATCH_SIZES),
                     num_batches: int = 4, vertices: int = 1200,
                     repeats: int = 2):
    """Drive identical committed deltas through both PCSR update paths.

    The per-edge arm walks a group chain and shifts one region per
    edge (:meth:`DynamicPCSRStorage.insert_edge` / ``delete_edge``);
    the bulk arm groups each batch by label and key and applies it with
    :meth:`DynamicPCSRStorage.apply_batch` — one chain walk per touched
    key and one merge per affected group (GPMA-style).  Returns
    ``(outcomes, table)``; final adjacency must be identical and the
    bulk arm must never cost *more* simulated transactions.
    """
    from repro.dynamic.index import DynamicPCSRStorage

    graph = scale_free_graph(vertices, 4, 5, 2, seed=13)
    outcomes = {}
    rows = []
    for batch_size in batch_sizes:
        dyn = DynamicGraph(graph)
        commits = []
        for delta in random_update_stream(graph,
                                          num_batches=num_batches,
                                          batch_size=batch_size,
                                          seed=batch_size):
            dyn.apply(delta)
            commit = dyn.commit()
            commits.append((list(commit.inserted_edges),
                            list(commit.deleted_edges)))

        arms = {}
        for arm in ("per-edge", "bulk"):
            best_ms = None
            for _ in range(repeats):
                store = DynamicPCSRStorage(graph)
                t0 = time.perf_counter()
                for inserted, deleted in commits:
                    if arm == "bulk":
                        store.apply_batch(inserted, deleted)
                    else:
                        for u, v, lab in deleted:
                            store.delete_edge(u, v, lab)
                        for u, v, lab in inserted:
                            store.insert_edge(u, v, lab)
                wall = (time.perf_counter() - t0) * 1000.0
                best_ms = wall if best_ms is None else min(best_ms,
                                                           wall)
            snap = store.meter.snapshot()
            assert not store.validate(), store.validate()
            arms[arm] = {
                "wall_ms": best_ms,
                "tx": snap.gld + snap.gst,
                "adjacency": {
                    lab: {int(v): tuple(a.tolist())
                          for v, a in part.items()}
                    for lab, part in store._parts.items()},
            }
        assert arms["bulk"]["adjacency"] == \
            arms["per-edge"]["adjacency"], (
            f"batch={batch_size}: bulk and per-edge adjacency differ")
        outcomes[batch_size] = arms
        rows.append([
            batch_size,
            f"{arms['per-edge']['wall_ms']:.1f}",
            f"{arms['bulk']['wall_ms']:.1f}",
            f"{arms['per-edge']['wall_ms'] / arms['bulk']['wall_ms']:.2f}x",
            arms["per-edge"]["tx"], arms["bulk"]["tx"],
            f"{arms['per-edge']['tx'] / max(1, arms['bulk']['tx']):.2f}x",
        ])
    table = render_table(
        f"per-edge vs bulk (GPMA-style) PCSR maintenance "
        f"(|V|={vertices}, 2 edge labels, {num_batches} batches per "
        f"stream, best of {repeats})",
        ["batch size", "per-edge ms", "bulk ms", "wall win",
         "per-edge tx", "bulk tx", "tx win"],
        rows,
        note="identical committed deltas, identical final adjacency; "
             "bulk amortizes chain walks and region merges across the "
             "batch, so its edge grows with batch size")
    return outcomes, table


@pytest.fixture(scope="module")
def bulk_update_comparison():
    outcomes, table = run_bulk_updates(num_batches=3)
    record_report("stream_bulk_updates", table)
    return outcomes


def test_bulk_never_costs_more_transactions(bulk_update_comparison):
    for batch_size, arms in bulk_update_comparison.items():
        assert arms["bulk"]["tx"] <= arms["per-edge"]["tx"], (
            f"batch={batch_size}: bulk maintenance must not cost more "
            f"simulated transactions ({arms['bulk']['tx']} vs "
            f"{arms['per-edge']['tx']})")


def test_bulk_beats_per_edge_wall_clock_on_large_batches(
        bulk_update_comparison):
    # Acceptance: at the largest batch size the amortized merge must
    # win host wall-clock (small sparse batches may not amortize).
    largest = max(bulk_update_comparison)
    arms = bulk_update_comparison[largest]
    assert arms["bulk"]["wall_ms"] < arms["per-edge"]["wall_ms"], (
        f"batch={largest}: bulk must beat per-edge wall-clock "
        f"({arms['bulk']['wall_ms']:.1f}ms vs "
        f"{arms['per-edge']['wall_ms']:.1f}ms)")


# ----------------------------------------------------------------------
# Commit-heavy mode: the snapshot-commit path in isolation
# ----------------------------------------------------------------------

def _commit_graph(num_edges: int) -> LabeledGraph:
    epv = 4
    return scale_free_graph(max(8, num_edges // epv), epv, 6, 6, seed=17)


def _measure_commits(graph: LabeledGraph, batch_size: int,
                     num_batches: int) -> dict:
    """Drive the same stream through the patch-commit path and the old
    full-rebuild path; return transactions + wall-clock for both."""
    stream = random_update_stream(graph, num_batches=num_batches,
                                  batch_size=batch_size,
                                  seed=batch_size)

    meter = MemoryMeter()
    dyn = DynamicGraph(graph, meter=meter)
    t0 = time.perf_counter()
    patch_tx = 0
    last = None
    for delta in stream:
        dyn.apply(delta)
        commit = dyn.commit()
        patch_tx += commit.commit_transactions
        last = commit.snapshot
    patch_ms = (time.perf_counter() - t0) * 1000.0

    shadow = DynamicGraph(graph)
    t0 = time.perf_counter()
    rebuild_tx = 0
    rebuilt = None
    for delta in stream:
        shadow.apply(delta)
        snapshot = shadow.commit().snapshot
        # Replicate the pre-patch commit: a from-scratch CSR build.
        rebuilt = LabeledGraph(snapshot.vertex_labels,
                               list(snapshot.edges()))
        rebuild_tx += full_commit_transactions(snapshot)
    rebuild_ms = (time.perf_counter() - t0) * 1000.0

    assert last is not None and rebuilt is not None
    assert np.array_equal(last._offsets, rebuilt._offsets)
    assert np.array_equal(last._nbr, rebuilt._nbr)
    assert np.array_equal(last._elab, rebuilt._elab)
    return {"patch_tx": patch_tx, "rebuild_tx": rebuild_tx,
            "patch_ms": patch_ms, "rebuild_ms": rebuild_ms,
            "edges": graph.num_edges}


def run_commit_heavy(num_edges: int = COMMIT_EDGES,
                     num_batches: int = COMMIT_BATCHES):
    """Commit-heavy comparison across batch sizes and two graph scales.

    Returns ``(outcomes, table)`` where outcomes maps batch size to the
    100%-scale measurements plus a ``quarter`` entry at |E|/4 used for
    the sublinearity check.
    """
    graph = _commit_graph(num_edges)
    quarter = _commit_graph(num_edges // 4)
    outcomes = {}
    rows = []
    for batch_size in COMMIT_BATCH_SIZES:
        full = _measure_commits(graph, batch_size, num_batches)
        small = _measure_commits(quarter, batch_size, num_batches)
        full["quarter"] = small
        outcomes[batch_size] = full
        rows.append([
            batch_size,
            full["patch_tx"], full["rebuild_tx"],
            f"{full['rebuild_tx'] / max(1, full['patch_tx']):.0f}x",
            f"{full['patch_tx'] / max(1, small['patch_tx']):.1f}x",
            f"{full['rebuild_tx'] / max(1, small['rebuild_tx']):.1f}x",
            f"{full['patch_ms']:.0f}", f"{full['rebuild_ms']:.0f}",
        ])
    table = render_table(
        f"commit-heavy: O(changes) CSR splice vs full rebuild "
        f"(|E|={graph.num_edges}, {num_batches} commits per stream)",
        ["batch size", "patch tx", "rebuild tx", "tx win",
         "patch 4x|E| growth", "rebuild 4x|E| growth",
         "patch ms", "rebuild ms"],
        rows,
        note="'4x|E| growth' compares the same stream on a graph 4x "
             "larger: patch commits barely move (O(changes)); rebuild "
             "commits scale with |E|")
    return outcomes, table


@pytest.fixture(scope="module")
def commit_heavy_comparison():
    outcomes, table = run_commit_heavy()
    record_report("stream_commit_heavy", table)
    return outcomes


# ----------------------------------------------------------------------
# Executor mode: per-query delta matching on serial/thread/process pools
# ----------------------------------------------------------------------

def run_stream_executors(executors=("serial", "thread", "process"),
                         num_batches: int = 4, batch_size: int = 16,
                         vertices: int = 600, num_queries: int = 6,
                         workers: int = 4, data_plane: str = "shm"):
    """Replay one stream once per executor; assert identical deltas.

    Returns ``(outcomes, table)``; outcomes map executor name to wall
    ms plus the per-batch created/destroyed totals, the per-batch
    shipped context bytes (process executor only), and final match
    sets that must agree across executors.
    """
    from repro.service import make_executor

    graph = scale_free_graph(vertices, 4, 5, 6, seed=11)
    queries = [random_walk_query(graph, 3 + (s % 2), seed=s)
               for s in range(num_queries)]

    outcomes = {}
    rows = []
    for kind in executors:
        executor = make_executor(kind, workers, data_plane=data_plane)
        engine = None
        try:
            engine = StreamEngine(graph, executor=executor)
            qids = [engine.register(q) for q in queries]
            stream = random_update_stream(graph, num_batches,
                                          batch_size, seed=5)
            deltas = []
            shipped = []
            t0 = time.perf_counter()
            for delta in stream:
                report = engine.apply_batch(delta)
                deltas.append((report.total_created,
                               report.total_destroyed))
                shipment = getattr(executor, "last_shipment", None)
                shipped.append(None if shipment is None
                               else shipment["context_bytes"])
            wall_ms = (time.perf_counter() - t0) * 1000.0
            final = [frozenset(engine.matches(qid)) for qid in qids]
        finally:
            if engine is not None:
                engine.close()
            executor.shutdown()
        outcomes[kind] = {"wall_ms": wall_ms, "deltas": deltas,
                          "final": final, "shipped_bytes": shipped}
        rows.append([kind, f"{wall_ms:.0f}",
                     sum(d[0] for d in deltas),
                     sum(d[1] for d in deltas),
                     sum(len(f) for f in final)])
    table = render_table(
        f"stream executors ({num_queries} continuous queries, "
        f"{num_batches} batches x {batch_size} updates, "
        f"|V|={vertices}, {workers} workers)",
        ["executor", "wall ms", "created", "destroyed", "final live"],
        rows,
        note="per-batch deltas and final match sets must be identical "
             "across executors; pools overlap the per-query extension "
             "work on the shared batch seed")
    return outcomes, table


@pytest.fixture(scope="module")
def stream_executor_comparison():
    outcomes, table = run_stream_executors(
        num_batches=3, batch_size=10, vertices=300, num_queries=4)
    record_report("stream_executors", table)
    return outcomes


def test_stream_executors_agree(stream_executor_comparison):
    serial = stream_executor_comparison["serial"]
    for kind in ("thread", "process"):
        out = stream_executor_comparison[kind]
        assert out["deltas"] == serial["deltas"], (
            f"{kind} executor changed per-batch deltas")
        assert out["final"] == serial["final"], (
            f"{kind} executor changed the final match sets")


def test_commit_heavy_patch_beats_rebuild_5x(commit_heavy_comparison):
    # Acceptance: >= 5x fewer commit transactions than the rebuild path
    # for batches of <= 16 updates on a ~100k-edge graph.
    for batch_size, out in commit_heavy_comparison.items():
        assert batch_size <= 16
        assert out["rebuild_tx"] >= 5 * out["patch_tx"], (
            f"batch={batch_size}: patch commit must be >=5x cheaper "
            f"({out['patch_tx']} vs {out['rebuild_tx']} tx)")


def test_commit_tx_scale_with_changes_not_graph(commit_heavy_comparison):
    # Growing |E| 4x leaves patch-commit transactions nearly flat while
    # rebuild-commit transactions grow ~4x: commits are O(changes).
    for out in commit_heavy_comparison.values():
        patch_growth = out["patch_tx"] / max(1, out["quarter"]["patch_tx"])
        rebuild_growth = (out["rebuild_tx"]
                          / max(1, out["quarter"]["rebuild_tx"]))
        assert patch_growth < 2.0, patch_growth
        assert rebuild_growth > 3.0, rebuild_growth


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="streaming-update benchmarks")
    parser.add_argument("--commit-heavy", action="store_true",
                        help="run the commit-path comparison "
                             "(O(changes) splice vs full rebuild)")
    parser.add_argument("--bulk", action="store_true",
                        help="run the per-edge vs bulk (GPMA-style) "
                             "PCSR maintenance comparison")
    parser.add_argument("--executor", default=None,
                        choices=["serial", "thread", "process",
                                 "compare"],
                        help="replay one stream per executor and "
                             "differentially compare the deltas")
    parser.add_argument("--edges", type=int, default=COMMIT_EDGES)
    parser.add_argument("--batches", type=int, default=COMMIT_BATCHES)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--vertices", type=int, default=600)
    parser.add_argument("--queries", type=int, default=6)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--data-plane", default="shm",
                        choices=["shm", "pickle"],
                        help="process-executor data plane")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write BENCH_stream_updates.json here "
                             "(a directory, or an exact .json path)")
    cli_args = parser.parse_args()
    if cli_args.executor is not None:
        kinds = (("serial", "thread", "process")
                 if cli_args.executor == "compare"
                 else tuple(dict.fromkeys(("serial",
                                           cli_args.executor))))
        exec_outcomes, report_table = run_stream_executors(
            executors=kinds, num_batches=cli_args.batches,
            batch_size=cli_args.batch_size,
            vertices=cli_args.vertices,
            num_queries=cli_args.queries, workers=cli_args.workers,
            data_plane=cli_args.data_plane)
        print(report_table)
        serial_arm = exec_outcomes["serial"]
        for kind, out in exec_outcomes.items():
            assert out["deltas"] == serial_arm["deltas"], (
                f"{kind} executor changed per-batch deltas")
            assert out["final"] == serial_arm["final"], (
                f"{kind} executor changed the final match sets")
        print("OK: per-batch deltas and final match sets identical "
              f"across executors: {', '.join(exec_outcomes)}")
        if cli_args.json is not None:
            payload = {
                "bench": "stream_updates",
                "params": {"batches": cli_args.batches,
                           "batch_size": cli_args.batch_size,
                           "vertices": cli_args.vertices,
                           "queries": cli_args.queries,
                           "workers": cli_args.workers,
                           "data_plane": cli_args.data_plane},
                "executors": {
                    kind: {"wall_ms": out["wall_ms"],
                           "created": sum(d[0] for d in out["deltas"]),
                           "destroyed": sum(d[1]
                                            for d in out["deltas"]),
                           "shipped_bytes_per_batch":
                               out["shipped_bytes"]}
                    for kind, out in exec_outcomes.items()
                },
            }
            written = write_bench_json("stream_updates", payload,
                                       cli_args.json)
            print(f"wrote {written}")
    elif cli_args.bulk:
        bulk_outcomes, report_table = run_bulk_updates(
            num_batches=cli_args.batches,
            vertices=cli_args.vertices)
        print(report_table)
        largest = max(bulk_outcomes)
        big = bulk_outcomes[largest]
        assert big["bulk"]["wall_ms"] < big["per-edge"]["wall_ms"], (
            f"bulk lost wall-clock at batch={largest}")
        for arms in bulk_outcomes.values():
            assert arms["bulk"]["tx"] <= arms["per-edge"]["tx"]
        print("OK: identical adjacency; bulk tx <= per-edge at every "
              f"batch size and wall-clock wins at batch={largest}")
        if cli_args.json is not None:
            payload = {
                "bench": "stream_bulk_updates",
                "params": {"batches": cli_args.batches,
                           "vertices": cli_args.vertices},
                "batch_sizes": {
                    str(bs): {arm: {"wall_ms": arms[arm]["wall_ms"],
                                    "tx": arms[arm]["tx"]}
                              for arm in ("per-edge", "bulk")}
                    for bs, arms in bulk_outcomes.items()
                },
            }
            written = write_bench_json("stream_bulk_updates", payload,
                                       cli_args.json)
            print(f"wrote {written}")
    elif cli_args.commit_heavy:
        _, report_table = run_commit_heavy(cli_args.edges,
                                           cli_args.batches)
        print(report_table)
        if cli_args.json is not None:
            written = write_bench_json(
                "stream_commit_heavy",
                {"bench": "stream_commit_heavy",
                 "params": {"edges": cli_args.edges,
                            "batches": cli_args.batches},
                 "table": report_table},
                cli_args.json)
            print(f"wrote {written}")
    else:
        parser.error("pass --bulk, --commit-heavy or --executor KIND "
                     "(the stream comparison runs under pytest: python "
                     "-m pytest benchmarks/bench_stream_updates.py)")
