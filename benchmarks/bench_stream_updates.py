"""Streaming updates: incremental maintenance vs. rebuild-and-rerun.

Not a paper table — this measures the dynamic subsystem.  Two arms
serve the same continuous queries over the same update stream:

* **incremental**: one :class:`StreamEngine` maintains the signature
  table and PCSR partitions in place and emits per-batch delta matches.
* **rebuild**: after every batch, a cold :class:`GSIEngine` is built
  over the committed snapshot (full signature table + full PCSR) and
  every registered query re-runs from scratch.

Both arms are differentially checked against each other at the end of
every stream, then compared on host wall-clock and simulated memory
transactions, across update-batch sizes.  The paper's PCSR hash-group
layout was chosen *because* it admits in-place insertion; this is where
that claim becomes a measurement.
"""

from __future__ import annotations

import os
import time

import pytest

from bench_common import record_report
from repro.bench.reporting import render_table
from repro.core.engine import GSIEngine
from repro.dynamic import (
    DynamicGraph,
    StreamEngine,
    full_rebuild_transactions,
    random_update_stream,
)
from repro.graph.generators import random_walk_query, scale_free_graph

NUM_BATCHES = int(os.environ.get("GSI_BENCH_STREAM_BATCHES", "4"))
BATCH_SIZES = [1, 8, 32]
GRAPH_VERTICES = int(os.environ.get("GSI_BENCH_STREAM_VERTICES", "1200"))
NUM_QUERIES = 3


@pytest.fixture(scope="module")
def stream_comparison():
    graph = scale_free_graph(GRAPH_VERTICES, 4, 5, 6, seed=9)
    queries = [random_walk_query(graph, 4, seed=s)
               for s in range(NUM_QUERIES)]

    rows = []
    outcomes = {}
    for batch_size in BATCH_SIZES:
        stream = random_update_stream(
            graph, num_batches=NUM_BATCHES, batch_size=batch_size,
            seed=batch_size)

        # --- incremental arm -----------------------------------------
        engine = StreamEngine(graph)
        qids = [engine.register(q) for q in queries]
        t0 = time.perf_counter()
        inc_tx = 0
        for delta in stream:
            report = engine.apply_batch(delta)
            inc_tx += report.maintenance.gld + report.maintenance.gst
        inc_ms = (time.perf_counter() - t0) * 1000.0
        inc_sets = [engine.matches(qid) for qid in qids]

        # --- rebuild-and-rerun arm -----------------------------------
        shadow = DynamicGraph(graph)
        t0 = time.perf_counter()
        reb_tx = 0
        reb_sets = None
        for delta in stream:
            shadow.apply(delta)
            snapshot = shadow.commit().snapshot
            cold = GSIEngine(snapshot)
            reb_tx += full_rebuild_transactions(snapshot)
            reb_sets = [cold.match(q).match_set() for q in queries]
        reb_ms = (time.perf_counter() - t0) * 1000.0

        assert reb_sets is not None
        for a, b in zip(inc_sets, reb_sets):
            assert a == b, "incremental and rebuild arms disagree"

        outcomes[batch_size] = {
            "inc_ms": inc_ms, "reb_ms": reb_ms,
            "inc_tx": inc_tx, "reb_tx": reb_tx,
        }
        rows.append([
            batch_size,
            f"{inc_ms:.0f}", f"{reb_ms:.0f}",
            f"{reb_ms / inc_ms:.1f}x",
            inc_tx, reb_tx,
            f"{reb_tx / max(1, inc_tx):.1f}x",
        ])

    table = render_table(
        f"incremental vs rebuild over {NUM_BATCHES}-batch streams "
        f"(|V|={GRAPH_VERTICES}, {NUM_QUERIES} continuous queries)",
        ["batch size", "inc ms", "rebuild ms", "wall win",
         "inc tx", "rebuild tx", "tx win"],
        rows,
        note="tx = simulated maintenance transactions (gld+gst); the "
             "rebuild arm pays a full signature-table + PCSR "
             "construction per batch")
    record_report("stream_updates", table)
    return outcomes


def test_incremental_beats_rebuild_on_small_batches(stream_comparison):
    small = stream_comparison[BATCH_SIZES[0]]
    assert small["inc_tx"] < small["reb_tx"], (
        "incremental maintenance must cost fewer simulated transactions "
        "than a per-batch full rebuild for single-update batches")
    assert small["inc_ms"] < small["reb_ms"], (
        "incremental maintenance + delta matching must beat "
        "rebuild-and-rerun wall-clock for single-update batches")


def test_incremental_transaction_win_shrinks_with_batch_size(
        stream_comparison):
    # Larger batches amortize the rebuild, so the per-stream tx ratio
    # must be monotonically less favorable to the incremental arm.
    ratios = [stream_comparison[b]["reb_tx"]
              / max(1, stream_comparison[b]["inc_tx"])
              for b in BATCH_SIZES]
    assert ratios[0] > ratios[-1]


def test_both_arms_agree(stream_comparison):
    # The fixture already differentially compared the match sets; this
    # test exists so a disagreement fails attributably even when the
    # perf assertions would pass.
    assert set(stream_comparison) == set(BATCH_SIZES)
