"""Ablation: signature-table layout — column-first vs row-first (Fig. 8).

The paper adopts the column-first layout because a warp's reads of the
same signature word for 32 consecutive vertices coalesce into one 128 B
transaction, while the row-first layout leaves "memory access gaps".
We measure the filter-phase GLD and time under both layouts.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import drop_pct, render_table
from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine

from bench_common import record_report


@pytest.fixture(scope="module")
def layout_sweep(workloads):
    out = {}
    for name, wl in workloads.items():
        metrics = {}
        for column_first in (False, True):
            engine = GSIEngine(
                wl.graph, GSIConfig(column_first_signatures=column_first))
            gld = 0
            ms = 0.0
            for q in wl.queries:
                r = engine.filter_only(q)
                gld += r.counters.labeled_gld.get("filter", 0)
                ms += r.elapsed_ms
            n = len(wl.queries)
            metrics[column_first] = (gld / n, ms / n)
        out[name] = metrics
    rows = []
    for name, m in out.items():
        rows.append([
            name, f"{m[False][0]:.0f}", f"{m[True][0]:.0f}",
            drop_pct(m[False][0], m[True][0]),
            f"{m[False][1]:.3f}", f"{m[True][1]:.3f}",
        ])
    report = render_table(
        "Ablation: signature table layout (filter phase)",
        ["dataset", "GLD row-first", "GLD column-first", "drop",
         "ms row-first", "ms column-first"],
        rows,
        note="paper Fig. 8: column-first coalesces one transaction per "
             "warp per word")
    record_report("ablation_layout", report)
    return out


def test_column_first_fewer_transactions(layout_sweep):
    for name, m in layout_sweep.items():
        assert m[True][0] < m[False][0], name


def test_column_first_not_slower(layout_sweep):
    for name, m in layout_sweep.items():
        assert m[True][1] <= m[False][1] * 1.01, name


def test_results_independent_of_layout(workloads):
    wl = workloads["enron"]
    col = GSIEngine(wl.graph, GSIConfig(column_first_signatures=True))
    row = GSIEngine(wl.graph, GSIConfig(column_first_signatures=False))
    for q in wl.queries:
        assert col.match(q).match_set() == row.match(q).match_set()


@pytest.mark.parametrize("column_first", [False, True],
                         ids=["row_first", "column_first"])
def test_bench_filter_layouts(benchmark, workloads, column_first,
                              layout_sweep):
    wl = workloads["gowalla"]
    engine = GSIEngine(wl.graph,
                       GSIConfig(column_first_signatures=column_first))
    q = wl.queries[0]
    benchmark.pedantic(lambda: engine.filter_only(q), rounds=3,
                       iterations=1)
