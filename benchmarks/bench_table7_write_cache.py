"""Table VII: the write cache — GST transactions and time, on vs off.

Expected shape: GST drops everywhere; datasets with plentiful matches
(WatDiv / DBpedia analogs) show the biggest drops and time gains, while
match-poor datasets barely move (the paper's gowalla/road rows).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.reporting import drop_pct, render_table
from repro.bench.runner import gsi_factory, run_workload
from repro.core.config import GSIConfig

from bench_common import record_report


@pytest.fixture(scope="module")
def table7(workloads):
    out = {}
    for name, wl in workloads.items():
        no_cache = run_workload(
            gsi_factory(replace(GSIConfig.gsi(), use_write_cache=False)),
            wl)
        cache = run_workload(gsi_factory(GSIConfig.gsi()), wl)
        out[name] = (no_cache, cache)
    rows = []
    for name, (nc, c) in out.items():
        rows.append([
            name, f"{nc.avg_gst:.0f}", f"{c.avg_gst:.0f}",
            drop_pct(nc.avg_gst, c.avg_gst),
            f"{nc.avg_ms:.2f}", f"{c.avg_ms:.2f}",
            drop_pct(nc.avg_ms, c.avg_ms),
        ])
    report = render_table(
        "Table VII analog: write cache",
        ["dataset", "GST no-cache", "GST cache", "drop",
         "ms no-cache", "ms cache", "drop"],
        rows,
        note="paper drops: GST 7-64%, time 0-76%; biggest where "
             "matches are plentiful")
    record_report("table7_write_cache", report)
    return out


def test_cache_never_increases_gst(table7):
    for name, (nc, c) in table7.items():
        assert c.avg_gst <= nc.avg_gst, name


def test_results_unchanged(table7):
    for name, (nc, c) in table7.items():
        assert nc.total_matches == c.total_matches, name


def test_match_heavy_datasets_gain_most(table7):
    drops = {
        name: 1.0 - (c.avg_gst / max(nc.avg_gst, 1e-9))
        for name, (nc, c) in table7.items()
    }
    matches = {name: c.total_matches for name, (_, c) in table7.items()}
    heavy = max(matches, key=matches.get)
    light = min(matches, key=matches.get)
    assert drops[heavy] >= drops[light] - 0.05


@pytest.mark.parametrize("cache", [False, True], ids=["no_cache", "cache"])
def test_bench_write_cache(benchmark, watdiv_workload, cache, table7):
    cfg = replace(GSIConfig.gsi(), use_write_cache=cache)
    engine = gsi_factory(cfg)(watdiv_workload.graph)
    q = watdiv_workload.queries[0]
    benchmark.pedantic(lambda: engine.match(q), rounds=2, iterations=1)
