"""Figure 13: scalability on the WatDiv series (watdiv10M..100M analogs).

Expected shape: GpSM and GunrockSM curves rise sharply with graph size;
GSI rises much more slowly; GSI-opt is the flattest and lowest line.
VF3 / CFL-Match cannot run even the smallest instance at paper scale, so
only GPU engines appear.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import render_series
from repro.bench.runner import baseline_factory, gsi_factory, run_workload
from repro.bench.workloads import Workload
from repro.core.config import GSIConfig
from repro.graph.datasets import watdiv_series

from bench_common import NUM_QUERIES, QUERY_VERTICES, record_report

STEPS = 6
BASE_VERTICES = 400

ENGINES = [
    ("GpSM", lambda: baseline_factory("gpsm")),
    ("GunrockSM", lambda: baseline_factory("gunrock")),
    ("GSI", lambda: gsi_factory(GSIConfig.gsi())),
    ("GSI-opt", lambda: gsi_factory(GSIConfig.gsi_opt())),
]


@pytest.fixture(scope="module")
def fig13():
    graphs = watdiv_series(steps=STEPS, base_vertices=BASE_VERTICES)
    workloads = [
        Workload.for_graph(f"watdiv{(i + 1) * 10}M", g,
                           num_queries=NUM_QUERIES,
                           query_vertices=QUERY_VERTICES)
        for i, g in enumerate(graphs)
    ]
    series = {ename: [] for ename, _ in ENGINES}
    for wl in workloads:
        for ename, make in ENGINES:
            s = run_workload(make(), wl)
            series[ename].append(None if s.timed_out else s.avg_ms)
    xs = [wl.name for wl in workloads]
    report = render_series(
        "Figure 13 analog: scalability on the WatDiv series",
        "dataset", xs, series,
        y_label="avg query time (ms); paper: GpSM/GunrockSM rise "
                "sharply, GSI slowly, GSI-opt nearly straight")
    record_report("fig13_scalability", report)
    return xs, series


def test_gsi_opt_lowest_curve_at_scale(fig13):
    _, series = fig13
    last = -1
    assert series["GSI-opt"][last] is not None
    for other in ("GpSM", "GunrockSM"):
        if series[other][last] is not None:
            assert series["GSI-opt"][last] <= series[other][last] * 1.2


def test_edge_join_engines_grow_faster(fig13):
    """Relative growth of the two-step engines exceeds GSI-opt's."""
    _, series = fig13

    def growth(vals):
        pts = [v for v in vals if v is not None]
        return pts[-1] / pts[0] if len(pts) >= 2 else 1.0

    assert growth(series["GpSM"]) >= growth(series["GSI-opt"]) * 0.8


def test_bench_gsi_on_largest_step(benchmark, fig13):
    graphs = watdiv_series(steps=STEPS, base_vertices=BASE_VERTICES)
    wl = Workload.for_graph("big", graphs[-1], num_queries=1,
                            query_vertices=QUERY_VERTICES)
    engine = gsi_factory(GSIConfig.gsi_opt())(wl.graph)
    benchmark.pedantic(lambda: engine.match(wl.queries[0]), rounds=2,
                       iterations=1)
