"""Pytest glue for the paper-reproduction benchmarks.

Helper functions live in :mod:`bench_common`; this file only provides
fixtures and the terminal-summary hook so that no benchmark module ever
needs to import the name ``conftest`` (which used to shadow
``tests/conftest.py`` when both directories were collected together).
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.bench.workloads import Workload, standard_workloads

from bench_common import NUM_QUERIES, QUERY_VERTICES, collected_reports


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = collected_reports()
    if not reports:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "################ paper reproduction output ################")
    for report in reports:
        terminalreporter.write_line(report)
        terminalreporter.write_line("")


@pytest.fixture(scope="session")
def workloads() -> Dict[str, Workload]:
    """The five standard dataset workloads (Table III analogs)."""
    return standard_workloads(num_queries=NUM_QUERIES,
                              query_vertices=QUERY_VERTICES)


@pytest.fixture(scope="session")
def gowalla_workload(workloads) -> Workload:
    return workloads["gowalla"]


@pytest.fixture(scope="session")
def watdiv_workload(workloads) -> Workload:
    return workloads["watdiv"]
