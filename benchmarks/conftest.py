"""Shared infrastructure for the paper-reproduction benchmarks.

Every ``bench_*`` file reproduces one table or figure of the paper.  The
rendered paper-style tables are collected here and printed in the
terminal summary (pytest captures per-test stdout, terminal-summary
output always reaches the console / tee).  Tables are also written to
``benchmarks/results/`` for later inspection.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

import pytest

from repro.bench.workloads import Workload, standard_workloads

_REPORTS: List[str] = []
_RESULTS_DIR = Path(__file__).parent / "results"

#: benchmark-wide workload knobs (paper: 100 queries, |V(Q)| = 12; we
#: default smaller so the whole suite runs in minutes — raise via env)
NUM_QUERIES = int(os.environ.get("GSI_BENCH_QUERIES", "3"))
QUERY_VERTICES = int(os.environ.get("GSI_BENCH_QUERY_VERTICES", "12"))


def record_report(name: str, text: str) -> None:
    """Register a rendered table for terminal-summary printing and save
    it under ``benchmarks/results/<name>.txt``."""
    _REPORTS.append(text)
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                              encoding="utf-8")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "################ paper reproduction output ################")
    for report in _REPORTS:
        terminalreporter.write_line(report)
        terminalreporter.write_line("")


@pytest.fixture(scope="session")
def workloads() -> Dict[str, Workload]:
    """The five standard dataset workloads (Table III analogs)."""
    return standard_workloads(num_queries=NUM_QUERIES,
                              query_vertices=QUERY_VERTICES)


@pytest.fixture(scope="session")
def gowalla_workload(workloads) -> Workload:
    return workloads["gowalla"]


@pytest.fixture(scope="session")
def watdiv_workload(workloads) -> Workload:
    return workloads["watdiv"]
