"""Per-row vs vectorized join lanes on a dense-candidate workload.

Not a paper table — this measures the host-side execution strategy of
the *same* simulated GPU algorithm.  Both lanes walk identical join
plans and charge identical memory transactions to the meter; they
differ only in how the host computes each edge pass:

* **rows**: the original lane — one Python-level set-op per
  intermediate row (:func:`repro.core.join.run_join_phase`).
* **vector**: the bulk lane — one NumPy pass per edge over the whole
  intermediate table (:func:`repro.core.kernels.run_join_phase_vector`),
  grouping rows by bound vertex and deriving per-row costs from length
  arrays.

The workload is built to stress the regime the vector lane exists for:
a small dense graph with few labels (so candidate sets are fat) and
cyclic queries (so late steps carry multiple linking edges and large
intermediate tables that the closing edges then prune).  Every query is
differentially checked — match sets byte-identical, meter totals and
simulated latency identical — so the wall-clock column is a pure
host-efficiency comparison, never a correctness trade.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.bench.reporting import render_table
from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.core.kernels import HAVE_NUMBA
from repro.graph.generators import scale_free_graph
from repro.graph.labeled_graph import LabeledGraph

from bench_common import record_report, write_bench_json

GRAPH_VERTICES = int(os.environ.get("GSI_BENCH_JOIN_VERTICES", "150"))
EDGES_PER_VERTEX = int(os.environ.get("GSI_BENCH_JOIN_EPV", "8"))

#: the numba lane is benchmarked when the JIT is importable; otherwise
#: it silently falls back to the NumPy path, which would double-count
LANES: Tuple[str, ...] = (("rows", "vector", "numba") if HAVE_NUMBA
                          else ("rows", "vector"))


def _dense_workload(num_vertices: int = GRAPH_VERTICES,
                    quick: bool = False
                    ) -> Tuple[LabeledGraph, List[LabeledGraph],
                               List[str]]:
    """A few-label dense graph plus cyclic queries over it.

    Query labels are sampled from real graph vertices so every shape
    has matches; cycles and chordal cycles keep the *final* match sets
    moderate while the path-shaped prefixes blow up the intermediate
    tables — exactly where per-row dispatch overhead concentrates.
    """
    graph = scale_free_graph(num_vertices, EDGES_PER_VERTEX,
                             num_vertex_labels=3, num_edge_labels=1,
                             seed=7)
    labels = graph.vertex_labels

    def cycle(vs: Sequence[int]) -> LabeledGraph:
        n = len(vs)
        return LabeledGraph([labels[v] for v in vs],
                            [(i, (i + 1) % n, 0) for i in range(n)])

    def chordal(vs: Sequence[int]) -> LabeledGraph:
        n = len(vs)
        return LabeledGraph([labels[v] for v in vs],
                            [(i, (i + 1) % n, 0) for i in range(n)]
                            + [(0, 2, 0)])

    shapes = [("4-cycle", cycle([0, 1, 2, 3])),
              ("chordal-4", chordal([0, 1, 2, 3])),
              ("5-cycle", cycle([2, 3, 4, 5, 6])),
              ("chordal-5", chordal([3, 4, 5, 6, 7])),
              ("6-cycle", cycle([1, 2, 3, 4, 5, 6]))]
    if quick:
        shapes = shapes[:3]
    return graph, [q for _, q in shapes], [name for name, _ in shapes]


def run_join_kernels(num_vertices: int = GRAPH_VERTICES,
                     quick: bool = False) -> Tuple[Dict, str]:
    """Run the workload once per lane; differentially compare.

    Returns ``(outcomes, table)``.  ``outcomes`` maps lane name to
    per-query wall-clock, match counts and simulated-transaction
    totals; the rows/vector entries must agree on everything except
    wall-clock.
    """
    graph, queries, names = _dense_workload(num_vertices, quick=quick)
    outcomes: Dict[str, Dict[str, list]] = {}
    for lane in LANES:
        cfg = replace(GSIConfig.gsi_opt(), join_kernel=lane)
        engine = GSIEngine(graph, cfg)
        wall_ms, matches, tx, sim_ms = [], [], [], []
        for query in queries:
            t0 = time.perf_counter()
            result = engine.match(query)
            wall_ms.append((time.perf_counter() - t0) * 1000.0)
            matches.append(frozenset(result.matches))
            c = result.counters
            tx.append(c.gld + c.gst + c.shared)
            sim_ms.append(result.elapsed_ms)
        outcomes[lane] = {"wall_ms": wall_ms, "matches": matches,
                          "tx": tx, "sim_ms": sim_ms}

    rows_arm = outcomes["rows"]
    for lane in LANES[1:]:
        arm = outcomes[lane]
        assert arm["matches"] == rows_arm["matches"], (
            f"{lane} lane changed a match set")
        assert arm["tx"] == rows_arm["tx"], (
            f"{lane} lane changed the simulated transaction totals")
        assert arm["sim_ms"] == rows_arm["sim_ms"], (
            f"{lane} lane changed the simulated latency")

    table_rows = []
    for i, name in enumerate(names):
        r_ms = rows_arm["wall_ms"][i]
        v_ms = outcomes["vector"]["wall_ms"][i]
        table_rows.append([
            name, len(rows_arm["matches"][i]),
            f"{r_ms:.0f}", f"{v_ms:.0f}",
            f"{r_ms / max(v_ms, 1e-9):.1f}x",
            rows_arm["tx"][i],
            "yes",
        ])
    total_rows = sum(rows_arm["wall_ms"])
    total_vec = sum(outcomes["vector"]["wall_ms"])
    table_rows.append([
        "TOTAL", sum(len(m) for m in rows_arm["matches"]),
        f"{total_rows:.0f}", f"{total_vec:.0f}",
        f"{total_rows / max(total_vec, 1e-9):.1f}x",
        sum(rows_arm["tx"]), "yes",
    ])
    table = render_table(
        f"join lanes on dense-candidate cyclic queries "
        f"(|V|={graph.num_vertices}, |E|={graph.num_edges}, "
        f"3 vertex labels, lanes: {', '.join(LANES)})",
        ["query", "matches", "rows ms", "vector ms", "wall win",
         "sim tx", "identical"],
        table_rows,
        note="wall ms is host time; 'sim tx' (gld+gst+shared) and the "
             "match sets are asserted byte-identical across lanes — "
             "the lanes differ only in host execution strategy")
    return outcomes, table


@pytest.fixture(scope="module")
def join_kernel_comparison():
    outcomes, table = run_join_kernels(quick=True)
    record_report("join_kernels", table)
    return outcomes


def test_lanes_byte_identical(join_kernel_comparison):
    rows_arm = join_kernel_comparison["rows"]
    vec_arm = join_kernel_comparison["vector"]
    assert vec_arm["matches"] == rows_arm["matches"]
    assert vec_arm["tx"] == rows_arm["tx"]
    assert vec_arm["sim_ms"] == rows_arm["sim_ms"]


def test_vector_beats_rows_wall_clock(join_kernel_comparison):
    # Acceptance: on the dense-candidate workload the bulk lane must
    # win host wall-clock in aggregate (per-query jitter is allowed).
    rows_ms = sum(join_kernel_comparison["rows"]["wall_ms"])
    vec_ms = sum(join_kernel_comparison["vector"]["wall_ms"])
    assert vec_ms < rows_ms, (
        f"vector lane must beat the per-row lane on host wall-clock "
        f"({vec_ms:.0f}ms vs {rows_ms:.0f}ms)")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="per-row vs vectorized join-lane benchmark")
    parser.add_argument("--vertices", type=int, default=GRAPH_VERTICES)
    parser.add_argument("--quick", action="store_true",
                        help="run the 3-query subset")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write BENCH_bench_join_kernels.json here "
                             "(a directory, or an exact .json path)")
    cli_args = parser.parse_args()
    bench_outcomes, report_table = run_join_kernels(
        cli_args.vertices, quick=cli_args.quick)
    print(report_table)
    rows_total = sum(bench_outcomes["rows"]["wall_ms"])
    vec_total = sum(bench_outcomes["vector"]["wall_ms"])
    assert vec_total < rows_total, (
        f"vector lane lost on wall-clock: {vec_total:.0f}ms vs "
        f"{rows_total:.0f}ms")
    print(f"OK: match sets and simulated transactions identical; "
          f"vector lane {rows_total / vec_total:.1f}x faster on host "
          f"wall-clock")
    if cli_args.json is not None:
        payload = {
            "bench": "bench_join_kernels",
            "params": {"vertices": cli_args.vertices,
                       "quick": cli_args.quick,
                       "lanes": list(LANES)},
            "lanes": {
                lane: {"wall_ms": arm["wall_ms"],
                       "sim_tx": arm["tx"],
                       "matches": [len(m) for m in arm["matches"]]}
                for lane, arm in bench_outcomes.items()
            },
            "identical": True,
        }
        written = write_bench_json("bench_join_kernels", payload,
                                   cli_args.json)
        print(f"wrote {written}")
