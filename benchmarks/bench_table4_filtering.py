"""Table IV: filtering strategies — minimum |C(u)| and filtering time.

Compares GpSM's label+degree+refinement filter, GunrockSM's label+degree
filter ("GSM"), and GSI's signature filter.  Expected shape: GSI's
candidate sets are 10-100x smaller at comparable or lower cost.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import render_table
from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.core.filtering import label_degree_candidates
from repro.gpusim.device import Device

from bench_common import record_report


def filter_metrics(workload):
    """(min candidate size, time ms) per strategy, averaged."""
    graph = workload.graph
    gsi = GSIEngine(graph, GSIConfig.gsi())
    agg = {"GpSM": [0.0, 0.0], "GSM": [0.0, 0.0], "GSI": [0.0, 0.0]}
    n = len(workload.queries)
    for q in workload.queries:
        dev = Device()
        c = label_degree_candidates(q, graph, dev,
                                    check_neighbor_labels=True)
        agg["GpSM"][0] += min(len(x) for x in c.values())
        agg["GpSM"][1] += dev.elapsed_ms

        dev = Device()
        c = label_degree_candidates(q, graph, dev,
                                    check_neighbor_labels=False)
        agg["GSM"][0] += min(len(x) for x in c.values())
        agg["GSM"][1] += dev.elapsed_ms

        r = gsi.filter_only(q)
        agg["GSI"][0] += r.min_candidate_size
        agg["GSI"][1] += r.elapsed_ms
    return {k: (v[0] / n, v[1] / n) for k, v in agg.items()}


@pytest.fixture(scope="module")
def table4(workloads):
    out = {}
    rows = []
    for name, wl in workloads.items():
        m = filter_metrics(wl)
        out[name] = m
        rows.append([
            name,
            f"{m['GpSM'][0]:.0f}", f"{m['GSM'][0]:.0f}",
            f"{m['GSI'][0]:.0f}",
            f"{m['GpSM'][1]:.3f}", f"{m['GSM'][1]:.3f}",
            f"{m['GSI'][1]:.3f}",
        ])
    report = render_table(
        "Table IV analog: filtering strategies",
        ["dataset", "minC GpSM", "minC GSM", "minC GSI",
         "ms GpSM", "ms GSM", "ms GSI"],
        rows,
        note="paper: GSI candidates 10-100x smaller, less or equal time")
    record_report("table4_filtering", report)
    return out


def test_gsi_filter_strictly_strongest(table4):
    for name, m in table4.items():
        assert m["GSI"][0] <= m["GSM"][0], name
        assert m["GSI"][0] <= m["GpSM"][0], name


def test_gsm_is_loosest(table4):
    for name, m in table4.items():
        assert m["GpSM"][0] <= m["GSM"][0], name


def test_bench_gsi_filter(benchmark, gowalla_workload, table4):
    engine = GSIEngine(gowalla_workload.graph, GSIConfig.gsi())
    q = gowalla_workload.queries[0]
    benchmark.pedantic(lambda: engine.filter_only(q), rounds=3,
                       iterations=1)


def test_bench_label_degree_filter(benchmark, gowalla_workload, table4):
    graph = gowalla_workload.graph
    q = gowalla_workload.queries[0]
    benchmark.pedantic(
        lambda: label_degree_candidates(q, graph, Device()),
        rounds=3, iterations=1)
