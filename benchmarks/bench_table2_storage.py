"""Table II: time/space of CSR vs BR vs CR vs PCSR.

The paper states complexities; we *measure* them: average transactions
per ``N(v, l)`` extraction and total space in words, per structure, per
dataset.  Expected shape: PCSR ~constant small transactions and O(|E|)
space; BR constant time but space inflated by |LE| x |V|; CR pays a
logarithmic locate; CSR pays the whole unfiltered neighborhood.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import render_table
from repro.storage.factory import build_storage, storage_kinds

from bench_common import record_report


def measure_structure(kind, graph, rng):
    store = build_storage(kind, graph)
    labels = graph.distinct_edge_labels()
    total_tx = 0
    samples = 200
    for _ in range(samples):
        v = int(rng.integers(graph.num_vertices))
        lab = labels[int(rng.integers(len(labels)))]
        total_tx += store.lookup_transactions(v, lab)
    return total_tx / samples, store.space_words()


@pytest.fixture(scope="module")
def table2(workloads):
    rows = []
    for name, wl in workloads.items():
        rng = np.random.default_rng(7)
        for kind in storage_kinds():
            avg_tx, space = measure_structure(kind, wl.graph, rng)
            rows.append([name, kind, f"{avg_tx:.2f}", space])
    report = render_table(
        "Table II analog: storage structures (measured)",
        ["dataset", "structure", "avg tx / N(v,l)", "space (words)"],
        rows,
        note="paper: CSR O(|N(v)|), BR O(1)/huge space, CR O(log), "
             "PCSR O(1)/O(|E|)")
    record_report("table2_storage", report)
    return rows


def test_table2_report(table2):
    """PCSR must win or tie the transaction metric on every dataset."""
    by_dataset = {}
    for dataset, kind, tx, _ in table2:
        by_dataset.setdefault(dataset, {})[kind] = float(tx)
    for dataset, txs in by_dataset.items():
        assert txs["pcsr"] <= txs["compressed"], dataset
        assert txs["pcsr"] <= txs["csr"] + 0.5, dataset


@pytest.mark.parametrize("kind", storage_kinds())
def test_bench_lookup(benchmark, workloads, kind, table2):
    graph = workloads["gowalla"].graph
    store = build_storage(kind, graph)
    labels = graph.distinct_edge_labels()
    rng = np.random.default_rng(3)
    probes = [(int(rng.integers(graph.num_vertices)),
               labels[int(rng.integers(len(labels)))])
              for _ in range(100)]

    def lookup_100():
        return sum(store.lookup_transactions(v, l) for v, l in probes)

    benchmark.pedantic(lookup_100, rounds=3, iterations=1)
