"""Batch service throughput: batched vs. sequential query serving.

Not a paper table — this measures the repo's scaling subsystem.  The
"sequential" arm serves each query the way the seed examples did: a
fresh :class:`GSIEngine` per request, paying signature-table and storage
construction every time.  The "batched" arm serves the same queries from
one :class:`BatchEngine` (artifacts built once, worker pool, plan
cache).  Simulated per-query measurements are identical in both arms by
construction; the win is host wall-clock.

**Executor comparison** (``python benchmarks/bench_batch_throughput.py
--executor process`` or ``--executor compare``, also the
``executor_comparison``-fixture pytest cases): the same batch runs under
the serial, thread-pool, and process-pool executors.  Match sets,
simulated measurements, and cache statistics must be byte-identical —
executors change wall-clock only.  On a multi-core host the process
pool is where Python-heavy joins finally overlap; the table reports
each executor's wall-clock and speedup over serial.
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from repro.bench.reporting import render_table
from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.obs.trace import Tracer, set_tracer
from repro.service import EXECUTOR_KINDS, BatchEngine, make_executor

from bench_common import record_report, write_bench_json

NUM_DISTINCT = 32
NUM_SHAPES_REPEATED = 8
REPEAT_FACTOR = 4

EXEC_QUERIES = int(os.environ.get("GSI_BENCH_EXEC_QUERIES", "24"))
EXEC_VERTICES = int(os.environ.get("GSI_BENCH_EXEC_VERTICES", "400"))
EXEC_WORKERS = int(os.environ.get("GSI_BENCH_EXEC_WORKERS", "4"))

#: ``--quick`` workload: small enough for a CI smoke leg, big enough
#: that a batch is not pure dispatch overhead
QUICK_QUERIES = 8
QUICK_VERTICES = 150
QUICK_WORKERS = 2


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_executor_comparison(num_queries: int = EXEC_QUERIES,
                            vertices: int = EXEC_VERTICES,
                            workers: int = EXEC_WORKERS,
                            executors=EXECUTOR_KINDS,
                            seed: int = 9,
                            data_plane: str = "shm"):
    """Serve one identical batch under each executor; compare wall-clock.

    Each arm gets a fresh :class:`BatchEngine` (so plan/shape caches
    start cold and account identically) and a small untimed warm-up
    batch first, so the process arm's one-time pool spawn + per-worker
    engine bootstrap is amortized the way a long-lived service would
    amortize it.  Returns ``(outcomes, table)``; outcomes map executor
    name to wall ms, the report, and the per-query match sets.
    """
    graph = scale_free_graph(vertices, 4, 6, 6, seed=seed)
    config = GSIConfig.gsi_opt()
    queries = [random_walk_query(graph, 4 + (s % 3), seed=s)
               for s in range(num_queries)]
    warmup = [random_walk_query(graph, 3, seed=1000 + s)
              for s in range(2)]

    outcomes = {}
    rows = []
    for kind in executors:
        executor = make_executor(kind, workers, data_plane=data_plane)
        try:
            service = BatchEngine(graph, config, max_workers=workers,
                                  executor=executor)
            service.run_batch(warmup)  # untimed: pool + worker bootstrap
            t0 = time.perf_counter()
            report = service.run_batch(queries)
            wall_ms = (time.perf_counter() - t0) * 1000.0
        finally:
            executor.shutdown()
        outcomes[kind] = {
            "wall_ms": wall_ms,
            "report": report,
            "match_sets": [r.match_set() for r in report.results],
            "total_tx": report.total_gld + report.total_gst,
            "shipment": getattr(executor, "last_shipment", None),
        }
    baseline = executors[0]  # first arm anchors the speedup column
    baseline_ms = outcomes[baseline]["wall_ms"]
    for kind in executors:
        out = outcomes[kind]
        rows.append([kind, f"{out['wall_ms']:.0f}",
                     f"{num_queries / (out['wall_ms'] / 1000.0):.1f}",
                     f"{baseline_ms / out['wall_ms']:.2f}x",
                     out["report"].total_matches, out["total_tx"]])
    table = render_table(
        f"executor comparison ({num_queries} queries, |V|={vertices}, "
        f"{workers} workers, {_usable_cores()} usable cores)",
        ["executor", "wall ms", "q/s", f"speedup vs {baseline}",
         "matches", "sim tx"],
        rows,
        note="matches and simulated transactions must be identical "
             "across executors — executors change wall-clock only; "
             "process-pool speedup needs multiple usable cores")
    return outcomes, table


def measure_shipped_bytes(vertices: int = EXEC_VERTICES,
                          num_queries: int = 8,
                          workers: int = 2, seed: int = 9):
    """Per-batch serialized context bytes under both process data planes.

    Runs the same warm batch through a process executor once per plane
    and reads ``executor.last_shipment``: the pickle plane re-ships the
    full graph + config every batch, while the shm plane ships a compact
    segment-name handle whose size is independent of ``|G|``.  Returns a
    JSON-ready dict with both measurements and their ratio.
    """
    graph = scale_free_graph(vertices, 4, 6, 6, seed=seed)
    config = GSIConfig.gsi_opt()
    queries = [random_walk_query(graph, 4, seed=s)
               for s in range(num_queries)]
    shipped = {}
    for plane in ("pickle", "shm"):
        executor = make_executor("process", workers, data_plane=plane)
        try:
            service = BatchEngine(graph, config, max_workers=workers,
                                  executor=executor)
            service.run_batch(queries)  # cold: pool spawn + first publish
            service.run_batch(queries)  # warm: steady-state shipment
            shipped[plane] = dict(executor.last_shipment)
        finally:
            executor.shutdown()
    ratio = (shipped["shm"]["context_bytes"]
             / max(1, shipped["pickle"]["context_bytes"]))
    return {"vertices": vertices, "edges": graph.num_edges,
            "planes": shipped, "shm_over_pickle": ratio}


def run_trace_overhead(num_queries: int = QUICK_QUERIES,
                       vertices: int = QUICK_VERTICES,
                       repeats: int = 9, seed: int = 9):
    """Wall-clock of identical batches, tracing disabled vs enabled.

    The instrumentation is compiled into every hot path, so the
    "untraced baseline" arm is the shipped default — the no-op
    :class:`~repro.obs.trace.NullTracer`, whose ``span()`` is one
    virtual call returning a shared inert object — and the traced arm
    installs a recording :class:`~repro.obs.trace.Tracer` for the same
    batch.  Repeats of the two arms are interleaved so thermal/load
    drift hits both equally, and medians resist outliers.  Returns a
    JSON-ready dict with both medians and their ratio.
    """
    graph = scale_free_graph(vertices, 4, 6, 6, seed=seed)
    config = GSIConfig.gsi_opt()
    queries = [random_walk_query(graph, 4 + (s % 3), seed=s)
               for s in range(num_queries)]
    executor = make_executor("serial", 1)
    spans_per_batch = 0
    try:
        service = BatchEngine(graph, config, executor=executor)
        service.run_batch(queries)  # warm: artifacts + plan cache
        untraced_ms, traced_ms = [], []
        for _ in range(repeats):
            t0 = time.perf_counter()
            service.run_batch(queries)
            untraced_ms.append((time.perf_counter() - t0) * 1000.0)
            tracer = Tracer()
            previous = set_tracer(tracer)
            try:
                t0 = time.perf_counter()
                service.run_batch(queries)
                traced_ms.append((time.perf_counter() - t0) * 1000.0)
            finally:
                set_tracer(previous)
            spans_per_batch = len(tracer.finished())
    finally:
        executor.shutdown()
    untraced = statistics.median(untraced_ms)
    traced = statistics.median(traced_ms)
    return {"queries": num_queries, "vertices": vertices,
            "repeats": repeats,
            "untraced_ms": untraced, "traced_ms": traced,
            "overhead": traced / untraced,
            "spans_per_batch": spans_per_batch}


@pytest.fixture(scope="module")
def throughput():
    graph = scale_free_graph(400, 4, 6, 6, seed=9)
    config = GSIConfig.gsi_opt()
    distinct = [random_walk_query(graph, 4 + (s % 3), seed=s)
                for s in range(NUM_DISTINCT)]

    # --- sequential: one cold engine per request (seed serving style) ---
    t0 = time.perf_counter()
    sequential = [GSIEngine(graph, config).match(q) for q in distinct]
    sequential_ms = (time.perf_counter() - t0) * 1000.0

    # --- sequential over a shared warm engine (informational) ---
    warm_engine = GSIEngine(graph, config)
    t0 = time.perf_counter()
    warm = [warm_engine.match(q) for q in distinct]
    warm_ms = (time.perf_counter() - t0) * 1000.0

    # --- batched: shared artifacts + worker pool + plan cache ---
    service = BatchEngine(graph, config, max_workers=4)
    t0 = time.perf_counter()
    report = service.run_batch(distinct)
    batched_ms = (time.perf_counter() - t0) * 1000.0

    # --- repeated-query batch: 8 shapes x 4 users through a fresh
    #     service, exercising the plan cache within one batch ---
    shapes = [random_walk_query(graph, 4 + (s % 3), seed=100 + s)
              for s in range(NUM_SHAPES_REPEATED)]
    repeated_service = BatchEngine(graph, config, max_workers=4)
    repeated_report = repeated_service.run_batch(shapes * REPEAT_FACTOR)

    rows = [
        ["sequential (cold engine/query)", f"{sequential_ms:.0f}",
         f"{NUM_DISTINCT / (sequential_ms / 1000):.1f}", "1.0x"],
        ["sequential (warm shared engine)", f"{warm_ms:.0f}",
         f"{NUM_DISTINCT / (warm_ms / 1000):.1f}",
         f"{sequential_ms / warm_ms:.1f}x"],
        ["batch service (4 workers)", f"{batched_ms:.0f}",
         f"{NUM_DISTINCT / (batched_ms / 1000):.1f}",
         f"{sequential_ms / batched_ms:.1f}x"],
    ]
    table = render_table(
        f"batch service throughput ({NUM_DISTINCT} distinct queries)",
        ["serving mode", "wall ms", "q/s", "speedup"],
        rows,
        note=f"repeated batch ({NUM_SHAPES_REPEATED} shapes x "
             f"{REPEAT_FACTOR}): {repeated_report.summary_line()}")
    record_report("batch_throughput", table)
    return {
        "sequential": sequential, "sequential_ms": sequential_ms,
        "warm": warm, "warm_ms": warm_ms,
        "report": report, "batched_ms": batched_ms,
        "repeated_report": repeated_report,
    }


def test_batched_beats_sequential_wall_clock(throughput):
    assert throughput["batched_ms"] < throughput["sequential_ms"], (
        "the batch service must complete the batch faster than "
        "one-engine-per-query sequential serving")


def test_batching_does_not_change_answers(throughput):
    for seq, batched in zip(throughput["sequential"],
                            throughput["report"].results):
        assert seq.match_set() == batched.match_set()
        assert seq.elapsed_ms == batched.elapsed_ms


def test_repeated_batch_reports_cache_hits(throughput):
    report = throughput["repeated_report"]
    assert report.cache.hit_rate > 0.0
    assert report.cache.hits >= (REPEAT_FACTOR - 1) * 1
    assert report.plan_cache_hits == report.cache.hits


def test_distinct_batch_reports_percentiles(throughput):
    report = throughput["report"]
    assert report.num_queries == NUM_DISTINCT
    assert 0.0 < report.p50_ms <= report.p99_ms
    assert report.throughput_qps > 0.0


# ----------------------------------------------------------------------
# Executor comparison: serial vs thread pool vs process pool
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def executor_comparison():
    outcomes, table = run_executor_comparison()
    record_report("batch_executors", table)
    return outcomes


def test_executors_byte_identical_results(executor_comparison):
    serial = executor_comparison["serial"]
    for kind in ("thread", "process"):
        out = executor_comparison[kind]
        assert out["match_sets"] == serial["match_sets"], (
            f"{kind} executor changed the match sets")
        assert out["total_tx"] == serial["total_tx"], (
            f"{kind} executor changed simulated transaction totals")
        assert [r.elapsed_ms for r in out["report"].results] == \
            [r.elapsed_ms for r in serial["report"].results]


def test_executors_identical_cache_stats(executor_comparison):
    # Preparation is serial in the parent under every executor, so
    # plan-cache and shape-memo accounting is deterministic.
    serial = executor_comparison["serial"]["report"].cache
    for kind in ("thread", "process"):
        assert executor_comparison[kind]["report"].cache == serial


def test_process_pool_speedup_on_multicore(executor_comparison):
    """The acceptance measurement: on a multi-core host, process-pool
    joins must beat thread-pool joins (the GIL caps thread overlap).
    Skipped on boxes without enough usable cores, and on quick-mode
    (shrunken) workloads where fixed pickling/dispatch overhead rivals
    the join work — wall-clock assertions on tiny workloads on shared
    CI runners are noise, not signal.  The correctness assertions above
    always run; ``--min-speedup`` in script mode makes the hard check
    explicit for dedicated perf runs."""
    if _usable_cores() < 4:
        pytest.skip(f"needs >= 4 usable cores for a meaningful "
                    f"process-vs-thread comparison "
                    f"(have {_usable_cores()})")
    if EXEC_QUERIES < 24 or EXEC_VERTICES < 400:
        pytest.skip(f"quick-mode workload ({EXEC_QUERIES} queries, "
                    f"|V|={EXEC_VERTICES}) is too small for a stable "
                    f"wall-clock comparison")
    thread_ms = executor_comparison["thread"]["wall_ms"]
    process_ms = executor_comparison["process"]["wall_ms"]
    assert process_ms * 1.2 <= thread_ms, (
        f"process pool ({process_ms:.0f} ms) should beat the thread "
        f"pool ({thread_ms:.0f} ms) by >= 1.2x at {EXEC_WORKERS} "
        f"workers on {_usable_cores()} cores")


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="batch-service executor benchmarks (the "
                    "batched-vs-sequential comparison runs under "
                    "pytest: python -m pytest benchmarks/"
                    "bench_batch_throughput.py)")
    parser.add_argument("--executor", default="compare",
                        choices=list(EXECUTOR_KINDS) + ["compare"],
                        help="run one executor (smoke), or 'compare' "
                             "(default) for the serial/thread/process "
                             "table")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--vertices", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--quick", action="store_true",
                        help=f"CI-smoke workload defaults "
                             f"({QUICK_QUERIES} queries, "
                             f"|V|={QUICK_VERTICES}, "
                             f"{QUICK_WORKERS} workers)")
    parser.add_argument("--data-plane", default="shm",
                        choices=["shm", "pickle"],
                        help="process-executor data plane (shared "
                             "memory handles vs legacy full pickling)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write BENCH_batch_throughput.json here "
                             "(a directory, or an exact .json path)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="with 'compare': exit nonzero unless "
                             "process beats thread by this factor")
    parser.add_argument("--assert-shm-ratio", type=float, default=None,
                        metavar="R",
                        help="measure warm per-batch shipped bytes "
                             "under both planes and exit nonzero "
                             "unless shm < R x pickle")
    parser.add_argument("--assert-trace-overhead", type=float,
                        default=None, const=1.05, nargs="?",
                        metavar="R",
                        help="interleave untraced (null-tracer) and "
                             "traced batches and exit nonzero unless "
                             "traced/untraced median wall-clock < R "
                             "(default 1.05 = <5%% overhead)")
    cli_args = parser.parse_args()

    defaults = ((QUICK_QUERIES, QUICK_VERTICES, QUICK_WORKERS)
                if cli_args.quick
                else (EXEC_QUERIES, EXEC_VERTICES, EXEC_WORKERS))
    num_queries = (cli_args.queries if cli_args.queries is not None
                   else defaults[0])
    num_vertices = (cli_args.vertices if cli_args.vertices is not None
                    else defaults[1])
    num_workers = (cli_args.workers if cli_args.workers is not None
                   else defaults[2])

    kinds = (EXECUTOR_KINDS if cli_args.executor == "compare"
             else tuple(dict.fromkeys(("serial", cli_args.executor))))
    outcomes, report_table = run_executor_comparison(
        num_queries=num_queries, vertices=num_vertices,
        workers=num_workers, executors=kinds,
        data_plane=cli_args.data_plane)
    print(report_table)
    serial = outcomes["serial"]
    for kind, out in outcomes.items():
        assert out["match_sets"] == serial["match_sets"], (
            f"{kind} executor changed the match sets")
        assert out["total_tx"] == serial["total_tx"], (
            f"{kind} executor changed transaction totals")
    print("OK: match sets and transaction totals identical across "
          f"executors: {', '.join(outcomes)}")

    payload = {
        "bench": "batch_throughput",
        "params": {"queries": num_queries,
                   "vertices": num_vertices,
                   "workers": num_workers,
                   "quick": cli_args.quick,
                   "data_plane": cli_args.data_plane,
                   "usable_cores": _usable_cores()},
        "executors": {
            kind: {"wall_ms": out["wall_ms"],
                   "total_tx": out["total_tx"],
                   "matches": out["report"].total_matches,
                   "shipment": out["shipment"]}
            for kind, out in outcomes.items()
        },
    }
    failed = False
    if cli_args.assert_trace_overhead is not None:
        overhead = run_trace_overhead(num_queries=num_queries,
                                      vertices=num_vertices)
        payload["trace_overhead"] = overhead
        print(f"trace overhead: untraced {overhead['untraced_ms']:.1f} "
              f"ms vs traced {overhead['traced_ms']:.1f} ms per batch "
              f"({overhead['spans_per_batch']} spans) -> "
              f"{overhead['overhead']:.4f}x (required "
              f"< {cli_args.assert_trace_overhead:.4f}x)")
        if overhead["overhead"] >= cli_args.assert_trace_overhead:
            print("FAIL: tracing instrumentation costs too much "
                  "wall-clock")
            failed = True
    if cli_args.assert_shm_ratio is not None:
        shipped = measure_shipped_bytes(vertices=num_vertices,
                                        workers=num_workers)
        payload["shipped_bytes"] = shipped
        print(f"warm per-batch context: "
              f"shm {shipped['planes']['shm']['context_bytes']} B vs "
              f"pickle {shipped['planes']['pickle']['context_bytes']} B "
              f"(ratio {shipped['shm_over_pickle']:.4f}, required "
              f"< {cli_args.assert_shm_ratio:.4f})")
        if shipped["shm_over_pickle"] >= cli_args.assert_shm_ratio:
            print("FAIL: shm plane shipped too many bytes per batch")
            failed = True
    if cli_args.min_speedup is not None and "process" in outcomes \
            and "thread" in outcomes:
        ratio = (outcomes["thread"]["wall_ms"]
                 / outcomes["process"]["wall_ms"])
        payload["process_vs_thread_speedup"] = ratio
        print(f"process-vs-thread speedup: {ratio:.2f}x "
              f"(required {cli_args.min_speedup:.2f}x)")
        if ratio < cli_args.min_speedup:
            failed = True
    if cli_args.json is not None:
        written = write_bench_json("batch_throughput", payload,
                                   cli_args.json)
        print(f"wrote {written}")
    if failed:
        sys.exit(1)
