"""Batch service throughput: batched vs. sequential query serving.

Not a paper table — this measures the repo's scaling subsystem.  The
"sequential" arm serves each query the way the seed examples did: a
fresh :class:`GSIEngine` per request, paying signature-table and storage
construction every time.  The "batched" arm serves the same queries from
one :class:`BatchEngine` (artifacts built once, worker pool, plan
cache).  Simulated per-query measurements are identical in both arms by
construction; the win is host wall-clock.
"""

from __future__ import annotations

import time

import pytest

from bench_common import record_report
from repro.bench.reporting import render_table
from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.service import BatchEngine

NUM_DISTINCT = 32
NUM_SHAPES_REPEATED = 8
REPEAT_FACTOR = 4


@pytest.fixture(scope="module")
def throughput():
    graph = scale_free_graph(400, 4, 6, 6, seed=9)
    config = GSIConfig.gsi_opt()
    distinct = [random_walk_query(graph, 4 + (s % 3), seed=s)
                for s in range(NUM_DISTINCT)]

    # --- sequential: one cold engine per request (seed serving style) ---
    t0 = time.perf_counter()
    sequential = [GSIEngine(graph, config).match(q) for q in distinct]
    sequential_ms = (time.perf_counter() - t0) * 1000.0

    # --- sequential over a shared warm engine (informational) ---
    warm_engine = GSIEngine(graph, config)
    t0 = time.perf_counter()
    warm = [warm_engine.match(q) for q in distinct]
    warm_ms = (time.perf_counter() - t0) * 1000.0

    # --- batched: shared artifacts + worker pool + plan cache ---
    service = BatchEngine(graph, config, max_workers=4)
    t0 = time.perf_counter()
    report = service.run_batch(distinct)
    batched_ms = (time.perf_counter() - t0) * 1000.0

    # --- repeated-query batch: 8 shapes x 4 users through a fresh
    #     service, exercising the plan cache within one batch ---
    shapes = [random_walk_query(graph, 4 + (s % 3), seed=100 + s)
              for s in range(NUM_SHAPES_REPEATED)]
    repeated_service = BatchEngine(graph, config, max_workers=4)
    repeated_report = repeated_service.run_batch(shapes * REPEAT_FACTOR)

    rows = [
        ["sequential (cold engine/query)", f"{sequential_ms:.0f}",
         f"{NUM_DISTINCT / (sequential_ms / 1000):.1f}", "1.0x"],
        ["sequential (warm shared engine)", f"{warm_ms:.0f}",
         f"{NUM_DISTINCT / (warm_ms / 1000):.1f}",
         f"{sequential_ms / warm_ms:.1f}x"],
        ["batch service (4 workers)", f"{batched_ms:.0f}",
         f"{NUM_DISTINCT / (batched_ms / 1000):.1f}",
         f"{sequential_ms / batched_ms:.1f}x"],
    ]
    table = render_table(
        f"batch service throughput ({NUM_DISTINCT} distinct queries)",
        ["serving mode", "wall ms", "q/s", "speedup"],
        rows,
        note=f"repeated batch ({NUM_SHAPES_REPEATED} shapes x "
             f"{REPEAT_FACTOR}): {repeated_report.summary_line()}")
    record_report("batch_throughput", table)
    return {
        "sequential": sequential, "sequential_ms": sequential_ms,
        "warm": warm, "warm_ms": warm_ms,
        "report": report, "batched_ms": batched_ms,
        "repeated_report": repeated_report,
    }


def test_batched_beats_sequential_wall_clock(throughput):
    assert throughput["batched_ms"] < throughput["sequential_ms"], (
        "the batch service must complete the batch faster than "
        "one-engine-per-query sequential serving")


def test_batching_does_not_change_answers(throughput):
    for seq, batched in zip(throughput["sequential"],
                            throughput["report"].results):
        assert seq.match_set() == batched.match_set()
        assert seq.elapsed_ms == batched.elapsed_ms


def test_repeated_batch_reports_cache_hits(throughput):
    report = throughput["repeated_report"]
    assert report.cache.hit_rate > 0.0
    assert report.cache.hits >= (REPEAT_FACTOR - 1) * 1
    assert report.plan_cache_hits == report.cache.hits


def test_distinct_batch_reports_percentiles(throughput):
    report = throughput["report"]
    assert report.num_queries == NUM_DISTINCT
    assert 0.0 < report.p50_ms <= report.p99_ms
    assert report.throughput_qps > 0.0
