"""Table V: tuning the signature length N on gowalla.

The paper sweeps N in {64, 128, ..., 512} and reports the minimum
candidate-set size: pruning strengthens with N and flattens near 512.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import render_table
from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine

from bench_common import record_report

N_VALUES = [64, 128, 192, 256, 320, 384, 448, 512]


@pytest.fixture(scope="module")
def table5(gowalla_workload):
    graph = gowalla_workload.graph
    sizes = {}
    for bits in N_VALUES:
        engine = GSIEngine(graph, GSIConfig(signature_bits=bits))
        total = 0.0
        for q in gowalla_workload.queries:
            total += engine.filter_only(q).min_candidate_size
        sizes[bits] = total / len(gowalla_workload.queries)
    report = render_table(
        "Table V analog: tuning of N (gowalla)",
        ["N"] + [str(n) for n in N_VALUES],
        [["min |C(u)|"] + [f"{sizes[n]:.0f}" for n in N_VALUES]],
        note="paper row (at full scale): 394 271 154 137 112 101 92 90")
    record_report("table5_tune_n", report)
    return sizes


def test_pruning_monotone_in_n(table5):
    # Monotone up to hash noise: at reduced scale candidate sets are
    # tiny (single digits), so individual steps may jitter by a couple
    # of vertices; the trend must hold and nothing may exceed N=64.
    seq = [table5[n] for n in N_VALUES]
    assert seq[-1] <= seq[0]
    assert all(v <= seq[0] + 1e-9 for v in seq)
    for a, b in zip(seq, seq[1:]):
        assert b <= a + 2.0


def test_diminishing_returns_near_512(table5):
    """The paper picks 512 because the tail improvement is subtle."""
    early_gain = table5[64] - table5[256]
    late_gain = table5[448] - table5[512]
    assert late_gain <= early_gain + 1e-9


@pytest.mark.parametrize("bits", [64, 512])
def test_bench_filter_at_n(benchmark, gowalla_workload, bits, table5):
    engine = GSIEngine(gowalla_workload.graph,
                       GSIConfig(signature_bits=bits))
    q = gowalla_workload.queries[0]
    benchmark.pedantic(lambda: engine.filter_only(q), rounds=3,
                       iterations=1)
