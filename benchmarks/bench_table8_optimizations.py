"""Table VIII: the Section VI optimizations — +LB then +DR.

Expected shape: small datasets show ~1.0x (little imbalance, few
duplicates); the skewed RDF-like datasets show the real gains, LB being
the bigger lever.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import render_table, speedup
from repro.bench.runner import gsi_factory, run_workload
from repro.core.config import GSIConfig

from bench_common import record_report

STAGES = [("GSI", GSIConfig.gsi()),
          ("+LB", GSIConfig.with_lb()),
          ("+DR", GSIConfig.gsi_opt())]


@pytest.fixture(scope="module")
def table8(workloads):
    out = {}
    for name, wl in workloads.items():
        out[name] = [(label, run_workload(gsi_factory(cfg), wl))
                     for label, cfg in STAGES]
    rows = []
    for name, stages in out.items():
        base, lb, dr = (s for _, s in stages)
        rows.append([
            name, f"{base.avg_ms:.2f}",
            f"{lb.avg_ms:.2f}", speedup(base.avg_ms, lb.avg_ms),
            f"{dr.avg_ms:.2f}", speedup(lb.avg_ms, dr.avg_ms),
        ])
    report = render_table(
        "Table VIII analog: optimizations (LB then DR)",
        ["dataset", "ms GSI", "ms +LB", "speedup", "ms +DR", "speedup"],
        rows,
        note="paper: ~1.0x on the small datasets, up to 3.4x (+LB) and "
             "1.3x (+DR) on WatDiv/DBpedia")
    record_report("table8_optimizations", report)
    return out


def test_matches_invariant(table8):
    for name, stages in table8.items():
        assert len({s.total_matches for _, s in stages}) == 1, name


def test_lb_not_harmful(table8):
    for name, stages in table8.items():
        base, lb = stages[0][1], stages[1][1]
        assert lb.avg_ms <= base.avg_ms * 1.1, name


def test_dr_reduces_gld(table8):
    for name, stages in table8.items():
        lb, dr = stages[1][1], stages[2][1]
        assert dr.avg_join_gld <= lb.avg_join_gld * 1.01, name


@pytest.mark.parametrize("label,cfg", STAGES, ids=[s[0] for s in STAGES])
def test_bench_optimizations(benchmark, watdiv_workload, label, cfg,
                             table8):
    engine = gsi_factory(cfg)(watdiv_workload.graph)
    q = watdiv_workload.queries[0]
    benchmark.pedantic(lambda: engine.match(q), rounds=2, iterations=1)
