"""Figure 15: vary |E(Q)| at fixed |V(Q)|=12, then vary |V(Q)| at
|E(Q)| ~ 2|V(Q)|.

Expected shape: extra edges cost little (and eventually *help* by
pruning); extra vertices cost more (one join iteration each) with the
rise slowing for large queries (fewer matches per iteration).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import render_series
from repro.bench.runner import gsi_factory, run_workload
from repro.bench.workloads import Workload
from repro.core.config import GSIConfig
from repro.graph.datasets import gowalla_like

from bench_common import NUM_QUERIES, record_report

EDGE_EXTRAS = [0, 2, 4, 6, 8]          # |E(Q)| = 11 + extra
VERTEX_COUNTS = [8, 9, 10, 11, 12, 13, 14, 15]


@pytest.fixture(scope="module")
def graph():
    return gowalla_like()


@pytest.fixture(scope="module")
def fig15_edges(graph):
    times = []
    for extra in EDGE_EXTRAS:
        wl = Workload.for_graph("gowalla", graph,
                                num_queries=NUM_QUERIES,
                                query_vertices=12, extra_edges=extra)
        times.append(run_workload(gsi_factory(GSIConfig.gsi_opt()),
                                  wl).avg_ms)
    report = render_series(
        "Figure 15a analog: vary |E(Q)| at |V(Q)|=12",
        "extra edges", EDGE_EXTRAS, {"GSI-opt": times},
        y_label="avg query ms; paper: slow rise, small drop once edges "
                "add pruning power")
    record_report("fig15_edges", report)
    return times


@pytest.fixture(scope="module")
def fig15_vertices(graph):
    times = []
    for nv in VERTEX_COUNTS:
        wl = Workload.for_graph("gowalla", graph,
                                num_queries=NUM_QUERIES,
                                query_vertices=nv, extra_edges=nv // 2)
        times.append(run_workload(gsi_factory(GSIConfig.gsi_opt()),
                                  wl).avg_ms)
    report = render_series(
        "Figure 15b analog: vary |V(Q)|",
        "|V(Q)|", VERTEX_COUNTS, {"GSI-opt": times},
        y_label="avg query ms; paper: observable rise, slowing after "
                "|V(Q)| >= 13")
    record_report("fig15_vertices", report)
    return times


def test_extra_edges_cost_little(fig15_edges):
    """Processing extra edges is 'marginally not expensive'."""
    assert max(fig15_edges) <= 3.0 * min(fig15_edges)


def test_vertex_growth_observable(fig15_vertices):
    """More query vertices => more join iterations => more time."""
    assert fig15_vertices[-1] >= fig15_vertices[0] * 0.8


def test_bench_small_query(benchmark, graph, fig15_vertices,
                           fig15_edges):
    wl = Workload.for_graph("g", graph, num_queries=1, query_vertices=8)
    engine = gsi_factory(GSIConfig.gsi_opt())(graph)
    benchmark.pedantic(lambda: engine.match(wl.queries[0]), rounds=2,
                       iterations=1)


def test_bench_large_query(benchmark, graph, fig15_vertices):
    wl = Workload.for_graph("g", graph, num_queries=1, query_vertices=15)
    engine = gsi_factory(GSIConfig.gsi_opt())(graph)
    benchmark.pedantic(lambda: engine.match(wl.queries[0]), rounds=2,
                       iterations=1)
