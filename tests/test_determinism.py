"""Determinism: everything in the cost path must be bit-for-bit
repeatable — the substitution's whole value is deterministic measurement."""

import pytest

from repro import GSIConfig, GSIEngine, random_walk_query
from repro.baselines import CFLMatchEngine, GpSMEngine, VF2Engine
from repro.bench.runner import gsi_factory, run_workload
from repro.bench.workloads import Workload
from repro.graph.datasets import load, watdiv_series
from repro.graph.generators import scale_free_graph


class TestEngineDeterminism:
    def test_gsi_identical_runs(self, medium_graph):
        q = random_walk_query(medium_graph, 6, seed=4)
        rs = [GSIEngine(medium_graph, GSIConfig.gsi_opt()).match(q)
              for _ in range(2)]
        assert rs[0].matches == rs[1].matches
        assert rs[0].elapsed_ms == rs[1].elapsed_ms
        assert rs[0].counters.gld == rs[1].counters.gld
        assert rs[0].counters.gst == rs[1].counters.gst
        assert rs[0].counters.kernel_launches \
            == rs[1].counters.kernel_launches
        assert rs[0].join_order == rs[1].join_order

    @pytest.mark.parametrize("engine_cls", [VF2Engine, CFLMatchEngine,
                                            GpSMEngine])
    def test_baselines_identical_runs(self, medium_graph, engine_cls):
        q = random_walk_query(medium_graph, 5, seed=4)
        r1 = engine_cls(medium_graph).match(q)
        r2 = engine_cls(medium_graph).match(q)
        assert r1.matches == r2.matches
        assert r1.elapsed_ms == r2.elapsed_ms

    def test_match_order_is_stable(self, medium_graph):
        """Not just the set — the emitted order must be reproducible."""
        q = random_walk_query(medium_graph, 5, seed=9)
        engine = GSIEngine(medium_graph)
        assert engine.match(q).matches == engine.match(q).matches


class TestWorkloadDeterminism:
    def test_workload_summaries_repeat(self):
        wl = Workload.for_dataset("enron", num_queries=2,
                                  query_vertices=5)
        s1 = run_workload(gsi_factory(GSIConfig.gsi()), wl)
        s2 = run_workload(gsi_factory(GSIConfig.gsi()), wl)
        assert s1.avg_ms == s2.avg_ms
        assert s1.avg_join_gld == s2.avg_join_gld
        assert s1.total_matches == s2.total_matches

    def test_datasets_stable_across_loads(self):
        for name in ("enron", "road"):
            a, b = load(name), load(name)
            assert list(a.vertex_labels) == list(b.vertex_labels)
            assert set(a.edges()) == set(b.edges())

    def test_watdiv_series_stable(self):
        s1 = watdiv_series(steps=2, base_vertices=100)
        s2 = watdiv_series(steps=2, base_vertices=100)
        for g1, g2 in zip(s1, s2):
            assert set(g1.edges()) == set(g2.edges())


class TestSeedSensitivity:
    def test_different_seeds_different_graphs(self):
        a = scale_free_graph(100, 3, 4, 4, seed=0)
        b = scale_free_graph(100, 3, 4, 4, seed=1)
        assert set(a.edges()) != set(b.edges())

    def test_query_seed_changes_query(self, medium_graph):
        q1 = random_walk_query(medium_graph, 6, seed=1)
        q2 = random_walk_query(medium_graph, 6, seed=2)
        assert (list(q1.vertex_labels) != list(q2.vertex_labels)
                or set(q1.edges()) != set(q2.edges()))
