"""Tests for MatchResult and PhaseBreakdown."""

from repro.core.result import MatchResult, PhaseBreakdown
from repro.gpusim.meter import MeterSnapshot


class TestMatchResult:
    def test_defaults(self):
        r = MatchResult()
        assert r.num_matches == 0
        assert r.min_candidate_size is None
        assert not r.timed_out
        assert r.match_set() == set()

    def test_num_matches(self):
        r = MatchResult(matches=[(1, 2), (3, 4)])
        assert r.num_matches == 2
        assert r.match_set() == {(1, 2), (3, 4)}

    def test_min_candidate_size(self):
        r = MatchResult(candidate_sizes={0: 5, 1: 2, 2: 9})
        assert r.min_candidate_size == 2

    def test_counters_default_snapshot(self):
        assert isinstance(MatchResult().counters, MeterSnapshot)


class TestPhaseBreakdown:
    def test_total(self):
        p = PhaseBreakdown(filter_ms=1.5, join_ms=2.5)
        assert p.total_ms == 4.0

    def test_zero(self):
        assert PhaseBreakdown().total_ms == 0.0
