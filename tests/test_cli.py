"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_defaults(self):
        args = build_parser().parse_args(["match"])
        assert args.dataset == "gowalla"
        assert args.engine == "gsi-opt"
        assert args.queries == 3

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "--engine", "magic"])

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "--dataset", "nope"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("enron", "gowalla", "road", "watdiv", "dbpedia"):
            assert name in out

    def test_match(self, capsys):
        rc = main(["match", "--dataset", "enron", "--engine", "gsi",
                   "--queries", "1", "--query-vertices", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gsi on enron" in out
        assert "avg" in out

    def test_shootout_agreement(self, capsys):
        rc = main(["shootout", "--dataset", "enron", "--queries", "1",
                   "--query-vertices", "4",
                   "--engines", "vf3", "gsi-opt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "same matches" in out

    def test_stream(self, capsys):
        rc = main(["stream", "--dataset", "enron", "--queries", "2",
                   "--query-vertices", "3", "--batches", "2",
                   "--batch-size", "6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 continuous queries" in out
        assert "O(changes) CSR splice" in out
        assert "PCSR health" in out
        assert "rebuild-per-batch" in out

    def test_stream_rejects_non_pcsr_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--engine",
                                       "gsi-baseline"])


class TestShardedCommands:
    def test_batch_sharded(self, capsys):
        rc = main(["batch", "--dataset", "enron", "--queries", "2",
                   "--query-vertices", "4", "--shards", "2",
                   "--executor", "serial"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "replication" in out
        assert "per-shard tx" in out

    def test_batch_sharded_matches_unsharded(self, capsys):
        argv = ["batch", "--dataset", "enron", "--queries", "2",
                "--query-vertices", "4", "--executor", "serial"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--shards", "3",
                            "--partitioner", "label"]) == 0
        sharded = capsys.readouterr().out

        def match_column(out):
            return [line.split("|")[1].strip()
                    for line in out.splitlines()
                    if line.strip() and line.split("|")[0].strip()
                    .isdigit()]

        assert match_column(plain) == match_column(sharded)

    def test_shard_info(self, capsys):
        rc = main(["shard-info", "--dataset", "enron", "--shards", "4",
                   "--query-vertices", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shard layout" in out
        assert "replication" in out

    def test_batch_chunking_flag(self, capsys):
        rc = main(["batch", "--dataset", "enron", "--queries", "2",
                   "--query-vertices", "4", "--executor", "serial",
                   "--chunking", "cost"])
        assert rc == 0

    @pytest.mark.parametrize("argv", [
        ["batch", "--dataset", "enron", "--shards", "0"],
        ["batch", "--dataset", "enron", "--shards", "-2"],
        ["batch", "--dataset", "enron", "--workers", "0"],
        ["batch", "--dataset", "enron", "--workers", "-1"],
        ["batch", "--dataset", "enron", "--cache-capacity", "0"],
        ["shard-info", "--dataset", "enron", "--shards", "0"],
        ["stream", "--dataset", "enron", "--workers", "0"],
    ])
    def test_non_positive_arguments_rejected(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "must be >= 1" in err

    def test_bad_partitioner_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--partitioner", "meti"])

    def test_bad_chunking_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--chunking", "rand"])
