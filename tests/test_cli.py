"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_defaults(self):
        args = build_parser().parse_args(["match"])
        assert args.dataset == "gowalla"
        assert args.engine == "gsi-opt"
        assert args.queries == 3

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "--engine", "magic"])

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "--dataset", "nope"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("enron", "gowalla", "road", "watdiv", "dbpedia"):
            assert name in out

    def test_match(self, capsys):
        rc = main(["match", "--dataset", "enron", "--engine", "gsi",
                   "--queries", "1", "--query-vertices", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gsi on enron" in out
        assert "avg" in out

    def test_shootout_agreement(self, capsys):
        rc = main(["shootout", "--dataset", "enron", "--queries", "1",
                   "--query-vertices", "4",
                   "--engines", "vf3", "gsi-opt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "same matches" in out

    def test_stream(self, capsys):
        rc = main(["stream", "--dataset", "enron", "--queries", "2",
                   "--query-vertices", "3", "--batches", "2",
                   "--batch-size", "6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 continuous queries" in out
        assert "O(changes) CSR splice" in out
        assert "PCSR health" in out
        assert "rebuild-per-batch" in out

    def test_stream_rejects_non_pcsr_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--engine",
                                       "gsi-baseline"])
