"""Tests for the filtering phase (candidate generation)."""


from repro.core.filtering import filter_candidates, label_degree_candidates
from repro.core.signature_table import SignatureTable
from repro.gpusim.device import Device
from repro.graph.generators import random_walk_query, scale_free_graph

from oracle import brute_force_matches


def setup(bits=256, seed=3):
    g = scale_free_graph(150, 3, 4, 4, seed=seed)
    q = random_walk_query(g, 4, seed=1)
    table = SignatureTable.build(g, bits)
    return g, q, table


class TestSignatureFilter:
    def test_candidates_contain_all_true_matches(self):
        g, q, table = setup()
        device = Device()
        cands = filter_candidates(q, table, device, 256)
        matches = brute_force_matches(q, g)
        for match in matches:
            for u, v in enumerate(match):
                assert v in set(int(x) for x in cands[u])

    def test_all_query_vertices_covered(self):
        g, q, table = setup()
        cands = filter_candidates(q, table, Device(), 256)
        assert set(cands) == set(range(q.num_vertices))

    def test_meter_and_clock_advance(self):
        g, q, table = setup()
        device = Device()
        filter_candidates(q, table, device, 256)
        assert device.meter.labeled_gld("filter") > 0
        assert device.meter.kernel_launches == q.num_vertices
        assert device.elapsed_ms > 0

    def test_candidate_labels_match(self):
        g, q, table = setup()
        cands = filter_candidates(q, table, Device(), 256)
        for u, arr in cands.items():
            for v in arr:
                assert g.vertex_label(int(v)) == q.vertex_label(u)


class TestLabelDegreeFilter:
    def test_weaker_than_signature_filter(self):
        g, q, table = setup(bits=512)
        sig_cands = filter_candidates(q, table, Device(), 512)
        ld_cands = label_degree_candidates(q, g, Device())
        for u in range(q.num_vertices):
            # label+degree must be a superset of signature candidates
            assert set(int(x) for x in sig_cands[u]) \
                <= set(int(x) for x in ld_cands[u])

    def test_refinement_shrinks_or_equal(self):
        g, q, _ = setup()
        plain = label_degree_candidates(q, g, Device(),
                                        check_neighbor_labels=False)
        refined = label_degree_candidates(q, g, Device(),
                                          check_neighbor_labels=True)
        for u in range(q.num_vertices):
            assert set(int(x) for x in refined[u]) \
                <= set(int(x) for x in plain[u])

    def test_refined_still_sound(self):
        g, q, _ = setup()
        refined = label_degree_candidates(q, g, Device(),
                                          check_neighbor_labels=True)
        for match in brute_force_matches(q, g):
            for u, v in enumerate(match):
                assert v in set(int(x) for x in refined[u])

    def test_degree_pruning_applied(self):
        g, q, _ = setup()
        cands = label_degree_candidates(q, g, Device())
        for u, arr in cands.items():
            for v in arr:
                assert g.degree(int(v)) >= q.degree(u)
