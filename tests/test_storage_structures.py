"""Tests for CSR / Basic / Compressed storage structures (Table II)."""

import math

import numpy as np
import pytest

from repro.errors import StorageError
from repro.gpusim.meter import MemoryMeter
from repro.graph.generators import scale_free_graph
from repro.storage import (
    BasicRepresentation,
    CompressedRepresentation,
    CSRStorage,
    build_storage,
    storage_kinds,
)


@pytest.fixture(scope="module")
def graph():
    return scale_free_graph(200, 3, 5, 6, seed=3)


class TestFactory:
    def test_kinds(self):
        assert storage_kinds() == ["csr", "basic", "compressed", "pcsr"]

    def test_unknown_kind(self, graph):
        with pytest.raises(StorageError):
            build_storage("btree", graph)

    @pytest.mark.parametrize("kind", ["csr", "basic", "compressed", "pcsr"])
    def test_builds(self, graph, kind):
        s = build_storage(kind, graph)
        assert s.kind == {"csr": "csr", "basic": "basic",
                          "compressed": "compressed", "pcsr": "pcsr"}[kind]


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("kind", ["csr", "basic", "compressed", "pcsr"])
    def test_matches_graph_adjacency(self, graph, kind):
        s = build_storage(kind, graph)
        for v in range(0, graph.num_vertices, 13):
            for lab in graph.distinct_edge_labels():
                expect = sorted(int(x)
                                for x in graph.neighbors_by_label(v, lab))
                got = sorted(int(x) for x in s.neighbors(v, lab))
                assert got == expect, (kind, v, lab)

    @pytest.mark.parametrize("kind", ["csr", "basic", "compressed", "pcsr"])
    def test_missing_label_empty(self, graph, kind):
        s = build_storage(kind, graph)
        assert len(s.neighbors(0, 10_000)) == 0


class TestCSR:
    def test_locate_is_one_transaction(self, graph):
        s = CSRStorage(graph)
        assert s.locate_transactions(0, 0) == 1

    def test_read_scans_whole_neighborhood(self, graph):
        s = CSRStorage(graph)
        v = max(range(graph.num_vertices), key=graph.degree)
        expected = 2 * math.ceil(graph.degree(v) / 32)
        assert s.read_transactions(v, 0) == expected

    def test_streamed_is_degree(self, graph):
        s = CSRStorage(graph)
        assert s.streamed_elements(5, 0) == graph.degree(5)

    def test_space_linear_in_edges(self, graph):
        s = CSRStorage(graph)
        assert s.space_words() == (graph.num_vertices + 1
                                   + 4 * graph.num_edges)


class TestBasicRepresentation:
    def test_locate_o1(self, graph):
        s = BasicRepresentation(graph)
        lab = graph.distinct_edge_labels()[0]
        assert s.locate_transactions(0, lab) == 1

    def test_space_includes_per_label_offsets(self, graph):
        s = BasicRepresentation(graph)
        num_labels = len(graph.distinct_edge_labels())
        # offsets alone: (|V|+1) words per label.
        assert s.space_words() >= num_labels * (graph.num_vertices + 1)

    def test_read_is_list_only(self, graph):
        s = BasicRepresentation(graph)
        lab = graph.distinct_edge_labels()[0]
        v = int(graph.num_vertices // 2)
        n = len(graph.neighbors_by_label(v, lab))
        assert s.read_transactions(v, lab) == math.ceil(n / 32)


class TestCompressedRepresentation:
    def test_locate_is_logarithmic(self, graph):
        s = CompressedRepresentation(graph)
        lab = graph.distinct_edge_labels()[0]
        tx = s.locate_transactions(0, lab)
        part_sizes = [len(np.unique(np.concatenate(
            [[u, v] for u, v, l in graph.edges() if l == lab])))]
        expect = math.ceil(math.log2(part_sizes[0] + 1)) + 2
        assert tx == expect

    def test_space_linear(self, graph):
        s = CompressedRepresentation(graph)
        # vertex-id + offsets + ci: all O(|E|)-bounded per label.
        assert s.space_words() < 8 * graph.num_edges + 4 * graph.num_vertices


class TestTable2Ordering:
    """The Table II relationships between the four structures."""

    def test_pcsr_locate_beats_compressed(self, graph):
        pcsr = build_storage("pcsr", graph)
        cr = build_storage("compressed", graph)
        lab = graph.distinct_edge_labels()[0]
        hub = max(range(graph.num_vertices), key=graph.degree)
        assert pcsr.locate_transactions(hub, lab) \
            <= cr.locate_transactions(hub, lab)

    def test_pcsr_read_beats_csr_on_hub(self, graph):
        pcsr = build_storage("pcsr", graph)
        csr = build_storage("csr", graph)
        lab = graph.distinct_edge_labels()[0]
        hub = max(range(graph.num_vertices), key=graph.degree)
        assert pcsr.lookup_transactions(hub, lab) \
            <= csr.lookup_transactions(hub, lab)

    def test_basic_space_blows_up_with_many_labels(self):
        # BR's O(|E| + |LE| x |V|) term is what makes it unscalable on
        # label-rich graphs like DBpedia (Section IV).
        rich = scale_free_graph(300, 3, 5, 80, seed=9)
        br = build_storage("basic", rich)
        cr = build_storage("compressed", rich)
        csr = build_storage("csr", rich)
        assert br.space_words() > 3 * cr.space_words()
        assert br.space_words() > 3 * csr.space_words()


class TestMeteredLookup:
    def test_lookup_records_to_meter(self, graph):
        s = build_storage("pcsr", graph)
        meter = MemoryMeter()
        lab = graph.distinct_edge_labels()[0]
        s.lookup(0, lab, meter)
        assert meter.gld == s.lookup_transactions(0, lab)
        assert meter.labeled_gld("storage_locate") >= 1

    def test_lookup_without_meter(self, graph):
        s = build_storage("csr", graph)
        arr = s.lookup(0, 0)
        assert isinstance(arr, np.ndarray)
