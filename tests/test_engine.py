"""Tests for the GSIEngine facade."""

import pytest

from repro import GSIConfig, GSIEngine, random_walk_query
from repro.errors import GraphError
from repro.graph.labeled_graph import LabeledGraph

from oracle import brute_force_matches, paper_query, tiny_paper_graph


class TestMatch:
    def test_agrees_with_brute_force(self, small_graph, small_queries):
        engine = GSIEngine(small_graph)
        for q in small_queries:
            assert engine.match(q).match_set() \
                == brute_force_matches(q, small_graph)

    def test_paper_figure1_example(self):
        g = tiny_paper_graph()
        q = paper_query()
        result = GSIEngine(g).match(q)
        assert result.match_set() == brute_force_matches(q, g)
        assert result.num_matches >= 1

    def test_match_tuple_indexed_by_query_vertex(self, small_graph):
        q = random_walk_query(small_graph, 4, seed=1)
        result = GSIEngine(small_graph).match(q)
        for m in result.matches:
            for u, v in enumerate(m):
                assert small_graph.vertex_label(v) == q.vertex_label(u)

    def test_no_match_when_label_absent(self, small_graph):
        q = LabeledGraph([999], [])
        result = GSIEngine(small_graph).match(q)
        assert result.num_matches == 0
        assert not result.timed_out
        assert result.elapsed_ms > 0

    def test_single_vertex_query(self, small_graph):
        lab = small_graph.vertex_label(0)
        q = LabeledGraph([lab], [])
        result = GSIEngine(small_graph).match(q)
        expect = sum(1 for v in range(small_graph.num_vertices)
                     if small_graph.vertex_label(v) == lab)
        assert result.num_matches == expect

    def test_empty_query_rejected(self, small_graph):
        with pytest.raises(GraphError):
            GSIEngine(small_graph).match(LabeledGraph([], []))

    def test_repeated_calls_independent(self, small_graph):
        engine = GSIEngine(small_graph)
        q = random_walk_query(small_graph, 4, seed=2)
        r1 = engine.match(q)
        r2 = engine.match(q)
        assert r1.match_set() == r2.match_set()
        assert r1.elapsed_ms == pytest.approx(r2.elapsed_ms)
        assert r1.counters.gld == r2.counters.gld


class TestResultMetadata:
    def test_phases_sum_to_total(self, small_graph):
        q = random_walk_query(small_graph, 4, seed=3)
        r = GSIEngine(small_graph).match(q)
        assert r.phases.total_ms == pytest.approx(r.elapsed_ms)
        assert r.phases.filter_ms > 0
        assert r.phases.join_ms > 0

    def test_candidate_sizes_recorded(self, small_graph):
        q = random_walk_query(small_graph, 4, seed=3)
        r = GSIEngine(small_graph).match(q)
        assert set(r.candidate_sizes) == set(range(4))
        assert r.min_candidate_size == min(r.candidate_sizes.values())

    def test_join_order_is_permutation(self, small_graph):
        q = random_walk_query(small_graph, 5, seed=1)
        r = GSIEngine(small_graph).match(q)
        assert sorted(r.join_order) == list(range(5))

    def test_engine_name(self, small_graph):
        q = random_walk_query(small_graph, 3, seed=1)
        assert GSIEngine(small_graph).match(q).engine == "GSI"


class TestBudget:
    def test_tiny_budget_times_out(self, small_graph):
        q = random_walk_query(small_graph, 5, seed=1)
        cfg = GSIConfig(budget_ms=0.0001)
        r = GSIEngine(small_graph, cfg).match(q)
        assert r.timed_out
        assert r.matches == []

    def test_row_cap_times_out(self, small_graph):
        q = random_walk_query(small_graph, 5, seed=1)
        from dataclasses import replace
        cfg = replace(GSIConfig(), max_intermediate_rows=1)
        r = GSIEngine(small_graph, cfg).match(q)
        assert r.timed_out


class TestFilterOnly:
    def test_filter_only_result(self, small_graph):
        q = random_walk_query(small_graph, 4, seed=2)
        engine = GSIEngine(small_graph)
        r = engine.filter_only(q)
        assert r.candidate_sizes
        assert r.phases.join_ms == 0
        assert r.elapsed_ms > 0

    def test_candidate_sets_helper(self, small_graph):
        q = random_walk_query(small_graph, 4, seed=2)
        cands = GSIEngine(small_graph).candidate_sets(q)
        assert set(cands) == set(range(4))


class TestConfigurations:
    @pytest.mark.parametrize("preset", ["baseline", "with_ds", "with_pc",
                                        "gsi", "with_lb", "gsi_opt"])
    def test_all_presets_correct(self, small_graph, preset):
        q = random_walk_query(small_graph, 4, seed=4)
        ref = brute_force_matches(q, small_graph)
        cfg = getattr(GSIConfig, preset)()
        assert GSIEngine(small_graph, cfg).match(q).match_set() == ref

    @pytest.mark.parametrize("bits", [64, 256, 512])
    def test_signature_sizes_correct(self, small_graph, bits):
        q = random_walk_query(small_graph, 4, seed=4)
        ref = brute_force_matches(q, small_graph)
        cfg = GSIConfig(signature_bits=bits)
        assert GSIEngine(small_graph, cfg).match(q).match_set() == ref

    def test_row_first_layout_same_results_higher_cost(self, small_graph):
        q = random_walk_query(small_graph, 4, seed=4)
        col = GSIEngine(small_graph,
                        GSIConfig(column_first_signatures=True)).match(q)
        row = GSIEngine(small_graph,
                        GSIConfig(column_first_signatures=False)).match(q)
        assert col.match_set() == row.match_set()
        assert col.counters.labeled_gld["filter"] \
            < row.counters.labeled_gld["filter"]
