"""Tests for GSIConfig validation and presets."""

import pytest

from repro.core.config import GSIConfig
from repro.errors import ConfigError


class TestValidation:
    def test_default_is_valid(self):
        GSIConfig()

    def test_signature_bits_must_be_multiple_of_32(self):
        with pytest.raises(ConfigError):
            GSIConfig(signature_bits=100)

    def test_signature_bits_upper_bound(self):
        with pytest.raises(ConfigError):
            GSIConfig(signature_bits=1024)

    def test_signature_bits_lower_bound(self):
        with pytest.raises(ConfigError):
            GSIConfig(signature_bits=32)

    def test_label_bits_fixed(self):
        with pytest.raises(ConfigError):
            GSIConfig(label_bits=64)

    def test_gpn_bounds(self):
        with pytest.raises(ConfigError):
            GSIConfig(gpn=1)
        with pytest.raises(ConfigError):
            GSIConfig(gpn=17)
        GSIConfig(gpn=2)

    def test_lb_threshold_ordering(self):
        with pytest.raises(ConfigError):
            GSIConfig(use_load_balance=True, w1=100, w3=256)
        GSIConfig(use_load_balance=True, w1=4096, w3=256)

    def test_lb_thresholds_ignored_when_disabled(self):
        GSIConfig(use_load_balance=False, w1=100, w3=256)

    @pytest.mark.parametrize("bits", [64, 128, 192, 256, 320, 384, 448, 512])
    def test_table5_sweep_values_all_valid(self, bits):
        GSIConfig(signature_bits=bits)


class TestPresets:
    def test_baseline_has_nothing(self):
        c = GSIConfig.baseline()
        assert not c.use_pcsr
        assert not c.use_prealloc_combine
        assert not c.use_gpu_set_ops
        assert not c.use_write_cache
        assert c.storage_kind == "csr"

    def test_ds_adds_pcsr(self):
        c = GSIConfig.with_ds()
        assert c.use_pcsr and not c.use_prealloc_combine
        assert c.storage_kind == "pcsr"

    def test_pc_adds_prealloc(self):
        c = GSIConfig.with_pc()
        assert c.use_pcsr and c.use_prealloc_combine
        assert not c.use_gpu_set_ops

    def test_so_is_full_gsi(self):
        c = GSIConfig.with_so()
        assert c.use_gpu_set_ops and c.use_write_cache
        assert not c.use_load_balance

    def test_gsi_equals_with_so(self):
        assert GSIConfig.gsi() == GSIConfig.with_so()

    def test_opt_has_everything(self):
        c = GSIConfig.gsi_opt()
        assert c.use_load_balance and c.use_duplicate_removal

    def test_lb_config_roundtrip(self):
        c = GSIConfig(use_load_balance=True, w1=8192, w3=192)
        lb = c.load_balance_config()
        assert lb.w1 == 8192 and lb.w3 == 192

    def test_lb_config_none_when_disabled(self):
        assert GSIConfig().load_balance_config() is None
