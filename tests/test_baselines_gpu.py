"""Tests for the GPU baseline engines (GpSM / GunrockSM)."""

import pytest

from repro.baselines import GpSMEngine, GunrockSMEngine
from repro.graph.generators import random_walk_query
from repro.graph.labeled_graph import LabeledGraph

from oracle import brute_force_matches


@pytest.mark.parametrize("engine_cls", [GpSMEngine, GunrockSMEngine])
class TestCorrectness:
    def test_agrees_with_brute_force(self, engine_cls, small_graph,
                                     small_queries):
        engine = engine_cls(small_graph)
        for q in small_queries:
            r = engine.match(q)
            assert not r.timed_out
            assert r.match_set() == brute_force_matches(q, small_graph)

    def test_match_columns_ordered_by_query_vertex(self, engine_cls,
                                                   small_graph):
        q = random_walk_query(small_graph, 4, seed=1)
        r = engine_cls(small_graph).match(q)
        for m in r.matches:
            for u, v in enumerate(m):
                assert small_graph.vertex_label(v) == q.vertex_label(u)

    def test_budget_timeout(self, engine_cls, small_graph):
        q = random_walk_query(small_graph, 5, seed=0)
        r = engine_cls(small_graph, budget_ms=1e-9).match(q)
        assert r.timed_out

    def test_row_cap(self, engine_cls, small_graph):
        q = random_walk_query(small_graph, 5, seed=0)
        r = engine_cls(small_graph, max_intermediate_rows=1).match(q)
        assert r.timed_out or r.num_matches <= 1

    def test_no_candidates_early_exit(self, engine_cls, small_graph):
        q = LabeledGraph([991, 992], [(0, 1, 0)])
        r = engine_cls(small_graph).match(q)
        assert r.num_matches == 0
        assert not r.timed_out


class TestTwoStepCost:
    def test_counters_populated(self, small_graph):
        q = random_walk_query(small_graph, 4, seed=2)
        r = GpSMEngine(small_graph).match(q)
        assert r.counters.gld > 0
        assert r.counters.kernel_launches > 0
        assert r.elapsed_ms > 0

    def test_phases_recorded(self, small_graph):
        q = random_walk_query(small_graph, 4, seed=2)
        r = GpSMEngine(small_graph).match(q)
        assert r.phases.filter_ms > 0
        assert r.phases.total_ms == pytest.approx(r.elapsed_ms)

    def test_gpsm_filter_tighter_than_gunrock(self, medium_graph):
        """GpSM's refinement yields candidate sets no larger than
        GunrockSM's label+degree filter (Table IV relationship)."""
        for seed in range(3):
            q = random_walk_query(medium_graph, 5, seed=seed)
            rp = GpSMEngine(medium_graph).match(q)
            rg = GunrockSMEngine(medium_graph).match(q)
            assert rp.min_candidate_size <= rg.min_candidate_size

    def test_engine_names(self, small_graph):
        q = random_walk_query(small_graph, 3, seed=1)
        assert GpSMEngine(small_graph).match(q).engine == "GpSM"
        assert GunrockSMEngine(small_graph).match(q).engine == "GunrockSM"
