"""Tests for the sharded graph subsystem (partition + halo + gather).

The load-bearing assertions are differential: across shard counts
{1, 2, 4, 8} and both partitioners, the scatter-gather match set must be
*identical* to the single-engine path and to the brute-force oracle —
that is the halo-containment / anchor-ownership correctness argument
made executable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import GSIEngine
from repro.errors import GraphError
from repro.gpusim.meter import MeterSnapshot, merge_shard_snapshots
from repro.graph.generators import (
    mesh_graph,
    random_walk_query,
    scale_free_graph,
)
from repro.graph.labeled_graph import GraphBuilder, path_query
from repro.service import BatchEngine, make_executor
from repro.shard import (
    HashPartitioner,
    LabelAwarePartitioner,
    Partitioner,
    ShardedEngine,
    ShardedGraph,
    halo_hops_for_query_vertices,
    make_partitioner,
    query_center,
)

from oracle import brute_force_matches, paper_query, tiny_paper_graph

SHARD_COUNTS = (1, 2, 4, 8)
PARTITIONERS = ("hash", "label")


@pytest.fixture(scope="module")
def data_graph():
    return scale_free_graph(60, 3, 4, 4, seed=7)


@pytest.fixture(scope="module")
def queries(data_graph):
    return [random_walk_query(data_graph, k, seed=s)
            for s, k in enumerate([3, 4, 5, 4, 3])]


@pytest.fixture(scope="module")
def oracle_sets(data_graph, queries):
    return [brute_force_matches(q, data_graph) for q in queries]


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------


class TestPartitioners:
    @pytest.mark.parametrize("kind", PARTITIONERS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_total_assignment(self, data_graph, kind, shards):
        owner = make_partitioner(kind).assign(data_graph, shards)
        assert owner.shape == (data_graph.num_vertices,)
        assert owner.min() >= 0 and owner.max() < shards

    @pytest.mark.parametrize("kind", PARTITIONERS)
    def test_deterministic(self, data_graph, kind):
        a = make_partitioner(kind).assign(data_graph, 4)
        b = make_partitioner(kind).assign(data_graph, 4)
        assert np.array_equal(a, b)

    def test_hash_balanced(self, data_graph):
        owner = HashPartitioner().assign(data_graph, 4)
        counts = np.bincount(owner, minlength=4)
        # Block-dealing guarantees near-equal counts (one block each
        # here, so within one block length of each other).
        assert counts.max() - counts.min() <= np.ceil(
            data_graph.num_vertices / 4)

    def test_label_partitioner_balances_label_incidence(self):
        # 40 vertices in a cycle, every edge labeled 0: the dominant
        # label group is everyone, and its incidence must spread.
        b = GraphBuilder()
        ids = b.add_vertices([0] * 40)
        for i in range(40):
            b.add_edge(ids[i], ids[(i + 1) % 40], 0)
        g = b.build()
        owner = LabelAwarePartitioner().assign(g, 4)
        counts = np.bincount(owner, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("metis")

    def test_non_positive_shards_rejected(self, data_graph):
        for kind in PARTITIONERS:
            with pytest.raises(ValueError, match="num_shards"):
                make_partitioner(kind).assign(data_graph, 0)

    def test_bad_blocks_per_shard_rejected(self):
        with pytest.raises(ValueError, match="blocks_per_shard"):
            HashPartitioner(blocks_per_shard=0)


# ----------------------------------------------------------------------
# ShardedGraph: halo construction + validation
# ----------------------------------------------------------------------


class TestShardedGraph:
    @pytest.mark.parametrize("kind", PARTITIONERS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_structurally_valid(self, data_graph, kind, shards):
        sg = ShardedGraph(data_graph, shards, partitioner=kind,
                          halo_hops=2)
        assert sg.validate() == {}

    def test_ownership_partitions_vertices(self, data_graph):
        sg = ShardedGraph(data_graph, 4, halo_hops=1)
        owned = np.concatenate([
            s.local_to_global[s.owned_mask] for s in sg.shards])
        assert sorted(owned.tolist()) == list(
            range(data_graph.num_vertices))

    def test_halo_contains_h_hop_ball(self, data_graph):
        h = 2
        sg = ShardedGraph(data_graph, 4, halo_hops=h)
        for shard in sg.shards:
            members = set(int(v) for v in shard.local_to_global)
            frontier = set(
                int(v) for v in shard.local_to_global[shard.owned_mask])
            ball = set(frontier)
            for _ in range(h):
                nxt = set()
                for v in frontier:
                    nxt.update(int(w) for w in data_graph.neighbors(v))
                frontier = nxt - ball
                ball |= nxt
            assert ball <= members

    def test_shard_subgraph_is_induced(self, data_graph):
        sg = ShardedGraph(data_graph, 4, halo_hops=1)
        for shard in sg.shards:
            l2g = shard.local_to_global
            members = set(int(v) for v in l2g)
            # Every G-edge between two members appears in the shard.
            expect = sum(
                1 for u, v, _lab in data_graph.edges()
                if u in members and v in members)
            assert shard.graph.num_edges == expect

    def test_one_shard_is_whole_graph(self, data_graph):
        sg = ShardedGraph(data_graph, 1, halo_hops=3)
        shard = sg.shards[0]
        assert shard.num_owned == data_graph.num_vertices
        assert shard.num_halo == 0
        assert shard.graph.num_edges == data_graph.num_edges
        assert sg.info().vertex_replication == pytest.approx(1.0)

    def test_more_shards_than_vertices(self):
        g = path_query([0, 1, 0])
        sg = ShardedGraph(g, 8, halo_hops=1)
        assert sg.validate() == {}
        # Every vertex still owned exactly once; extra shards are empty.
        assert sum(s.num_owned for s in sg.shards) == 3

    def test_invalid_arguments(self, data_graph):
        with pytest.raises(ValueError, match="num_shards"):
            ShardedGraph(data_graph, 0)
        with pytest.raises(ValueError, match="halo_hops"):
            ShardedGraph(data_graph, 2, halo_hops=-1)
        with pytest.raises(ValueError, match="unknown partitioner"):
            ShardedGraph(data_graph, 2, partitioner="metis")

    def test_halo_bound_helper(self):
        assert halo_hops_for_query_vertices(1) == 1
        assert halo_hops_for_query_vertices(2) == 1
        assert halo_hops_for_query_vertices(12) == 6
        with pytest.raises(ValueError):
            halo_hops_for_query_vertices(0)


# ----------------------------------------------------------------------
# Query center / radius
# ----------------------------------------------------------------------


class TestQueryCenter:
    def test_path_center(self):
        anchor, radius = query_center(path_query([0, 1, 2, 3, 4]))
        assert anchor == 2
        assert radius == 2

    def test_single_vertex(self):
        g = path_query([5])
        assert query_center(g) == (0, 0)

    def test_triangle(self):
        anchor, radius = query_center(paper_query())
        assert anchor == 0
        assert radius == 1

    def test_disconnected_rejected(self):
        b = GraphBuilder()
        b.add_vertices([0, 0, 0, 0])
        b.add_edge(0, 1, 0)
        b.add_edge(2, 3, 0)
        with pytest.raises(GraphError, match="connected"):
            query_center(b.build())


# ----------------------------------------------------------------------
# Differential: sharded vs single engine vs oracle
# ----------------------------------------------------------------------


class TestShardedMatching:
    @pytest.mark.parametrize("kind", PARTITIONERS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_identical_to_oracle_and_single_engine(
            self, data_graph, queries, oracle_sets, kind, shards):
        single = GSIEngine(data_graph)
        sg = ShardedGraph(data_graph, shards, partitioner=kind,
                          halo_hops=3)
        engine = ShardedEngine(sg)
        report = engine.run_batch(queries)
        assert report.errors == 0
        for item, query, want in zip(report.items, queries, oracle_sets):
            merged = item.result
            assert set(merged.matches) == want
            assert len(merged.matches) == len(want)  # no duplicates
            assert merged.match_set() == single.match(query).match_set()

    def test_paper_example(self):
        g = tiny_paper_graph()
        q = paper_query()
        want = brute_force_matches(q, g)
        for shards in (2, 3):
            engine = ShardedEngine(
                ShardedGraph(g, shards, halo_hops=1))
            assert engine.match(q).match_set() == want

    def test_boundary_spanning_matches_dedup(self):
        """Matches crossing shard ownership appear exactly once.

        A 2-coloring partitioner puts adjacent path vertices in
        different shards, so every edge match crosses the boundary;
        the halo replicates it on both sides and ownership dedup must
        keep exactly one copy.
        """

        class AlternatingPartitioner(Partitioner):
            name = "alternate"

            def assign(self, graph, num_shards):
                return (np.arange(graph.num_vertices, dtype=np.int64)
                        % num_shards)

        g = path_query([0, 0, 0, 0, 0, 0], [1, 1, 1, 1, 1])
        q = path_query([0, 0], [1])
        want = brute_force_matches(q, g)
        sg = ShardedGraph(g, 2, partitioner=AlternatingPartitioner(),
                          halo_hops=1)
        engine = ShardedEngine(sg)
        report = engine.run_batch([q])
        item = report.items[0]
        assert set(item.result.matches) == want
        assert len(item.result.matches) == len(want)
        # The halo really did replicate boundary matches: shards found
        # more raw matches than they own.
        raw = sum(s.raw_matches for s in item.per_shard)
        owned = sum(s.owned_matches for s in item.per_shard)
        assert owned == len(want)
        assert raw > owned

    def test_radius_beyond_halo_rejected(self, data_graph):
        engine = ShardedEngine(ShardedGraph(data_graph, 2, halo_hops=1))
        deep = path_query([0, 1, 0, 1, 0, 1, 0])  # radius 3
        with pytest.raises(GraphError, match="halo"):
            engine.prepare(deep)
        # run_batch isolates the failure per item instead of raising.
        report = engine.run_batch([deep])
        assert report.items[0].error is not None
        assert "halo" in report.items[0].error

    def test_executors_identical(self, data_graph, queries):
        """All three executors — including the process pool's pickled
        _ShardContext + lazy per-(epoch, shard) worker bootstrap — must
        produce identical matches and transaction totals."""
        sg = ShardedGraph(data_graph, 4, halo_hops=3)
        reference = None
        for kind in ("serial", "thread", "process"):
            with make_executor(kind, 2) as executor:
                engine = ShardedEngine(sg)
                report = engine.run_batch(queries, executor=executor)
                # Second batch reuses worker-side cached shard engines.
                again = engine.run_batch(queries, executor=executor)
                got = ([sorted(i.result.matches) for i in report.items],
                       report.shard_transactions)
                assert got[0] == [sorted(i.result.matches)
                                  for i in again.items]
                if reference is None:
                    reference = got
                assert got == reference, kind

    def test_shape_cache_effective_per_shard(self, data_graph, queries):
        """Repeated batches must hit the candidate-shape memo: each
        shard owns a private memo bound to its own signature table (a
        single shared memo would rebind and clear on every shard
        switch, degrading every lookup to a miss)."""
        engine = ShardedEngine(ShardedGraph(data_graph, 4, halo_hops=3))
        engine.run_batch(queries)
        repeat = engine.run_batch(queries)
        assert repeat.cache.shape_hits > 0
        assert repeat.cache.shape_misses == 0

    def test_per_shard_work_decreases_on_mesh(self):
        """More shards => smaller shards => less work per shard."""
        g = mesh_graph(20, 20, 5, 4, seed=3)
        queries = [random_walk_query(g, k, seed=s)
                   for s, k in enumerate([3, 4, 5, 4])]
        max_tx = {}
        results = {}
        for shards in (1, 4, 8):
            engine = ShardedEngine(
                ShardedGraph(g, shards, partitioner="hash",
                             halo_hops=2))
            report = engine.run_batch(queries)
            max_tx[shards] = report.max_shard_transactions
            results[shards] = [sorted(i.result.matches)
                               for i in report.items]
        assert results[4] == results[1]
        assert results[8] == results[1]
        assert max_tx[4] < max_tx[1]
        assert max_tx[8] < max_tx[4]

    def test_merged_counters_attribute_per_shard(self, data_graph,
                                                 queries):
        engine = ShardedEngine(ShardedGraph(data_graph, 2, halo_hops=3))
        result = engine.match(queries[0])
        labeled = result.counters.labeled_gld
        assert labeled["shard0"] + labeled["shard1"] == \
            result.counters.gld
        assert result.counters.transactions == \
            result.counters.gld + result.counters.gst

    def test_plan_cached_flag_matches_single_engine_semantics(
            self, data_graph, queries):
        """A query counts as plan-cached only when *no* shard had to
        run the planner — cross-shard plan sharing inside one query
        (shard 0 plans, shards 1+ replay) must not inflate hit flags
        the way it would under an any-shard-hit definition."""
        engine = ShardedEngine(ShardedGraph(data_graph, 2, halo_hops=3))
        first = engine.run_batch(queries)
        again = engine.run_batch(queries)
        assert first.items[0].plan_cached is False
        assert all(item.plan_cached for item in again.items)

    def test_report_shape(self, data_graph, queries):
        engine = ShardedEngine(ShardedGraph(data_graph, 4, halo_hops=3))
        report = engine.run_batch(queries)
        assert report.num_queries == len(queries)
        assert len(report.shard_transactions) == 4
        assert len(report.storage) == 4
        assert report.info.num_shards == 4
        assert report.total_transactions == sum(
            report.shard_transactions)
        assert report.max_shard_transactions == max(
            report.shard_transactions)
        line = report.summary_line()
        assert "4 shards" in line and "replication" in line


# ----------------------------------------------------------------------
# Meter merging
# ----------------------------------------------------------------------


class TestMergeShardSnapshots:
    def test_sums_and_prefixes(self):
        a = MeterSnapshot(gld=10, gst=2, shared=1, ops=5,
                          kernel_launches=3, labeled_gld={"join": 7})
        b = MeterSnapshot(gld=4, gst=1, shared=0, ops=2,
                          kernel_launches=1, labeled_gld={"join": 2,
                                                          "filter": 2})
        merged = merge_shard_snapshots([a, b])
        assert merged.gld == 14 and merged.gst == 3
        assert merged.kernel_launches == 4
        assert merged.labeled_gld["join"] == 9
        assert merged.labeled_gld["filter"] == 2
        assert merged.labeled_gld["shard0"] == 10
        assert merged.labeled_gld["shard1"] == 4
        assert merged.labeled_gld["shard0/gst"] == 2
        assert merged.transactions == 17

    def test_empty(self):
        merged = merge_shard_snapshots([])
        assert merged.gld == 0 and merged.labeled_gld == {}


# ----------------------------------------------------------------------
# BatchEngine integration
# ----------------------------------------------------------------------


class TestBatchEngineShardedBackend:
    def test_identical_results_and_shard_report(self, data_graph,
                                                queries):
        plain = BatchEngine(data_graph)
        plain_report = plain.run_batch(queries, max_workers=1)
        sharded = ShardedEngine(ShardedGraph(data_graph, 4, halo_hops=3))
        service = BatchEngine(sharded=sharded)
        report = service.run_batch(queries, max_workers=1)
        assert report.shard is not None
        assert report.executor == "serial"
        assert report.storage["num_shards"] == 4
        for mine, theirs in zip(report.items, plain_report.items):
            assert mine.result.match_set() == theirs.result.match_set()
        # Single-query convenience path routes through the coordinator.
        assert service.match(queries[0]).match_set() == \
            plain.match(queries[0]).match_set()

    def test_sharded_rejects_engine_combo(self, data_graph):
        sharded = ShardedEngine(ShardedGraph(data_graph, 2, halo_hops=2))
        with pytest.raises(ValueError, match="not both"):
            BatchEngine(engine=GSIEngine(data_graph), sharded=sharded)
        with pytest.raises(ValueError, match="sharded backend"):
            BatchEngine(sharded=sharded).execute(object())

    def test_empty_batch(self, data_graph):
        sharded = ShardedEngine(ShardedGraph(data_graph, 2, halo_hops=2))
        report = BatchEngine(sharded=sharded).run_batch([])
        assert report.num_queries == 0
        assert report.shard.num_queries == 0
