"""Tests for gsilint (``repro.analysis``), the repo's own static pass.

Each rule gets a failing and a passing fixture, suppression comments are
exercised, and a meta-test pins the live tree clean — so a regression in
either the rules or the source shows up as a plain test failure.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import all_rules, lint_paths, lint_source
from repro.analysis.engine import main as gsilint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def lint(snippet, path="fixture.py", select=None):
    source = textwrap.dedent(snippet)
    rules = None
    if select is not None:
        rules = [r for r in all_rules() if r.rule_id in select]
    return lint_source(source, path=path, rules=rules)


def rule_ids(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# Registry / engine basics
# ---------------------------------------------------------------------------


def test_registry_lists_all_six_rules():
    ids = [rule.rule_id for rule in all_rules()]
    assert ids == ["GSI001", "GSI002", "GSI003", "GSI004", "GSI005",
                   "GSI006"]
    for rule in all_rules():
        assert rule.name
        assert rule.description


def test_findings_are_sorted_and_serializable():
    findings = lint(
        """
        import numpy as np
        b = np.zeros(4)
        a = np.empty(2)
        """)
    lines = [f.line for f in findings]
    assert lines == sorted(lines)
    for f in findings:
        d = f.to_dict()
        assert d["rule"] == "GSI005"
        assert ":" in f.format()


# ---------------------------------------------------------------------------
# GSI001 — pickling contract
# ---------------------------------------------------------------------------

GSI001_BAD = """
    def run(executor, handle, tasks):
        def helper(spec, chunk):
            return chunk
        executor.map_tasks(lambda spec, chunk: chunk, handle, tasks)
        executor.map_tasks(helper, handle, tasks)
"""

GSI001_GOOD = """
    def _worker(spec, chunk):
        return chunk

    def run(executor, handle, tasks):
        executor.map_tasks(_worker, handle, tasks)
"""


def test_gsi001_flags_lambda_and_local_function():
    findings = lint(GSI001_BAD, select={"GSI001"})
    assert rule_ids(findings) == ["GSI001"]
    assert len(findings) == 2


def test_gsi001_allows_module_level_callable():
    assert lint(GSI001_GOOD, select={"GSI001"}) == []


def test_gsi001_flags_ad_hoc_process_pool():
    findings = lint(
        """
        from concurrent.futures import ProcessPoolExecutor
        pool = ProcessPoolExecutor(max_workers=2)
        """, select={"GSI001"})
    assert rule_ids(findings) == ["GSI001"]


def test_gsi001_allows_pool_inside_executors_module():
    findings = lint(
        """
        from concurrent.futures import ProcessPoolExecutor
        pool = ProcessPoolExecutor(max_workers=2)
        """,
        path="src/repro/service/executors.py", select={"GSI001"})
    assert findings == []


# ---------------------------------------------------------------------------
# GSI002 — meter-label discipline
# ---------------------------------------------------------------------------

GSI002_BAD = """
    def charge(meter, tx):
        meter.add_gld(tx, label="join")
"""

GSI002_GOOD = """
    from repro.gpusim.constants import LABEL_JOIN

    def charge(meter, tx, shard):
        meter.add_gld(tx, label=LABEL_JOIN)
        meter.add_gld(tx)  # unlabeled: no attribution claimed
        meter.add_gld(tx, label=f"shard{shard}")  # dynamic: allowed
"""


def test_gsi002_flags_string_literal_label():
    findings = lint(GSI002_BAD, select={"GSI002"})
    assert rule_ids(findings) == ["GSI002"]
    assert "LABEL_" in findings[0].message


def test_gsi002_allows_registry_constants_and_dynamic_labels():
    assert lint(GSI002_GOOD, select={"GSI002"}) == []


def test_gsi002_flags_non_registry_name():
    findings = lint(
        """
        MY_LABEL = "join"

        def charge(meter, tx):
            meter.add_gld(tx, label=MY_LABEL)
        """, select={"GSI002"})
    assert rule_ids(findings) == ["GSI002"]


# ---------------------------------------------------------------------------
# GSI003 — lock discipline
# ---------------------------------------------------------------------------

GSI003_BAD = """
    import threading

    class Cache:
        _GUARDED_BY_LOCK = ("_entries",)

        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}

        def size(self):
            return len(self._entries)
"""

GSI003_GOOD = """
    import threading

    class Cache:
        _GUARDED_BY_LOCK = ("_entries",)

        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}

        def size(self):
            with self._lock:
                return len(self._entries)

        def _evict_unlocked(self):
            self._entries.popitem()
"""


def test_gsi003_flags_unlocked_access_to_guarded_field():
    findings = lint(GSI003_BAD, select={"GSI003"})
    assert rule_ids(findings) == ["GSI003"]


def test_gsi003_allows_locked_access_and_unlocked_helpers():
    assert lint(GSI003_GOOD, select={"GSI003"}) == []


# ---------------------------------------------------------------------------
# GSI004 — shm lease lifecycle
# ---------------------------------------------------------------------------

GSI004_BAD = """
    from multiprocessing import shared_memory

    class Publisher:
        def grab(self, engine):
            block = shared_memory.SharedMemory(create=True, size=64)
            handle, lease = publish_engine(engine, epoch=1)
            return block, handle, lease
"""

GSI004_GOOD = """
    class Publisher:
        def grab(self, engine):
            self._handle, self._lease = publish_engine(engine, epoch=1)
            return self._handle

        def close(self):
            self._lease.release()
"""


def test_gsi004_flags_publisher_without_teardown():
    findings = lint(GSI004_BAD, select={"GSI004"})
    assert rule_ids(findings) == ["GSI004"]
    # Both the naked SharedMemory(create=True) and the missing
    # teardown path are reported.
    assert len(findings) == 2


def test_gsi004_allows_publisher_with_close():
    assert lint(GSI004_GOOD, select={"GSI004"}) == []


def test_gsi004_allows_naked_shm_inside_shm_module():
    findings = lint(
        """
        from multiprocessing import shared_memory
        block = shared_memory.SharedMemory(create=True, size=64)
        """,
        path="src/repro/storage/shm.py", select={"GSI004"})
    assert findings == []


# ---------------------------------------------------------------------------
# GSI005 — numpy dtype discipline
# ---------------------------------------------------------------------------

GSI005_BAD = """
    import numpy as np
    ids = np.zeros(16)
    buf = np.empty(8)
"""

GSI005_GOOD = """
    import numpy as np
    ids = np.zeros(16, dtype=np.int64)
    buf = np.empty(8, np.uint32)
    view = np.asarray(ids)  # not a construction sink
"""


def test_gsi005_flags_dtypeless_constructions():
    findings = lint(GSI005_BAD, select={"GSI005"})
    assert rule_ids(findings) == ["GSI005"]
    assert len(findings) == 2


def test_gsi005_allows_explicit_dtype_kwarg_or_positional():
    assert lint(GSI005_GOOD, select={"GSI005"}) == []


# ---------------------------------------------------------------------------
# GSI006 — span lifecycle
# ---------------------------------------------------------------------------

GSI006_BAD = """
    def run(tracer, item):
        tracer.span("fire-and-forget", kind="bad")
        leaked = tracer.span("leaked")
        leaked.set_attribute("x", 1)
        return item
"""

GSI006_GOOD = """
    def run(tracer, item):
        with tracer.span("work") as span:
            span.set_attribute("x", 1)
        manual = tracer.span("manual")
        try:
            item = item + 1
        finally:
            manual.end()
        return tracer.span("handed-to-caller")

    def factory(tracer):
        span = tracer.span("escapes-this-scope")
        return span
"""


def test_gsi006_flags_unmanaged_span_calls():
    findings = lint(GSI006_BAD, select={"GSI006"})
    assert rule_ids(findings) == ["GSI006"]
    assert len(findings) == 2


def test_gsi006_allows_with_end_and_returned_spans():
    assert lint(GSI006_GOOD, select={"GSI006"}) == []


def test_gsi006_exempts_the_tracer_module():
    findings = lint(
        """
        def demo(tracer):
            tracer.span("loose")
        """,
        path="src/repro/obs/trace.py", select={"GSI006"})
    assert findings == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def test_line_suppression_silences_one_finding():
    findings = lint(
        """
        import numpy as np
        a = np.zeros(4)  # gsilint: disable=GSI005
        b = np.zeros(4)
        """, select={"GSI005"})
    assert len(findings) == 1
    assert findings[0].line == 4


def test_file_suppression_silences_whole_file():
    findings = lint(
        """
        # gsilint: disable-file=GSI005
        import numpy as np
        a = np.zeros(4)
        b = np.empty(2)
        """, select={"GSI005"})
    assert findings == []


def test_suppression_comment_inside_string_is_ignored():
    findings = lint(
        '''
        import numpy as np
        note = "# gsilint: disable-file=GSI005"
        a = np.zeros(4)
        ''', select={"GSI005"})
    assert len(findings) == 1


# ---------------------------------------------------------------------------
# CLI + live-tree meta-checks
# ---------------------------------------------------------------------------


def test_cli_json_report_and_exit_codes(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.zeros(3)\n",
                   encoding="utf-8")
    out = tmp_path / "report.json"
    code = gsilint_main([str(bad), "--json", str(out)])
    assert code == 1
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["tool"] == "gsilint"
    assert payload["files_checked"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["GSI005"]

    good = tmp_path / "good.py"
    good.write_text("import numpy as np\nx = np.zeros(3, dtype=np.int64)\n",
                    encoding="utf-8")
    assert gsilint_main([str(good)]) == 0


def test_cli_reports_parse_errors_with_exit_2(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n", encoding="utf-8")
    assert gsilint_main([str(broken)]) == 2


def test_cli_select_rejects_unknown_rule(tmp_path):
    with pytest.raises(SystemExit):
        gsilint_main([str(tmp_path), "--select", "GSI999"])


def test_live_source_tree_is_clean():
    """The repo's own invariant gate: every rule over every src file."""
    report = lint_paths([str(SRC)])
    assert report.parse_errors == []
    formatted = "\n".join(f.format() for f in report.findings)
    assert report.findings == [], f"gsilint findings:\n{formatted}"
    assert report.files_checked > 50


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        cwd=str(REPO_ROOT))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_meter_labels_registry_matches_constants():
    """Every LABEL_* constant is registered, and vice versa."""
    from repro.gpusim import constants

    declared = {
        value for name, value in vars(constants).items()
        if name.startswith("LABEL_")}
    assert declared == set(constants.METER_LABELS)
