"""Integration tests across the gpusim layer: device + scheduler +
meter interplay, and the constants' documented relationships."""

import pytest

from repro.gpusim import constants
from repro.gpusim.constants import cycles_to_ms, cpu_ops_to_ms
from repro.gpusim.device import Device
from repro.gpusim.scheduler import LoadBalanceConfig


class TestConstants:
    def test_group_is_exactly_one_transaction(self):
        """GPN=16 pairs of two 4 B words == 128 B (the PCSR argument)."""
        assert 16 * 2 * constants.ELEMENT_BYTES \
            == constants.TRANSACTION_BYTES

    def test_warp_matches_elements_per_transaction(self):
        assert constants.WARP_SIZE == constants.ELEMENTS_PER_TRANSACTION

    def test_block_geometry(self):
        assert constants.BLOCK_THREADS \
            == constants.WARPS_PER_BLOCK * constants.WARP_SIZE
        assert constants.WARP_SLOTS \
            == constants.NUM_SM * constants.WARPS_PER_SM

    def test_conversions(self):
        assert cycles_to_ms(constants.CLOCK_GHZ * 1e6) == pytest.approx(1.0)
        assert cpu_ops_to_ms(0) == 0.0
        assert cpu_ops_to_ms(1e6) > 0

    def test_queue_cheaper_than_full_launch(self):
        assert constants.KERNEL_QUEUE_CYCLES \
            < constants.KERNEL_LAUNCH_CYCLES


class TestDeviceSchedulerIntegration:
    def test_lb_kernel_meters_extra_launches(self):
        d = Device()
        lb = LoadBalanceConfig()
        d.run_kernel([1.0, 1.0], name="k", lb=lb,
                     task_units=[10.0, 500_000.0])
        assert d.meter.kernel_launches == 2  # main + dedicated

    def test_clock_accumulates_across_kernels(self):
        d = Device()
        d.run_kernel([10.0])
        t1 = d.clock_cycles
        d.run_kernel([10.0])
        assert d.clock_cycles == pytest.approx(2 * t1)

    def test_kernel_records_grow(self):
        d = Device()
        for i in range(5):
            d.run_kernel([float(i)], name=f"k{i}")
        assert [k.name for k in d.kernels] == [f"k{i}" for i in range(5)]

    def test_fused_scan_single_launch(self):
        d = Device()
        d.exclusive_prefix_sum([1, 2, 3], fused_tasks=[100.0, 200.0])
        assert d.meter.kernel_launches == 1

    def test_more_slots_never_slower(self):
        tasks = [float(i % 37 + 1) for i in range(5000)]
        narrow = Device(slots=64)
        wide = Device(slots=2048)
        narrow.run_kernel(tasks)
        wide.run_kernel(tasks)
        assert wide.clock_cycles <= narrow.clock_cycles


class TestBudgetInteraction:
    def test_budget_respected_mid_sequence(self):
        from repro.errors import BudgetExceeded
        d = Device(budget_cycles=100_000.0)
        d.run_kernel([10.0])  # fine
        with pytest.raises(BudgetExceeded):
            for _ in range(100):
                d.run_kernel([10.0])

    def test_clock_state_preserved_after_budget(self):
        from repro.errors import BudgetExceeded
        d = Device(budget_cycles=10.0)
        try:
            d.run_kernel([1e9])
        except BudgetExceeded:
            pass
        assert d.clock_cycles > 10.0  # the overrun is visible
