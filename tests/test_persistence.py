"""Tests for .npz persistence of graphs and signature tables."""

import numpy as np
import pytest

from repro import GSIConfig, GSIEngine, random_walk_query
from repro.core.signature_table import SignatureTable
from repro.errors import GraphError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.persistence import (
    load_graph_npz,
    load_signature_table,
    save_graph_npz,
    save_signature_table,
)


class TestGraphRoundTrip:
    def test_round_trip(self, medium_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph_npz(medium_graph, path)
        loaded = load_graph_npz(path)
        assert loaded.num_vertices == medium_graph.num_vertices
        assert set(loaded.edges()) == set(medium_graph.edges())
        assert list(loaded.vertex_labels) \
            == list(medium_graph.vertex_labels)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "e.npz"
        save_graph_npz(LabeledGraph([], []), path)
        assert load_graph_npz(path).num_vertices == 0

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, version=np.int64(999),
                            vertex_labels=np.zeros(1, dtype=np.int64),
                            edges=np.empty((0, 3), dtype=np.int64))
        with pytest.raises(GraphError):
            load_graph_npz(path)

    def test_loaded_graph_queryable(self, medium_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph_npz(medium_graph, path)
        loaded = load_graph_npz(path)
        q = random_walk_query(medium_graph, 4, seed=1)
        a = GSIEngine(medium_graph).match(q).match_set()
        b = GSIEngine(loaded).match(q).match_set()
        assert a == b


class TestSignatureTableRoundTrip:
    def test_round_trip(self, medium_graph, tmp_path):
        table = SignatureTable.build(medium_graph, 256)
        path = tmp_path / "sig.npz"
        save_signature_table(table, path)
        loaded = load_signature_table(path)
        assert np.array_equal(loaded.table, table.table)
        assert loaded.column_first == table.column_first

    def test_layout_preserved(self, medium_graph, tmp_path):
        table = SignatureTable.build(medium_graph, 128,
                                     column_first=False)
        path = tmp_path / "sig.npz"
        save_signature_table(table, path)
        assert load_signature_table(path).column_first is False

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, version=np.int64(42),
                            table=np.zeros((1, 4), dtype=np.uint32),
                            column_first=np.bool_(True))
        with pytest.raises(GraphError):
            load_signature_table(path)

    def test_loaded_table_filters_identically(self, medium_graph,
                                              tmp_path):
        from repro.core.signature import encode_vertex

        table = SignatureTable.build(medium_graph, 256)
        path = tmp_path / "sig.npz"
        save_signature_table(table, path)
        loaded = load_signature_table(path)
        q = random_walk_query(medium_graph, 4, seed=2)
        for u in range(4):
            sig = encode_vertex(q, u, 256)
            assert np.array_equal(table.filter(sig), loaded.filter(sig))
