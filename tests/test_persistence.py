"""Tests for .npz persistence of graphs and signature tables."""

import numpy as np
import pytest

from repro import GSIEngine, random_walk_query
from repro.core.signature_table import SignatureTable
from repro.errors import GraphError
from repro.graph.generators import (
    mesh_graph,
    rdf_like_graph,
    scale_free_graph,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.persistence import (
    load_graph_npz,
    load_signature_table,
    save_graph_npz,
    save_signature_table,
)


class TestGraphRoundTrip:
    def test_round_trip(self, medium_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph_npz(medium_graph, path)
        loaded = load_graph_npz(path)
        assert loaded.num_vertices == medium_graph.num_vertices
        assert set(loaded.edges()) == set(medium_graph.edges())
        assert list(loaded.vertex_labels) \
            == list(medium_graph.vertex_labels)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "e.npz"
        save_graph_npz(LabeledGraph([], []), path)
        assert load_graph_npz(path).num_vertices == 0

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, version=np.int64(999),
                            vertex_labels=np.zeros(1, dtype=np.int64),
                            edges=np.empty((0, 3), dtype=np.int64))
        with pytest.raises(GraphError):
            load_graph_npz(path)

    def test_loaded_graph_queryable(self, medium_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph_npz(medium_graph, path)
        loaded = load_graph_npz(path)
        q = random_walk_query(medium_graph, 4, seed=1)
        a = GSIEngine(medium_graph).match(q).match_set()
        b = GSIEngine(loaded).match(q).match_set()
        assert a == b


class TestGeneratedGraphRoundTrips:
    """Round-trips across the generator zoo, including degenerate
    shapes (empty, edgeless, single-label)."""

    def _assert_round_trip(self, graph, path):
        save_graph_npz(graph, path)
        loaded = load_graph_npz(path)
        assert loaded.num_vertices == graph.num_vertices
        assert loaded.num_edges == graph.num_edges
        assert list(loaded.vertex_labels) == list(graph.vertex_labels)
        assert sorted(loaded.edges()) == sorted(graph.edges())
        return loaded

    @pytest.mark.parametrize("maker", [
        lambda: scale_free_graph(60, 3, 4, 5, seed=1),
        lambda: rdf_like_graph(50, 120, 3, 6, seed=2),
        lambda: mesh_graph(6, 7, 3, 2, seed=3),
    ], ids=["scale_free", "rdf_like", "mesh"])
    def test_generated_graphs(self, maker, tmp_path):
        self._assert_round_trip(maker(), tmp_path / "g.npz")

    def test_empty_graph_full_equality(self, tmp_path):
        loaded = self._assert_round_trip(LabeledGraph([], []),
                                         tmp_path / "empty.npz")
        assert loaded.num_vertices == 0
        assert list(loaded.edges()) == []

    def test_edgeless_graph(self, tmp_path):
        g = LabeledGraph([3, 1, 4, 1, 5], [])
        loaded = self._assert_round_trip(g, tmp_path / "edgeless.npz")
        assert loaded.degree(0) == 0

    def test_single_label_graph(self, tmp_path):
        g = scale_free_graph(40, 3, 1, 1, seed=3)
        assert g.distinct_vertex_labels() == [0]
        assert g.distinct_edge_labels() == [0]
        loaded = self._assert_round_trip(g, tmp_path / "single.npz")
        assert loaded.distinct_vertex_labels() == [0]
        assert loaded.distinct_edge_labels() == [0]
        assert loaded.edge_label_frequency(0) == g.num_edges

    def test_adjacency_preserved_exactly(self, tmp_path):
        g = scale_free_graph(30, 3, 3, 4, seed=9)
        loaded = self._assert_round_trip(g, tmp_path / "adj.npz")
        for v in range(g.num_vertices):
            for lab in g.distinct_edge_labels():
                assert np.array_equal(loaded.neighbors_by_label(v, lab),
                                      g.neighbors_by_label(v, lab))


class TestSignatureTableRoundTrip:
    def test_round_trip(self, medium_graph, tmp_path):
        table = SignatureTable.build(medium_graph, 256)
        path = tmp_path / "sig.npz"
        save_signature_table(table, path)
        loaded = load_signature_table(path)
        assert np.array_equal(loaded.table, table.table)
        assert loaded.column_first == table.column_first

    def test_layout_preserved(self, medium_graph, tmp_path):
        table = SignatureTable.build(medium_graph, 128,
                                     column_first=False)
        path = tmp_path / "sig.npz"
        save_signature_table(table, path)
        assert load_signature_table(path).column_first is False

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, version=np.int64(42),
                            table=np.zeros((1, 4), dtype=np.uint32),
                            column_first=np.bool_(True))
        with pytest.raises(GraphError):
            load_signature_table(path)

    def test_loaded_table_filters_identically(self, medium_graph,
                                              tmp_path):
        from repro.core.signature import encode_vertex

        table = SignatureTable.build(medium_graph, 256)
        path = tmp_path / "sig.npz"
        save_signature_table(table, path)
        loaded = load_signature_table(path)
        q = random_walk_query(medium_graph, 4, seed=2)
        for u in range(4):
            sig = encode_vertex(q, u, 256)
            assert np.array_equal(table.filter(sig), loaded.filter(sig))
