"""Tests for the benchmark harness (workloads, runner, reporting)."""

import pytest

from repro.bench.reporting import (
    drop_pct,
    render_series,
    render_table,
    speedup,
)
from repro.bench.runner import (
    baseline_factory,
    gsi_factory,
    run_matrix,
    run_workload,
)
from repro.bench.workloads import Workload, standard_workloads
from repro.core.config import GSIConfig
from repro.graph.generators import scale_free_graph


@pytest.fixture(scope="module")
def tiny_workload():
    g = scale_free_graph(150, 3, 5, 5, seed=3)
    return Workload.for_graph("tiny", g, num_queries=2, query_vertices=4)


class TestWorkloads:
    def test_for_graph(self, tiny_workload):
        assert tiny_workload.name == "tiny"
        assert len(tiny_workload.queries) == 2
        assert all(q.num_vertices == 4 for q in tiny_workload.queries)

    def test_for_dataset(self):
        wl = Workload.for_dataset("enron", num_queries=1, query_vertices=5)
        assert wl.name == "enron"
        assert len(wl.queries) == 1

    def test_standard_workloads_cover_datasets(self):
        wls = standard_workloads(num_queries=1, query_vertices=4)
        assert list(wls) == ["enron", "gowalla", "road", "watdiv",
                             "dbpedia"]


class TestRunner:
    def test_run_workload_gsi(self, tiny_workload):
        s = run_workload(gsi_factory(GSIConfig.gsi()), tiny_workload)
        assert s.queries == 2
        assert s.timeouts == 0
        assert s.avg_ms > 0
        assert s.engine == "GSI"
        assert len(s.results) == 2

    @pytest.mark.parametrize("kind", ["vf3", "cfl", "ullmann", "turbo",
                                      "gpsm", "gunrock"])
    def test_baseline_factories(self, tiny_workload, kind):
        s = run_workload(baseline_factory(kind), tiny_workload)
        assert s.queries == 2
        assert s.avg_ms >= 0

    def test_unknown_baseline(self):
        with pytest.raises(ValueError):
            baseline_factory("magic")(None)

    def test_engines_agree_through_harness(self, tiny_workload):
        a = run_workload(gsi_factory(GSIConfig.gsi()), tiny_workload)
        b = run_workload(baseline_factory("vf3"), tiny_workload)
        assert a.total_matches == b.total_matches

    def test_run_matrix(self, tiny_workload):
        out = run_matrix(
            {"GSI": gsi_factory(GSIConfig.gsi()),
             "VF3": baseline_factory("vf3")},
            {"tiny": tiny_workload})
        assert len(out) == 2
        assert {s.engine for s in out} == {"GSI", "VF3"}

    def test_timed_out_flag(self, tiny_workload):
        s = run_workload(gsi_factory(GSIConfig.gsi(), budget_ms=1e-6),
                         tiny_workload)
        assert s.timeouts == 2
        assert s.timed_out


class TestReporting:
    def test_render_table_contains_data(self):
        out = render_table("T", ["a", "b"], [[1, 2.5], ["x", 10_000.0]],
                           note="hello")
        assert "== T ==" in out
        assert "2.500" in out
        assert "10,000" in out
        assert "hello" in out

    def test_render_series(self):
        out = render_series("F", "x", [1, 2],
                            {"gsi": [1.0, None], "vf3": [2.0, 3.0]})
        assert "gsi" in out and "-" in out

    def test_drop_pct(self):
        assert drop_pct(100, 70) == "30%"
        assert drop_pct(0, 5) == "0%"

    def test_speedup(self):
        assert speedup(10, 5) == "2.0x"
        assert speedup(1, 0) == "inf"
