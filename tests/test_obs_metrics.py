"""Tests for ``repro.obs``: metrics registry, stats helpers, exporters.

The tracer itself (and its cross-process propagation) is covered by
``test_obs_trace.py``; here we pin the metrics/label discipline, the
snapshot-merge algebra process workers rely on, the shared percentile
helpers, and the NDJSON / chrome / Prometheus export formats.
"""

import json
import math

import numpy as np
import pytest

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    read_spans_ndjson,
    validate_span_tree,
    write_chrome_trace,
    write_spans_ndjson,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    SIZE_BUCKETS,
    MetricsRegistry,
    absorb_snapshot,
    get_registry,
    merge_metric_snapshots,
    scoped_registry,
)
from repro.obs.stats import (
    DEFAULT_RESERVOIR,
    Reservoir,
    percentile,
    percentile_summary,
)

# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


def test_counter_accumulates_per_label_set():
    reg = MetricsRegistry()
    c = reg.counter("q_total", "queries")
    c.inc(1.0, shard="0")
    c.inc(2.0, shard="0")
    c.inc(5.0, shard="1")
    snap = reg.snapshot()["q_total"]
    values = {entry["labels"]["shard"]: entry["value"]
              for entry in snap["values"]}
    assert values == {"0": 3.0, "1": 5.0}


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("q_total", "queries").inc(-1.0)


def test_unregistered_label_key_is_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("q_total", "queries").inc(1.0, color="red")


def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("a_total", "x") is reg.counter("a_total", "x")
    assert reg.gauge("g", "x") is reg.gauge("g", "x")
    assert reg.histogram("h_ms", "x") is reg.histogram("h_ms", "x")


def test_histogram_buckets_are_non_cumulative_in_snapshot():
    reg = MetricsRegistry()
    h = reg.histogram("lat_ms", "latency", buckets=(1.0, 10.0))
    for value in (0.5, 5.0, 50.0):
        h.observe(value)
    entry = reg.snapshot()["lat_ms"]["values"][0]
    assert entry["counts"] == [1, 1, 1]  # per-bucket, not cumulative
    assert entry["count"] == 3
    assert entry["sum"] == pytest.approx(56.5 - 1.0)


def test_merge_snapshots_adds_counters_and_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    for reg, val in ((a, 1.0), (b, 2.0)):
        reg.counter("c_total", "c").inc(val, kind="x")
        reg.gauge("g", "g").set(val)
        reg.histogram("h_ms", "h", buckets=(1.0,)).observe(val)
    merged = merge_metric_snapshots([a.snapshot(), b.snapshot()])
    c_entry = merged["c_total"]["values"][0]
    assert c_entry["value"] == 3.0
    assert merged["g"]["values"][0]["value"] == 2.0  # gauges take max
    h_entry = merged["h_ms"]["values"][0]
    assert h_entry["count"] == 2
    assert h_entry["sum"] == pytest.approx(3.0)


def test_scoped_registry_isolates_and_absorbs():
    host = get_registry()
    before = host.snapshot().get("scoped_total")
    with scoped_registry() as fresh:
        get_registry().counter("scoped_total", "s").inc(4.0, kind="w")
        shipped = fresh.snapshot()
    # Nothing leaked into the host registry while scoped.
    assert host.snapshot().get("scoped_total") == before
    absorb_snapshot(shipped, registry=host)
    entry = host.snapshot()["scoped_total"]["values"]
    assert any(e["labels"] == {"kind": "w"} and e["value"] >= 4.0
               for e in entry)


def test_default_bucket_ladders_are_sorted():
    assert list(LATENCY_BUCKETS_MS) == sorted(LATENCY_BUCKETS_MS)
    assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)


# ---------------------------------------------------------------------------
# stats helpers
# ---------------------------------------------------------------------------


def test_percentile_empty_and_validation():
    assert percentile([], 95.0) == 0.0
    with pytest.raises(ValueError):
        percentile([1.0], 101.0)
    with pytest.raises(ValueError):
        percentile([1.0], -1.0)


def test_percentile_matches_numpy():
    values = [5.0, 1.0, 9.0, 3.0]
    assert percentile(values, 50.0) == pytest.approx(
        float(np.percentile(values, 50.0)))


def test_percentile_summary_keys_render_as_integers():
    summary = percentile_summary([1.0, 2.0, 3.0])
    assert sorted(summary) == ["p50", "p95", "p99"]
    assert all(math.isfinite(v) for v in summary.values())


def test_reservoir_bounded_and_drops_oldest():
    res = Reservoir(4)
    for i in range(10):
        res.add(float(i))
    assert len(res) <= 4
    # The newest samples survive the drop-oldest policy.
    assert res.samples()[-1] == 9.0
    assert res.percentile(100.0) == 9.0
    assert sorted(res.summary()) == ["p50", "p95", "p99"]


def test_reservoir_rejects_tiny_capacity():
    with pytest.raises(ValueError):
        Reservoir(1)
    assert DEFAULT_RESERVOIR >= 2


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


def _span(name, span_id, parent_id, trace_id="t1", pid=1):
    return {"name": name, "trace_id": trace_id, "span_id": span_id,
            "parent_id": parent_id, "start_ms": 100.0,
            "duration_ms": 2.0, "pid": pid, "attrs": {"k": "v"}}


def test_ndjson_round_trip(tmp_path):
    spans = [_span("root", "a", None), _span("child", "b", "a")]
    path = write_spans_ndjson(spans, tmp_path / "t.ndjson")
    assert read_spans_ndjson(path) == spans
    lines = path.read_text(encoding="utf-8").strip().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line)["trace_id"] == "t1" for line in lines)


def test_validate_span_tree_connected_and_orphans():
    good = [_span("root", "a", None), _span("child", "b", "a")]
    tree = validate_span_tree(good)
    assert tree["connected"]
    assert tree["roots"] == ["a"]
    assert tree["orphans"] == []

    orphaned = good + [_span("lost", "c", "missing")]
    tree = validate_span_tree(orphaned)
    assert not tree["connected"]
    assert tree["orphans"] == ["c"]

    two_traces = [_span("r1", "a", None),
                  _span("r2", "b", None, trace_id="t2")]
    assert not validate_span_tree(two_traces)["connected"]
    assert not validate_span_tree([])["connected"]


def test_chrome_trace_events(tmp_path):
    spans = [_span("root", "a", None, pid=7),
             _span("child", "b", "a", pid=8)]
    trace = chrome_trace(spans)
    assert {e["name"] for e in trace["traceEvents"]} == {"root", "child"}
    assert {e["tid"] for e in trace["traceEvents"]} == {7, 8}
    for event in trace["traceEvents"]:
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(100.0 * 1000.0)
    path = write_chrome_trace(spans, tmp_path / "t.json")
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert len(loaded["traceEvents"]) == 2


def test_prometheus_text_renders_all_instrument_kinds():
    reg = MetricsRegistry()
    reg.counter("c_total", "counts things").inc(3.0, shard="0")
    reg.gauge("g", "gauges").set(1.5)
    reg.histogram("h_ms", "hist", buckets=(1.0, 10.0)).observe(5.0)
    text = prometheus_text(reg.snapshot())
    assert "# TYPE c_total counter" in text
    assert 'c_total{shard="0"} 3' in text
    assert "# HELP c_total counts things" in text
    assert "# TYPE g gauge" in text
    assert "g 1.5" in text
    # Buckets are cumulated on render and get the +Inf terminal.
    assert 'h_ms_bucket{le="1"} 0' in text
    assert 'h_ms_bucket{le="10"} 1' in text
    assert 'h_ms_bucket{le="+Inf"} 1' in text
    assert "h_ms_sum 5" in text
    assert "h_ms_count 1" in text


def test_prometheus_text_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("c_total", "").inc(1.0, kind='a"b\nc')
    text = prometheus_text(reg.snapshot())
    assert 'kind="a\\"b\\nc"' in text
