"""Tests for the TurboISO-style engine (NEC leaf merging)."""


from repro.baselines import TurboISOEngine, VF2Engine, leaf_equivalence_classes
from repro.graph.generators import random_walk_query
from repro.graph.labeled_graph import GraphBuilder, LabeledGraph, path_query

from oracle import brute_force_matches


def star_query(leaves: int, center_label=0, leaf_label=1, elabel=0):
    b = GraphBuilder()
    center = b.add_vertex(center_label)
    for _ in range(leaves):
        leaf = b.add_vertex(leaf_label)
        b.add_edge(center, leaf, elabel)
    return b.build()


class TestNEC:
    def test_star_leaves_merge(self):
        q = star_query(4)
        classes = leaf_equivalence_classes(q)
        assert len(classes) == 1
        assert sorted(classes[0]) == [1, 2, 3, 4]

    def test_different_labels_split(self):
        b = GraphBuilder()
        c = b.add_vertex(0)
        l1 = b.add_vertex(1)
        l2 = b.add_vertex(2)
        b.add_edge(c, l1, 0)
        b.add_edge(c, l2, 0)
        q = b.build()
        classes = leaf_equivalence_classes(q)
        assert sorted(len(c) for c in classes) == [1, 1]

    def test_different_edge_labels_split(self):
        b = GraphBuilder()
        c = b.add_vertex(0)
        l1 = b.add_vertex(1)
        l2 = b.add_vertex(1)
        b.add_edge(c, l1, 0)
        b.add_edge(c, l2, 5)
        classes = leaf_equivalence_classes(b.build())
        assert sorted(len(c) for c in classes) == [1, 1]

    def test_different_parents_split(self):
        q = path_query([0, 1, 0])  # two leaves, different parents? no:
        # path 0-1-2: leaves 0 and 2 share parent 1 and labels 0... both
        # have vertex label 0 and parent 1 with edge label 0 -> merge.
        classes = leaf_equivalence_classes(q)
        assert len(classes) == 1 and len(classes[0]) == 2

    def test_non_leaves_excluded(self):
        q = path_query([0, 0, 0, 0])
        for members in leaf_equivalence_classes(q):
            for u in members:
                assert q.degree(u) == 1


class TestCorrectness:
    def test_agrees_with_brute_force(self, small_graph, small_queries):
        engine = TurboISOEngine(small_graph)
        for q in small_queries:
            r = engine.match(q)
            assert not r.timed_out
            assert r.match_set() == brute_force_matches(q, small_graph)

    def test_star_queries_exact(self, small_graph):
        labels = small_graph.distinct_vertex_labels()
        q = star_query(3, center_label=labels[0], leaf_label=labels[0],
                       elabel=0)
        r = TurboISOEngine(small_graph).match(q)
        assert r.match_set() == brute_force_matches(q, small_graph)

    def test_random_walk_queries(self, medium_graph):
        engine = TurboISOEngine(medium_graph)
        vf2 = VF2Engine(medium_graph)
        for seed in range(4):
            q = random_walk_query(medium_graph, 6, seed=seed)
            assert engine.match(q).match_set() == \
                vf2.match(q).match_set()

    def test_budget_timeout(self, small_graph):
        q = random_walk_query(small_graph, 5, seed=0)
        r = TurboISOEngine(small_graph, budget_ms=1e-9).match(q)
        assert r.timed_out

    def test_no_matches(self, small_graph):
        q = LabeledGraph([999], [])
        assert TurboISOEngine(small_graph).match(q).num_matches == 0


class TestNECAdvantage:
    def test_fewer_ops_than_vf2_on_symmetric_stars(self, medium_graph):
        """The NEC pool is explored once instead of once per leaf
        permutation, so symmetric stars should cost less."""
        labels = medium_graph.distinct_vertex_labels()
        q = star_query(3, center_label=labels[0], leaf_label=labels[1],
                       elabel=0)
        turbo = TurboISOEngine(medium_graph).match(q)
        vf2 = VF2Engine(medium_graph).match(q)
        assert turbo.match_set() == vf2.match_set()
        if turbo.num_matches > 50:
            assert turbo.elapsed_ms <= vf2.elapsed_ms
