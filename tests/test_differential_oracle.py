"""Differential tests: every engine agrees with the brute-force oracle.

Seeded random graphs and queries run through the GSI engine, the batch
service, and two CPU baselines (VF2, Ullmann); each result set is
asserted equal to :func:`oracle.brute_force_matches`.  A hypothesis
property does the same over arbitrary small labeled graphs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import UllmannEngine, VF2Engine
from repro.core.engine import GSIEngine
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.service import BatchEngine

from oracle import brute_force_matches


def all_engine_results(graph, query):
    """(name, match set) for every engine under differential test."""
    out = [
        ("gsi", GSIEngine(graph).match(query).match_set()),
        ("batch", BatchEngine(graph).match(query).match_set()),
        ("vf2", VF2Engine(graph).match(query).match_set()),
        ("ullmann", UllmannEngine(graph).match(query).match_set()),
    ]
    return out


class TestSeededSweep:
    @pytest.mark.parametrize("graph_seed,query_seed", [
        (1, 0), (1, 3), (2, 1), (3, 4), (5, 2), (8, 7),
    ])
    def test_engines_equal_oracle(self, graph_seed, query_seed):
        graph = scale_free_graph(60, 3, 3, 3, seed=graph_seed)
        query = random_walk_query(graph, 4, seed=query_seed)
        expected = brute_force_matches(query, graph)
        for name, got in all_engine_results(graph, query):
            assert got == expected, f"{name} disagrees with the oracle"

    @pytest.mark.parametrize("extra_edges", [0, 1, 2])
    def test_cyclic_queries(self, extra_edges):
        graph = scale_free_graph(50, 3, 2, 2, seed=13)
        query = random_walk_query(graph, 5, seed=1,
                                  extra_edges=extra_edges)
        expected = brute_force_matches(query, graph)
        for name, got in all_engine_results(graph, query):
            assert got == expected, f"{name} disagrees with the oracle"

    def test_batch_engine_whole_workload(self):
        """One BatchEngine over many queries: every result oracle-equal,
        including plan-cache-hit repeats."""
        graph = scale_free_graph(60, 3, 3, 3, seed=21)
        queries = [random_walk_query(graph, 4, seed=s) for s in range(4)]
        queries = queries * 2  # second half hits the plan cache
        service = BatchEngine(graph)
        report = service.run_batch(queries)
        assert report.cache.hits > 0
        for query, result in zip(queries, report.results):
            assert result.match_set() == brute_force_matches(query, graph)


class TestExecutorDeterminism:
    """The same batch under serial/thread/process executors yields
    identical match sets, transaction totals, and cache stats — and all
    of them equal the brute-force oracle."""

    def test_identical_across_executors(self):
        from repro.service import make_executor

        graph = scale_free_graph(60, 3, 3, 3, seed=21)
        queries = [random_walk_query(graph, 4, seed=s)
                   for s in range(4)]
        queries = queries * 2  # repeats exercise plan + shape caches
        expected = [brute_force_matches(q, graph) for q in queries]

        reference = None
        for kind in ("serial", "thread", "process"):
            with make_executor(kind, 2) as executor:
                report = BatchEngine(
                    graph, executor=executor).run_batch(queries)
            for want, result in zip(expected, report.results):
                assert result.match_set() == want, (
                    f"{kind} executor disagrees with the oracle")
            key = (
                [r.match_set() for r in report.results],
                [r.elapsed_ms for r in report.results],
                report.total_gld, report.total_gst,
                report.total_kernel_launches,
                report.cache,
            )
            if reference is None:
                reference = key
            else:
                assert key == reference, (
                    f"{kind} executor is not deterministic vs serial")


def _dedup_edges(edge_list):
    seen = {}
    for u, v, lab in edge_list:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen[key] = (u, v, lab)
    return list(seen.values())


@settings(max_examples=25, deadline=None)
@given(
    vlabels=st.lists(st.integers(0, 2), min_size=4, max_size=14),
    edge_list=st.lists(
        st.tuples(st.integers(0, 13), st.integers(0, 13),
                  st.integers(0, 1)),
        min_size=3, max_size=30),
    qlabels=st.tuples(st.integers(0, 2), st.integers(0, 2),
                      st.integers(0, 2)),
    qelabels=st.tuples(st.integers(0, 1), st.integers(0, 1)),
)
def test_property_engines_equal_oracle(vlabels, edge_list, qlabels,
                                       qelabels):
    n = len(vlabels)
    edges = [(u, v, lab) for u, v, lab in _dedup_edges(edge_list)
             if u < n and v < n]
    graph = LabeledGraph(vlabels, edges)
    # 3-vertex path query with arbitrary labels (always connected).
    query = LabeledGraph(list(qlabels),
                         [(0, 1, qelabels[0]), (1, 2, qelabels[1])])
    expected = brute_force_matches(query, graph)
    for name, got in all_engine_results(graph, query):
        assert got == expected, f"{name} disagrees with the oracle"
