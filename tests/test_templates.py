"""Tests for query-template sampling."""

import pytest

from repro import GSIEngine
from repro.errors import GraphError
from repro.graph.templates import (
    sample_clique,
    sample_cycle,
    sample_path,
    sample_star,
    template_workload,
)


class TestPath:
    def test_shape(self, medium_graph):
        q = sample_path(medium_graph, 4, seed=1)
        assert q.num_vertices == 5
        assert q.num_edges == 4
        degs = sorted(q.degree(v) for v in range(5))
        assert degs == [1, 1, 2, 2, 2]

    def test_embeds(self, medium_graph):
        engine = GSIEngine(medium_graph)
        for seed in range(3):
            q = sample_path(medium_graph, 3, seed=seed)
            assert engine.match(q).num_matches >= 1

    def test_invalid_length(self, medium_graph):
        with pytest.raises(GraphError):
            sample_path(medium_graph, 0)


class TestStar:
    def test_shape(self, medium_graph):
        q = sample_star(medium_graph, 5, seed=2)
        assert q.num_vertices == 6
        assert q.num_edges == 5
        assert q.max_degree() == 5

    def test_embeds(self, medium_graph):
        engine = GSIEngine(medium_graph)
        q = sample_star(medium_graph, 4, seed=1)
        assert engine.match(q).num_matches >= 1

    def test_too_many_leaves(self, medium_graph):
        with pytest.raises(GraphError):
            sample_star(medium_graph, medium_graph.max_degree() + 1)


class TestCycle:
    def test_shape(self, medium_graph):
        q = sample_cycle(medium_graph, 3, seed=1)
        assert q.num_vertices == 3
        assert q.num_edges == 3
        assert all(q.degree(v) == 2 for v in range(3))

    def test_embeds(self, medium_graph):
        engine = GSIEngine(medium_graph)
        q = sample_cycle(medium_graph, 3, seed=3)
        assert engine.match(q).num_matches >= 1

    def test_too_short(self, medium_graph):
        with pytest.raises(GraphError):
            sample_cycle(medium_graph, 2)


class TestClique:
    def test_shape(self, medium_graph):
        q = sample_clique(medium_graph, 3, seed=1)
        assert q.num_vertices == 3
        assert q.num_edges == 3

    def test_embeds(self, medium_graph):
        engine = GSIEngine(medium_graph)
        q = sample_clique(medium_graph, 3, seed=2)
        assert engine.match(q).num_matches >= 1

    def test_too_small(self, medium_graph):
        with pytest.raises(GraphError):
            sample_clique(medium_graph, 1)

    def test_impossible_size(self, medium_graph):
        with pytest.raises(GraphError):
            sample_clique(medium_graph, 40, max_tries=50)


class TestWorkload:
    def test_count(self, medium_graph):
        qs = template_workload(medium_graph, "path", 3, count=4, seed=9)
        assert len(qs) == 4
        assert all(q.num_edges == 3 for q in qs)

    def test_unknown_template(self, medium_graph):
        with pytest.raises(GraphError):
            template_workload(medium_graph, "spiral", 3, count=1)

    def test_deterministic(self, medium_graph):
        a = template_workload(medium_graph, "star", 3, count=2, seed=5)
        b = template_workload(medium_graph, "star", 3, count=2, seed=5)
        for qa, qb in zip(a, b):
            assert set(qa.edges()) == set(qb.edges())
            assert list(qa.vertex_labels) == list(qb.vertex_labels)
