"""Tests for the always-on serving subsystem (:mod:`repro.serve`).

Covers the wire protocol, deadline micro-batching, concurrent in-flight
dedup (the N-identical-queries → one-execution contract, including the
mid-flight-failure fan-out), admission control, per-tenant quotas, the
metrics snapshot, the TCP front door, and the ``serve`` CLI flags.
"""

import asyncio
import json

import pytest

from repro.cli import main
from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.serve import (
    GSIClient,
    GSIServer,
    ProtocolError,
    ServerMetrics,
    TokenBucket,
    decode_message,
    encode_message,
    make_request,
    query_from_wire,
    query_to_wire,
    translate_result,
)
from repro.service import BatchEngine


@pytest.fixture(scope="module")
def graph():
    return scale_free_graph(200, 3, 5, 5, seed=3)


@pytest.fixture(scope="module")
def queries(graph):
    return [random_walk_query(graph, 4, seed=50 + i) for i in range(8)]


def make_engine(graph, **kwargs):
    return BatchEngine(graph, GSIConfig.gsi_opt(), **kwargs)


def relabeled(query: LabeledGraph) -> LabeledGraph:
    """An isomorphic copy of ``query`` with vertex ids reversed."""
    n = query.num_vertices
    perm = list(reversed(range(n)))  # perm[old] = new
    labels = [0] * n
    for old, new in enumerate(perm):
        labels[new] = query.vertex_label(old)
    edges = [(perm[u], perm[v], lab) for u, v, lab in query.edges()]
    return LabeledGraph(labels, edges)


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_query_round_trip(self, queries):
        for query in queries:
            back = query_from_wire(query_to_wire(query))
            assert list(back.vertex_labels) == \
                list(query.vertex_labels)
            assert set(back.edges()) == set(query.edges())

    def test_frame_round_trip(self, queries):
        msg = make_request("query", 7, tenant="t0",
                           query=queries[0])
        frame = encode_message(msg)
        assert frame.endswith(b"\n")
        assert b"\n" not in frame[:-1]
        assert decode_message(frame) == msg

    @pytest.mark.parametrize("wire", [
        None,
        [],
        {"edges": [[0, 1, 0]]},                         # no labels
        {"vertex_labels": [0], "edges": [[0, 5, 0]]},   # v out of range
        {"vertex_labels": [0, 1], "edges": [[0, 1]]},   # short edge
    ])
    def test_malformed_query_rejected(self, wire):
        with pytest.raises(ProtocolError):
            query_from_wire(wire)

    def test_malformed_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2]\n")  # frames must be objects


# ----------------------------------------------------------------------
# token bucket
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2, clock=lambda: now[0])
        assert bucket.try_take() == (True, 0.0)
        assert bucket.try_take() == (True, 0.0)
        granted, retry_after_ms = bucket.try_take()
        assert not granted
        assert retry_after_ms == pytest.approx(100.0)
        now[0] += 0.1  # one token refilled at 10 tokens/s
        assert bucket.try_take()[0]
        assert not bucket.try_take()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


# ----------------------------------------------------------------------
# result translation (isomorphic dedup followers)
# ----------------------------------------------------------------------


class TestTranslateResult:
    def test_renumbered_query_same_match_set(self, graph, queries):
        engine = GSIEngine(graph, GSIConfig.gsi_opt())
        cache = make_engine(graph).plan_cache
        query = queries[0]
        twin = relabeled(query)
        leader_fp = cache.fingerprint(query)
        follower_fp = cache.fingerprint(twin)
        assert leader_fp.digest == follower_fp.digest

        translated = translate_result(engine.match(query), leader_fp,
                                      follower_fp)
        assert translated.match_set() == \
            engine.match(twin).match_set()

    def test_identical_mapping_shares_object(self, graph, queries):
        engine = GSIEngine(graph, GSIConfig.gsi_opt())
        cache = make_engine(graph).plan_cache
        fp = cache.fingerprint(queries[0])
        result = engine.match(queries[0])
        assert translate_result(result, fp, fp) is result


# ----------------------------------------------------------------------
# micro-batching
# ----------------------------------------------------------------------


class TestMicroBatching:
    def test_concurrent_submissions_coalesce(self, graph, queries):
        engine = make_engine(graph)

        async def scenario():
            async with GSIServer(engine, max_batch=8,
                                 max_delay_ms=50.0) as server:
                outcomes = await asyncio.gather(
                    *[server.submit(q) for q in queries])
            return server, outcomes

        server, outcomes = run(scenario())
        assert all(o.status == "ok" for o in outcomes)
        # 8 distinct queries submitted in one loop tick with a generous
        # deadline: they travel as one batch, not eight.
        assert server.metrics.batches == 1
        assert server.metrics.batch_size_histogram == {8: 1}

    def test_max_batch_splits(self, graph, queries):
        engine = make_engine(graph)

        async def scenario():
            async with GSIServer(engine, max_batch=3,
                                 max_delay_ms=50.0) as server:
                await asyncio.gather(
                    *[server.submit(q) for q in queries])
            return server

        server = run(scenario())
        assert server.metrics.batches >= 3  # ceil(8 / 3)
        assert max(server.metrics.batch_size_histogram) <= 3

    def test_deadline_dispatches_underfull_batch(self, graph, queries):
        engine = make_engine(graph)

        async def scenario():
            async with GSIServer(engine, max_batch=64,
                                 max_delay_ms=5.0) as server:
                outcome = await server.submit(queries[0])
            return server, outcome

        server, outcome = run(scenario())
        # One lone query far below max_batch still completes: the
        # max_delay_ms deadline dispatched its underfull batch.
        assert outcome.status == "ok"
        assert server.metrics.batch_size_histogram == {1: 1}

    def test_constructor_validation(self, graph):
        engine = make_engine(graph)
        for kwargs in ({"max_batch": 0}, {"max_delay_ms": 0.0},
                       {"max_pending": 0}, {"quota_rate": 0.0},
                       {"quota_burst": 0}):
            with pytest.raises(ValueError):
                GSIServer(engine, **kwargs)


# ----------------------------------------------------------------------
# in-flight dedup
# ----------------------------------------------------------------------


class TestInFlightDedup:
    def test_identical_queries_execute_once(self, graph, queries):
        engine = make_engine(graph)
        calls = []
        real_run_batch = engine.run_batch

        def counting_run_batch(batch):
            calls.append(len(batch))
            return real_run_batch(batch)

        engine.run_batch = counting_run_batch
        query = queries[0]

        async def scenario():
            async with GSIServer(engine, max_batch=16,
                                 max_delay_ms=20.0) as server:
                return await asyncio.gather(
                    *[server.submit(query) for _ in range(6)])

        outcomes = run(scenario())
        assert calls == [1]  # one batch containing ONE distinct query
        assert all(o.status == "ok" for o in outcomes)
        # Byte-identical submissions share the leader's MatchResult
        # object verbatim — not a copy, the same object.
        leaders = [o for o in outcomes if not o.deduped]
        followers = [o for o in outcomes if o.deduped]
        assert len(leaders) == 1 and len(followers) == 5
        for follower in followers:
            assert follower.result is leaders[0].result

    def test_renumbered_followers_translated(self, graph, queries):
        engine = make_engine(graph)
        query = queries[1]
        twin = relabeled(query)
        expected_q = GSIEngine(graph, GSIConfig.gsi_opt()) \
            .match(query).match_set()
        expected_t = GSIEngine(graph, GSIConfig.gsi_opt()) \
            .match(twin).match_set()

        async def scenario():
            async with GSIServer(engine, max_batch=16,
                                 max_delay_ms=20.0) as server:
                return await asyncio.gather(server.submit(query),
                                            server.submit(twin))

        first, second = run(scenario())
        assert engine.plan_cache.fingerprint(query).digest == \
            engine.plan_cache.fingerprint(twin).digest
        assert {first.deduped, second.deduped} == {False, True}
        assert first.result.match_set() == expected_q
        assert second.result.match_set() == expected_t

    def test_midflight_failure_reaches_every_waiter_once(
            self, graph, queries):
        engine = make_engine(graph)

        def failing_run_batch(batch):
            raise RuntimeError("executor pool died mid-flight")

        engine.run_batch = failing_run_batch
        query = queries[2]
        num_waiters = 5

        async def scenario():
            async with GSIServer(engine, max_batch=16,
                                 max_delay_ms=20.0) as server:
                outcomes = await asyncio.gather(
                    *[server.submit(query)
                      for _ in range(num_waiters)])
            return server, outcomes

        server, outcomes = run(scenario())
        assert len(outcomes) == num_waiters
        for outcome in outcomes:
            assert outcome.status == "error"
            assert "executor pool died mid-flight" in outcome.error
        # exactly once: every waiter completed, every one as an error,
        # and the failed query left the dedup window.
        assert server.metrics.completed == num_waiters
        assert server.metrics.errors == num_waiters
        assert server._inflight == {}

    def test_dedup_window_closes_after_execution(self, graph, queries):
        engine = make_engine(graph)
        query = queries[3]

        async def scenario():
            async with GSIServer(engine, max_batch=4,
                                 max_delay_ms=5.0) as server:
                first = await server.submit(query)
                second = await server.submit(query)
            return server, first, second

        server, first, second = run(scenario())
        # Sequential submissions never overlap in flight: the second is
        # a fresh execution (plan-cached, but not deduped).
        assert not first.deduped and not second.deduped
        assert server.metrics.deduped == 0
        assert second.plan_cached


# ----------------------------------------------------------------------
# admission control + quotas
# ----------------------------------------------------------------------


class TestAdmission:
    def test_overload_sheds_distinct_queries(self, graph, queries):
        engine = make_engine(graph)
        release = None
        real_run_batch = engine.run_batch

        def gated_run_batch(batch):
            release.wait()
            return real_run_batch(batch)

        engine.run_batch = gated_run_batch

        async def scenario():
            import threading
            nonlocal release
            release = threading.Event()
            async with GSIServer(engine, max_batch=1,
                                 max_delay_ms=1.0,
                                 max_pending=2) as server:
                # First query dispatches and blocks the (gated) batch
                # runner; the queue is empty again.
                blocked = asyncio.ensure_future(
                    server.submit(queries[0]))
                await asyncio.sleep(0.05)
                # Two more distinct queries fill max_pending...
                fills = [asyncio.ensure_future(server.submit(q))
                         for q in queries[1:3]]
                await asyncio.sleep(0)
                # ...so the next distinct query is shed immediately,
                # while a dedup follower of a pending query still rides
                # for free.
                shed = await server.submit(queries[3])
                follower = asyncio.ensure_future(
                    server.submit(queries[1]))
                release.set()
                done = await asyncio.gather(blocked, *fills, follower)
            return server, shed, done

        server, shed, done = run(scenario())
        assert shed.status == "overloaded"
        assert server.metrics.shed == 1
        assert [o.status for o in done] == ["ok"] * 4
        assert done[-1].deduped  # the follower joined, not shed

    def test_quota_rejects_with_retry_hint(self, graph, queries):
        engine = make_engine(graph)

        async def scenario():
            async with GSIServer(engine, max_batch=4,
                                 max_delay_ms=5.0,
                                 quota_rate=0.001,
                                 quota_burst=2) as server:
                a = await server.submit(queries[0], tenant="busy")
                b = await server.submit(queries[1], tenant="busy")
                c = await server.submit(queries[2], tenant="busy")
                d = await server.submit(queries[3], tenant="calm")
            return server, a, b, c, d

        server, a, b, c, d = run(scenario())
        assert a.status == "ok" and b.status == "ok"
        assert c.status == "quota_exceeded"
        assert c.retry_after_ms > 0
        assert d.status == "ok"  # quotas are per tenant
        assert server.metrics.quota_rejected == 1
        tenants = server.metrics.to_dict()["tenants"]
        assert tenants["busy"]["quota_rejected"] == 1
        assert tenants["calm"]["quota_rejected"] == 0


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_snapshot_is_json_serializable(self, graph, queries):
        engine = make_engine(graph)

        async def scenario():
            async with GSIServer(engine, max_batch=4,
                                 max_delay_ms=5.0) as server:
                await asyncio.gather(
                    *[server.submit(q, tenant=f"t{i % 2}")
                      for i, q in enumerate(queries)])
                return server.stats()

        stats = run(scenario())
        payload = json.loads(json.dumps(stats))  # must not raise
        metrics = payload["metrics"]
        assert metrics["requests"]["completed"] == len(queries)
        assert set(metrics["tenants"]) == {"t0", "t1"}
        for series in metrics["tenants"].values():
            lat = series["latency_ms"]
            assert lat["p50"] <= lat["p95"] <= lat["p99"]
        assert metrics["cache"]["lookups"] > 0
        assert sum(metrics["batches"]["size_histogram"].values()) == \
            metrics["batches"]["executed"]

    def test_reservoir_is_bounded(self):
        metrics = ServerMetrics(reservoir=8)
        for i in range(100):
            metrics.record_completed("t", float(i), error=False)
        series = metrics._tenants["t"]
        assert len(series.latencies_ms) <= 8
        assert metrics.completed == 100


# ----------------------------------------------------------------------
# TCP front door
# ----------------------------------------------------------------------


class TestTcp:
    def test_end_to_end_query_stats_ping(self, graph, queries):
        engine = make_engine(graph)
        expected = GSIEngine(graph, GSIConfig.gsi_opt()) \
            .match(queries[0]).match_set()

        async def scenario():
            async with GSIServer(engine, max_batch=4,
                                 max_delay_ms=5.0,
                                 port=0) as server:
                async with GSIClient("127.0.0.1",
                                     server.bound_port) as client:
                    assert await client.ping()
                    responses = await asyncio.gather(
                        *[client.query(queries[0], tenant="tcp")
                          for _ in range(3)])
                    stats = await client.stats()
            return responses, stats

        responses, stats = run(scenario())
        for response in responses:
            assert response["status"] == "ok"
            assert {tuple(m) for m in response["matches"]} == expected
        assert sum(r["deduped"] for r in responses) == 2
        assert stats["metrics"]["requests"]["completed"] == 3

    def test_malformed_frames_answered_not_fatal(self, graph, queries):
        engine = make_engine(graph)

        async def scenario():
            async with GSIServer(engine, max_batch=4,
                                 max_delay_ms=5.0,
                                 port=0) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.bound_port)
                writer.write(b"this is not json\n")
                writer.write(encode_message(
                    {"op": "warp", "id": 1}))
                writer.write(encode_message(
                    {"op": "query", "id": 2,
                     "query": {"vertex_labels": [0],
                               "edges": [[0, 5, 0]]}}))
                writer.write(encode_message(
                    make_request("ping", 3)))
                await writer.drain()
                frames = [decode_message(await reader.readline())
                          for _ in range(4)]
                writer.close()
                await writer.wait_closed()
            return frames

        frames = run(scenario())
        by_id = {f["id"]: f for f in frames}
        assert by_id[None]["status"] == "error"
        assert "unknown op" in by_id[1]["error"]
        assert by_id[2]["status"] == "error"
        assert by_id[3]["status"] == "ok" and by_id[3]["pong"]


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------


class TestServeCli:
    @pytest.mark.parametrize("flags", [
        ["--port", "-1"],
        ["--max-batch", "0"],
        ["--max-delay-ms", "0"],
        ["--max-pending", "-5"],
        ["--quota-rate", "0"],
        ["--quota-burst", "-1"],
        ["--workers", "0"],
        ["--cache-capacity", "0"],
    ])
    def test_non_positive_flags_exit_2(self, flags, capsys):
        assert main(["serve", "--dataset", "enron"] + flags) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_defaults_parse(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["serve"])
        assert args.dataset == "gowalla"
        assert args.max_batch == 16
        assert args.max_delay_ms == 2.0
        assert args.executor == "thread"
        assert args.data_plane == "shm"

    def test_bad_executor_rejected(self):
        from repro.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--executor", "gpu"])
