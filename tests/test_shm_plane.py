"""Tests for the zero-copy shared-memory data plane (repro.storage.shm).

The contract under test: process workers attach engine artifacts from
named shared-memory segments instead of unpickling a full graph per
batch, answers stay byte-identical to the serial path, and segment
lifecycle is leak-free — every segment an owner publishes is unlinked
on shutdown, on engine close, and after a worker crash, under both the
``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.dynamic import DynamicGraph, GraphDelta, StreamEngine
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.service import BatchEngine, make_executor
from repro.service.executors import (
    START_METHOD_ENV,
    EngineBuildSpec,
    ProcessExecutor,
)
from repro.shard import ShardedEngine, ShardedGraph
from repro.storage import shm
from repro.storage.shm import StaleHandleError


@pytest.fixture()
def segment_baseline():
    """Owned-segment snapshot; the test must return to it (no leaks)."""
    before = set(shm.owned_segment_names())
    yield before
    leaked = set(shm.owned_segment_names()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _kill_worker(_shared, _payload):  # simulates an OOM-killed worker
    os._exit(1)


# ----------------------------------------------------------------------
# Block-layer round trips
# ----------------------------------------------------------------------

class TestGraphRoundTrip:
    def test_attach_reproduces_csr(self, segment_baseline):
        graph = scale_free_graph(80, 3, 4, 3, seed=2)
        handle, lease = shm.publish_graph(graph, chunk=16)
        try:
            attached = shm.attach_graph(handle)
            assert np.array_equal(attached._vlabels, graph._vlabels)
            assert np.array_equal(attached._offsets, graph._offsets)
            assert np.array_equal(attached._nbr, graph._nbr)
            assert np.array_equal(attached._elab, graph._elab)
            assert attached._edge_map == graph._edge_map
            assert attached._edge_label_freq == graph._edge_label_freq
        finally:
            lease.release()

    def test_attached_arrays_read_only(self, segment_baseline):
        graph = scale_free_graph(40, 3, 4, 3, seed=3)
        handle, lease = shm.publish_graph(graph)
        try:
            attached = shm.attach_graph(handle)
            with pytest.raises(ValueError):
                attached._nbr[0] = 99
        finally:
            lease.release()

    def test_stale_attach_raises(self, segment_baseline):
        graph = scale_free_graph(30, 3, 4, 3, seed=4)
        handle, lease = shm.publish_graph(graph)
        lease.release()
        shm._ATTACH_CACHE.clear()  # drop any memoized attachment
        with pytest.raises(StaleHandleError):
            shm.attach_graph(handle)

    def test_lease_release_idempotent(self, segment_baseline):
        graph = scale_free_graph(20, 3, 4, 3, seed=5)
        _, lease = shm.publish_graph(graph)
        lease.release()
        lease.release()  # second release is a no-op, not a crash


class TestPatchPublication:
    def test_patch_shares_untouched_chunks(self, segment_baseline):
        graph = scale_free_graph(64, 3, 4, 3, seed=6)
        h1, l1 = shm.publish_graph(graph, chunk=16)
        try:
            dyn = DynamicGraph(graph)
            delta = GraphDelta.for_graph(graph)
            delta.add_edge(0, graph.num_vertices - 1, 1)
            dyn.apply(delta)
            commit = dyn.commit()
            h2, l2 = shm.publish_graph_patch(
                h1, commit.snapshot, commit.touched_vertices, chunk=16)
            try:
                shared = set(h1.names) & set(h2.names)
                assert shared, "patch publication reused no chunks"
                # The shared chunks survive the previous lease.
                l1.release()
                attached = shm.attach_graph(h2)
                assert np.array_equal(attached._nbr,
                                      commit.snapshot._nbr)
                assert np.array_equal(attached._offsets,
                                      commit.snapshot._offsets)
            finally:
                l2.release()
        finally:
            l1.release()


class TestEngineRoundTrip:
    def test_attached_engine_matches_identically(self, segment_baseline):
        graph = scale_free_graph(100, 3, 4, 3, seed=7)
        config = GSIConfig.gsi_opt()
        engine = GSIEngine(graph, config)
        queries = [random_walk_query(graph, 4, seed=s)
                   for s in range(3)]
        handle, lease = shm.publish_engine(engine, epoch=1)
        try:
            attached = shm.attach_engine(handle, config)
            for query in queries:
                mine = attached.match(query)
                ref = engine.match(query)
                assert mine.match_set() == ref.match_set()
                assert mine.elapsed_ms == ref.elapsed_ms
                assert (mine.counters.transactions
                        == ref.counters.transactions)
        finally:
            lease.release()

    def test_handle_size_independent_of_graph(self, segment_baseline):
        """The acceptance measurement at unit scale: the pickled spec
        that crosses the pipe must not grow with |G|."""
        config = GSIConfig.gsi_opt()
        sizes = {}
        for n in (100, 400):
            engine = GSIEngine(scale_free_graph(n, 3, 4, 3, seed=8),
                               config)
            handle, lease = shm.publish_engine(engine, epoch=n)
            try:
                spec = EngineBuildSpec(graph=None, config=config,
                                       artifacts=handle)
                sizes[n] = len(pickle.dumps(spec))
                legacy = len(pickle.dumps(
                    EngineBuildSpec(graph=engine.graph, config=config)))
                assert sizes[n] < legacy / 4
            finally:
                lease.release()
        assert abs(sizes[400] - sizes[100]) < 512, sizes


# ----------------------------------------------------------------------
# Executor attach paths: fork and spawn, crash recovery, no leaks
# ----------------------------------------------------------------------

def _available_start_methods():
    wanted = ("fork", "spawn")
    have = multiprocessing.get_all_start_methods()
    return [m for m in wanted if m in have]


class TestExecutorAttachPaths:
    @pytest.mark.parametrize("start_method", _available_start_methods())
    def test_batch_identical_under_start_method(self, start_method,
                                                segment_baseline):
        graph = scale_free_graph(120, 3, 4, 3, seed=17)
        config = GSIConfig.gsi_opt()
        queries = [random_walk_query(graph, 4, seed=s)
                   for s in range(4)]
        serial = BatchEngine(graph, config).run_batch(queries)
        executor = ProcessExecutor(max_workers=2,
                                   start_method=start_method)
        try:
            service = BatchEngine(graph, config, executor=executor)
            report = service.run_batch(queries)
        finally:
            executor.shutdown()
        assert [r.match_set() for r in report.results] == \
            [r.match_set() for r in serial.results]
        assert [r.elapsed_ms for r in report.results] == \
            [r.elapsed_ms for r in serial.results]
        assert executor.last_shipment["plane"] == "shm"

    def test_start_method_env_var(self, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        assert ProcessExecutor(max_workers=1).start_method == "spawn"
        monkeypatch.delenv(START_METHOD_ENV)
        assert ProcessExecutor(max_workers=1).start_method is None

    def test_shutdown_unlinks_segments(self, segment_baseline):
        graph = scale_free_graph(60, 3, 4, 3, seed=18)
        config = GSIConfig.gsi_opt()
        queries = [random_walk_query(graph, 3, seed=s)
                   for s in range(2)]
        executor = ProcessExecutor(max_workers=2)
        service = BatchEngine(graph, config, executor=executor)
        service.run_batch(queries)
        published = set(shm.owned_segment_names()) - segment_baseline
        assert published, "shm plane published no segments"
        executor.shutdown()
        assert not (set(shm.owned_segment_names()) - segment_baseline)

    def test_worker_crash_unlinks_segments(self, segment_baseline):
        """A worker dying mid-batch (OOM-killer style) must not leak
        segments: recovery republishes under fresh names and shutdown
        unlinks everything."""
        graph = scale_free_graph(60, 3, 4, 3, seed=19)
        config = GSIConfig.gsi_opt()
        queries = [random_walk_query(graph, 3, seed=s)
                   for s in range(2)]
        executor = ProcessExecutor(max_workers=2)
        try:
            service = BatchEngine(graph, config, executor=executor)
            first = service.run_batch(queries)
            with pytest.raises(Exception):
                executor.map_tasks(_kill_worker, [0])
            # Next batch recovers: fresh pool, fresh publication.
            again = service.run_batch(queries)
            assert [r.match_set() for r in again.results] == \
                [r.match_set() for r in first.results]
        finally:
            executor.shutdown()
        assert not (set(shm.owned_segment_names()) - segment_baseline)


# ----------------------------------------------------------------------
# Shard epochs: rebuild invalidates worker-side handles
# ----------------------------------------------------------------------

class TestShardEpochs:
    def test_rebuild_invalidates_stale_handles(self, segment_baseline):
        graph = scale_free_graph(90, 3, 4, 3, seed=21)
        queries = [random_walk_query(graph, 3, seed=s)
                   for s in range(3)]
        sharded = ShardedGraph(graph, 2, halo_hops=2)
        reference = ShardedEngine(sharded).run_batch(queries)
        ref_sets = [item.result.match_set()
                    for item in reference.items]

        executor = make_executor("process", 2)
        engine = ShardedEngine(sharded, executor=executor)
        try:
            report = engine.run_batch(queries)
            assert [item.result.match_set()
                    for item in report.items] == ref_sets
            assert engine._plane is not None
            stale_spec = engine._plane[0].specs[0]
            old_epoch = engine._plane[0].epoch

            engine.rebuild()
            # The old publication is unlinked: a worker still holding
            # the superseded handle re-attaches and fails loudly
            # instead of silently serving retired arrays.
            shm._ATTACH_CACHE.clear()
            with pytest.raises(StaleHandleError):
                stale_spec.build()

            after = engine.run_batch(queries)
            assert [item.result.match_set()
                    for item in after.items] == ref_sets
            assert engine._plane[0].epoch > old_epoch
        finally:
            engine.close()
            executor.shutdown()


# ----------------------------------------------------------------------
# Stream plane: patched snapshots, byte-identical deltas, O(handle) ship
# ----------------------------------------------------------------------

def _drive_stream(graph, queries, executor, plane_chunk=None):
    engine = StreamEngine(graph, executor=executor)
    if plane_chunk is not None:
        engine.plane_chunk = plane_chunk
    try:
        qids = [engine.register(q) for q in queries]
        deltas = []
        shipped = []
        n0 = graph.num_vertices
        live = {(u, v) for u, v, _ in graph.edges()}
        for step in range(3):
            delta = GraphDelta.for_graph(engine.graph)
            added = 0  # two fresh edges per batch, scanned deterministically
            for u in range(n0):
                for v in range(u + 1, n0):
                    if (u, v) not in live:
                        delta.add_edge(u, v, 1)
                        live.add((u, v))
                        added += 1
                        break
                if added == step + 1:
                    break
            if step == 1:
                u, v = min(live)
                delta.remove_edge(u, v)
                live.discard((u, v))
            if step == 2:
                vid = delta.add_vertex(0)
                delta.add_edge(0, vid, 1)
            report = engine.apply_batch(delta)
            deltas.append((report.total_created,
                           report.total_destroyed))
            shipment = getattr(executor, "last_shipment", None) \
                if executor is not None else None
            shipped.append(None if shipment is None
                           else shipment["context_bytes"])
        final = [frozenset(engine.matches(qid)) for qid in qids]
        return deltas, final, shipped
    finally:
        engine.close()


class TestStreamPlane:
    def test_planes_byte_identical_and_handle_sized(self,
                                                    segment_baseline):
        graph = scale_free_graph(150, 3, 4, 3, seed=23)
        queries = [random_walk_query(graph, 3, seed=s)
                   for s in range(3)]
        serial = _drive_stream(graph, queries, None)

        shm_exec = make_executor("process", 2, data_plane="shm")
        try:
            # A tiny chunk forces multi-chunk publications and patch
            # reuse on every batch.
            over_shm = _drive_stream(graph, queries, shm_exec,
                                     plane_chunk=16)
        finally:
            shm_exec.shutdown()

        pickle_exec = make_executor("process", 2, data_plane="pickle")
        try:
            over_pickle = _drive_stream(graph, queries, pickle_exec)
        finally:
            pickle_exec.shutdown()

        assert over_shm[0] == serial[0] and over_shm[1] == serial[1]
        assert over_pickle[0] == serial[0] and over_pickle[1] == serial[1]
        # Steady-state shipped context: handles, not the graph.
        assert all(s < p / 3 for s, p in zip(over_shm[2],
                                             over_pickle[2])), (
            over_shm[2], over_pickle[2])

    def test_close_releases_snapshots(self, segment_baseline):
        graph = scale_free_graph(60, 3, 4, 3, seed=24)
        executor = make_executor("process", 2)
        try:
            engine = StreamEngine(graph, executor=executor)
            engine.register(random_walk_query(graph, 3, seed=0))
            delta = GraphDelta.for_graph(graph)
            delta.add_edge(0, graph.num_vertices - 1, 1)
            engine.apply_batch(delta)
            assert engine._plane is not None
            engine.close()
            assert engine._plane is None
            engine.close()  # idempotent
        finally:
            executor.shutdown()
