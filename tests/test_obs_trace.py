"""Tests for the tracing core (``repro.obs.trace``).

Two layers: unit tests of span/tracer semantics (thread-local nesting,
explicit parents, the null fast path, ``shipped_spans``), and the
load-bearing integration claim — a traced batch over the
process-pool executor, sharded and unsharded, under both fork and
spawn start methods, yields ONE connected span tree whose worker
spans carry worker pids and re-parent under the coordinator's spans.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.config import GSIConfig
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.obs.export import validate_span_tree
from repro.obs.trace import (
    NullSpan,
    NullTracer,
    TraceContext,
    Tracer,
    current_trace_context,
    get_tracer,
    set_tracer,
    shipped_spans,
    tracing_active,
)
from repro.service import BatchEngine
from repro.service.executors import ProcessExecutor
from repro.shard import ShardedEngine, ShardedGraph


@pytest.fixture(autouse=True)
def _null_tracer_between_tests():
    """Every test starts and ends on the disabled (null) tracer."""
    set_tracer(None)
    yield
    set_tracer(None)


# ----------------------------------------------------------------------
# Span / tracer semantics
# ----------------------------------------------------------------------


class TestSpanSemantics:
    def test_with_nesting_parents_automatically(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        finished = tracer.finished()
        assert [s["name"] for s in finished] == ["inner", "outer"]
        assert finished[1]["parent_id"] is None

    def test_explicit_parent_beats_stack(self):
        tracer = Tracer()
        remote = TraceContext(tracer.trace_id, "feedbeefcafe0123")
        with tracer.span("active"):
            span = tracer.span("child", parent=remote)
            span.end()
        assert tracer.finished()[0]["parent_id"] == "feedbeefcafe0123"

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("once")
        span.end()
        span.end()
        assert len(tracer.finished()) == 1

    def test_exception_is_recorded_as_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        record = tracer.finished()[0]
        assert record["attrs"]["error"] == "RuntimeError"

    def test_span_dict_shape(self):
        tracer = Tracer()
        with tracer.span("op", shard="3") as span:
            span.set_attribute("matches", 7)
        record = tracer.finished()[0]
        assert set(record) == {"name", "trace_id", "span_id",
                               "parent_id", "start_ms", "duration_ms",
                               "pid", "attrs"}
        assert record["attrs"] == {"shard": "3", "matches": 7}
        assert record["duration_ms"] >= 0.0

    def test_tracer_with_parent_roots_under_it(self):
        parent = TraceContext("aaaa", "bbbb")
        tracer = Tracer(parent=parent)
        assert tracer.trace_id == "aaaa"
        span = tracer.span("rooted")
        span.end()
        assert tracer.finished()[0]["parent_id"] == "bbbb"

    def test_absorb_merges_shipped_dicts(self):
        tracer = Tracer()
        tracer.absorb([{"name": "remote", "trace_id": tracer.trace_id,
                        "span_id": "x", "parent_id": None,
                        "start_ms": 0.0, "duration_ms": 1.0,
                        "pid": 1, "attrs": {}}])
        assert [s["name"] for s in tracer.finished()] == ["remote"]


class TestGlobalTracer:
    def test_default_is_null_and_free(self):
        assert isinstance(get_tracer(), NullTracer)
        assert not tracing_active()
        assert current_trace_context() is None
        span = get_tracer().span("ignored")
        assert isinstance(span, NullSpan)
        # The null span is shared and inert.
        assert get_tracer().span("also-ignored") is span
        with span:
            span.set_attribute("k", "v")
        assert get_tracer().finished() == []

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        assert isinstance(previous, NullTracer)
        assert tracing_active()
        assert set_tracer(None) is tracer
        assert not tracing_active()

    def test_current_trace_context_tracks_active_span(self):
        tracer = Tracer()
        set_tracer(tracer)
        with tracer.span("live") as span:
            ctx = current_trace_context()
            assert ctx == TraceContext(tracer.trace_id, span.span_id)
        assert current_trace_context() is None


class TestShippedSpans:
    def test_records_locally_when_disabled(self):
        ctx = TraceContext("t" * 16, "p" * 16)
        with shipped_spans(ctx) as out:
            with get_tracer().span("worker.op"):
                pass
        assert not tracing_active()
        assert [s["name"] for s in out] == ["worker.op"]
        assert out[0]["trace_id"] == ctx.trace_id
        assert out[0]["parent_id"] == ctx.span_id

    def test_noop_when_ctx_is_none(self):
        with shipped_spans(None) as out:
            get_tracer().span("dropped").end()
        assert out == []

    def test_noop_when_recording_tracer_active(self):
        tracer = Tracer()
        set_tracer(tracer)
        ctx = tracer.span("root").context()
        with shipped_spans(ctx) as out:
            with get_tracer().span("local"):
                pass
        assert out == []  # landed in the active tracer instead
        assert "local" in [s["name"] for s in tracer.finished()]


# ----------------------------------------------------------------------
# Cross-process propagation: one connected tree under fork AND spawn
# ----------------------------------------------------------------------


def _available_start_methods():
    wanted = ("fork", "spawn")
    have = multiprocessing.get_all_start_methods()
    return [m for m in wanted if m in have]


@pytest.fixture(scope="module")
def trace_graph():
    return scale_free_graph(80, 3, 4, 3, seed=11)


@pytest.fixture(scope="module")
def trace_queries(trace_graph):
    return [random_walk_query(trace_graph, 4, seed=s) for s in range(4)]


def _run_traced(run):
    """Run ``run()`` under a fresh recording tracer; return its spans."""
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        with tracer.span("test.root"):
            run()
    finally:
        set_tracer(previous)
    return tracer.finished()


class TestCrossProcessPropagation:
    @pytest.mark.parametrize("start_method", _available_start_methods())
    def test_sharded_process_batch_is_one_tree(self, start_method,
                                               trace_graph,
                                               trace_queries):
        engine = ShardedEngine(ShardedGraph(trace_graph, 2, halo_hops=3),
                               GSIConfig.gsi_opt())
        executor = ProcessExecutor(max_workers=2,
                                   start_method=start_method)
        try:
            spans = _run_traced(
                lambda: engine.run_batch(trace_queries,
                                         executor=executor))
        finally:
            executor.shutdown()
            engine.close()
        tree = validate_span_tree(spans)
        assert tree["connected"], tree
        assert len(tree["roots"]) == 1
        names = {s["name"] for s in spans}
        assert {"test.root", "shard.run_batch", "shard.scatter",
                "shard.gather", "shard.execute",
                "gsi.execute"} <= names
        # Worker spans really came from other processes...
        pids = {s["pid"] for s in spans}
        assert len(pids) >= 2
        # ...and every shard execution re-parented under this trace.
        executes = [s for s in spans if s["name"] == "shard.execute"]
        assert len(executes) == 2 * len(trace_queries)  # 2 shards
        by_id = {s["span_id"]: s for s in spans}
        for span in executes:
            assert by_id[span["parent_id"]]["name"] == "gsi.prepare"

    @pytest.mark.parametrize("start_method", _available_start_methods())
    def test_unsharded_process_batch_is_one_tree(self, start_method,
                                                 trace_graph,
                                                 trace_queries):
        executor = ProcessExecutor(max_workers=2,
                                   start_method=start_method)
        try:
            engine = BatchEngine(trace_graph, GSIConfig.gsi_opt(),
                                 executor=executor)
            spans = _run_traced(
                lambda: engine.run_batch(trace_queries))
        finally:
            executor.shutdown()
        tree = validate_span_tree(spans)
        assert tree["connected"], tree
        names = {s["name"] for s in spans}
        assert {"test.root", "batch.run",
                "executor.execute_prepared", "gsi.execute"} <= names
        assert len({s["pid"] for s in spans}) >= 2

    def test_disabled_tracing_ships_no_spans(self, trace_graph,
                                             trace_queries):
        executor = ProcessExecutor(max_workers=2, start_method="fork")
        try:
            engine = BatchEngine(trace_graph, GSIConfig.gsi_opt(),
                                 executor=executor)
            report = engine.run_batch(trace_queries)
        finally:
            executor.shutdown()
        assert report.errors == 0
        assert get_tracer().finished() == []
        assert not tracing_active()
