"""Unit tests for the edge-oriented join internals (GpSM/GunrockSM)."""

import pytest

from repro.baselines.edge_join import EdgeJoinCostProfile, EdgeJoinEngine
from repro.baselines.gpsm import GpSMEngine
from repro.errors import GraphError
from repro.gpusim.device import Device
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import GraphBuilder, LabeledGraph


@pytest.fixture(scope="module")
def graph():
    return scale_free_graph(150, 3, 4, 3, seed=5)


class TestEdgeOrder:
    def test_covers_all_query_edges(self, graph):
        engine = GpSMEngine(graph)
        q = random_walk_query(graph, 6, seed=1)
        sizes = {u: 10 for u in range(6)}
        order = engine._edge_order(q, sizes)
        assert sorted((min(a, b), max(a, b), l) for a, b, l in order) \
            == sorted((min(a, b), max(a, b), l) for a, b, l in q.edges())

    def test_each_edge_touches_covered_prefix(self, graph):
        engine = GpSMEngine(graph)
        q = random_walk_query(graph, 7, seed=2)
        order = engine._edge_order(q, {u: 5 for u in range(7)})
        covered = {order[0][0], order[0][1]}
        for a, b, _ in order[1:]:
            assert a in covered or b in covered
            covered.update((a, b))

    def test_edgeless_query_rejected(self, graph):
        engine = GpSMEngine(graph)
        with pytest.raises(GraphError):
            engine._edge_order(LabeledGraph([0], []), {0: 1})

    def test_starts_from_rarest_endpoint(self, graph):
        engine = GpSMEngine(graph)
        q = random_walk_query(graph, 5, seed=3)
        sizes = {u: 100 for u in range(5)}
        sizes[2] = 1  # force edges at vertex 2 first
        order = engine._edge_order(q, sizes)
        if any(2 in (a, b) for a, b, _ in q.edges()):
            assert 2 in (order[0][0], order[0][1])


class TestCandidateEdges:
    def test_pairs_are_real_edges(self, graph):
        engine = GpSMEngine(graph)
        q = random_walk_query(graph, 4, seed=1)
        device = Device()
        candidates = engine._filter(q, device)
        u1, u2, lab = next(iter(q.edges()))
        pairs = engine._collect_candidate_edges(u1, u2, lab, candidates,
                                                device)
        for v1, v2 in pairs:
            assert graph.has_edge(v1, v2)
            assert graph.edge_label(v1, v2) == lab

    def test_two_step_doubles_gld(self, graph):
        engine = GpSMEngine(graph)
        q = random_walk_query(graph, 4, seed=1)
        device = Device()
        candidates = engine._filter(q, device)
        before = device.meter.snapshot()
        u1, u2, lab = next(iter(q.edges()))
        engine._collect_candidate_edges(u1, u2, lab, candidates, device)
        delta = device.meter.snapshot().diff(before)
        # counted GLD is exactly twice the single-pass read work
        assert delta.labeled_gld["join"] % 2 == 0
        assert delta.kernel_launches >= 2  # count + write kernels


class TestJoinFilter:
    def test_semijoin_keeps_only_real_edges(self):
        # Data: square 0-1-2-3 with labels; rows over (u0, u1) pairs.
        b = GraphBuilder()
        ids = b.add_vertices([0, 0, 0, 0])
        b.add_edge(0, 1, 0)
        b.add_edge(1, 2, 0)
        b.add_edge(2, 3, 0)
        g = b.build()
        engine = GpSMEngine(g)
        device = Device()
        rows = [(0, 1), (0, 2), (1, 2), (3, 0)]
        kept = engine._join_filter(rows, [10, 11], 10, 11, 0, device)
        assert set(kept) == {(0, 1), (1, 2)}

    def test_wrong_label_filtered(self):
        g = LabeledGraph([0, 0], [(0, 1, 7)])
        engine = GpSMEngine(g)
        kept = engine._join_filter([(0, 1)], [5, 6], 5, 6, 8, Device())
        assert kept == []


class TestCostProfile:
    def test_default_profile(self):
        p = EdgeJoinCostProfile()
        assert p.candidate_probe_gld == 2
        assert p.batched_intermediate_writes

    def test_base_class_filter_abstract(self, graph):
        engine = EdgeJoinEngine(graph)
        with pytest.raises(NotImplementedError):
            engine._filter(LabeledGraph([0], []), Device())

    def test_storage_kind_pcsr(self, graph):
        engine = GpSMEngine(graph, storage_kind="pcsr")
        assert engine.store.kind == "pcsr"
        q = random_walk_query(graph, 4, seed=2)
        csr_result = GpSMEngine(graph).match(q)
        pcsr_result = engine.match(q)
        assert csr_result.match_set() == pcsr_result.match_set()
