"""Cross-engine equivalence: all six engines return the same match sets.

Also checks GSI against NetworkX's subgraph monomorphism oracle, pinning
down the semantics: non-induced, label-preserving, injective embeddings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GSIConfig, GSIEngine, random_walk_query
from repro.baselines import (
    CFLMatchEngine,
    GpSMEngine,
    GunrockSMEngine,
    TurboISOEngine,
    UllmannEngine,
    VF2Engine,
)
from repro.graph.generators import scale_free_graph

from oracle import brute_force_matches

ALL_ENGINES = [
    lambda g: GSIEngine(g, GSIConfig.gsi()),
    lambda g: GSIEngine(g, GSIConfig.gsi_opt()),
    lambda g: GSIEngine(g, GSIConfig.baseline()),
    UllmannEngine,
    VF2Engine,
    CFLMatchEngine,
    TurboISOEngine,
    GpSMEngine,
    GunrockSMEngine,
]


class TestAllEnginesAgree:
    @pytest.mark.parametrize("qseed", range(6))
    def test_same_match_sets(self, small_graph, qseed):
        q = random_walk_query(small_graph, 4, seed=qseed)
        ref = brute_force_matches(q, small_graph)
        for factory in ALL_ENGINES:
            engine = factory(small_graph)
            got = engine.match(q).match_set()
            assert got == ref, getattr(engine, "name", factory)

    def test_medium_graph_bigger_queries(self, medium_graph):
        q = random_walk_query(medium_graph, 7, seed=11)
        results = {}
        for factory in ALL_ENGINES:
            engine = factory(medium_graph)
            results[engine.name + str(id(engine))] = \
                engine.match(q).match_set()
        sets = list(results.values())
        assert all(s == sets[0] for s in sets)


class TestNetworkXOracle:
    def test_gsi_matches_networkx_monomorphisms(self, small_graph):
        nx = pytest.importorskip("networkx")
        from networkx.algorithms import isomorphism

        def to_nx(g):
            G = nx.Graph()
            for v in range(g.num_vertices):
                G.add_node(v, label=g.vertex_label(v))
            for u, v, lab in g.edges():
                G.add_edge(u, v, label=lab)
            return G

        G = to_nx(small_graph)
        engine = GSIEngine(small_graph)
        for seed in range(5):
            q = random_walk_query(small_graph, 4, seed=seed)
            Q = to_nx(q)
            gm = isomorphism.GraphMatcher(
                G, Q,
                node_match=lambda a, b: a["label"] == b["label"],
                edge_match=lambda a, b: a["label"] == b["label"])
            nx_matches = set()
            for mapping in gm.subgraph_monomorphisms_iter():
                inv = {qu: gv for gv, qu in mapping.items()}
                nx_matches.add(tuple(inv[u]
                                     for u in range(q.num_vertices)))
            assert engine.match(q).match_set() == nx_matches


@settings(max_examples=15, deadline=None)
@given(gseed=st.integers(0, 5), qseed=st.integers(0, 200),
       qsize=st.integers(2, 5))
def test_property_random_graphs_engines_agree(gseed, qseed, qsize):
    g = scale_free_graph(80, 2, 3, 2, seed=gseed)
    q = random_walk_query(g, qsize, seed=qseed)
    ref = brute_force_matches(q, g)
    assert GSIEngine(g, GSIConfig.gsi()).match(q).match_set() == ref
    assert VF2Engine(g).match(q).match_set() == ref
    assert GpSMEngine(g).match(q).match_set() == ref
