"""Differential tests for the vectorized join lane (repro.core.kernels).

The contract is byte-identity: for every config preset, every executor
and every workload, ``join_kernel="vector"`` (and ``"numba"`` where
available) must reproduce the per-row lane's match sets, meter totals,
simulated latency and cache accounting exactly.
"""

import sys

import numpy as np
import pytest

from repro.core.config import GSIConfig
from repro.core.dup_removal import sharing_assignment
from repro.core.engine import GSIEngine
from repro.core.kernels import (
    HAVE_NUMBA,
    _segment_membership,
    _shared_hit_mask,
)
from repro.errors import ConfigError
from repro.gpusim.constants import WARPS_PER_BLOCK
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.service.batch import BatchEngine
from repro.service.executors import make_executor

sys.path.insert(0, "tests")
from dataclasses import replace  # noqa: E402
from fuzz.fuzz_harness import run_fuzz  # noqa: E402

PRESETS = {
    "baseline": GSIConfig.baseline,
    "with_ds": GSIConfig.with_ds,
    "with_pc": GSIConfig.with_pc,
    "with_so": GSIConfig.with_so,
    "gsi": GSIConfig.gsi,
    "with_lb": GSIConfig.with_lb,
    "gsi_opt": GSIConfig.gsi_opt,
}

LANES = ["vector"] + (["numba"] if HAVE_NUMBA else [])


@pytest.fixture(scope="module")
def graph():
    return scale_free_graph(num_vertices=120, edges_per_vertex=4,
                            num_vertex_labels=3, num_edge_labels=2,
                            seed=11)


@pytest.fixture(scope="module")
def queries(graph):
    # extra_edges > 0 forces multi-linking-edge steps (refine path).
    return [random_walk_query(graph, num_vertices=k, seed=s,
                              extra_edges=e)
            for k in (3, 4, 5) for s in (0, 1) for e in (0, 2)]


def _identical(a, b):
    assert a.matches == b.matches
    assert a.counters == b.counters
    assert a.elapsed_ms == b.elapsed_ms
    assert a.timed_out == b.timed_out


class TestConfigKnob:
    def test_default_is_rows(self):
        assert GSIConfig().join_kernel in ("rows", "vector", "numba")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("GSI_JOIN_KERNEL", "vector")
        assert GSIConfig().join_kernel == "vector"
        monkeypatch.delenv("GSI_JOIN_KERNEL")
        assert GSIConfig().join_kernel == "rows"

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            GSIConfig(join_kernel="cuda")

    def test_presets_accept_override(self):
        cfg = replace(GSIConfig.gsi_opt(), join_kernel="vector")
        assert cfg.join_kernel == "vector"


class TestHelpers:
    def test_shared_hit_mask_matches_sharing_assignment(self):
        rng = np.random.default_rng(5)
        vcol = rng.integers(0, 9, size=3 * WARPS_PER_BLOCK + 7)
        expect = np.zeros(len(vcol), dtype=bool)
        for start in range(0, len(vcol), WARPS_PER_BLOCK):
            block = [int(x) for x in vcol[start:start + WARPS_PER_BLOCK]]
            addr = sharing_assignment(block)
            for off, a in enumerate(addr):
                expect[start + off] = a != off
        assert np.array_equal(_shared_hit_mask(vcol), expect)

    def test_segment_membership_matches_intersect1d(self):
        rng = np.random.default_rng(6)
        segments = [np.unique(rng.integers(0, 40, size=n))
                    for n in (0, 3, 10, 25)]
        lens = np.array([len(s) for s in segments], dtype=np.int64)
        starts = np.zeros(len(segments) + 1, dtype=np.int64)
        np.cumsum(lens, out=starts[1:])
        concat = np.concatenate(segments)
        bufs = [np.unique(rng.integers(0, 40, size=8)) for _ in range(12)]
        seg_of_row = rng.integers(0, len(segments), size=len(bufs))
        values = np.concatenate(bufs)
        seg_of = np.repeat(seg_of_row,
                           [len(b) for b in bufs]).astype(np.int64)
        got = _segment_membership(values, seg_of, starts, lens, concat,
                                  use_numba=False)
        pos = 0
        for b, s in zip(bufs, seg_of_row):
            expect = np.intersect1d(b, segments[s], assume_unique=True)
            assert np.array_equal(b[got[pos:pos + len(b)]], expect)
            pos += len(b)


class TestLaneDifferential:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("lane", LANES)
    def test_presets_byte_identical(self, graph, queries, preset, lane):
        rows_cfg = replace(PRESETS[preset](), join_kernel="rows")
        lane_cfg = replace(PRESETS[preset](), join_kernel=lane)
        e_rows = GSIEngine(graph, rows_cfg)
        e_lane = GSIEngine(graph, lane_cfg)
        for q in queries:
            _identical(e_rows.match(q), e_lane.match(q))

    def test_budget_abort_identical(self, graph, queries):
        for budget in (0.001, 0.01):
            base = replace(GSIConfig.gsi_opt(), budget_ms=budget)
            e_rows = GSIEngine(graph, replace(base, join_kernel="rows"))
            e_vec = GSIEngine(graph, replace(base, join_kernel="vector"))
            timed_out = 0
            for q in queries:
                a, b = e_rows.match(q), e_vec.match(q)
                _identical(a, b)
                timed_out += a.timed_out
            if budget == 0.001:
                assert timed_out  # the abort path was actually exercised

    def test_row_limit_abort_identical(self, graph, queries):
        base = replace(GSIConfig.gsi(), max_intermediate_rows=20)
        e_rows = GSIEngine(graph, replace(base, join_kernel="rows"))
        e_vec = GSIEngine(graph, replace(base, join_kernel="vector"))
        for q in queries:
            _identical(e_rows.match(q), e_vec.match(q))

    def test_kernel_records_identical(self, graph, queries):
        # Same kernel names in the same order — scheduling is shared.
        cfg = GSIConfig.gsi_opt()
        ra = GSIEngine(graph, replace(cfg, join_kernel="rows")).match(
            queries[-1])
        rb = GSIEngine(graph, replace(cfg, join_kernel="vector")).match(
            queries[-1])
        assert ra.counters.kernel_launches == rb.counters.kernel_launches

    def test_multi_linking_edge_cycle_queries(self, graph):
        # Explicit cyclic shapes: every late join step carries >= 2
        # linking edges, the refine-heavy regime.
        labels = [graph.vertex_labels[v] for v in range(4)]
        triangle = LabeledGraph(labels[:3],
                                [(0, 1, 0), (1, 2, 0), (0, 2, 0)])
        diamond = LabeledGraph(labels,
                               [(0, 1, 0), (1, 2, 0), (2, 3, 0),
                                (0, 3, 0), (0, 2, 0)])
        cfg = GSIConfig.gsi_opt()
        for q in (triangle, diamond):
            _identical(
                GSIEngine(graph, replace(cfg, join_kernel="rows")).match(q),
                GSIEngine(graph, replace(cfg, join_kernel="vector")).match(q))


class TestFuzzSliceUnderVector:
    @pytest.mark.parametrize("profile", ["uniform", "churn"])
    def test_fuzz_profiles_pass_and_agree(self, profile, monkeypatch):
        # run_fuzz self-checks every batch against a brute-force oracle;
        # running it under the vector lane validates the lane end to end
        # (StreamEngine default-constructs GSIConfig, so the env var is
        # the selection mechanism — same as the CI leg).
        monkeypatch.delenv("GSI_JOIN_KERNEL", raising=False)
        rows_report = run_fuzz(9, profile, num_batches=3, batch_size=8)
        monkeypatch.setenv("GSI_JOIN_KERNEL", "vector")
        vec_report = run_fuzz(9, profile, num_batches=3, batch_size=8)
        assert rows_report == vec_report


class TestBatchServiceDifferential:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_executors_byte_identical(self, graph, queries, kind):
        # Repeat a query so plan-cache hits are part of the comparison.
        workload = queries[:4] + queries[:2]
        reports = {}
        for lane in ("rows", "vector"):
            cfg = replace(GSIConfig.gsi_opt(), join_kernel=lane)
            with make_executor(kind, 2) as executor:
                engine = BatchEngine(graph, cfg, executor=executor)
                reports[lane] = engine.run_batch(workload)
        a, b = reports["rows"], reports["vector"]
        assert a.cache == b.cache
        for ia, ib in zip(a.items, b.items):
            assert ia.result.matches == ib.result.matches
            assert ia.result.counters == ib.result.counters
            assert ia.result.elapsed_ms == ib.result.elapsed_ms
            assert ia.plan_cached == ib.plan_cached


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaLane:
    def test_numba_matches_vector(self, graph, queries):
        cfg = GSIConfig.gsi_opt()
        for q in queries[:3]:
            _identical(
                GSIEngine(graph, replace(cfg, join_kernel="vector")).match(q),
                GSIEngine(graph, replace(cfg, join_kernel="numba")).match(q))


class TestNumbaFallback:
    def test_numba_config_runs_without_numba(self, graph, queries):
        # "numba" must fall back to the NumPy vector lane cleanly when
        # the JIT is unavailable — identical results either way.
        cfg = GSIConfig.gsi_opt()
        _identical(
            GSIEngine(graph, replace(cfg, join_kernel="rows")).match(
                queries[0]),
            GSIEngine(graph, replace(cfg, join_kernel="numba")).match(
                queries[0]))
