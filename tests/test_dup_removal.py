"""Tests for Algorithm 5 (duplicate removal within a block)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dup_removal import (
    distinct_loads,
    removable_fraction,
    sharing_assignment,
)


class TestSharingAssignment:
    def test_all_distinct(self):
        assert sharing_assignment([5, 6, 7]) == [0, 1, 2]

    def test_all_same(self):
        assert sharing_assignment([9, 9, 9, 9]) == [0, 0, 0, 0]

    def test_paper_figure9_pattern(self):
        # Figure 9: every row starts with v0 -> one warp reads, all share.
        addr = sharing_assignment([0, 0, 0, 0, 0])
        assert addr == [0] * 5

    def test_mixed(self):
        assert sharing_assignment([3, 4, 3, 5, 4]) == [0, 1, 0, 3, 1]

    def test_empty(self):
        assert sharing_assignment([]) == []


class TestDistinctLoads:
    def test_counts_unique(self):
        assert distinct_loads([1, 1, 2, 3, 3, 3]) == 3

    def test_empty(self):
        assert distinct_loads([]) == 0


class TestRemovableFraction:
    def test_no_duplicates_zero(self):
        assert removable_fraction(list(range(64)), block_size=32) == 0.0

    def test_all_duplicates_max(self):
        frac = removable_fraction([7] * 64, block_size=32)
        # two blocks, one load each: 62 of 64 loads removed
        assert abs(frac - 62 / 64) < 1e-9

    def test_block_boundary_limits_sharing(self):
        # Same vertex in different blocks cannot share (the paper's
        # noted bottleneck: DR only works within one block).
        col = [1] * 32 + [1] * 32
        frac_small = removable_fraction(col, block_size=32)
        frac_large = removable_fraction(col, block_size=64)
        assert frac_large > frac_small

    def test_empty(self):
        assert removable_fraction([]) == 0.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 9), max_size=100))
def test_property_first_occurrence_points_to_self(vertices):
    addr = sharing_assignment(vertices)
    for i, a in enumerate(addr):
        assert 0 <= a <= i
        assert vertices[a] == vertices[i]
        if a == i:
            # first occurrence: nothing before it holds this vertex
            assert vertices[i] not in vertices[:i]
