"""Tests for the vertex-oriented join (Algorithms 3-4)."""

import numpy as np
import pytest

from repro.core.config import GSIConfig
from repro.core.join import JoinContext, execute_join_step, run_join_phase
from repro.core.plan import JoinStep, plan_join_order
from repro.core.set_ops import CandidateSet, SetOpEngine
from repro.errors import BudgetExceeded
from repro.gpusim.device import Device
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.storage.factory import build_storage

from oracle import brute_force_matches


def make_ctx(graph, config=None):
    config = config or GSIConfig()
    store = build_storage(config.storage_kind, graph)
    return JoinContext(
        graph=graph, store=store, device=Device(), config=config,
        set_engine=SetOpEngine(friendly=config.use_gpu_set_ops,
                               write_cache=config.use_write_cache))


@pytest.fixture(scope="module")
def graph():
    return scale_free_graph(150, 3, 4, 3, seed=5)


class TestJoinStep:
    def test_empty_rows_early_exit(self, graph):
        ctx = make_ctx(graph)
        step = JoinStep(vertex=1, linking_edges=((0, 0),))
        out = execute_join_step(ctx, [], [0], step,
                                CandidateSet(np.array([1], dtype=np.int64)))
        assert out == []

    def test_empty_candidates_early_exit(self, graph):
        ctx = make_ctx(graph)
        step = JoinStep(vertex=1, linking_edges=((0, 0),))
        out = execute_join_step(ctx, [(0,)], [0], step,
                                CandidateSet(np.empty(0, dtype=np.int64)))
        assert out == []

    def test_row_cap_enforced(self, graph):
        from dataclasses import replace
        cfg = replace(GSIConfig(), max_intermediate_rows=2)
        ctx = make_ctx(graph, cfg)
        step = JoinStep(vertex=1, linking_edges=((0, 0),))
        rows = [(v,) for v in range(5)]
        with pytest.raises(BudgetExceeded):
            execute_join_step(ctx, rows, [0], step,
                              CandidateSet(np.array([1], dtype=np.int64)))

    def test_injectivity_enforced(self, graph):
        """No produced row may repeat a data vertex."""
        q = random_walk_query(graph, 5, seed=2)
        cfg = GSIConfig()
        ctx = make_ctx(graph, cfg)
        sizes = {u: 10 for u in range(5)}
        plan = plan_join_order(q, graph, sizes)
        candidates = {
            u: np.array(
                [v for v in range(graph.num_vertices)
                 if graph.vertex_label(v) == q.vertex_label(u)],
                dtype=np.int64)
            for u in range(5)
        }
        rows = run_join_phase(ctx, plan, candidates)
        for row in rows:
            assert len(set(row)) == len(row)

    def test_rows_satisfy_all_linking_edges(self, graph):
        q = random_walk_query(graph, 4, seed=1)
        ctx = make_ctx(graph)
        plan = plan_join_order(q, graph, {u: 5 for u in range(4)})
        candidates = {
            u: np.array(
                [v for v in range(graph.num_vertices)
                 if graph.vertex_label(v) == q.vertex_label(u)],
                dtype=np.int64)
            for u in range(4)
        }
        rows = run_join_phase(ctx, plan, candidates)
        order = plan.order
        for row in rows:
            assign = {order[i]: row[i] for i in range(len(order))}
            for u, v, lab in q.edges():
                assert graph.has_edge(assign[u], assign[v])
                assert graph.edge_label(assign[u], assign[v]) == lab


class TestSchemeEquivalence:
    """Prealloc-Combine and two-step must produce identical matches."""

    @pytest.mark.parametrize("seed", range(4))
    def test_pc_equals_two_step(self, graph, seed):
        q = random_walk_query(graph, 4, seed=seed)
        ref = brute_force_matches(q, graph)
        results = {}
        for pc in (True, False):
            from dataclasses import replace
            cfg = replace(GSIConfig(), use_prealloc_combine=pc)
            ctx = make_ctx(graph, cfg)
            plan = plan_join_order(q, graph, {u: 5 for u in range(4)})
            candidates = {
                u: np.array(
                    [v for v in range(graph.num_vertices)
                     if graph.vertex_label(v) == q.vertex_label(u)],
                    dtype=np.int64)
                for u in range(4)
            }
            rows = run_join_phase(ctx, plan, candidates)
            perm = np.argsort(np.asarray(plan.order))
            results[pc] = {tuple(int(r[j]) for j in perm) for r in rows}
        assert results[True] == results[False] == ref

    def test_two_step_doubles_join_reads(self, graph):
        """The defining cost property: two-step re-reads everything."""
        q = random_walk_query(graph, 4, seed=0)
        glds = {}
        for pc in (True, False):
            from dataclasses import replace
            cfg = replace(GSIConfig(), use_prealloc_combine=pc)
            ctx = make_ctx(graph, cfg)
            plan = plan_join_order(q, graph, {u: 5 for u in range(4)})
            candidates = {
                u: np.array(
                    [v for v in range(graph.num_vertices)
                     if graph.vertex_label(v) == q.vertex_label(u)],
                    dtype=np.int64)
                for u in range(4)
            }
            run_join_phase(ctx, plan, candidates)
            glds[pc] = ctx.device.meter.snapshot().join_gld
        assert glds[False] > glds[True]


class TestDuplicateRemoval:
    def test_dr_preserves_results_and_cuts_gld(self, graph):
        q = random_walk_query(graph, 4, seed=3)
        outcomes = {}
        for dr in (False, True):
            from dataclasses import replace
            cfg = replace(GSIConfig(), use_duplicate_removal=dr)
            ctx = make_ctx(graph, cfg)
            plan = plan_join_order(q, graph, {u: 5 for u in range(4)})
            candidates = {
                u: np.array(
                    [v for v in range(graph.num_vertices)
                     if graph.vertex_label(v) == q.vertex_label(u)],
                    dtype=np.int64)
                for u in range(4)
            }
            rows = run_join_phase(ctx, plan, candidates)
            outcomes[dr] = (set(map(tuple, rows)),
                            ctx.device.meter.snapshot().join_gld)
        assert outcomes[False][0] == outcomes[True][0]
        assert outcomes[True][1] <= outcomes[False][1]


class TestNeighborCache:
    def test_memoization_returns_same_object(self, graph):
        ctx = make_ctx(graph)
        a = ctx.neighbors(0, 0)
        b = ctx.neighbors(0, 0)
        assert a[0] is b[0]
        assert len(ctx.neighbor_cache) == 1
