"""Direction tests for every paper ablation: the cost model must move the
way the paper's tables say it moves (Tables IV-XI shapes, in miniature)."""

import pytest

from repro import GSIConfig, GSIEngine
from repro.bench.runner import gsi_factory, run_workload
from repro.bench.workloads import Workload
from repro.graph.generators import rdf_like_graph


@pytest.fixture(scope="module")
def heavy_workload():
    """A hub-skewed workload whose joins carry real weight."""
    g = rdf_like_graph(1200, 8400, 15, 25, seed=17)
    return Workload.for_graph("heavy", g, num_queries=3, query_vertices=10)


@pytest.fixture(scope="module")
def chain(heavy_workload):
    """Summaries of the Table VI ablation chain on the heavy workload."""
    out = {}
    for name, cfg in [("base", GSIConfig.baseline()),
                      ("ds", GSIConfig.with_ds()),
                      ("pc", GSIConfig.with_pc()),
                      ("so", GSIConfig.gsi()),
                      ("lb", GSIConfig.with_lb()),
                      ("opt", GSIConfig.gsi_opt())]:
        out[name] = run_workload(gsi_factory(cfg), heavy_workload)
    return out


class TestTable6Directions:
    def test_all_configs_same_matches(self, chain):
        counts = {s.total_matches for s in chain.values()}
        assert len(counts) == 1

    def test_ds_drops_join_gld(self, chain):
        assert chain["ds"].avg_join_gld < chain["base"].avg_join_gld

    def test_pc_drops_join_gld(self, chain):
        assert chain["pc"].avg_join_gld < chain["ds"].avg_join_gld

    def test_pc_speedup_bounded_by_two(self, chain):
        # "PC can reduce the amount of work by at most half."
        assert chain["ds"].avg_ms / chain["pc"].avg_ms < 2.2

    def test_so_drops_join_gld_and_time(self, chain):
        assert chain["so"].avg_join_gld < chain["pc"].avg_join_gld
        assert chain["so"].avg_ms < chain["pc"].avg_ms

    def test_full_chain_monotone_gld(self, chain):
        seq = [chain[k].avg_join_gld for k in ("base", "ds", "pc", "so")]
        assert seq == sorted(seq, reverse=True)


class TestTable7WriteCache:
    def test_write_cache_cuts_gst(self, heavy_workload):
        from dataclasses import replace
        with_cache = run_workload(gsi_factory(GSIConfig.gsi()),
                                  heavy_workload)
        without = run_workload(
            gsi_factory(replace(GSIConfig.gsi(), use_write_cache=False)),
            heavy_workload)
        assert with_cache.avg_gst < without.avg_gst
        assert with_cache.total_matches == without.total_matches


class TestTable8Optimizations:
    def test_lb_never_slower(self, chain):
        assert chain["lb"].avg_ms <= chain["so"].avg_ms * 1.05

    def test_dr_drops_gld(self, chain):
        assert chain["opt"].avg_join_gld <= chain["lb"].avg_join_gld


class TestTable4Filtering:
    def test_signature_filter_tighter_than_label_degree(self,
                                                        heavy_workload):
        from repro.baselines import GpSMEngine, GunrockSMEngine
        g = heavy_workload.graph
        gsi = GSIEngine(g, GSIConfig.gsi())
        for q in heavy_workload.queries:
            mc_gsi = gsi.filter_only(q).min_candidate_size
            mc_gun = GunrockSMEngine(g).match(q).min_candidate_size
            assert mc_gsi <= mc_gun


class TestTable5SignatureLength:
    def test_longer_signatures_never_weaker(self, heavy_workload):
        g = heavy_workload.graph
        q = heavy_workload.queries[0]
        minc = []
        for bits in (64, 192, 512):
            engine = GSIEngine(g, GSIConfig(signature_bits=bits))
            minc.append(engine.filter_only(q).min_candidate_size)
        assert minc[0] >= minc[1] >= minc[2]
