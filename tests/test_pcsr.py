"""Tests for PCSR (Definition 4, Algorithm 1, Claim 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import GSIEngine
from repro.errors import StorageError
from repro.graph.generators import rdf_like_graph, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph, triangle_query
from repro.graph.partition import EdgeLabelPartition, partition_by_edge_label
from repro.storage.pcsr import PCSRPartition, PCSRStorage, default_hash

from oracle import brute_force_matches


def build_partition(edges, n=None, gpn=16):
    n = n if n is not None else (max(max(u, v) for u, v, _ in edges) + 1
                                 if edges else 1)
    g = LabeledGraph([0] * n, edges)
    parts = partition_by_edge_label(g)
    return {lab: PCSRPartition(p, gpn=gpn) for lab, p in parts.items()}


class TestConstruction:
    def test_gpn_bounds(self):
        g = LabeledGraph([0, 0], [(0, 1, 0)])
        part = partition_by_edge_label(g)[0]
        with pytest.raises(StorageError):
            PCSRPartition(part, gpn=1)
        with pytest.raises(StorageError):
            PCSRPartition(part, gpn=17)
        PCSRPartition(part, gpn=2)  # boundary ok
        PCSRPartition(part, gpn=16)

    def test_group_count_equals_partition_vertices(self):
        p = build_partition([(0, 1, 0), (1, 2, 0), (5, 6, 0)])[0]
        assert p.num_groups == 5  # vertices 0, 1, 2, 5, 6

    def test_group_shape(self):
        p = build_partition([(0, 1, 0)], gpn=16)[0]
        assert p.groups.shape == (2, 16, 2)

    def test_space_words_formula(self):
        p = build_partition([(0, 1, 0), (1, 2, 0)], gpn=16)[0]
        # 2 words per slot * 16 slots * num_groups + ci entries
        assert p.space_words() == p.groups.size + len(p.ci)


class TestLookup:
    def test_single_edge(self):
        p = build_partition([(0, 1, 0)])[0]
        assert list(p.neighbors(0)) == [1]
        assert list(p.neighbors(1)) == [0]
        assert list(p.neighbors(7)) == []

    def test_probe_cost_at_least_one(self):
        p = build_partition([(0, 1, 0)])[0]
        assert p.probe_transactions(0) >= 1
        assert p.probe_transactions(999) >= 1

    def test_miss_pays_actual_chain_walk(self):
        # With GPN=2 the star hub's keys chain; a missing vertex that
        # hashes into a chain pays one transaction per walked group,
        # not a flat floor of 1.
        edges = [(0, v, 0) for v in range(1, 20)]
        p = build_partition(edges, gpn=2)[0]
        assert p.max_chain_length() > 1
        for v in (500, 9999, 123456):
            reads, gid, _ = p._find_key(v)
            assert gid == -1
            assert p.probe_transactions(v) == reads >= 1

    def test_non_consecutive_vertex_ids(self):
        # Partition touches only vertices 100, 500, 900.
        p = build_partition([(100, 500, 0), (500, 900, 0)], n=1000)[0]
        assert list(p.neighbors(500)) == [100, 900]
        assert list(p.neighbors(100)) == [500]
        assert list(p.neighbors(0)) == []


class TestOverflow:
    def test_small_gpn_forces_chains(self):
        # With GPN=2 each group holds one key; collisions must chain.
        edges = [(i, i + 1, 0) for i in range(0, 40, 2)]
        p = build_partition(edges, gpn=2)[0]
        g = LabeledGraph([0] * 41, edges)
        for v in range(41):
            expect = sorted(int(x) for x in g.neighbors_by_label(v, 0))
            assert sorted(int(x) for x in p.neighbors(v)) == expect
        assert p.max_chain_length() >= 1

    @pytest.mark.parametrize("gpn", [2, 3, 4, 8, 16])
    def test_all_gpn_values_correct(self, gpn):
        g = scale_free_graph(150, 3, 3, 4, seed=11)
        store = PCSRStorage(g, gpn=gpn)
        for v in range(0, 150, 7):
            for lab in g.distinct_edge_labels():
                expect = sorted(int(x) for x in g.neighbors_by_label(v, lab))
                got = sorted(int(x) for x in store.neighbors(v, lab))
                assert got == expect

    def test_chain_length_small_with_gpn16(self):
        g = rdf_like_graph(2000, 12000, 5, 8, seed=5)
        store = PCSRStorage(g, gpn=16)
        # Paper: no overflow observed in any experiment with GPN=16;
        # we allow short chains but they must be tiny.
        assert store.max_chain_length() <= 3


class TestClaim1:
    """Claim 1: enough empty groups always exist for overflow."""

    @settings(max_examples=60, deadline=None)
    @given(st.sets(st.integers(0, 400), min_size=1, max_size=120),
           st.integers(2, 16))
    def test_property_construction_never_starves(self, vertices, gpn):
        vertices = sorted(vertices)
        if len(vertices) < 2:
            return
        # Build a star among the chosen vertex ids (hub = first).
        hub = vertices[0]
        edges = [(hub, v, 0) for v in vertices[1:]]
        parts = build_partition(edges, n=max(vertices) + 1, gpn=gpn)
        p = parts[0]
        # Every vertex resolvable, i.e. Claim 1 held during build.
        assert sorted(int(x) for x in p.neighbors(hub)) == vertices[1:]
        for v in vertices[1:]:
            assert list(p.neighbors(v)) == [hub]


class TestHash:
    def test_default_hash_range(self):
        for v in (0, 1, 17, 123456):
            assert 0 <= default_hash(v, 7) < 7

    def test_default_hash_deterministic(self):
        assert default_hash(42, 13) == default_hash(42, 13)


class TestStorageFacade:
    def test_partition_accessor(self):
        g = LabeledGraph([0] * 3, [(0, 1, 4), (1, 2, 9)])
        store = PCSRStorage(g)
        assert store.partition(4) is not None
        assert store.partition(5) is None

    def test_locate_transactions_zero_for_missing_label(self):
        g = LabeledGraph([0] * 3, [(0, 1, 4)])
        store = PCSRStorage(g)
        assert store.locate_transactions(0, 99) == 0

    def test_max_chain_empty_store(self):
        g = LabeledGraph([0, 0], [])
        store = PCSRStorage(g)
        assert store.max_chain_length() == 0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30),
                          st.integers(0, 2)), max_size=80),
       st.integers(2, 16))
def test_property_pcsr_equals_graph(edge_list, gpn):
    seen = set()
    dedup = []
    for u, v, l in edge_list:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen.add(key)
            dedup.append((u, v, l))
    g = LabeledGraph([0] * 31, dedup)
    store = PCSRStorage(g, gpn=gpn)
    for v in range(31):
        for lab in g.distinct_edge_labels():
            expect = sorted(int(x) for x in g.neighbors_by_label(v, lab))
            got = sorted(int(x) for x in store.neighbors(v, lab))
            assert got == expect


class TestValidateDetectsCorruption:
    """Each Definition-4 invariant violation must be reported."""

    def fresh(self, gpn=4):
        # A partition with several groups and at least one multi-key
        # group, healthy by construction.
        edges = [(0, v, 0) for v in range(1, 8)]
        p = build_partition(edges, gpn=gpn)[0]
        assert p.validate() == []
        return p

    def _first_keyed_group(self, p):
        for gid in range(p.num_groups):
            if p.groups[gid, 0, 0] != -1:
                return gid
        raise AssertionError("no keyed group")

    def test_key_after_empty_slot(self):
        p = self.fresh(gpn=4)
        gid = self._first_keyed_group(p)
        # Move the slot-0 key to slot 2, leaving a hole at slot 0.
        p.groups[gid, 2] = p.groups[gid, 0]
        p.groups[gid, 0] = (-1, -1)
        assert any("key after empty slot" in msg for msg in p.validate())

    def test_decreasing_offsets(self):
        edges = [(0, v, 0) for v in range(1, 40)]
        p = build_partition(edges, gpn=16)[0]
        # Find a group holding at least two keys and swap two offsets.
        for gid in range(p.num_groups):
            if p.groups[gid, 1, 0] != -1:
                break
        else:
            raise AssertionError("no multi-key group in fixture")
        p.groups[gid, 0, 1], p.groups[gid, 1, 1] = \
            int(p.groups[gid, 1, 1]) + 1, int(p.groups[gid, 0, 1])
        assert any("offsets" in msg and "decrease" in msg
                   for msg in p.validate())

    def test_offset_out_of_range(self):
        p = self.fresh()
        gid = self._first_keyed_group(p)
        p.groups[gid, 0, 1] = len(p.ci) + 7
        assert any("out of range" in msg for msg in p.validate())

    def test_bad_gid(self):
        p = self.fresh()
        p.groups[0, p.gpn - 1, 0] = p.num_groups + 3
        assert any("bad GID" in msg for msg in p.validate())

    def test_cyclic_gid_chain(self):
        p = self.fresh()
        gid = self._first_keyed_group(p)
        p.groups[gid, p.gpn - 1, 0] = gid  # self-loop chain
        probs = p.validate()
        assert any("cyclic overflow chain" in msg for msg in probs)

    def test_two_group_cycle(self):
        p = self.fresh()
        a = self._first_keyed_group(p)
        b = (a + 1) % p.num_groups
        p.groups[a, p.gpn - 1, 0] = b
        p.groups[b, p.gpn - 1, 0] = a
        assert any("cyclic overflow chain" in msg for msg in p.validate())

    def test_unreachable_key(self):
        p = self.fresh()
        gid = self._first_keyed_group(p)
        # Re-home a stored key to a vertex id whose hash chain cannot
        # reach this group.
        for v in range(1000, 2000):
            home = default_hash(v, p.num_groups)
            if home != gid and p._find_key(v)[1] < 0:
                # ensure home's chain does not include gid
                chain = set()
                cur = home
                while cur != -1 and cur not in chain:
                    chain.add(cur)
                    cur = int(p.groups[cur, p.gpn - 1, 0])
                if gid not in chain:
                    p.groups[gid, 0, 0] = v
                    break
        else:
            raise AssertionError("no suitable re-homed vertex found")
        assert any("unreachable" in msg for msg in p.validate())

    def test_end_before_last_offset(self):
        p = self.fresh()
        gid = self._first_keyed_group(p)
        p.groups[gid, p.gpn - 1, 1] = int(p.groups[gid, 0, 1]) - 1
        probs = p.validate()
        assert probs  # reported as out-of-range END or offset beyond END


class TestEdgeCases:
    """Boundary structures: empty partitions, over-wide rows, one label."""

    def test_empty_partition(self):
        # A partition with no vertices at all still builds one (empty)
        # group and answers lookups with empty neighbor sets.
        p = PCSRPartition(EdgeLabelPartition(0, {}), gpn=16)
        assert p.num_groups == 1
        assert len(p.ci) == 0
        assert list(p.neighbors(0)) == []
        assert list(p.neighbors(123)) == []
        assert p.probe_transactions(0) >= 1
        assert p.load_factor() == 0.0
        assert p.validate() == []

    def test_edgeless_graph_storage(self):
        g = LabeledGraph([0, 1, 2], [])
        store = PCSRStorage(g)
        assert store.space_words() == 0
        for v in range(3):
            assert list(store.neighbors(v, 0)) == []
        assert store.locate_transactions(0, 0) == 0

    @pytest.mark.parametrize("gpn", [2, 4, 16])
    def test_vertex_degree_exceeds_one_group_row(self, gpn):
        # A hub with degree 50 overflows any group row (capacity
        # GPN - 1 <= 15 keys); its neighbor list must still come back
        # whole from the ci layer, and the overflow chains must verify.
        hub_edges = [(0, v, 0) for v in range(1, 51)]
        g = LabeledGraph([0] * 51, hub_edges)
        part = partition_by_edge_label(g)[0]
        p = PCSRPartition(part, gpn=gpn)
        assert sorted(int(x) for x in p.neighbors(0)) == list(range(1, 51))
        for v in range(1, 51):
            assert list(p.neighbors(v)) == [0]
        assert p.validate() == []
        # Degree > slots per group also means the ci extent of the hub
        # spans more than one group's worth of entries.
        assert len(p.neighbors(0)) > gpn - 1

    def test_single_label_graph_matches_oracle(self):
        # One vertex label, one edge label: signatures degenerate and
        # every vertex is a candidate for every query vertex; PCSR and
        # the engine must still agree with brute force.
        g = scale_free_graph(40, 3, 1, 1, seed=3)
        assert g.distinct_vertex_labels() == [0]
        assert g.distinct_edge_labels() == [0]
        store = PCSRStorage(g)
        for v in range(g.num_vertices):
            expect = sorted(int(x) for x in g.neighbors_by_label(v, 0))
            assert sorted(int(x) for x in store.neighbors(v, 0)) == expect
        q = triangle_query()
        result = GSIEngine(g).match(q)
        assert result.match_set() == brute_force_matches(q, g)
