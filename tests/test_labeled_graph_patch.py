"""Property tests for the O(changes) CSR patch path.

``LabeledGraph.apply_changes`` must be *indistinguishable* from a
from-scratch rebuild — not just equal edge sets, but identical CSR
arrays, edge maps and label-frequency tables — on arbitrary change
sets: random graphs, empty deltas, delete-everything, relabels,
duplicate-edge errors, and new-vertex growth.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.generators import scale_free_graph
from repro.graph.labeled_graph import GraphBuilder, LabeledGraph


def assert_identical(patched: LabeledGraph, rebuilt: LabeledGraph):
    assert np.array_equal(patched.vertex_labels, rebuilt.vertex_labels)
    assert np.array_equal(patched._offsets, rebuilt._offsets)
    assert np.array_equal(patched._nbr, rebuilt._nbr)
    assert np.array_equal(patched._elab, rebuilt._elab)
    assert patched._edge_map == rebuilt._edge_map
    assert patched._edge_label_freq == rebuilt._edge_label_freq


def random_change_set(graph: LabeledGraph, rng: np.random.Generator):
    """A random valid (inserted, deleted, new_vertex_labels) triple plus
    the resulting ground-truth edge dict."""
    edges = {(u, v): lab for u, v, lab in graph.edges()}
    keys = sorted(edges)
    rng.shuffle(keys)
    num_del = int(rng.integers(0, len(keys) + 1))
    deleted = [(u, v, edges[(u, v)]) for u, v in keys[:num_del]]
    surviving = dict(edges)
    for u, v, _ in deleted:
        del surviving[(u, v)]
    new_labels = [int(x) for x in
                  rng.integers(0, 4, size=int(rng.integers(0, 4)))]
    n = graph.num_vertices + len(new_labels)
    inserted = []
    for _ in range(int(rng.integers(0, 12))):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        key = (min(u, v), max(u, v))
        if u == v or key in surviving:
            continue
        lab = int(rng.integers(4))
        inserted.append((key[0], key[1], lab))
        surviving[key] = lab
    return inserted, deleted, new_labels, surviving


class TestPatchEqualsRebuild:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(seed=st.integers(0, 2 ** 20))
    def test_random_change_sets(self, seed):
        rng = np.random.default_rng(seed)
        graph = scale_free_graph(int(rng.integers(2, 40)), 3, 3, 3,
                                 seed=seed)
        inserted, deleted, new_labels, surviving = \
            random_change_set(graph, rng)
        patched, stats = graph.apply_changes(inserted, deleted,
                                             new_labels)
        vlabels = [int(x) for x in graph.vertex_labels] + new_labels
        rebuilt = LabeledGraph(vlabels, [
            (u, v, lab) for (u, v), lab in surviving.items()])
        assert_identical(patched, rebuilt)
        if inserted or deleted or new_labels:
            touched = {x for e in inserted for x in e[:2]}
            touched |= {x for e in deleted for x in e[:2]}
            touched |= set(range(graph.num_vertices, len(vlabels)))
            assert stats.rows_spliced == len(touched)

    def test_empty_delta_returns_self(self):
        graph = scale_free_graph(12, 3, 3, 3, seed=5)
        patched, stats = graph.apply_changes([], [])
        assert patched is graph
        assert stats.rows_spliced == 0
        assert stats.touched_words == 0

    def test_delete_everything(self):
        graph = scale_free_graph(15, 3, 3, 3, seed=6)
        deleted = list(graph.edges())
        patched, stats = graph.apply_changes([], deleted)
        assert patched.num_edges == 0
        assert patched.num_vertices == graph.num_vertices
        assert_identical(patched, LabeledGraph(graph.vertex_labels, []))
        assert stats.words_written == 0
        assert stats.words_read == 2 * len(deleted)

    def test_insert_into_edgeless_graph(self):
        graph = LabeledGraph([0, 1, 0, 1], [])
        patched, _ = graph.apply_changes([(0, 1, 7), (2, 3, 7)], [])
        assert_identical(patched,
                         LabeledGraph([0, 1, 0, 1],
                                      [(0, 1, 7), (2, 3, 7)]))

    def test_relabel_is_delete_plus_insert(self):
        b = GraphBuilder()
        b.add_vertices([0, 0, 0])
        b.add_edge(0, 1, 1)
        b.add_edge(1, 2, 1)
        graph = b.build()
        patched, _ = graph.apply_changes([(0, 1, 9)], [(0, 1, 1)])
        assert patched.edge_label(0, 1) == 9
        assert patched.edge_label_frequency(1) == 1
        assert patched.edge_label_frequency(9) == 1
        assert_identical(patched, LabeledGraph([0, 0, 0],
                                               [(0, 1, 9), (1, 2, 1)]))

    def test_new_vertices_with_and_without_edges(self):
        graph = LabeledGraph([3], [])
        patched, stats = graph.apply_changes(
            [(0, 1, 2)], [], new_vertex_labels=[4, 5])
        assert patched.num_vertices == 3
        assert patched.vertex_label(2) == 5
        assert patched.degree(2) == 0
        assert_identical(patched, LabeledGraph([3, 4, 5], [(0, 1, 2)]))
        # The isolated newcomer still counts as a spliced (empty) row.
        assert stats.rows_spliced == 3

    def test_chained_patches_compose(self):
        graph = scale_free_graph(20, 3, 3, 3, seed=9)
        g1, _ = graph.apply_changes([], list(graph.edges())[:5])
        g2, _ = g1.apply_changes([(0, 19, 2)], [])
        edges = {(u, v): lab for u, v, lab in graph.edges()}
        for u, v, _lab in list(graph.edges())[:5]:
            del edges[(u, v)]
        edges[(0, 19)] = 2
        rebuilt = LabeledGraph(graph.vertex_labels, [
            (u, v, lab) for (u, v), lab in edges.items()])
        assert_identical(g2, rebuilt)


class TestPatchValidation:
    @pytest.fixture
    def graph(self):
        b = GraphBuilder()
        b.add_vertices([0, 1, 2])
        b.add_edge(0, 1, 4)
        return b.build()

    def test_duplicate_insert_rejected(self, graph):
        with pytest.raises(GraphError, match="inserted twice"):
            graph.apply_changes([(1, 2, 0), (2, 1, 1)], [])

    def test_insert_existing_edge_rejected(self, graph):
        with pytest.raises(GraphError, match="already exists"):
            graph.apply_changes([(0, 1, 4)], [])

    def test_delete_missing_edge_rejected(self, graph):
        with pytest.raises(GraphError, match="no edge"):
            graph.apply_changes([], [(1, 2, 4)])

    def test_delete_wrong_label_rejected(self, graph):
        with pytest.raises(GraphError, match="carries label"):
            graph.apply_changes([], [(0, 1, 9)])

    def test_double_delete_rejected(self, graph):
        with pytest.raises(GraphError, match="deleted twice"):
            graph.apply_changes([], [(0, 1, 4), (1, 0, 4)])

    def test_self_loop_rejected(self, graph):
        with pytest.raises(GraphError, match="self loop"):
            graph.apply_changes([(2, 2, 0)], [])

    def test_out_of_range_endpoint_rejected(self, graph):
        with pytest.raises(GraphError, match="missing vertex"):
            graph.apply_changes([(0, 7, 0)], [])

    def test_relabel_same_pair_valid(self, graph):
        # Deleting and re-inserting the same pair in one change set is
        # the supported relabel form, not a duplicate.
        patched, _ = graph.apply_changes([(0, 1, 8)], [(0, 1, 4)])
        assert patched.edge_label(0, 1) == 8

    def test_failed_validation_leaves_graph_untouched(self, graph):
        before = dict(graph._edge_map)
        with pytest.raises(GraphError):
            graph.apply_changes([(1, 2, 0)], [(0, 1, 9)])
        assert graph._edge_map == before
        assert graph.edge_label(0, 1) == 4
