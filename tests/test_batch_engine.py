"""Tests for the batch query service (BatchEngine / BatchReport)."""

from __future__ import annotations

import pytest

from repro.bench.runner import run_workload_batched
from repro.bench.workloads import Workload
from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.service import BatchEngine, SerialExecutor, ThreadExecutor


@pytest.fixture(scope="module")
def service_graph():
    return scale_free_graph(120, 3, 4, 3, seed=17)


@pytest.fixture(scope="module")
def service_queries(service_graph):
    return [random_walk_query(service_graph, 4, seed=s) for s in range(6)]


class TestEquivalence:
    def test_batch_equals_sequential(self, service_graph, service_queries):
        engine = GSIEngine(service_graph)
        service = BatchEngine(engine=engine)
        sequential = [engine.match(q) for q in service_queries]
        report = service.run_batch(service_queries)
        assert report.num_queries == len(service_queries)
        for seq, batched in zip(sequential, report.results):
            assert seq.match_set() == batched.match_set()
            assert seq.elapsed_ms == batched.elapsed_ms
            assert seq.counters == batched.counters

    def test_worker_count_does_not_change_results(self, service_graph,
                                                  service_queries):
        single = BatchEngine(service_graph, max_workers=1)
        multi = BatchEngine(service_graph, max_workers=8)
        r1 = single.run_batch(service_queries)
        r8 = multi.run_batch(service_queries)
        for a, b in zip(r1.results, r8.results):
            assert a.match_set() == b.match_set()
            assert a.elapsed_ms == b.elapsed_ms

    def test_order_preserved(self, service_graph, service_queries):
        service = BatchEngine(service_graph, max_workers=4)
        report = service.run_batch(service_queries)
        assert [item.index for item in report.items] == \
            list(range(len(service_queries)))


class TestReport:
    def test_empty_batch(self, service_graph):
        report = BatchEngine(service_graph).run_batch([])
        assert report.num_queries == 0
        assert report.total_matches == 0
        assert report.p50_ms == 0.0
        assert report.throughput_qps >= 0.0
        assert report.summary_line()

    def test_percentiles_ordered(self, service_graph, service_queries):
        report = BatchEngine(service_graph).run_batch(service_queries)
        assert 0.0 < report.p50_ms <= report.p90_ms <= report.p99_ms

    def test_transaction_totals(self, service_graph, service_queries):
        report = BatchEngine(service_graph).run_batch(service_queries)
        assert report.total_gld == sum(
            r.counters.gld for r in report.results)
        assert report.total_gst == sum(
            r.counters.gst for r in report.results)
        assert report.total_kernel_launches > 0
        assert report.total_simulated_ms == pytest.approx(sum(
            r.elapsed_ms for r in report.results))

    def test_repeated_batch_hits_cache(self, service_graph):
        # Different vertex counts -> provably pairwise non-isomorphic
        # (random same-size walks can collide via the fingerprint!).
        queries = [random_walk_query(service_graph, k, seed=k)
                   for k in (3, 4, 5, 6)]
        service = BatchEngine(service_graph)
        first = service.run_batch(queries)
        second = service.run_batch(queries)
        assert first.cache.hits == 0
        assert first.cache.misses == len(queries)
        assert second.cache.hits == len(queries)
        assert second.cache.hit_rate == 1.0
        assert second.plan_cache_hits == len(queries)

    def test_summary_line_mentions_cache(self, service_graph,
                                         service_queries):
        service = BatchEngine(service_graph)
        service.run_batch(service_queries)
        report = service.run_batch(service_queries)
        assert "plan cache" in report.summary_line()


class TestErrorIsolation:
    def test_bad_query_does_not_abort_batch(self, service_graph,
                                            service_queries):
        from repro.graph.labeled_graph import LabeledGraph
        empty = LabeledGraph([], [])          # GraphError in prepare
        disconnected = LabeledGraph([0, 0], [])  # PlanError in planning
        batch = [service_queries[0], empty, disconnected,
                 service_queries[1]]
        report = BatchEngine(service_graph).run_batch(batch)
        assert report.num_queries == 4
        assert report.errors == 2
        assert report.items[1].error is not None
        assert "GraphError" in report.items[1].error
        assert report.items[2].error is not None
        # Healthy queries around the failures are unaffected.
        assert report.items[0].error is None
        assert report.items[3].error is None
        assert report.items[0].result.num_matches > 0
        assert "errors=2" in report.summary_line()

    def test_error_free_batch_reports_zero_errors(self, service_graph,
                                                  service_queries):
        report = BatchEngine(service_graph).run_batch(service_queries)
        assert report.errors == 0

    def test_percentiles_exclude_errored_items(self, service_graph,
                                               service_queries):
        """An injected failing query (empty result, ~0 ms) must not drag
        p50/p95 down; failures are reported via ``errors`` instead."""
        from repro.graph.labeled_graph import LabeledGraph
        service = BatchEngine(service_graph)
        healthy = service.run_batch(service_queries)
        failing = [LabeledGraph([], [])] * 3  # three ~0ms error items
        mixed = service.run_batch(list(service_queries) + failing)
        assert mixed.errors == 3
        assert mixed.p50_ms == pytest.approx(healthy.p50_ms)
        assert mixed.latency_percentile(95) == pytest.approx(
            healthy.latency_percentile(95))
        assert mixed.p50_ms > 0.0

    def test_all_errored_batch_reports_zero_percentiles(self,
                                                        service_graph):
        from repro.graph.labeled_graph import LabeledGraph
        report = BatchEngine(service_graph).run_batch(
            [LabeledGraph([], [])] * 2)
        assert report.errors == 2
        assert report.p50_ms == 0.0
        assert report.p99_ms == 0.0


class TestExecutorSelection:
    def test_explicit_executor_overrides_workers(self, service_graph,
                                                 service_queries):
        serial = BatchEngine(service_graph, max_workers=8,
                             executor=SerialExecutor())
        report = serial.run_batch(service_queries)
        assert report.executor == "serial"

    def test_run_batch_executor_argument(self, service_graph,
                                         service_queries):
        service = BatchEngine(service_graph)
        report = service.run_batch(service_queries,
                                   executor=ThreadExecutor(2))
        assert report.executor == "thread"
        base = service.run_batch(service_queries)
        assert base.executor == "thread"  # default: thread pool
        for a, b in zip(report.results, base.results):
            assert a.match_set() == b.match_set()
            assert a.elapsed_ms == b.elapsed_ms

    def test_single_worker_runs_serial(self, service_graph,
                                       service_queries):
        report = BatchEngine(service_graph, max_workers=1).run_batch(
            service_queries)
        assert report.executor == "serial"


class TestConstruction:
    def test_needs_graph_or_engine(self):
        with pytest.raises(ValueError):
            BatchEngine()

    def test_engine_takes_precedence(self, service_graph):
        engine = GSIEngine(service_graph, GSIConfig.gsi_opt())
        service = BatchEngine(engine=engine)
        assert service.graph is service_graph
        assert service.config is engine.config

    def test_single_query_match_uses_cache(self, service_graph,
                                           service_queries):
        service = BatchEngine(service_graph)
        service.match(service_queries[0])
        service.match(service_queries[0])
        assert service.plan_cache.stats.hits == 1


class TestRunnerIntegration:
    def test_run_workload_batched(self, service_graph):
        wl = Workload.for_graph("toy", service_graph, num_queries=4,
                                query_vertices=4, seed=3)
        summary, report = run_workload_batched(wl, max_workers=2)
        assert summary.queries == 4
        assert summary.dataset == "toy"
        assert report.num_queries == 4
        assert summary.total_matches == report.total_matches
