"""Tests for the set-operation engine and its cost modes (Section V)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.set_ops import CandidateSet, RowCost, SetOpEngine


def arr(*xs):
    return np.array(sorted(xs), dtype=np.int64)


class TestCandidateSet:
    def test_contains_mask(self):
        c = CandidateSet(arr(2, 5, 9))
        mask = c.contains_mask(arr(1, 2, 9, 10))
        assert list(mask) == [False, True, True, False]

    def test_empty_candidate_set(self):
        c = CandidateSet(np.empty(0, dtype=np.int64))
        assert not c.contains_mask(arr(1, 2)).any()
        assert len(c) == 0

    def test_empty_values(self):
        c = CandidateSet(arr(1))
        assert len(c.contains_mask(np.empty(0, dtype=np.int64))) == 0

    def test_probe_cost_modes(self):
        c = CandidateSet(arr(*range(100)))
        assert c.probe_gld(10, friendly=True) == 10     # bitset: 1 each
        assert c.probe_gld(10, friendly=False) == 20    # binary search


class TestRowCost:
    def test_cycles_positive(self):
        c = RowCost(gld=2, gst=1, shared=3, ops=10)
        assert c.cycles() > 0

    def test_merge(self):
        a = RowCost(gld=1, gst=2, ops=3, launches=1, units=5.0)
        b = RowCost(gld=10, shared=4, units=2.0)
        a.merge(b)
        assert a.gld == 11 and a.gst == 2 and a.shared == 4
        assert a.ops == 3 and a.launches == 1 and a.units == 7.0


class TestFirstEdgeOp:
    def test_functional_result(self):
        eng = SetOpEngine()
        row = arr(1, 2)
        nbrs = arr(1, 3, 4, 5)
        cand = CandidateSet(arr(3, 5, 9))
        buf, cost = eng.first_edge(row, nbrs, locate_tx=1, cand=cand)
        assert list(buf) == [3, 5]  # drop 1 (in row), drop 4 (not in C)

    def test_empty_neighbors(self):
        eng = SetOpEngine()
        buf, cost = eng.first_edge(arr(1), np.empty(0, dtype=np.int64),
                                   1, CandidateSet(arr(1, 2)))
        assert len(buf) == 0

    def test_friendly_mode_no_launches(self):
        eng = SetOpEngine(friendly=True)
        _, cost = eng.first_edge(arr(1), arr(2, 3), 1,
                                 CandidateSet(arr(2, 3)))
        assert cost.launches == 0

    def test_naive_mode_launches_kernels(self):
        eng = SetOpEngine(friendly=False)
        _, cost = eng.first_edge(arr(1), arr(2, 3), 1,
                                 CandidateSet(arr(2, 3)))
        assert cost.launches == 2  # subtraction + intersection kernels

    def test_naive_costs_more_gld(self):
        friendly = SetOpEngine(friendly=True)
        naive = SetOpEngine(friendly=False)
        row, nbrs = arr(1), arr(*range(10, 80))
        cand = CandidateSet(arr(*range(10, 80, 2)))
        _, cf = friendly.first_edge(row, nbrs, 1, cand)
        _, cn = naive.first_edge(row, nbrs, 1, cand)
        assert cn.gld > cf.gld

    def test_write_cache_batches_stores(self):
        cached = SetOpEngine(friendly=True, write_cache=True)
        plain = SetOpEngine(friendly=True, write_cache=False)
        row, nbrs = arr(999), arr(*range(100))
        cand = CandidateSet(arr(*range(100)))
        _, cc = cached.first_edge(row, nbrs, 1, cand)
        _, cp = plain.first_edge(row, nbrs, 1, cand)
        assert cc.gst < cp.gst
        # 100 results: batched = ceil(100/32) = 4, unbatched = 100.
        assert cc.gst <= 8 and cp.gst >= 100

    def test_shared_hit_removes_global_reads(self):
        eng = SetOpEngine(friendly=True)
        row, nbrs = arr(1), arr(*range(10, 80))
        cand = CandidateSet(arr(*range(10, 80)))
        _, miss = eng.first_edge(row, nbrs, 2, cand, nbrs_from_shared=False)
        _, hit = eng.first_edge(row, nbrs, 2, cand, nbrs_from_shared=True)
        assert hit.gld < miss.gld
        assert hit.shared > miss.shared

    def test_storage_read_tx_honored(self):
        eng = SetOpEngine(friendly=True)
        row, nbrs = arr(1), arr(2, 3)
        cand = CandidateSet(arr(2, 3))
        _, cheap = eng.first_edge(row, nbrs, 1, cand, read_tx=1, streamed=2)
        _, costly = eng.first_edge(row, nbrs, 1, cand, read_tx=9,
                                   streamed=200)
        assert costly.gld > cheap.gld
        assert costly.units > cheap.units


class TestRefineOp:
    def test_functional_intersection(self):
        eng = SetOpEngine()
        out, _ = eng.refine_edge(arr(1, 3, 5), arr(3, 4, 5), 1)
        assert list(out) == [3, 5]

    def test_empty_buffer_short_circuit(self):
        eng = SetOpEngine()
        out, cost = eng.refine_edge(np.empty(0, dtype=np.int64),
                                    arr(1, 2), 1)
        assert len(out) == 0

    def test_count_only_discount_strips_stores(self):
        eng = SetOpEngine(friendly=True, write_cache=False)
        _, cost = eng.refine_edge(arr(1, 2, 3), arr(1, 2, 3), 1)
        stripped = eng.count_only_discount(cost)
        assert stripped.gst == 0
        assert stripped.gld == cost.gld
        assert stripped.ops == cost.ops

    def test_naive_refine_launches(self):
        eng = SetOpEngine(friendly=False)
        _, cost = eng.refine_edge(arr(1), arr(1), 1)
        assert cost.launches == 1


@settings(max_examples=50, deadline=None)
@given(
    row=st.sets(st.integers(0, 50), min_size=1, max_size=5),
    nbrs=st.sets(st.integers(0, 50), max_size=30),
    cand=st.sets(st.integers(0, 50), max_size=30),
)
def test_property_first_edge_semantics(row, nbrs, cand):
    eng = SetOpEngine()
    row_a = np.array(sorted(row), dtype=np.int64)
    nbrs_a = np.array(sorted(nbrs), dtype=np.int64)
    buf, _ = eng.first_edge(row_a, nbrs_a, 1,
                            CandidateSet(np.array(sorted(cand),
                                                  dtype=np.int64)))
    assert set(buf.tolist()) == (nbrs - row) & cand


@settings(max_examples=50, deadline=None)
@given(
    buf=st.sets(st.integers(0, 50), max_size=30),
    nbrs=st.sets(st.integers(0, 50), max_size=30),
)
def test_property_refine_semantics(buf, nbrs):
    eng = SetOpEngine()
    out, _ = eng.refine_edge(np.array(sorted(buf), dtype=np.int64),
                             np.array(sorted(nbrs), dtype=np.int64), 1)
    assert set(out.tolist()) == buf & nbrs
