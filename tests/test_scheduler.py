"""Tests for warp-slot scheduling and the 4-layer load balance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.constants import KERNEL_LAUNCH_CYCLES, WARPS_PER_BLOCK
from repro.gpusim.scheduler import (
    LoadBalanceConfig,
    makespan,
    schedule_kernel,
    split_tasks_4layer,
)


class TestMakespan:
    def test_empty(self):
        assert makespan([], 10) == 0.0

    def test_fewer_tasks_than_slots(self):
        assert makespan([5, 9, 2], 10) == 9

    def test_single_slot_sums(self):
        assert makespan([5, 9, 2], 1) == 16

    def test_greedy_assignment(self):
        # 4 tasks, 2 slots: 10,10 then 1,1 -> slots finish at 11 each.
        assert makespan([10, 10, 1, 1], 2) == 11

    def test_skew_dominates(self):
        costs = [1.0] * 100 + [1000.0]
        assert makespan(costs, 50) >= 1000.0

    def test_at_least_mean(self):
        costs = list(range(1, 101))
        assert makespan(costs, 7) >= sum(costs) / 7


class TestSplit4Layer:
    CFG = LoadBalanceConfig(w1=4096, w2=1024, w3=256)

    def test_layer4_untouched(self):
        out, extra, launches = split_tasks_4layer([10, 200, 256], self.CFG)
        assert out == [10.0, 200.0, 256.0]
        assert extra == 0.0
        assert launches == 0

    def test_layer3_chunks(self):
        out, extra, launches = split_tasks_4layer([512], self.CFG)
        merge = 2 * (64 / self.CFG.cycles_per_unit)
        assert len(out) == 2
        assert sum(out) == pytest.approx(512 + merge)
        assert max(out) <= 256 + merge
        assert launches == 0
        assert extra == 0  # merge overhead is per-chunk, not serial

    def test_layer2_block_spread(self):
        out, extra, _ = split_tasks_4layer([2048], self.CFG)
        merge = WARPS_PER_BLOCK * (64 / self.CFG.cycles_per_unit)
        assert len(out) == WARPS_PER_BLOCK
        assert sum(out) == pytest.approx(2048 + merge)

    def test_layer1_dedicated_kernel(self):
        out, extra, launches = split_tasks_4layer([100_000], self.CFG)
        assert out == []
        assert launches == 1
        assert extra >= KERNEL_LAUNCH_CYCLES

    def test_mixed(self):
        out, extra, launches = split_tasks_4layer(
            [10, 512, 2048, 100_000], self.CFG)
        assert launches == 1
        # work is conserved up to the per-chunk merge overheads
        assert sum(out) >= 10 + 512 + 2048
        assert sum(out) <= 10 + 512 + 2048 + len(out) * 64


class TestScheduleKernel:
    def test_launch_overhead_charged(self):
        r = schedule_kernel([100.0])
        assert r.elapsed_cycles >= KERNEL_LAUNCH_CYCLES + 100
        assert r.kernel_launches == 1

    def test_lb_reduces_makespan_on_skew(self):
        cfg = LoadBalanceConfig()
        units = [10.0] * 500 + [50_000.0]
        plain = schedule_kernel([u * cfg.cycles_per_unit for u in units])
        balanced = schedule_kernel(
            [u * cfg.cycles_per_unit for u in units], lb=cfg,
            task_units=units)
        assert balanced.elapsed_cycles < plain.elapsed_cycles

    def test_lb_counts_extra_launches(self):
        cfg = LoadBalanceConfig()
        r = schedule_kernel([1.0], lb=cfg, task_units=[100_000.0])
        assert r.kernel_launches == 2

    def test_lb_derives_units_when_missing(self):
        cfg = LoadBalanceConfig()
        r = schedule_kernel([100.0 * cfg.cycles_per_unit], lb=cfg)
        assert r.num_tasks_scheduled == 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.0, 1e6, allow_nan=False), max_size=60),
       st.integers(1, 64))
def test_property_makespan_bounds(costs, slots):
    span = makespan(costs, slots)
    if costs:
        assert span >= max(costs) - 1e-9
        assert span <= sum(costs) + 1e-6
    else:
        assert span == 0.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(1.0, 200_000.0), min_size=1, max_size=40))
def test_property_split_conserves_work_below_w1(units):
    cfg = LoadBalanceConfig()
    merge_units = 64 / cfg.cycles_per_unit
    small = [u for u in units if u <= cfg.w1]
    out, _, _ = split_tasks_4layer(small, cfg)
    assert sum(out) >= sum(small) - 1e-6
    assert sum(out) <= sum(small) + len(out) * merge_units + 1e-6
    assert all(u <= cfg.w2 + merge_units + 1e-9 for u in out)
