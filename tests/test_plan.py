"""Tests for join-order planning (Algorithm 2) and first-edge selection
(Algorithm 4, line 1)."""

import pytest

from repro.core.plan import JoinStep, plan_join_order, select_first_edge
from repro.errors import PlanError
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import GraphBuilder, LabeledGraph, path_query

from oracle import paper_query, tiny_paper_graph


class TestOrdering:
    def test_order_covers_all_vertices(self):
        g = scale_free_graph(100, 3, 4, 4, seed=2)
        q = random_walk_query(g, 6, seed=1)
        sizes = {u: 10 + u for u in range(6)}
        plan = plan_join_order(q, g, sizes)
        assert sorted(plan.order) == list(range(6))

    def test_start_vertex_minimizes_score(self):
        q = path_query([0, 1, 2])
        g = LabeledGraph([0, 1, 2] * 5,
                         [(0, 1, 0), (1, 2, 0), (3, 4, 0)])
        # candidate sizes chosen so vertex 1 (degree 2) wins
        sizes = {0: 10, 1: 10, 2: 10}
        plan = plan_join_order(q, g, sizes)
        assert plan.start_vertex == 1  # 10/2 < 10/1

    def test_every_step_connects_to_prefix(self):
        g = scale_free_graph(200, 3, 4, 4, seed=5)
        for seed in range(5):
            q = random_walk_query(g, 8, seed=seed)
            sizes = {u: 5 for u in range(8)}
            plan = plan_join_order(q, g, sizes)
            seen = {plan.start_vertex}
            for step in plan.steps:
                assert step.linking_edges, "every step must link to Q'"
                for u_prime, _ in step.linking_edges:
                    assert u_prime in seen
                seen.add(step.vertex)

    def test_linking_edges_complete(self):
        """Every query edge appears exactly once as a linking edge."""
        g = scale_free_graph(200, 3, 4, 4, seed=5)
        q = random_walk_query(g, 8, seed=2)
        plan = plan_join_order(q, g, {u: 5 for u in range(8)})
        linked = []
        for step in plan.steps:
            for u_prime, lab in step.linking_edges:
                key = (min(step.vertex, u_prime),
                       max(step.vertex, u_prime), lab)
                linked.append(key)
        expect = sorted((min(u, v), max(u, v), l) for u, v, l in q.edges())
        assert sorted(linked) == expect

    def test_disconnected_query_rejected(self):
        q = LabeledGraph([0, 0, 0], [(0, 1, 0)])
        g = LabeledGraph([0] * 4, [(0, 1, 0)])
        with pytest.raises(PlanError):
            plan_join_order(q, g, {0: 1, 1: 1, 2: 1})

    def test_empty_query_rejected(self):
        g = LabeledGraph([0], [])
        with pytest.raises(PlanError):
            plan_join_order(LabeledGraph([], []), g, {})

    def test_single_vertex_plan(self):
        g = LabeledGraph([0, 0], [(0, 1, 0)])
        q = LabeledGraph([0], [])
        plan = plan_join_order(q, g, {0: 2})
        assert plan.order == [0]
        assert plan.steps == ()

    def test_frequency_reweighting_pulls_rare_labels(self):
        # Query: center 0 linked to 1 (rare label) and 2 (common label).
        b = GraphBuilder()
        ids = b.add_vertices([0, 1, 1])
        b.add_edge(ids[0], ids[1], 7)  # rare in G
        b.add_edge(ids[0], ids[2], 8)  # common in G
        q = b.build()
        gb = GraphBuilder()
        gids = gb.add_vertices([0] + [1] * 20)
        gb.add_edge(gids[0], gids[1], 7)
        for i in range(2, 20):
            gb.add_edge(gids[0], gids[i], 8)
        g = gb.build()
        plan = plan_join_order(q, g, {0: 1, 1: 10, 2: 10})
        # After joining 0, vertex 1's score scales by freq(7)=1 while
        # vertex 2's scales by freq(8)=18: vertex 1 joins first.
        assert plan.order == [0, 1, 2]

    def test_paper_example(self):
        g = tiny_paper_graph()
        q = paper_query()
        sizes = {0: 1, 1: 3, 2: 4}
        plan = plan_join_order(q, g, sizes)
        assert plan.start_vertex == 0  # |C|/deg = 1/2, the smallest


class TestFirstEdge:
    def test_rarest_label_selected(self):
        g = GraphBuilder()
        ids = g.add_vertices([0] * 6)
        g.add_edge(ids[0], ids[1], 1)  # freq 1
        g.add_edge(ids[2], ids[3], 2)
        g.add_edge(ids[3], ids[4], 2)  # freq 2
        graph = g.build()
        step = JoinStep(vertex=9, linking_edges=((5, 2), (6, 1)))
        assert select_first_edge(step, graph) == (6, 1)

    def test_tie_breaks_on_vertex(self):
        g = LabeledGraph([0, 0], [(0, 1, 3)])
        step = JoinStep(vertex=9, linking_edges=((5, 3), (2, 3)))
        assert select_first_edge(step, g) == (2, 3)

    def test_no_linking_edges_raises(self):
        g = LabeledGraph([0], [])
        with pytest.raises(PlanError):
            select_first_edge(JoinStep(vertex=1, linking_edges=()), g)
