"""Tests for the one-shot experiment driver."""


from repro.bench.run_all import main


def test_run_all_writes_tables(tmp_path, capsys):
    rc = main(["--queries", "1", "--query-vertices", "5",
               "--out", str(tmp_path)])
    assert rc == 0
    written = {p.name for p in tmp_path.glob("*.txt")}
    assert {"table4_filtering.txt", "table6_join_techniques.txt",
            "table7_write_cache.txt", "table8_optimizations.txt",
            "fig12_overall.txt"} <= written
    out = capsys.readouterr().out
    assert "Table VI analog" in out
    assert "Figure 12 analog" in out


def test_run_all_tables_nonempty(tmp_path, capsys):
    main(["--queries", "1", "--query-vertices", "4",
          "--out", str(tmp_path)])
    for p in tmp_path.glob("*.txt"):
        text = p.read_text()
        assert "dataset" in text
        assert "enron" in text
