"""Tests for the pluggable executor layer (repro.service.executors).

The contract under test: executors change wall-clock only.  Serial,
thread-pool, and process-pool execution of the same batch must produce
identical match sets, simulated measurements, transaction totals, and
cache statistics, in submission order — and the process pool must
bootstrap its per-worker engine once per worker, not once per query.
"""

from __future__ import annotations

import pytest

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.errors import ConfigError
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.service import BatchEngine, make_executor
from repro.service.executors import (
    EXECUTOR_KINDS,
    EngineBuildSpec,
    EngineHandle,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    _process_engine_probe,
)

from oracle import brute_force_matches


@pytest.fixture(scope="module")
def exec_graph():
    return scale_free_graph(120, 3, 4, 3, seed=17)


@pytest.fixture(scope="module")
def exec_queries(exec_graph):
    return [random_walk_query(exec_graph, 4, seed=s) for s in range(6)]


@pytest.fixture(scope="module")
def process_executor():
    """One process pool shared by this module (spawning is expensive)."""
    executor = ProcessExecutor(max_workers=2)
    yield executor
    executor.shutdown()


def _payload(x, y):  # module-level: picklable for the process pool
    return (x, y * y)


def _kill_worker(_shared, _payload):  # simulates an OOM-killed worker
    import os

    os._exit(1)


class TestFactory:
    def test_make_executor_kinds(self):
        for kind in EXECUTOR_KINDS:
            executor = make_executor(kind, max_workers=2)
            assert executor.name == kind
            executor.shutdown()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_context_manager_shuts_down(self, exec_graph, exec_queries):
        with make_executor("process", 2) as executor:
            report = BatchEngine(exec_graph,
                                 executor=executor).run_batch(
                exec_queries[:2])
            assert report.num_queries == 2
            assert executor._pool is not None
        assert executor._pool is None


class TestBuildSpecValidation:
    def test_spec_with_neither_form_fails_loudly(self):
        """Regression: a spec carrying neither artifacts nor a graph
        used to reach GSIEngine(None, ...) and die with an opaque
        AttributeError deep inside signature encoding; strict typing
        flagged the Optional deref.  It must fail with a clear error
        at the build boundary instead."""
        spec = EngineBuildSpec(graph=None, config=GSIConfig())
        with pytest.raises(ConfigError,
                           match="neither artifacts nor a graph"):
            spec.build()

    def test_graph_spec_still_builds(self, exec_graph):
        engine = EngineBuildSpec(exec_graph, GSIConfig()).build()
        assert isinstance(engine, GSIEngine)


class TestMapTasks:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_order_and_shared_context(self, kind):
        with make_executor(kind, 2) as executor:
            out = executor.map_tasks(_payload, list(range(20)),
                                     shared=7)
        assert out == [(7, y * y) for y in range(20)]

    def test_empty_payloads(self, process_executor):
        assert process_executor.map_tasks(_payload, []) == []

    def test_thread_pool_persists_across_calls(self):
        executor = ThreadExecutor(max_workers=2)
        executor.map_tasks(_payload, list(range(4)))
        pool = executor._pool
        assert pool is not None
        executor.map_tasks(_payload, list(range(4)))
        assert executor._pool is pool, "thread pool must be reused"
        executor.shutdown()
        assert executor._pool is None
        # Usable again after shutdown: the pool is recreated lazily.
        assert executor.map_tasks(_payload, list(range(3)), shared=1) \
            == [(1, y * y) for y in range(3)]
        executor.shutdown()


class TestExecutorEquivalence:
    """One batch, three executors, identical outcomes."""

    def _run(self, graph, queries, executor):
        service = BatchEngine(graph, GSIConfig(), executor=executor)
        # Two batches: the second exercises plan + shape cache hits.
        first = service.run_batch(queries)
        second = service.run_batch(queries)
        return first, second

    def test_all_executors_identical(self, exec_graph, exec_queries,
                                     process_executor):
        reference = None
        for executor in (SerialExecutor(), ThreadExecutor(4),
                         process_executor):
            first, second = self._run(exec_graph, exec_queries, executor)
            key = (
                [item.result.match_set() for item in first.items],
                [item.result.elapsed_ms for item in first.items],
                [item.result.counters for item in first.items],
                [item.index for item in first.items],
                (first.cache, second.cache),
                [item.result.match_set() for item in second.items],
            )
            if reference is None:
                reference = key
            else:
                assert key == reference, (
                    f"{executor.name} executor diverged")

    def test_process_results_equal_oracle(self, exec_graph, exec_queries,
                                          process_executor):
        report = BatchEngine(
            exec_graph, executor=process_executor).run_batch(exec_queries)
        for query, result in zip(exec_queries, report.results):
            assert result.match_set() == \
                brute_force_matches(query, exec_graph)


class TestProcessBootstrap:
    def test_engine_built_once_per_worker(self, exec_graph, exec_queries,
                                          process_executor):
        service = BatchEngine(exec_graph, executor=process_executor)
        service.run_batch(exec_queries)  # pool initialized with a spec
        probes = process_executor.map_tasks(_process_engine_probe,
                                            list(range(16)))
        engines_by_pid = {}
        for pid, engine_id in probes:
            assert engine_id != 0, "worker engine was never bootstrapped"
            engines_by_pid.setdefault(pid, set()).add(engine_id)
        for pid, ids in engines_by_pid.items():
            assert len(ids) == 1, (
                f"worker {pid} rebuilt its engine per task: {ids}")

    def test_pool_survives_repeated_batches(self, exec_graph,
                                            exec_queries):
        with ProcessExecutor(max_workers=2) as executor:
            service = BatchEngine(exec_graph, executor=executor)
            service.run_batch(exec_queries[:2])
            pool = executor._pool
            service.run_batch(exec_queries[2:4])
            assert executor._pool is pool, (
                "same engine spec must reuse the worker pool")

    def test_broken_pool_recovers_on_next_call(self):
        """A dead worker must not permanently break the executor: the
        broken pool is discarded and later calls run on a fresh one."""
        from concurrent.futures.process import BrokenProcessPool

        with ProcessExecutor(max_workers=1) as executor:
            with pytest.raises(BrokenProcessPool):
                executor.map_tasks(_kill_worker, [0])
            assert executor._pool is None  # dead pool not kept around
            assert executor.map_tasks(_payload, [1, 2], shared=3) == \
                [(3, 1), (3, 4)]

    def test_pool_rebuilt_for_new_engine(self, exec_graph):
        other_graph = scale_free_graph(60, 3, 3, 3, seed=23)
        query = random_walk_query(other_graph, 3, seed=1)
        with ProcessExecutor(max_workers=1) as executor:
            BatchEngine(exec_graph, executor=executor).run_batch(
                [random_walk_query(exec_graph, 3, seed=1)])
            pool = executor._pool
            report = BatchEngine(other_graph,
                                 executor=executor).run_batch([query])
            assert executor._pool is not pool, (
                "a different engine spec must rebuild the pool")
            assert report.results[0].match_set() == \
                brute_force_matches(query, other_graph)


class TestErrorIsolation:
    def test_prepare_error_reported_per_item(self, exec_graph,
                                             exec_queries,
                                             process_executor):
        empty = LabeledGraph([], [])  # GraphError in prepare
        batch = [exec_queries[0], empty, exec_queries[1]]
        report = BatchEngine(
            exec_graph, executor=process_executor).run_batch(batch)
        assert report.errors == 1
        assert "GraphError" in report.items[1].error
        assert report.items[0].error is None
        assert report.items[2].error is None
        assert report.items[0].result.num_matches > 0

    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_execute_error_reported_per_item(self, exec_graph,
                                             exec_queries, kind,
                                             process_executor):
        """A failure inside the joining phase (worker side for the
        process pool) surfaces as a per-item error, not a crash."""
        engine = GSIEngine(exec_graph)
        executor = (process_executor if kind == "process"
                    else make_executor(kind, 2))
        handle = EngineHandle.for_engine(engine)
        good = engine.prepare(exec_queries[0])
        poison = engine.prepare(exec_queries[1])
        poison.candidates = {}  # plan survives, join must blow up
        executed = executor.execute_prepared(
            handle, [(0, good), (1, poison)], error_label="test")
        assert executed[0].error is None
        assert executed[0].result.num_matches > 0
        assert executed[1].error is not None
        assert executed[1].result.num_matches == 0
        if kind != "process":
            executor.shutdown()
