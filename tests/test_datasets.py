"""Tests for the dataset stand-ins (Table III analogs)."""

import pytest

from repro.graph import datasets
from repro.graph.stats import graph_stats


class TestLoaders:
    @pytest.mark.parametrize("name", datasets.all_names())
    def test_loads_and_connected_enough(self, name):
        g = datasets.load(name)
        s = graph_stats(g)
        assert s.num_vertices > 100
        assert s.num_edges > s.num_vertices * 0.9

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            datasets.load("nope")

    def test_road_is_mesh(self):
        g = datasets.road_like()
        assert g.max_degree() <= 4

    def test_scale_free_have_hubs(self):
        for name in ("enron", "gowalla", "watdiv", "dbpedia"):
            g = datasets.load(name)
            s = graph_stats(g)
            assert s.max_degree > 4 * s.mean_degree, name

    def test_dbpedia_has_largest_edge_vocabulary(self):
        les = {name: graph_stats(datasets.load(name)).num_edge_labels
               for name in datasets.all_names()}
        assert les["dbpedia"] == max(les.values())

    def test_scale_parameter_grows_graph(self):
        small = datasets.enron_like(scale=0.5)
        big = datasets.enron_like(scale=2.0)
        assert big.num_vertices > small.num_vertices

    def test_deterministic(self):
        a = datasets.gowalla_like()
        b = datasets.gowalla_like()
        assert set(a.edges()) == set(b.edges())

    def test_custom_seed(self):
        a = datasets.load("enron", seed=1)
        b = datasets.load("enron", seed=2)
        assert set(a.edges()) != set(b.edges())


class TestWatdivSeries:
    def test_linear_growth(self):
        series = datasets.watdiv_series(steps=4, base_vertices=150)
        sizes = [g.num_vertices for g in series]
        assert sizes == [150, 300, 450, 600]
        edges = [g.num_edges for g in series]
        assert all(e2 > e1 for e1, e2 in zip(edges, edges[1:]))

    def test_default_is_ten_steps(self):
        assert len(datasets.watdiv_series(steps=10, base_vertices=60)) == 10


class TestSpecs:
    def test_all_names_have_specs(self):
        for name in datasets.all_names():
            assert name in datasets.SPECS
            assert datasets.SPECS[name].graph_type in ("scale-free", "mesh")

    def test_loaders_cover_specs(self):
        assert set(datasets.LOADERS) == set(datasets.SPECS)
