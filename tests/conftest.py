"""Shared fixtures for the test suite.

Reference implementations (the brute-force oracle and the paper's
Figure 1 graphs) live in :mod:`oracle`; import them from there.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import GraphBuilder, LabeledGraph

# Re-exported for older tests that import the oracle via conftest.
from oracle import (  # noqa: F401
    brute_force_matches,
    paper_query,
    tiny_paper_graph,
)


@pytest.fixture(scope="session")
def small_graph() -> LabeledGraph:
    """A 150-vertex scale-free graph with few labels (dense matches)."""
    return scale_free_graph(150, 3, 4, 3, seed=5)


@pytest.fixture(scope="session")
def medium_graph() -> LabeledGraph:
    """A 600-vertex scale-free graph, enron-ish."""
    return scale_free_graph(600, 4, 8, 12, seed=7)


@pytest.fixture(scope="session")
def small_queries(small_graph) -> List[LabeledGraph]:
    """Five 4-vertex random-walk queries over ``small_graph``."""
    return [random_walk_query(small_graph, 4, seed=s) for s in range(5)]


@pytest.fixture()
def builder() -> GraphBuilder:
    return GraphBuilder()
