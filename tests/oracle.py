"""Reference implementations the whole suite checks engines against.

Kept in a plain module (not ``conftest.py``) so test files can import it
explicitly — ``from oracle import brute_force_matches`` — without relying
on conftest module-name resolution, which used to collide with
``benchmarks/conftest.py`` when both directories were collected.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.graph.labeled_graph import GraphBuilder, LabeledGraph


def brute_force_matches(query: LabeledGraph,
                        graph: LabeledGraph) -> Set[Tuple[int, ...]]:
    """Reference subgraph-isomorphism enumeration (non-induced,
    label-preserving, injective) by plain backtracking.

    Only suitable for small inputs; used as the oracle all engines are
    checked against.
    """
    nq = query.num_vertices
    cands: List[List[int]] = []
    for u in range(nq):
        cands.append([
            v for v in range(graph.num_vertices)
            if graph.vertex_label(v) == query.vertex_label(u)
        ])
    out: Set[Tuple[int, ...]] = set()

    def rec(u: int, assign: List[int]) -> None:
        if u == nq:
            out.add(tuple(assign))
            return
        for v in cands[u]:
            if v in assign:
                continue
            ok = True
            for w, lab in zip(query.neighbors(u), query.incident_labels(u)):
                w = int(w)
                if w < u:
                    if (not graph.has_edge(assign[w], v)
                            or graph.edge_label(assign[w], v) != int(lab)):
                        ok = False
                        break
            if ok:
                rec(u + 1, assign + [v])

    rec(0, [])
    return out


def tiny_paper_graph() -> LabeledGraph:
    """A small graph shaped like the paper's Figure 1 example.

    Labels: A=0, B=1, C=2 for vertices; a=0, b=1 for edges.  v0 (label A)
    connects to three B-vertices via label a and one C-vertex via label
    b; the C-hub closes triangles.
    """
    b = GraphBuilder()
    v0 = b.add_vertex(0)                     # A
    bs = [b.add_vertex(1) for _ in range(3)]  # B
    c_hub = b.add_vertex(2)                  # C (plays v201)
    cs = [b.add_vertex(2) for _ in range(3)]  # C (play v101..)
    for i, vb in enumerate(bs):
        b.add_edge(v0, vb, 0)        # A-B via a
        b.add_edge(vb, cs[i], 0)     # B-C via a
    b.add_edge(v0, c_hub, 1)         # A-C via b
    b.add_edge(bs[2], c_hub, 0)      # one B reaches the hub via a
    return b.build()


def paper_query() -> LabeledGraph:
    """The paper's Figure 1 query: A-B(a), A-C(b), B-C(a)."""
    b = GraphBuilder()
    u0 = b.add_vertex(0)  # A
    u1 = b.add_vertex(1)  # B
    u2 = b.add_vertex(2)  # C
    b.add_edge(u0, u1, 0)
    b.add_edge(u0, u2, 1)
    b.add_edge(u1, u2, 0)
    return b.build()
