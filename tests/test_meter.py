"""Tests for the event meter."""

from repro.gpusim.meter import MemoryMeter, MeterSnapshot


class TestMeter:
    def test_counters_accumulate(self):
        m = MemoryMeter()
        m.add_gld(5)
        m.add_gld(3, label="join")
        m.add_gst(2)
        m.add_shared(7)
        m.add_ops(11)
        m.add_kernel_launch()
        assert m.gld == 8
        assert m.gst == 2
        assert m.shared == 7
        assert m.ops == 11
        assert m.kernel_launches == 1
        assert m.labeled_gld("join") == 3
        assert m.labeled_gld("filter") == 0

    def test_reset(self):
        m = MemoryMeter()
        m.add_gld(5, label="x")
        m.reset()
        assert m.gld == 0
        assert m.labeled_gld("x") == 0

    def test_snapshot_is_immutable_copy(self):
        m = MemoryMeter()
        m.add_gld(4, label="join")
        snap = m.snapshot()
        m.add_gld(10, label="join")
        assert snap.gld == 4
        assert snap.labeled_gld["join"] == 4

    def test_diff(self):
        m = MemoryMeter()
        m.add_gld(4, label="join")
        before = m.snapshot()
        m.add_gld(6, label="join")
        m.add_gst(2)
        delta = m.snapshot().diff(before)
        assert delta.gld == 6
        assert delta.gst == 2
        assert delta.labeled_gld["join"] == 6

    def test_join_gld_aggregates_storage_labels(self):
        m = MemoryMeter()
        m.add_gld(3, label="join")
        m.add_gld(2, label="storage_locate")
        m.add_gld(5, label="storage_read")
        m.add_gld(100, label="filter")
        assert m.snapshot().join_gld == 10

    def test_default_snapshot_empty(self):
        s = MeterSnapshot()
        assert s.gld == 0 and s.join_gld == 0
