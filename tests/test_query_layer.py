"""Tests for the SPARQL-style query layer (labels, triples, patterns,
executor)."""

import pytest

from repro.errors import GraphError, PlanError
from repro.query import (
    LabelDictionary,
    PatternExecutor,
    TripleStore,
    parse_pattern,
    run_pattern,
)


# ----------------------------------------------------------------------
# LabelDictionary
# ----------------------------------------------------------------------

class TestLabelDictionary:
    def test_intern_is_idempotent(self):
        d = LabelDictionary()
        assert d.intern("a") == 0
        assert d.intern("b") == 1
        assert d.intern("a") == 0
        assert len(d) == 2

    def test_roundtrip(self):
        d = LabelDictionary()
        for name in ("x", "y", "z"):
            d.intern(name)
        for name in ("x", "y", "z"):
            assert d.label_of(d.id_of(name)) == name

    def test_contains_and_iter(self):
        d = LabelDictionary()
        d.intern("p")
        assert "p" in d and "q" not in d
        assert list(d) == ["p"]

    def test_get_missing(self):
        assert LabelDictionary().get("nope") is None

    def test_id_of_missing_raises(self):
        with pytest.raises(KeyError):
            LabelDictionary().id_of("nope")

    def test_negative_id_raises(self):
        with pytest.raises(IndexError):
            LabelDictionary().label_of(-1)


# ----------------------------------------------------------------------
# TripleStore
# ----------------------------------------------------------------------

def build_social_store() -> TripleStore:
    store = TripleStore()
    for person in ("alice", "bob", "carol", "dave"):
        store.add_type(person, "Person")
    for city in ("springfield", "shelbyville"):
        store.add_type(city, "City")
    store.add_type("acme", "Company")
    store.add_triple("alice", "knows", "bob")
    store.add_triple("bob", "knows", "carol")
    store.add_triple("alice", "knows", "carol")
    store.add_triple("alice", "lives_in", "springfield")
    store.add_triple("bob", "lives_in", "springfield")
    store.add_triple("carol", "lives_in", "shelbyville")
    store.add_triple("dave", "lives_in", "shelbyville")
    store.add_triple("carol", "works_at", "acme")
    store.add_triple("dave", "works_at", "acme")
    store.freeze()
    return store


class TestTripleStore:
    def test_freeze_builds_graph(self):
        store = build_social_store()
        assert store.graph.num_vertices == 7
        assert store.graph.num_edges == 9

    def test_untyped_entity_rejected(self):
        store = TripleStore()
        store.add_type("a", "T")
        store.add_triple("a", "p", "b")  # b never typed
        with pytest.raises(GraphError):
            store.freeze()

    def test_retype_rejected(self):
        store = TripleStore()
        store.add_type("a", "T1")
        with pytest.raises(GraphError):
            store.add_type("a", "T2")

    def test_self_triple_rejected(self):
        store = TripleStore()
        store.add_type("a", "T")
        with pytest.raises(GraphError):
            store.add_triple("a", "p", "a")

    def test_frozen_store_immutable(self):
        store = build_social_store()
        with pytest.raises(GraphError):
            store.add_triple("alice", "knows", "dave")
        with pytest.raises(GraphError):
            store.add_type("erin", "Person")

    def test_graph_before_freeze_raises(self):
        with pytest.raises(GraphError):
            TripleStore().graph

    def test_entity_and_type_lookup(self):
        store = build_social_store()
        assert store.type_of("alice") == "Person"
        assert store.type_of("acme") == "Company"
        vid = store.entities.id_of("bob")
        assert store.entity_name(vid) == "bob"

    def test_num_triples(self):
        assert build_social_store().num_triples() == 9


# ----------------------------------------------------------------------
# Pattern parsing
# ----------------------------------------------------------------------

class TestParsePattern:
    def test_basic(self):
        p = parse_pattern("""
            ?x a Person
            ?y a City
            ?x lives_in ?y .
        """)
        assert p.var_types == {"?x": "Person", "?y": "City"}
        assert len(p.edges) == 1
        assert p.edges[0].predicate == "lives_in"

    def test_comments_ignored(self):
        p = parse_pattern("?x a T  # typed\n?y a T\n?x p ?y # edge\n")
        assert len(p.edges) == 1

    def test_constants_collected(self):
        p = parse_pattern("?x a Person\n?x knows alice\n?x knows bob\n")
        assert p.constants() == ["alice", "bob"]

    def test_missing_type_rejected(self):
        with pytest.raises(GraphError):
            parse_pattern("?x a T\n?x p ?y\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(GraphError):
            parse_pattern("?x a T\n?x a U\n?x p ?x2\n")

    def test_wrong_arity_rejected(self):
        with pytest.raises(GraphError):
            parse_pattern("?x a\n")

    def test_variable_predicate_rejected(self):
        with pytest.raises(GraphError):
            parse_pattern("?x a T\n?y a T\n?x ?p ?y\n")

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            parse_pattern("?x a T\n?x p ?x\n")

    def test_empty_pattern_rejected(self):
        with pytest.raises(GraphError):
            parse_pattern("# nothing\n")

    def test_single_typed_variable_allowed(self):
        p = parse_pattern("?x a Person\n")
        assert p.variables == ["?x"]
        assert p.edges == []

    def test_constant_type_declaration_rejected(self):
        with pytest.raises(GraphError):
            parse_pattern("alice a Person\n")


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

class TestExecutor:
    @pytest.fixture(scope="class")
    def store(self):
        return build_social_store()

    def test_triangle_pattern(self, store):
        result = run_pattern(store, """
            ?p1 a Person
            ?p2 a Person
            ?c  a City
            ?p1 knows ?p2
            ?p1 lives_in ?c
            ?p2 lives_in ?c
        """)
        pairs = {(b["?p1"], b["?p2"]) for b in result.bindings}
        assert pairs == {("alice", "bob"), ("bob", "alice")}

    def test_grounded_pattern(self, store):
        result = run_pattern(store, """
            ?p a Person
            ?p knows alice
        """)
        assert {b["?p"] for b in result.bindings} == {"bob", "carol"}

    def test_single_variable_pattern(self, store):
        result = run_pattern(store, "?p a Person\n")
        assert {b["?p"] for b in result.bindings} \
            == {"alice", "bob", "carol", "dave"}

    def test_coworkers_in_same_city(self, store):
        result = run_pattern(store, """
            ?p1 a Person
            ?p2 a Person
            ?co a Company
            ?p1 works_at ?co
            ?p2 works_at ?co
            ?p1 lives_in ?city
            ?p2 lives_in ?city
            ?city a City
        """)
        pairs = {(b["?p1"], b["?p2"]) for b in result.bindings}
        assert pairs == {("carol", "dave"), ("dave", "carol")}

    def test_no_bindings(self, store):
        result = run_pattern(store, """
            ?p a Person
            ?co a Company
            ?p lives_in ?co
        """)
        assert result.bindings == []

    def test_unknown_type_rejected(self, store):
        with pytest.raises(GraphError):
            run_pattern(store, "?x a Robot\n?y a Person\n?x knows ?y\n")

    def test_unknown_predicate_rejected(self, store):
        with pytest.raises(GraphError):
            run_pattern(store, "?x a Person\n?y a Person\n?x hugs ?y\n")

    def test_unknown_entity_rejected(self, store):
        with pytest.raises(GraphError):
            run_pattern(store, "?x a Person\n?x knows zelda\n")

    def test_disconnected_pattern_rejected(self, store):
        # Two satisfiable but unconnected components: the join planner
        # must refuse (run components as separate queries instead).
        with pytest.raises(PlanError):
            run_pattern(store, """
                ?a a Person
                ?b a Person
                ?p a Person
                ?co a Company
                ?a knows ?b
                ?p works_at ?co
            """)

    def test_engine_measurement_attached(self, store):
        result = run_pattern(store, "?p a Person\n?p knows alice\n")
        assert result.engine_result.elapsed_ms > 0
        assert result.num_bindings == len(result.bindings)

    def test_executor_reusable(self, store):
        ex = PatternExecutor(store)
        r1 = ex.run("?p a Person\n?p knows alice\n")
        r2 = ex.run("?p a Person\n?p knows bob\n")
        assert {b["?p"] for b in r1.bindings} == {"bob", "carol"}
        assert {b["?p"] for b in r2.bindings} == {"alice", "carol"}
