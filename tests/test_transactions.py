"""Tests for the memory-transaction arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.transactions import (
    batched_write,
    coalesced_segments,
    contiguous_read,
    scattered_read,
    strided_read,
    unbatched_write,
)


class TestContiguousRead:
    def test_zero(self):
        assert contiguous_read(0) == 0

    def test_one_element(self):
        assert contiguous_read(1) == 1

    def test_exact_transaction(self):
        assert contiguous_read(32) == 1

    def test_boundary(self):
        assert contiguous_read(33) == 2

    def test_large(self):
        assert contiguous_read(320) == 10

    def test_unaligned_adds_one(self):
        assert contiguous_read(32, aligned=False) == 2
        # a straddling partial run is already covered by the ceil
        assert contiguous_read(33, aligned=False) == 2


class TestScatteredAndStrided:
    def test_scattered_one_per_access(self):
        assert scattered_read(7) == 7
        assert scattered_read(0) == 0

    def test_strided_unit_stride_is_contiguous(self):
        assert strided_read(32, 1) == contiguous_read(32)

    def test_strided_wide(self):
        # 32 accesses, 16 words apart -> spans 32*16*4 = 2048 B = 16 segs
        assert strided_read(32, 16) == 16

    def test_strided_capped_at_one_per_access(self):
        assert strided_read(32, 1000) == 32

    def test_strided_zero(self):
        assert strided_read(0, 4) == 0


class TestCoalescedSegments:
    def test_same_segment(self):
        # words 0..31 -> bytes 0..127 -> one 128 B segment
        assert coalesced_segments(range(32)) == 1

    def test_two_segments(self):
        assert coalesced_segments([0, 32]) == 2

    def test_fully_scattered(self):
        assert coalesced_segments([i * 32 for i in range(10)]) == 10


class TestWrites:
    def test_batched_equals_contiguous(self):
        assert batched_write(33) == 2

    def test_unbatched_one_per_element(self):
        assert unbatched_write(33) == 33
        assert unbatched_write(0) == 0


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 10_000))
def test_property_batched_never_exceeds_unbatched(n):
    assert batched_write(n) <= unbatched_write(n) or n == 0


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_property_contiguous_read_is_monotone(a, b):
    lo, hi = sorted((a, b))
    assert contiguous_read(lo) <= contiguous_read(hi)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 1000), st.integers(1, 64))
def test_property_strided_between_contiguous_and_scattered(n, stride):
    tx = strided_read(n, stride)
    assert contiguous_read(n) <= tx <= scattered_read(n)
