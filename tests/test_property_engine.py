"""Property-based end-to-end tests: GSI correctness under randomized
graphs, queries, and configuration axes."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GSIConfig, GSIEngine, random_walk_query
from repro.graph.generators import mesh_graph, rdf_like_graph, scale_free_graph

from oracle import brute_force_matches


@settings(max_examples=12, deadline=None)
@given(
    gseed=st.integers(0, 4),
    qseed=st.integers(0, 300),
    qsize=st.integers(2, 5),
    pcsr=st.booleans(),
    pc=st.booleans(),
    so=st.booleans(),
    dr=st.booleans(),
)
def test_property_config_matrix_correct(gseed, qseed, qsize, pcsr, pc,
                                        so, dr):
    """Any combination of technique toggles yields the exact match set."""
    g = scale_free_graph(70, 2, 3, 2, seed=gseed)
    q = random_walk_query(g, qsize, seed=qseed)
    cfg = GSIConfig(use_pcsr=pcsr, use_prealloc_combine=pc,
                    use_gpu_set_ops=so, use_write_cache=so,
                    use_duplicate_removal=dr)
    assert GSIEngine(g, cfg).match(q).match_set() \
        == brute_force_matches(q, g)


@settings(max_examples=10, deadline=None)
@given(
    rows=st.integers(3, 7),
    cols=st.integers(3, 7),
    qseed=st.integers(0, 100),
)
def test_property_mesh_graphs_correct(rows, cols, qseed):
    """Mesh (road-like) topologies, the paper's second graph type."""
    g = mesh_graph(rows, cols, 2, 2, seed=1)
    q = random_walk_query(g, 3, seed=qseed)
    assert GSIEngine(g).match(q).match_set() == brute_force_matches(q, g)


@settings(max_examples=8, deadline=None)
@given(qseed=st.integers(0, 100), bits=st.sampled_from([64, 256, 512]))
def test_property_hub_graphs_correct(qseed, bits):
    """Hub-skewed (RDF-like) topologies across signature widths."""
    g = rdf_like_graph(80, 320, 3, 3, seed=2)
    q = random_walk_query(g, 4, seed=qseed)
    cfg = GSIConfig(signature_bits=bits)
    assert GSIEngine(g, cfg).match(q).match_set() \
        == brute_force_matches(q, g)


@settings(max_examples=10, deadline=None)
@given(qseed=st.integers(0, 200), gpn=st.integers(2, 16))
def test_property_gpn_never_changes_results(qseed, gpn):
    g = scale_free_graph(60, 2, 3, 2, seed=3)
    q = random_walk_query(g, 3, seed=qseed)
    base = GSIEngine(g, GSIConfig()).match(q).match_set()
    assert GSIEngine(g, GSIConfig(gpn=gpn)).match(q).match_set() == base


@settings(max_examples=10, deadline=None)
@given(qseed=st.integers(0, 200), w3=st.sampled_from([33, 64, 256, 1023]))
def test_property_lb_thresholds_never_change_results(qseed, w3):
    g = scale_free_graph(60, 2, 3, 2, seed=4)
    q = random_walk_query(g, 3, seed=qseed)
    base = GSIEngine(g, GSIConfig()).match(q).match_set()
    cfg = replace(GSIConfig.with_lb(), w3=w3)
    assert GSIEngine(g, cfg).match(q).match_set() == base


@settings(max_examples=10, deadline=None)
@given(qseed=st.integers(0, 500))
def test_property_counters_consistent(qseed):
    """Counters are internally consistent: join GLD <= total GLD,
    phases sum to the total, candidate sizes cover the query."""
    g = scale_free_graph(80, 2, 3, 2, seed=5)
    q = random_walk_query(g, 4, seed=qseed)
    r = GSIEngine(g).match(q)
    assert r.counters.join_gld <= r.counters.gld
    assert r.phases.total_ms == pytest.approx(r.elapsed_ms)
    assert set(r.candidate_sizes) == set(range(q.num_vertices))
    for m in r.matches:
        assert len(m) == q.num_vertices
