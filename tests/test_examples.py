"""Smoke tests: every example script runs cleanly end to end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))

#: examples import ``repro`` from src/ — make that work regardless of
#: how pytest itself was launched (pytest.ini's pythonpath does not
#: propagate to subprocesses).
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(REPO_ROOT / "src")]
    + ([_ENV["PYTHONPATH"]] if _ENV.get("PYTHONPATH") else []))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=240, env=_ENV)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print something"
