"""Bulk PCSR updates (GPMA-style), partial compaction, and the
sorted-unique neighbor contract under churn."""

import numpy as np
import pytest

from repro.core.config import GSIConfig
from repro.core.join import JoinContext
from repro.core.set_ops import SetOpEngine
from repro.errors import StorageError
from repro.gpusim.device import Device
from repro.gpusim.meter import MemoryMeter
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.partition import partition_by_edge_label
from repro.storage.pcsr import PCSRPartition


def build_partition(edges, n=None, gpn=16):
    n = n if n is not None else (max(max(u, v) for u, v, _ in edges) + 1
                                 if edges else 1)
    g = LabeledGraph([0] * n, edges)
    parts = partition_by_edge_label(g)
    return {lab: PCSRPartition(p, gpn=gpn) for lab, p in parts.items()}


def random_edges(rng, num_vertices, num_edges):
    seen = set()
    while len(seen) < num_edges:
        u, v = (int(x) for x in rng.integers(0, num_vertices, size=2))
        if u != v:
            seen.add((min(u, v), max(u, v), 0))
    return sorted(seen)


def as_dicts(pairs):
    """(u, v) pairs -> symmetric {key: np.ndarray} delta."""
    out = {}
    for u, v in pairs:
        out.setdefault(u, []).append(v)
        out.setdefault(v, []).append(u)
    return {k: np.asarray(sorted(vs), dtype=np.int64)
            for k, vs in out.items()}


class TestApplyBulkDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_per_edge_path(self, seed):
        rng = np.random.default_rng(seed)
        base = random_edges(rng, 40, 120)
        part_bulk = build_partition(base)[0]
        part_edge = build_partition(base)[0]
        existing = {(u, v) for u, v, _ in base}

        for _ in range(6):
            removable = sorted(existing)
            picks = rng.choice(len(removable),
                               size=min(5, len(removable)),
                               replace=False)
            removes = [removable[i] for i in picks]
            adds = []
            while len(adds) < 8:
                u, v = (int(x) for x in rng.integers(0, 40, size=2))
                e = (min(u, v), max(u, v))
                if u != v and e not in existing and e not in adds:
                    adds.append(e)
            existing -= set(removes)
            existing |= set(adds)

            meter = MemoryMeter()
            assert part_bulk.apply_bulk(as_dicts(adds),
                                        as_dicts(removes), meter)
            edge_meter = MemoryMeter()
            for u, v in removes:
                part_edge.remove_neighbor(u, v, edge_meter)
                part_edge.remove_neighbor(v, u, edge_meter)
            for u, v in adds:
                for a, b in ((u, v), (v, u)):
                    arr = np.array([b], dtype=np.int64)
                    if part_edge._find_key(a)[1] >= 0:
                        part_edge.append_neighbors(a, arr, edge_meter)
                    else:
                        assert part_edge.insert_key(a, arr, edge_meter)

            assert part_bulk.validate() == []
            assert part_edge.validate() == []
            got = {v: a.tolist() for v, a in part_bulk.items()}
            want = {v: a.tolist() for v, a in part_edge.items()}
            # per-edge keeps emptied keys with [] extents; bulk merges
            # to the same lists for every live key
            want = {v: a for v, a in want.items() if a}
            got = {v: a for v, a in got.items() if a}
            assert got == want
            bulk_snap = meter.snapshot()
            edge_snap = edge_meter.snapshot()
            assert (bulk_snap.gld + bulk_snap.gst
                    <= edge_snap.gld + edge_snap.gst)

    def test_multiple_edges_same_key_one_merge(self):
        part = build_partition([(0, 1, 0), (0, 2, 0)])[0]
        meter = MemoryMeter()
        assert part.apply_bulk(
            {0: np.array([3, 4, 5]), 3: np.array([0]),
             4: np.array([0]), 5: np.array([0])}, {}, meter)
        assert part.validate() == []
        assert list(part.neighbors(0)) == [1, 2, 3, 4, 5]
        assert list(part.neighbors(4)) == [0]

    def test_new_key_insertion(self):
        part = build_partition([(0, 1, 0)])[0]
        assert part.apply_bulk({7: np.array([0]), 0: np.array([7])},
                               {})
        assert list(part.neighbors(7)) == [0]
        assert list(part.neighbors(0)) == [1, 7]
        assert part.validate() == []

    def test_mixed_insert_delete_same_key(self):
        part = build_partition([(0, 1, 0), (0, 2, 0)])[0]
        assert part.apply_bulk({0: np.array([5]), 5: np.array([0])},
                               {0: np.array([1]), 1: np.array([0])})
        assert list(part.neighbors(0)) == [2, 5]
        assert part.validate() == []


class TestApplyBulkAtomicity:
    def test_bad_delete_key_raises_before_mutation(self):
        part = build_partition([(0, 1, 0)])[0]
        before = {v: a.tolist() for v, a in part.items()}
        with pytest.raises(StorageError):
            part.apply_bulk({}, {9: np.array([0])})
        assert {v: a.tolist() for v, a in part.items()} == before

    def test_bad_delete_neighbor_raises_before_mutation(self):
        part = build_partition([(0, 1, 0), (2, 3, 0)])[0]
        before = {v: a.tolist() for v, a in part.items()}
        with pytest.raises(StorageError, match="not a neighbor"):
            # the valid half of the delta must not land either
            part.apply_bulk({}, {0: np.array([1]), 2: np.array([9])})
        assert {v: a.tolist() for v, a in part.items()} == before
        assert part.validate() == []

    def test_claim1_starvation_returns_false_unmodified(self):
        # gpn=2 -> one key slot per group; fill every group so a new
        # key cannot be placed anywhere along its chain.
        part = build_partition([(0, 1, 0)], gpn=2)[0]
        while part._empty_pool:
            spare = max(part.items(), default=(1, None))[0] + 100
            if not part.insert_key(spare,
                                   np.array([0], dtype=np.int64)):
                break
        before = {v: a.tolist() for v, a in part.items()}
        new_key = 9999
        assert part._find_key(new_key)[1] < 0
        assert not part.apply_bulk({new_key: np.array([0])}, {})
        assert {v: a.tolist() for v, a in part.items()} == before
        assert part.validate() == []


class TestPartialCompaction:
    def _churned_partition(self):
        rng = np.random.default_rng(3)
        part = build_partition(random_edges(rng, 30, 80))[0]
        # Force relocations (hence dead words) via repeated appends.
        for v in range(0, 30, 3):
            if len(part.neighbors(v)):
                part.append_neighbors(
                    v, np.asarray(rng.integers(30, 60, size=6),
                                  dtype=np.int64))
        assert part.dead_words() > 0
        return part

    def test_bounded_sweep_reclaims_only_on_completion(self):
        part = self._churned_partition()
        want = {v: a.tolist() for v, a in part.items()}
        dead = part.dead_words()
        reclaimed = 0
        calls = 0
        while True:
            calls += 1
            assert calls < 10_000
            got = part.compact(max_groups=1)
            # structure and content stay valid after EVERY bounded call
            assert part.validate() == []
            assert {v: a.tolist() for v, a in part.items()} == want
            if got:
                reclaimed = got
                break
            assert part.dead_words() == dead  # deferred, not dropped
        assert calls > 1  # the bound actually split the sweep
        assert reclaimed >= dead
        assert part.dead_words() == 0

    def test_bounded_matches_full_compaction(self):
        bounded = self._churned_partition()
        full = self._churned_partition()
        total = full.compact()
        while True:
            got = bounded.compact(max_groups=2)
            if got:
                break
        assert got == total
        assert ({v: a.tolist() for v, a in bounded.items()}
                == {v: a.tolist() for v, a in full.items()})

    def test_meter_charged_for_partial_passes(self):
        part = self._churned_partition()
        meter = MemoryMeter()
        assert part.compact(meter, max_groups=1) == 0
        snap = meter.snapshot()
        assert snap.gld + snap.gst > 0


class _DuplicateStore:
    """A stand-in store that surfaces duplicated, unsorted neighbors —
    what a buggy or mid-churn structure could briefly produce."""

    def neighbors(self, v, label):
        return np.array([5, 3, 5, 1, 3], dtype=np.int64)

    def locate_transactions(self, v, label):
        return 1

    def read_transactions(self, v, label):
        return 1

    def streamed_elements(self, v, label):
        return 5


class TestSortedUniqueContract:
    def test_join_context_dedups_and_sorts(self):
        cfg = GSIConfig()
        graph = LabeledGraph([0, 0], [(0, 1, 0)])
        ctx = JoinContext(graph=graph, store=_DuplicateStore(),
                          device=Device(), config=cfg,
                          set_engine=SetOpEngine())
        arr, _, _, _ = ctx.neighbors(0, 0)
        assert arr.tolist() == [1, 3, 5]

    def test_neighbors_sorted_unique_after_churn(self):
        rng = np.random.default_rng(8)
        part = build_partition(random_edges(rng, 25, 60))[0]
        for round_ in range(4):
            for v in range(0, 25, 4):
                if len(part.neighbors(v)):
                    part.append_neighbors(
                        v, np.asarray(rng.integers(0, 80, size=4),
                                      dtype=np.int64))
            part.apply_bulk(
                {0: np.asarray(rng.integers(80, 120, size=3),
                               dtype=np.int64)},
                {})
            part.compact(max_groups=1 + round_)
            for v, arr in part.items():
                lst = arr.tolist()
                assert lst == sorted(set(lst)), (
                    f"neighbors of {v} not sorted-unique: {lst}")
        assert part.validate() == []
