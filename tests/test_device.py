"""Tests for the simulated device."""

import numpy as np
import pytest

from repro.errors import BudgetExceeded
from repro.gpusim.constants import (
    KERNEL_LAUNCH_CYCLES,
    KERNEL_QUEUE_CYCLES,
    cycles_to_ms,
)
from repro.gpusim.device import Device


class TestClock:
    def test_starts_at_zero(self):
        d = Device()
        assert d.clock_cycles == 0.0
        assert d.elapsed_ms == 0.0

    def test_kernel_advances_clock(self):
        d = Device()
        d.run_kernel([100.0, 50.0], name="k")
        assert d.clock_cycles >= KERNEL_LAUNCH_CYCLES + 100
        assert d.elapsed_ms == cycles_to_ms(d.clock_cycles)

    def test_kernel_records(self):
        d = Device()
        d.run_kernel([1.0], name="mykernel")
        assert d.kernels[0].name == "mykernel"
        assert d.kernels[0].num_tasks == 1
        assert d.meter.kernel_launches == 1

    def test_launch_overhead_queue_cost(self):
        d = Device()
        d.launch_overhead(10)
        assert d.clock_cycles == pytest.approx(10 * KERNEL_QUEUE_CYCLES)
        assert d.meter.kernel_launches == 10


class TestBudget:
    def test_budget_raises(self):
        d = Device(budget_cycles=10.0)
        with pytest.raises(BudgetExceeded):
            d.run_kernel([1e9])

    def test_budget_not_hit(self):
        d = Device(budget_cycles=1e12)
        d.run_kernel([100.0])  # should not raise


class TestPrefixSum:
    def test_exclusive_scan_values(self):
        d = Device()
        out = d.exclusive_prefix_sum([3, 1, 2])
        assert list(out) == [0, 3, 4, 6]

    def test_empty(self):
        d = Device()
        out = d.exclusive_prefix_sum([])
        assert list(out) == [0]

    def test_charges_memory_traffic(self):
        d = Device()
        before = d.meter.snapshot()
        d.exclusive_prefix_sum(list(range(1000)))
        delta = d.meter.snapshot().diff(before)
        assert delta.gld > 0
        assert delta.gst > 0
        assert delta.kernel_launches == 1

    def test_large_scan_matches_numpy(self):
        d = Device()
        data = np.arange(500) % 7
        out = d.exclusive_prefix_sum(data)
        expect = np.concatenate([[0], np.cumsum(data)])
        assert np.array_equal(out, expect)


class TestMemset:
    def test_charges_stores(self):
        d = Device()
        d.memset_cycles(1024)
        assert d.meter.gst >= 32
        assert d.clock_cycles > 0
