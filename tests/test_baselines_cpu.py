"""Tests for the CPU baseline engines (Ullmann, VF3-style, CFL-style)."""

import pytest

from repro.baselines import CFLMatchEngine, UllmannEngine, VF2Engine
from repro.baselines.cfl import cfl_decompose, two_core
from repro.baselines.cpu_base import OpCounter
from repro.errors import BudgetExceeded
from repro.graph.generators import random_walk_query
from repro.graph.labeled_graph import (
    GraphBuilder,
    LabeledGraph,
    path_query,
    triangle_query,
)

from oracle import brute_force_matches


class TestOpCounter:
    def test_counts(self):
        c = OpCounter()
        c.add(5)
        c.add()
        assert c.ops == 6
        assert c.elapsed_ms > 0

    def test_budget_raises(self):
        c = OpCounter(budget_ms=0.000001)
        with pytest.raises(BudgetExceeded):
            c.add(10_000_000)

    def test_no_budget_never_raises(self):
        c = OpCounter()
        c.add(10_000_000)  # fine


@pytest.mark.parametrize("engine_cls", [UllmannEngine, VF2Engine,
                                        CFLMatchEngine])
class TestCorrectness:
    def test_agrees_with_brute_force(self, engine_cls, small_graph,
                                     small_queries):
        engine = engine_cls(small_graph)
        for q in small_queries:
            r = engine.match(q)
            assert not r.timed_out
            assert r.match_set() == brute_force_matches(q, small_graph)

    def test_triangle_query(self, engine_cls, small_graph):
        q = triangle_query((0, 0, 0), (0, 0, 0))
        r = engine_cls(small_graph).match(q)
        assert r.match_set() == brute_force_matches(q, small_graph)

    def test_no_matches_for_unknown_label(self, engine_cls, small_graph):
        q = LabeledGraph([12345], [])
        r = engine_cls(small_graph).match(q)
        assert r.num_matches == 0

    def test_elapsed_positive(self, engine_cls, small_graph):
        q = random_walk_query(small_graph, 4, seed=0)
        r = engine_cls(small_graph).match(q)
        assert r.elapsed_ms > 0

    def test_budget_timeout(self, engine_cls, small_graph):
        q = random_walk_query(small_graph, 5, seed=0)
        r = engine_cls(small_graph, budget_ms=1e-7).match(q)
        assert r.timed_out


class TestCFLDecomposition:
    def test_triangle_is_all_core(self):
        q = triangle_query()
        core, forest, leaves = cfl_decompose(q)
        assert core == {0, 1, 2}
        assert not forest and not leaves

    def test_path_has_no_core(self):
        q = path_query([0, 0, 0, 0])
        core, forest, leaves = cfl_decompose(q)
        assert core == set()
        assert leaves == {0, 3}
        assert forest == {1, 2}

    def test_lollipop(self):
        # triangle 0-1-2 with a tail 2-3-4
        b = GraphBuilder()
        ids = b.add_vertices([0] * 5)
        b.add_edge(0, 1, 0)
        b.add_edge(1, 2, 0)
        b.add_edge(0, 2, 0)
        b.add_edge(2, 3, 0)
        b.add_edge(3, 4, 0)
        q = b.build()
        core, forest, leaves = cfl_decompose(q)
        assert core == {0, 1, 2}
        assert forest == {3}
        assert leaves == {4}

    def test_two_core_of_cycle(self):
        b = GraphBuilder()
        ids = b.add_vertices([0] * 4)
        for i in range(4):
            b.add_edge(i, (i + 1) % 4, 0)
        assert two_core(b.build()) == {0, 1, 2, 3}

    def test_leaves_matched_last(self, small_graph):
        """CFL's matching order must place degree-1 leaves at the end."""
        b = GraphBuilder()
        ids = b.add_vertices([small_graph.vertex_label(v)
                              for v in range(3)])
        engine = CFLMatchEngine(small_graph)
        for seed in range(5):
            q = random_walk_query(small_graph, 5, seed=seed)
            core, forest, leaves = cfl_decompose(q)
            if not core or not leaves:
                continue
            r = engine.match(q)
            if not r.join_order:
                continue
            positions = {u: i for i, u in enumerate(r.join_order)}
            assert max(positions[u] for u in core) \
                < min(positions[u] for u in leaves)


class TestVF2Order:
    def test_order_connected(self, small_graph):
        engine = VF2Engine(small_graph)
        q = random_walk_query(small_graph, 6, seed=2)
        r = engine.match(q)
        order = r.join_order
        seen = {order[0]}
        for u in order[1:]:
            assert any(int(w) in seen for w in q.neighbors(u))
            seen.add(u)
