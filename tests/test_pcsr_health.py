"""PCSR health stats and the dead-space-ratio compaction policy.

Covers the monitoring surface (``PCSRPartition.stats`` /
``PCSRStorage.stats`` / ``DynamicPCSRStorage.stats``), in-place
compaction correctness, the automatic trigger in the dynamic store, and
the stats' exposure through batch and stream reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamic import DynamicPCSRStorage, GraphDelta, StreamEngine
from repro.dynamic.index import MIN_COMPACT_DEAD_WORDS
from repro.gpusim.meter import MemoryMeter
from repro.graph.generators import scale_free_graph
from repro.graph.labeled_graph import GraphBuilder
from repro.graph.partition import EdgeLabelPartition
from repro.service.batch import BatchEngine
from repro.storage.pcsr import PCSRPartition, PCSRStorage


def tiny_partition():
    adjacency = {
        0: np.array([1, 2], dtype=np.int64),
        1: np.array([0], dtype=np.int64),
        2: np.array([0], dtype=np.int64),
    }
    return PCSRPartition(EdgeLabelPartition(7, adjacency), gpn=4)


class TestPartitionStats:
    def test_stats_after_build(self):
        part = tiny_partition()
        s = part.stats()
        assert s["label"] == 7
        assert s["keys"] == 3
        assert s["ci_words"] == 4
        assert s["dead_words"] == 0
        assert s["dead_ratio"] == 0.0
        assert s["occupancy"] == pytest.approx(part.occupancy())
        assert s["max_chain_length"] == part.max_chain_length()

    def test_dead_words_appear_after_relocation(self):
        part = tiny_partition()
        # Regions are built with zero slack, so growing any list
        # relocates its group's region and orphans the old words.
        part.append_neighbors(0, np.array([9], dtype=np.int64))
        assert part.dead_words() > 0
        assert part.dead_ratio() > 0.0
        assert part.stats()["dead_words"] == part.dead_words()


class TestCompaction:
    def make_dirty(self):
        part = tiny_partition()
        for w in (5, 6, 7, 8, 9):
            part.append_neighbors(0, np.array([w], dtype=np.int64))
            part.append_neighbors(1, np.array([w], dtype=np.int64))
        assert part.dead_words() > 0
        return part

    def test_compact_preserves_content_and_zeroes_dead(self):
        part = self.make_dirty()
        before = {v: list(nbrs) for v, nbrs in part.items()}
        ci_before = part._ci_len
        dead = part.dead_words()
        reclaimed = part.compact()
        assert reclaimed >= dead
        assert part.dead_words() == 0
        assert part.dead_ratio() == 0.0
        assert part._ci_len == ci_before - reclaimed
        assert {v: list(nbrs) for v, nbrs in part.items()} == before
        assert part.validate() == []

    def test_compact_is_metered(self):
        part = self.make_dirty()
        meter = MemoryMeter()
        part.compact(meter)
        assert meter.labeled_gld("pcsr_compact") > 0
        assert meter.gst > 0

    def test_compact_on_clean_partition_is_a_noop(self):
        part = tiny_partition()
        before = {v: list(nbrs) for v, nbrs in part.items()}
        assert part.compact() == 0
        assert {v: list(nbrs) for v, nbrs in part.items()} == before
        assert part.validate() == []

    def test_lookups_survive_compaction(self):
        part = self.make_dirty()
        part.compact()
        assert sorted(part.neighbors(0).tolist()) == [1, 2, 5, 6, 7, 8, 9]
        assert sorted(part.neighbors(1).tolist()) == [0, 5, 6, 7, 8, 9]
        assert part.neighbors(99).size == 0


class TestAutoCompaction:
    def churn(self, store, graph, rng, rounds=300):
        live = {(u, v): lab for u, v, lab in graph.edges()}
        n = graph.num_vertices
        for _ in range(rounds):
            if live and rng.random() < 0.5:
                (u, v), lab = sorted(live.items())[
                    int(rng.integers(len(live)))]
                store.delete_edge(u, v, lab)
                del live[(u, v)]
            else:
                u, v = int(rng.integers(n)), int(rng.integers(n))
                key = (min(u, v), max(u, v))
                if u == v or key in live:
                    continue
                store.insert_edge(key[0], key[1], 0)
                live[key] = 0
        return live

    def test_trigger_fires_and_bounds_dead_ratio(self):
        graph = scale_free_graph(60, 3, 2, 1, seed=3)
        store = DynamicPCSRStorage(graph, compact_dead_ratio=0.05)
        rng = np.random.default_rng(1)
        live = self.churn(store, graph, rng)
        assert store.compactions > 0
        assert store.words_reclaimed > 0
        for part in store._parts.values():
            assert (part.dead_words() < MIN_COMPACT_DEAD_WORDS
                    or part.dead_ratio() <= store.compact_dead_ratio)
        # Content still exact after all that churn.
        for (u, v), lab in live.items():
            assert v in store.neighbors(u, lab)
            assert u in store.neighbors(v, lab)
        assert store.validate() == {}

    def test_stats_carry_maintenance_counters(self):
        graph = scale_free_graph(60, 3, 2, 1, seed=3)
        store = DynamicPCSRStorage(graph, compact_dead_ratio=0.05)
        self.churn(store, graph, np.random.default_rng(1))
        s = store.stats()
        assert s["compactions"] == store.compactions
        assert s["rebuilds"] == store.rebuilds
        assert s["words_reclaimed"] == store.words_reclaimed
        assert s["incremental_ops"] > 0
        assert s["compact_dead_ratio"] == 0.05
        assert s["total_ci_words"] >= s["total_dead_words"] >= 0
        assert 0.0 <= s["dead_ratio"] < 1.0
        assert s["per_label"][0]["keys"] > 0


class TestStatsSurfaces:
    def graph(self):
        b = GraphBuilder()
        ids = b.add_vertices([0, 1, 0, 1])
        b.add_edge(ids[0], ids[1], 0)
        b.add_edge(ids[1], ids[2], 0)
        b.add_edge(ids[2], ids[3], 1)
        return b.build()

    def test_static_pcsr_storage_stats(self):
        graph = self.graph()
        s = PCSRStorage(graph).stats()
        assert s["kind"] == "pcsr"
        assert s["partitions"] == 2
        assert s["total_dead_words"] == 0
        assert set(s["per_label"]) == {0, 1}

    def test_batch_report_carries_storage_stats(self):
        graph = self.graph()
        engine = BatchEngine(graph, max_workers=1)
        query = GraphBuilder()
        q = query.add_vertices([0, 1])
        query.add_edge(q[0], q[1], 0)
        report = engine.run_batch([query.build()])
        assert report.storage  # populated for every storage kind
        assert "kind" in report.storage
        if report.storage["kind"].endswith("pcsr"):
            assert "total_dead_words" in report.storage

    def test_stream_report_carries_pcsr_health(self):
        graph = self.graph()
        engine = StreamEngine(graph)
        report = engine.apply_batch(
            GraphDelta.for_graph(graph.num_vertices).add_edge(0, 3, 1))
        assert report.pcsr["kind"] == "dynamic-pcsr"
        assert report.pcsr["compactions"] == engine.index.compactions
        assert "total_dead_words" in report.pcsr
        assert "max_occupancy" in report.pcsr
        assert report.compactions >= 0
        assert "compactions=" in report.summary_line()
