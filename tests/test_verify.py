"""Tests for embedding verification and post-processing."""

import pytest

from repro import GSIConfig, GSIEngine, random_walk_query
from repro.core.verify import (
    deduplicate_automorphic,
    filter_induced,
    is_induced_embedding,
    is_valid_embedding,
    query_automorphisms,
    verify_all,
)
from repro.graph.labeled_graph import (
    GraphBuilder,
    LabeledGraph,
    path_query,
    triangle_query,
)


@pytest.fixture(scope="module")
def square_graph():
    """A labeled 4-cycle plus one chord."""
    b = GraphBuilder()
    ids = b.add_vertices([0, 0, 0, 0])
    for i in range(4):
        b.add_edge(i, (i + 1) % 4, 0)
    b.add_edge(0, 2, 0)  # chord
    return b.build()


class TestIsValidEmbedding:
    def test_valid(self, square_graph):
        q = path_query([0, 0, 0])
        assert is_valid_embedding(q, square_graph, (1, 0, 3))

    def test_wrong_length(self, square_graph):
        q = path_query([0, 0, 0])
        assert not is_valid_embedding(q, square_graph, (1, 0))

    def test_not_injective(self, square_graph):
        q = path_query([0, 0, 0])
        assert not is_valid_embedding(q, square_graph, (1, 0, 1))

    def test_missing_edge(self, square_graph):
        q = path_query([0, 0, 0])
        # vertices 1 and 3 are not adjacent, so a path through them fails
        assert not is_valid_embedding(q, square_graph, (2, 1, 3))
        assert not is_valid_embedding(q, square_graph, (0, 1, 3))

    def test_wrong_vertex_label(self):
        g = LabeledGraph([0, 1], [(0, 1, 0)])
        q = path_query([0, 0])
        assert not is_valid_embedding(q, g, (0, 1))

    def test_wrong_edge_label(self):
        g = LabeledGraph([0, 0], [(0, 1, 5)])
        q = path_query([0, 0], [6])
        assert not is_valid_embedding(q, g, (0, 1))

    def test_out_of_range_vertex(self, square_graph):
        q = path_query([0, 0])
        assert not is_valid_embedding(q, square_graph, (0, 99))


class TestVerifyAll:
    def test_gsi_output_verifies(self, small_graph):
        engine = GSIEngine(small_graph, GSIConfig.gsi_opt())
        for seed in range(4):
            q = random_walk_query(small_graph, 4, seed=seed)
            r = engine.match(q)
            assert verify_all(q, small_graph, r.matches) == []

    def test_detects_corruption(self, small_graph):
        q = random_walk_query(small_graph, 4, seed=0)
        r = GSIEngine(small_graph).match(q)
        if not r.matches:
            pytest.skip("no matches to corrupt")
        bad = tuple([-1] * 4)
        assert verify_all(q, small_graph, r.matches + [bad]) == [bad]


class TestInduced:
    def test_chord_breaks_inducedness(self, square_graph):
        # path 1-2-3 is induced iff 1 and 3 are non-adjacent: true here;
        # path 1-0-3 is non-induced? 1-3 no edge, so induced.
        q = path_query([0, 0, 0])
        assert is_induced_embedding(q, square_graph, (1, 2, 3))
        # 0-2 chord exists: path 0-1-2 maps ends 0,2 which ARE adjacent
        assert not is_induced_embedding(q, square_graph, (0, 1, 2))

    def test_filter_induced_subset(self, square_graph):
        q = path_query([0, 0, 0])
        engine = GSIEngine(square_graph)
        r = engine.match(q)
        induced = filter_induced(q, square_graph, r.matches)
        assert set(induced) <= r.match_set()
        assert all(is_induced_embedding(q, square_graph, m)
                   for m in induced)
        # the chord means strictly fewer induced embeddings
        assert len(induced) < r.num_matches


class TestAutomorphisms:
    def test_uniform_triangle_has_six(self):
        q = triangle_query((0, 0, 0), (0, 0, 0))
        assert len(query_automorphisms(q)) == 6

    def test_labeled_triangle_fewer(self):
        q = triangle_query((0, 0, 1), (0, 0, 0))
        # only the swap of the two label-0 endpoints survives (edge
        # labels uniform): identity + one transposition
        assert len(query_automorphisms(q)) == 2

    def test_path_has_two(self):
        q = path_query([0, 0, 0])
        assert len(query_automorphisms(q)) == 2  # identity + reversal

    def test_asymmetric_path_has_one(self):
        q = path_query([0, 1, 2])
        assert len(query_automorphisms(q)) == 1


class TestDeduplicate:
    def test_triangle_embeddings_collapse_six_to_one(self, small_graph):
        q = triangle_query((0, 0, 0), (0, 0, 0))
        r = GSIEngine(small_graph).match(q)
        if r.num_matches == 0:
            pytest.skip("no triangles in fixture graph")
        unique = deduplicate_automorphic(q, r.matches)
        assert len(unique) == r.num_matches // 6

    def test_identity_only_keeps_all(self, small_graph):
        # a rigid query (distinct endpoint labels) has no non-trivial
        # automorphisms, so deduplication keeps every embedding
        q = path_query([0, 1])
        r = GSIEngine(small_graph).match(q)
        unique = deduplicate_automorphic(q, r.matches)
        assert len(unique) == r.num_matches
