"""Failure-injection tests: corrupted structures must be detectable and
budget exhaustion must degrade gracefully, never silently."""

import pytest

from repro import GSIConfig, GSIEngine, random_walk_query
from repro.baselines import GpSMEngine, VF2Engine
from repro.core.verify import verify_all
from repro.errors import BudgetExceeded
from repro.graph.generators import scale_free_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.partition import partition_by_edge_label
from repro.storage.pcsr import PCSRPartition


@pytest.fixture()
def pcsr():
    g = scale_free_graph(120, 3, 3, 2, seed=3)
    part = partition_by_edge_label(g)[0]
    return PCSRPartition(part, gpn=4)


class TestPCSRValidation:
    def test_fresh_structure_valid(self, pcsr):
        assert pcsr.validate() == []

    def test_all_gpn_fresh_structures_valid(self):
        g = scale_free_graph(150, 3, 3, 3, seed=9)
        for gpn in (2, 3, 8, 16):
            for part in partition_by_edge_label(g).values():
                assert PCSRPartition(part, gpn=gpn).validate() == []

    def test_detects_offset_corruption(self, pcsr):
        # Find a populated key slot and wreck its offset.
        for gid in range(pcsr.num_groups):
            if pcsr.groups[gid, 0, 0] != -1:
                pcsr.groups[gid, 0, 1] = len(pcsr.ci) + 99
                break
        assert any("out of range" in p for p in pcsr.validate())

    def test_detects_bad_gid(self, pcsr):
        pcsr.groups[0, pcsr.gpn - 1, 0] = 10_000
        assert any("bad GID" in p for p in pcsr.validate())

    def test_detects_cycle(self, pcsr):
        # Self-loop chain.
        pcsr.groups[0, pcsr.gpn - 1, 0] = 0
        problems = pcsr.validate()
        assert any("cyclic" in p for p in problems) or \
            any("bad GID" in p for p in problems)

    def test_detects_key_after_gap(self, pcsr):
        # Force pattern [empty, key] in some group.
        for gid in range(pcsr.num_groups):
            if pcsr.groups[gid, 0, 0] != -1:
                pcsr.groups[gid, 1, 0] = pcsr.groups[gid, 0, 0]
                pcsr.groups[gid, 1, 1] = pcsr.groups[gid, 0, 1]
                pcsr.groups[gid, 0, 0] = -1
                break
        assert any("after empty slot" in p for p in pcsr.validate())

    def test_detects_misplaced_key(self, pcsr):
        # Plant a vertex in a group its hash chain cannot reach.
        from repro.storage.pcsr import default_hash
        victim = None
        for gid in range(pcsr.num_groups):
            if pcsr.groups[gid, 0, 0] != -1:
                victim = gid
                break
        foreign = 987_654_321
        if default_hash(foreign, pcsr.num_groups) == victim:
            foreign += 1
        pcsr.groups[victim, 0, 0] = foreign
        assert any("unreachable" in p for p in pcsr.validate())


class TestBudgetDegradation:
    def test_gsi_timeout_reports_no_partial_matches(self, small_graph):
        q = random_walk_query(small_graph, 5, seed=2)
        r = GSIEngine(small_graph, GSIConfig(budget_ms=1e-5)).match(q)
        assert r.timed_out
        assert r.matches == []

    def test_vf2_timeout_flag(self, small_graph):
        q = random_walk_query(small_graph, 5, seed=2)
        r = VF2Engine(small_graph, budget_ms=1e-9).match(q)
        assert r.timed_out

    def test_gpsm_timeout_flag(self, small_graph):
        q = random_walk_query(small_graph, 5, seed=2)
        r = GpSMEngine(small_graph, budget_ms=1e-9).match(q)
        assert r.timed_out

    def test_budget_error_carries_context(self):
        from repro.gpusim.device import Device
        d = Device(budget_cycles=1.0)
        with pytest.raises(BudgetExceeded) as exc:
            d.advance(100.0)
        assert "budget" in str(exc.value)


class TestOutputIntegrity:
    """Every engine's output must survive independent verification."""

    def test_gsi_verified_on_adversarial_graph(self):
        # A graph full of near-matches: same labels, one edge label off.
        edges = []
        for i in range(0, 60, 3):
            edges.append((i, i + 1, 0))
            edges.append((i + 1, i + 2, 1 if i % 6 else 0))
        g = LabeledGraph([0] * 60, edges)
        q = LabeledGraph([0, 0, 0], [(0, 1, 0), (1, 2, 0)])
        r = GSIEngine(g).match(q)
        assert verify_all(q, g, r.matches) == []
        # Only the chains whose second edge kept label 0 match.
        for m in r.matches:
            for u1, u2, lab in q.edges():
                assert g.edge_label(m[u1], m[u2]) == lab

    def test_no_duplicate_rows_in_results(self, small_graph):
        engine = GSIEngine(small_graph, GSIConfig.gsi_opt())
        for seed in range(3):
            q = random_walk_query(small_graph, 4, seed=seed)
            r = engine.match(q)
            assert len(r.matches) == len(set(r.matches))
