"""Tests for graph text I/O."""

import pytest

from repro.errors import GraphError
from repro.graph.generators import scale_free_graph
from repro.graph.io import load_graph, save_graph
from repro.graph.labeled_graph import LabeledGraph


class TestRoundTrip:
    def test_small_graph(self, tmp_path):
        g = LabeledGraph([3, 1, 2], [(0, 1, 5), (1, 2, 6)])
        path = tmp_path / "g.txt"
        save_graph(g, path)
        h = load_graph(path)
        assert h.num_vertices == 3
        assert list(h.vertex_labels) == [3, 1, 2]
        assert set(h.edges()) == set(g.edges())

    def test_generated_graph(self, tmp_path):
        g = scale_free_graph(80, 2, 4, 4, seed=1)
        path = tmp_path / "g.txt"
        save_graph(g, path)
        h = load_graph(path)
        assert set(h.edges()) == set(g.edges())
        assert list(h.vertex_labels) == list(g.vertex_labels)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "e.txt"
        save_graph(LabeledGraph([], []), path)
        h = load_graph(path)
        assert h.num_vertices == 0


class TestParsing:
    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# comment\n\nt 2 1\nv 0 1\nv 1 2\ne 0 1 3\n")
        g = load_graph(path)
        assert g.num_edges == 1
        assert g.edge_label(0, 1) == 3

    def test_missing_header(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("v 0 1\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_bad_vertex_id(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text("t 1 0\nv 5 1\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "u.txt"
        path.write_text("t 1 0\nx what\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_malformed_edge(self, tmp_path):
        path = tmp_path / "me.txt"
        path.write_text("t 2 1\nv 0 1\nv 1 1\ne 0 1\n")
        with pytest.raises(GraphError):
            load_graph(path)
