"""Tests for signature table layout costs (Figure 8c vs 8d)."""

import numpy as np

from repro.core.signature import encode_vertex
from repro.core.signature_table import SignatureTable
from repro.graph.generators import random_walk_query, scale_free_graph


def make_tables(bits=512):
    g = scale_free_graph(200, 3, 5, 5, seed=4)
    q = random_walk_query(g, 4, seed=1)
    col = SignatureTable.build(g, bits, column_first=True)
    row = SignatureTable.build(g, bits, column_first=False)
    sig = encode_vertex(q, 0, bits)
    return g, col, row, sig


class TestFunctional:
    def test_layout_does_not_change_results(self):
        _, col, row, sig = make_tables()
        assert np.array_equal(col.filter(sig), row.filter(sig))

    def test_filter_returns_label_matches_only(self):
        g, col, _, sig = make_tables()
        for v in col.filter(sig):
            assert g.vertex_label(int(v)) == int(sig[0])


class TestScanCost:
    def test_column_first_cheaper(self):
        _, col, row, sig = make_tables()
        assert col.scan_cost(sig).gld_transactions \
            < row.scan_cost(sig).gld_transactions

    def test_row_first_pays_stride_gap(self):
        # With 16-word signatures, a warp's same-word reads span
        # 16 x 4 x 32 bytes = 16 segments: one order of magnitude worse.
        _, col, row, sig = make_tables(512)
        ratio = (row.scan_cost(sig).gld_transactions
                 / max(1, col.scan_cost(sig).gld_transactions))
        assert ratio > 4

    def test_task_count_is_warps(self):
        g, col, _, sig = make_tables()
        cost = col.scan_cost(sig)
        assert len(cost.warp_task_cycles) == (g.num_vertices + 31) // 32

    def test_label_miss_warps_read_one_word(self):
        # A signature whose label matches nothing: every warp reads only
        # word 0, so column-first cost is exactly one tx per warp.
        g = scale_free_graph(100, 2, 3, 3, seed=1)
        table = SignatureTable.build(g, 128, column_first=True)
        sig = np.zeros(4, dtype=np.uint32)
        sig[0] = 999_999  # label not present
        cost = table.scan_cost(sig)
        warps = (g.num_vertices + 31) // 32
        assert cost.gld_transactions == warps

    def test_empty_table(self):
        table = SignatureTable(np.zeros((0, 4), dtype=np.uint32))
        sig = np.zeros(4, dtype=np.uint32)
        assert table.scan_cost(sig).gld_transactions == 0
        assert len(table.filter(sig)) == 0

    def test_shorter_signatures_cost_less(self):
        g = scale_free_graph(200, 3, 5, 5, seed=4)
        q = random_walk_query(g, 4, seed=1)
        costs = []
        for bits in (64, 256, 512):
            t = SignatureTable.build(g, bits, column_first=True)
            sig = encode_vertex(q, 0, bits)
            costs.append(t.scan_cost(sig).gld_transactions)
        assert costs[0] <= costs[1] <= costs[2]
