"""Fuzz-profile slice for the sharded subsystem.

Replays one seeded, profile-shaped update stream (the same generator
the dynamic-subsystem fuzz harness uses) and, after every batch,
rebuilds a 4-shard scatter-gather engine on the committed snapshot and
checks its match sets against the brute-force oracle and a single
engine over the whole snapshot.  This exercises the halo/ownership
argument against graphs the stream mutates adversarially — hub
isolation, relabels, vertex growth — rather than only against static
generator output.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import GSIEngine
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.shard import ShardedEngine, ShardedGraph

from fuzz_harness import _Shadow, generate_batch
from oracle import brute_force_matches

NUM_SHARDS = 4


def test_fuzz_stream_against_four_shard_engine():
    seed, profile = 5, "churn"
    rng = np.random.default_rng(seed * 7919)
    graph = scale_free_graph(26, 3, 3, 3, seed=seed)
    shadow = _Shadow(graph)
    vpool = sorted(set(shadow.vlabels)) or [0]
    epool = graph.distinct_edge_labels() or [0]
    queries = [random_walk_query(graph, k, seed=seed + i)
               for i, k in enumerate((2, 3, 4))]

    checked = 0
    for _ in range(5):
        generate_batch(rng, shadow, profile, 8, vpool, epool)
        snapshot = shadow.rebuild()
        if snapshot.num_edges == 0:
            continue
        single = GSIEngine(snapshot)
        for partitioner in ("hash", "label"):
            sharded = ShardedEngine(ShardedGraph(
                snapshot, NUM_SHARDS, partitioner=partitioner,
                halo_hops=2))
            report = sharded.run_batch(queries)
            assert report.errors == 0
            for query, item in zip(queries, report.items):
                want = brute_force_matches(query, snapshot)
                assert set(item.result.matches) == want, (
                    f"sharded ({partitioner}) diverged from oracle "
                    f"(seed={seed}, profile={profile})")
                assert len(item.result.matches) == len(want)
                assert item.result.match_set() == \
                    single.match(query).match_set()
                checked += 1
    assert checked > 0
