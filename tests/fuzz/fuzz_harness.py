"""Randomized differential fuzz harness for the dynamic subsystem.

:func:`run_fuzz` replays a seeded, profile-shaped random update stream
through a :class:`~repro.dynamic.stream.StreamEngine` while mirroring
every operation into an independent *shadow* (a plain dict of live
edges), and checks after **every** batch that

* the committed snapshot's edge set, vertex labels and CSR arrays equal
  a from-scratch :class:`LabeledGraph` built off the shadow (the
  O(changes) ``apply_changes`` splice vs. the ground-truth rebuild);
* every continuous query's composed live match set equals the
  brute-force oracle on the snapshot, and the per-batch created /
  destroyed deltas are disjoint and consistent with the previous set;
* every PCSR partition validates clean, answers ``N(v, l)`` exactly as
  the snapshot does for every touched vertex, and honors the
  dead-space-ratio compaction bound;
* (optionally) every signature-table row equals a fresh re-encode.

Profiles shape the stream adversarially: ``skewed`` hammers hub
vertices, ``delete_heavy`` drains the graph, ``churn`` deletes and
re-inserts the same pairs (exercising net-change cancellation and slack
reuse), ``adversarial`` mixes empty batches, oversized batches,
same-batch delete+re-add, relabels and hub isolation.

Reproduction workflow: every failure is fully determined by
``(seed, profile)`` plus the size keywords — re-run
``run_fuzz(seed, profile)`` with the values from the failing test id,
e.g. ``pytest "tests/fuzz/test_fuzz_stream.py::test_fuzz_quick[1-churn]"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.signature import encode_vertex
from repro.dynamic import GraphDelta, StreamEngine
from repro.dynamic.index import MIN_COMPACT_DEAD_WORDS
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph

from oracle import brute_force_matches

PROFILES = ("uniform", "skewed", "delete_heavy", "churn", "adversarial")


@dataclass
class FuzzReport:
    """What one :func:`run_fuzz` run did (for meta-assertions)."""

    seed: int
    profile: str
    batches: int = 0
    ops: int = 0
    inserted: int = 0
    deleted: int = 0
    new_vertices: int = 0
    commit_transactions: int = 0
    compactions: int = 0
    rebuilds: int = 0
    checks: int = 0


class _Shadow:
    """Ground-truth mirror of the evolving graph: plain dicts."""

    def __init__(self, graph: LabeledGraph) -> None:
        self.vlabels: List[int] = [int(x) for x in graph.vertex_labels]
        self.edges: Dict[Tuple[int, int], int] = {
            (u, v): lab for u, v, lab in graph.edges()}

    @property
    def num_vertices(self) -> int:
        return len(self.vlabels)

    def rebuild(self) -> LabeledGraph:
        return LabeledGraph(self.vlabels, [
            (u, v, lab) for (u, v), lab in self.edges.items()])

    def incident(self, v: int) -> List[Tuple[int, int]]:
        return [key for key in self.edges if v in key]


def _pick_vertex(rng: np.random.Generator, n: int, skewed: bool) -> int:
    if skewed:
        # Cube the uniform draw: low ids (scale-free hubs) dominate.
        return int(n * float(rng.random()) ** 3) % n
    return int(rng.integers(n))


def _gen_insert(rng, shadow: _Shadow, delta: GraphDelta,
                labels: List[int], skewed: bool) -> bool:
    n = shadow.num_vertices
    for _ in range(30):
        u = _pick_vertex(rng, n, skewed)
        v = _pick_vertex(rng, n, skewed)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in shadow.edges:
            continue
        lab = labels[int(rng.integers(len(labels)))]
        delta.add_edge(key[0], key[1], lab)
        shadow.edges[key] = lab
        return True
    return False


def _gen_delete(rng, shadow: _Shadow, delta: GraphDelta,
                skewed: bool) -> bool:
    if not shadow.edges:
        return False
    keys = sorted(shadow.edges)
    if skewed:
        # Prefer edges incident to the lowest-id (hub) vertices.
        keys.sort(key=lambda k: min(k))
        key = keys[int(len(keys) * float(rng.random()) ** 2)]
    else:
        key = keys[int(rng.integers(len(keys)))]
    delta.remove_edge(*key)
    del shadow.edges[key]
    return True


def _gen_relabel(rng, shadow: _Shadow, delta: GraphDelta,
                 labels: List[int]) -> bool:
    if not shadow.edges:
        return False
    keys = sorted(shadow.edges)
    key = keys[int(rng.integers(len(keys)))]
    new_lab = labels[int(rng.integers(len(labels)))]
    delta.remove_edge(*key)
    delta.add_edge(key[0], key[1], new_lab)
    shadow.edges[key] = new_lab
    return True


def _gen_add_vertex(rng, shadow: _Shadow, delta: GraphDelta,
                    vlabels: List[int], elabels: List[int]) -> None:
    lab = vlabels[int(rng.integers(len(vlabels)))]
    vid = delta.add_vertex(lab)
    shadow.vlabels.append(lab)
    if vid > 0 and float(rng.random()) < 0.8:
        anchor = int(rng.integers(vid))
        elab = elabels[int(rng.integers(len(elabels)))]
        delta.add_edge(anchor, vid, elab)
        shadow.edges[(anchor, vid)] = elab


def _gen_isolate_hub(shadow: _Shadow, delta: GraphDelta) -> bool:
    degree: Dict[int, int] = {}
    for u, v in shadow.edges:
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1
    if not degree:
        return False
    hub = max(sorted(degree), key=degree.get)
    delta.remove_vertex(hub)
    for key in shadow.incident(hub):
        del shadow.edges[key]
    return True


def generate_batch(rng: np.random.Generator, shadow: _Shadow,
                   profile: str, batch_size: int,
                   vlabel_pool: List[int],
                   elabel_pool: List[int]) -> GraphDelta:
    """One profile-shaped update batch, mirrored into ``shadow``."""
    delta = GraphDelta.for_graph(shadow.num_vertices)
    size = batch_size
    if profile == "adversarial":
        roll = float(rng.random())
        if roll < 0.15:
            return delta  # empty batch
        if roll < 0.3:
            size = batch_size * 4  # oversized burst
        elif roll < 0.45 and _gen_isolate_hub(shadow, delta):
            return delta
        elif roll < 0.6 and shadow.edges:
            # Same-batch delete + re-add with the same label: the net
            # change set must cancel to nothing for this pair.
            keys = sorted(shadow.edges)
            key = keys[int(rng.integers(len(keys)))]
            lab = shadow.edges[key]
            delta.remove_edge(*key)
            delta.add_edge(key[0], key[1], lab)
            size = max(1, batch_size // 2)
    skewed = profile == "skewed"
    for _ in range(size):
        roll = float(rng.random())
        if profile == "delete_heavy":
            weights = (0.72, 0.18, 0.05, 0.05)
        elif profile == "churn":
            weights = (0.45, 0.4, 0.1, 0.05)
        else:
            weights = (0.3, 0.5, 0.1, 0.1)
        p_del, p_ins, p_rel, _p_vert = weights
        if roll < p_del:
            if not _gen_delete(rng, shadow, delta, skewed):
                _gen_insert(rng, shadow, delta, elabel_pool, skewed)
        elif roll < p_del + p_ins:
            if not _gen_insert(rng, shadow, delta, elabel_pool, skewed):
                _gen_delete(rng, shadow, delta, skewed)
        elif roll < p_del + p_ins + p_rel:
            _gen_relabel(rng, shadow, delta, elabel_pool)
        else:
            _gen_add_vertex(rng, shadow, delta, vlabel_pool, elabel_pool)
    if profile == "churn" and shadow.edges and float(rng.random()) < 0.5:
        # Extra same-batch remove+re-add of a live pair: exercises the
        # overlay's net-change bookkeeping and PCSR slack reuse.
        _gen_relabel(rng, shadow, delta, elabel_pool)
    return delta


def _check_snapshot(snapshot: LabeledGraph, shadow: _Shadow) -> None:
    assert snapshot.num_vertices == shadow.num_vertices
    assert [int(x) for x in snapshot.vertex_labels] == shadow.vlabels
    assert {(u, v): lab for u, v, lab in snapshot.edges()} == shadow.edges
    rebuilt = shadow.rebuild()
    assert np.array_equal(snapshot._offsets, rebuilt._offsets)
    assert np.array_equal(snapshot._nbr, rebuilt._nbr)
    assert np.array_equal(snapshot._elab, rebuilt._elab)
    assert snapshot._edge_label_freq == rebuilt._edge_label_freq


def _check_pcsr(engine: StreamEngine, snapshot: LabeledGraph,
                touched) -> None:
    storage = engine.index.storage
    assert storage.validate() == {}
    for lab, part in storage._parts.items():
        # Post-op compaction bound: dead space is either under the
        # floor or under the configured ratio.
        assert (part.dead_words() < MIN_COMPACT_DEAD_WORDS
                or part.dead_ratio() <= storage.compact_dead_ratio), (
            f"label {lab}: dead ratio {part.dead_ratio():.3f} above "
            f"threshold with {part.dead_words()} dead words")
    labels = snapshot.distinct_edge_labels()
    for v in touched:
        if v >= snapshot.num_vertices:
            continue
        for lab in labels:
            got = np.sort(storage.neighbors(v, lab))
            want = np.sort(snapshot.neighbors_by_label(v, lab))
            assert np.array_equal(got, want), (
                f"PCSR N({v}, {lab}) diverged from the snapshot")


def _check_signatures(engine: StreamEngine,
                      snapshot: LabeledGraph) -> None:
    bits = engine.config.signature_bits
    lbits = engine.config.label_bits
    table = engine.index.signature_table.table
    assert len(table) == snapshot.num_vertices
    for v in range(snapshot.num_vertices):
        fresh = encode_vertex(snapshot, v, bits, lbits)
        assert np.array_equal(table[v], fresh), (
            f"stale signature row for vertex {v}")


def run_fuzz(seed: int, profile: str = "uniform", *,
             num_vertices: int = 28, num_batches: int = 6,
             batch_size: int = 10, query_sizes: Tuple[int, ...] = (2, 3, 4),
             compact_dead_ratio: float = 0.25,
             check_signatures: bool = True,
             executor=None) -> FuzzReport:
    """One end-to-end differential fuzz run; raises on any divergence.

    ``executor`` (a :class:`repro.service.executors.QueryExecutor`, not
    shut down here) routes the per-query delta matching through that
    executor — used to fuzz the process pool's shm data plane against
    the same oracle that vets the serial path.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}")
    rng = np.random.default_rng(seed * 7919 + PROFILES.index(profile))
    graph = scale_free_graph(num_vertices, 3, 3, 3, seed=seed)
    shadow = _Shadow(graph)
    vlabel_pool = sorted(set(shadow.vlabels)) or [0]
    elabel_pool = graph.distinct_edge_labels() or [0]

    engine = StreamEngine(graph, compact_dead_ratio=compact_dead_ratio,
                          executor=executor)
    queries = [random_walk_query(graph, k, seed=seed + i)
               for i, k in enumerate(query_sizes)]
    qids = [engine.register(q) for q in queries]

    report = FuzzReport(seed=seed, profile=profile)
    for _ in range(num_batches):
        delta = generate_batch(rng, shadow, profile, batch_size,
                               vlabel_pool, elabel_pool)
        before = {qid: engine.matches(qid) for qid in qids}
        batch = engine.apply_batch(delta)
        snapshot = engine.graph

        _check_snapshot(snapshot, shadow)
        # Graphs are fuzz-sized: check every vertex's PCSR adjacency.
        _check_pcsr(engine, snapshot, range(snapshot.num_vertices))
        if check_signatures:
            _check_signatures(engine, snapshot)

        for qid, query in zip(qids, queries):
            live = engine.matches(qid)
            assert live == brute_force_matches(query, snapshot), (
                f"query {qid} diverged from oracle "
                f"(seed={seed}, profile={profile})")
            qd = batch.query_deltas[qid]
            assert not (qd.created & before[qid]), \
                "created overlaps the previous live set"
            assert qd.destroyed <= before[qid], \
                "destroyed contains never-live matches"
            assert live == (before[qid] - qd.destroyed) | qd.created

        report.batches += 1
        report.ops += delta.num_ops
        report.inserted += batch.num_inserted
        report.deleted += batch.num_deleted
        report.new_vertices += batch.num_new_vertices
        report.commit_transactions += batch.commit_transactions
        report.compactions += batch.compactions
        report.rebuilds += batch.rebuilds
        report.checks += 1
    engine.close()
    return report
