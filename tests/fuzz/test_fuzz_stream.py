"""Differential fuzzing of the dynamic subsystem (see fuzz_harness).

Two layers:

* a quick deterministic slice — every profile over a couple of seeds,
  small streams — that runs in tier-1 on every invocation;
* a longer seed matrix gated behind ``GSI_FUZZ_SEEDS=N`` (CI sets
  ``N >= 10``), plus a Hypothesis property sweep with derandomized
  examples so tier-1 stays reproducible.

Reproducing a failure: the test id carries ``(seed, profile)``; run
``GSI_FUZZ_SEEDS=0 python -m pytest
"tests/fuzz/test_fuzz_stream.py::test_fuzz_quick[1-churn]" -x`` or call
``run_fuzz(seed, profile)`` directly in a REPL — streams are fully
determined by the pair.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from fuzz_harness import PROFILES, run_fuzz

QUICK_SEEDS = (0, 1)

LONG_SEEDS = list(range(int(os.environ.get("GSI_FUZZ_SEEDS", "0"))))


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("seed", QUICK_SEEDS)
def test_fuzz_quick(seed, profile):
    report = run_fuzz(seed, profile, num_vertices=26, num_batches=5,
                      batch_size=8)
    assert report.batches == 5
    assert report.ops > 0


def test_fuzz_exercises_the_interesting_paths():
    # The harness is only as good as the machinery it reaches: across
    # the quick deterministic slice, streams must actually commit edge
    # churn, add vertices, and pay (only) O(changes) commit costs.
    totals = {"inserted": 0, "deleted": 0, "new_vertices": 0,
              "commit_transactions": 0}
    for seed in QUICK_SEEDS:
        for profile in PROFILES:
            r = run_fuzz(seed, profile, num_vertices=26, num_batches=5,
                         batch_size=8)
            for key in totals:
                totals[key] += getattr(r, key)
    assert totals["inserted"] > 0
    assert totals["deleted"] > 0
    assert totals["new_vertices"] > 0
    assert totals["commit_transactions"] > 0


@pytest.mark.parametrize("seed", LONG_SEEDS or [None])
def test_fuzz_seed_matrix(seed):
    """The CI long slice: every profile, bigger streams, many seeds."""
    if seed is None:
        pytest.skip("set GSI_FUZZ_SEEDS=N (N>=1) to run the seed matrix")
    for profile in PROFILES:
        report = run_fuzz(seed, profile, num_vertices=32, num_batches=7,
                          batch_size=12)
        assert report.batches == 7


@settings(max_examples=10, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2 ** 16), profile=st.sampled_from(PROFILES))
def test_fuzz_property(seed, profile):
    run_fuzz(seed, profile, num_vertices=18, num_batches=3,
             batch_size=6, query_sizes=(2, 3))


@pytest.mark.parametrize("profile", ("churn", "adversarial"))
def test_fuzz_process_executor_shm_plane(profile):
    """A fuzz slice through the process pool's shm data plane: workers
    attach each committed snapshot from shared segments, and every
    per-batch delta still matches the brute-force oracle."""
    from repro.service import make_executor
    from repro.storage import shm

    before = set(shm.owned_segment_names())
    executor = make_executor("process", 2)
    try:
        report = run_fuzz(1, profile, num_vertices=20, num_batches=4,
                          batch_size=8, query_sizes=(2, 3),
                          executor=executor)
        assert report.batches == 4
    finally:
        executor.shutdown()
    assert not (set(shm.owned_segment_names()) - before), \
        "fuzz run leaked shared-memory segments"


def test_delete_everything_then_refill():
    # Degenerate endpoints: drain the graph to zero edges, then grow it
    # back — snapshots, PCSR and match sets must track through both.
    report = run_fuzz(3, "delete_heavy", num_vertices=14, num_batches=8,
                      batch_size=14)
    assert report.deleted > 0
