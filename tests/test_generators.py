"""Tests for graph and query generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.generators import (
    mesh_graph,
    power_law_labels,
    query_workload,
    random_walk_query,
    rdf_like_graph,
    scale_free_graph,
)


class TestPowerLawLabels:
    def test_range(self):
        rng = np.random.default_rng(0)
        labs = power_law_labels(1000, 7, rng)
        assert labs.min() >= 0 and labs.max() < 7

    def test_skew(self):
        rng = np.random.default_rng(0)
        labs = power_law_labels(5000, 10, rng, exponent=1.5)
        counts = np.bincount(labs, minlength=10)
        assert counts[0] > counts[5] > 0

    def test_single_label(self):
        rng = np.random.default_rng(0)
        labs = power_law_labels(10, 1, rng)
        assert set(labs.tolist()) == {0}

    def test_invalid_count(self):
        rng = np.random.default_rng(0)
        with pytest.raises(GraphError):
            power_law_labels(10, 0, rng)

    def test_deterministic(self):
        a = power_law_labels(100, 5, np.random.default_rng(3))
        b = power_law_labels(100, 5, np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestScaleFree:
    def test_sizes(self):
        g = scale_free_graph(200, 3, 5, 5, seed=1)
        assert g.num_vertices == 200
        assert g.num_edges >= 3 * (200 - 3) * 0.9

    def test_deterministic(self):
        g1 = scale_free_graph(100, 2, 3, 3, seed=9)
        g2 = scale_free_graph(100, 2, 3, 3, seed=9)
        assert set(g1.edges()) == set(g2.edges())

    def test_seed_changes_graph(self):
        g1 = scale_free_graph(100, 2, 3, 3, seed=1)
        g2 = scale_free_graph(100, 2, 3, 3, seed=2)
        assert set(g1.edges()) != set(g2.edges())

    def test_heavy_tail(self):
        g = scale_free_graph(800, 3, 5, 5, seed=4)
        degs = sorted(g.degree(v) for v in range(800))
        assert degs[-1] > 5 * (2 * g.num_edges / 800)

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            scale_free_graph(1, 1, 1, 1)

    def test_connected(self):
        g = scale_free_graph(300, 2, 4, 4, seed=2)
        assert g.is_connected()


class TestMesh:
    def test_grid_structure(self):
        g = mesh_graph(5, 7, 3, 3, seed=0)
        assert g.num_vertices == 35
        assert g.num_edges == 5 * 6 + 4 * 7  # horizontal + vertical
        assert g.max_degree() <= 4

    def test_invalid_dims(self):
        with pytest.raises(GraphError):
            mesh_graph(0, 5, 1, 1)

    def test_connected(self):
        assert mesh_graph(6, 6, 2, 2, seed=1).is_connected()


class TestRdfLike:
    def test_sizes(self):
        g = rdf_like_graph(400, 2000, 10, 20, seed=3)
        assert g.num_vertices == 400
        assert g.num_edges >= 1800  # close to the target

    def test_connected_by_spanning_tree(self):
        g = rdf_like_graph(300, 900, 5, 5, seed=8)
        assert g.is_connected()

    def test_hub_skew(self):
        g = rdf_like_graph(1000, 8000, 5, 5, seed=2, hub_fraction=0.01)
        degs = sorted((g.degree(v) for v in range(1000)), reverse=True)
        mean = 2 * g.num_edges / 1000
        assert degs[0] > 5 * mean

    def test_too_small(self):
        with pytest.raises(GraphError):
            rdf_like_graph(1, 5, 1, 1)


class TestRandomWalkQuery:
    def test_size_and_connectivity(self, medium_graph):
        for seed in range(10):
            q = random_walk_query(medium_graph, 6, seed=seed)
            assert q.num_vertices == 6
            assert q.is_connected()
            assert q.num_edges >= 5  # at least a spanning tree

    def test_labels_come_from_graph(self, medium_graph):
        q = random_walk_query(medium_graph, 5, seed=1)
        glabels = set(medium_graph.distinct_vertex_labels())
        assert set(q.distinct_vertex_labels()) <= glabels

    def test_query_embeds_in_source(self, small_graph):
        """A random-walk query must have >= 1 match in its own graph."""
        from repro import GSIEngine, GSIConfig
        engine = GSIEngine(small_graph, GSIConfig.gsi())
        for seed in range(5):
            q = random_walk_query(small_graph, 4, seed=seed)
            assert engine.match(q).num_matches >= 1

    def test_single_vertex_query(self, small_graph):
        q = random_walk_query(small_graph, 1, seed=0)
        assert q.num_vertices == 1
        assert q.num_edges == 0

    def test_too_large_rejected(self, small_graph):
        with pytest.raises(GraphError):
            random_walk_query(small_graph, small_graph.num_vertices + 1)

    def test_zero_rejected(self, small_graph):
        with pytest.raises(GraphError):
            random_walk_query(small_graph, 0)

    def test_extra_edges_increase_edge_count(self, medium_graph):
        base, extra = [], []
        for seed in range(15):
            q0 = random_walk_query(medium_graph, 8, seed=seed)
            q1 = random_walk_query(medium_graph, 8, seed=seed,
                                   extra_edges=4)
            base.append(q0.num_edges)
            extra.append(q1.num_edges)
        assert sum(extra) >= sum(base)

    def test_deterministic(self, medium_graph):
        q1 = random_walk_query(medium_graph, 6, seed=5)
        q2 = random_walk_query(medium_graph, 6, seed=5)
        assert set(q1.edges()) == set(q2.edges())
        assert list(q1.vertex_labels) == list(q2.vertex_labels)


class TestWorkload:
    def test_count_and_size(self, medium_graph):
        qs = query_workload(medium_graph, 4, 5, seed=2)
        assert len(qs) == 4
        assert all(q.num_vertices == 5 for q in qs)

    def test_workload_deterministic(self, medium_graph):
        a = query_workload(medium_graph, 3, 5, seed=2)
        b = query_workload(medium_graph, 3, 5, seed=2)
        for qa, qb in zip(a, b):
            assert set(qa.edges()) == set(qb.edges())


@settings(max_examples=20, deadline=None)
@given(size=st.integers(2, 10), seed=st.integers(0, 1000))
def test_property_walk_queries_always_connected(size, seed):
    g = scale_free_graph(120, 3, 4, 4, seed=17)
    q = random_walk_query(g, size, seed=seed)
    assert q.num_vertices == size
    assert q.is_connected()
