"""Tests for load-balance analysis (Section VI-A)."""

import pytest

from repro.core.load_balance import (
    balanced_makespan,
    imbalance_ratio,
    speedup_from_lb,
)
from repro.gpusim.scheduler import LoadBalanceConfig


class TestImbalanceRatio:
    def test_uniform_tasks_near_one(self):
        ratio = imbalance_ratio([10.0] * 9600, slots=960)
        assert ratio == pytest.approx(1.0, rel=0.05)

    def test_skew_raises_ratio(self):
        # A mix that defeats greedy packing: 2879 mid-size tasks load
        # every slot to exactly the 1800-cycle lower bound, then the
        # late straggler lands on top.  Greedy list scheduling
        # guarantees span <= 2x the bound, so real ratios live in
        # [1, 2) — skew shows up as packing loss, not as the ~slots
        # blow-ups the erased max-task bound used to report.
        tasks = [600.0] * 2879 + [1000.0]
        ratio = imbalance_ratio(tasks, slots=960)
        assert 1.2 < ratio < 2.0
        assert ratio > imbalance_ratio([600.0] * 2880, slots=960)

    def test_single_dominant_task_ratio_near_one(self):
        # Regression for the `max(task_costs) / 1e12` typo: a single
        # dominant task pins both the makespan and the lower bound to
        # its own length, so the attainable ratio is exactly 1.  The
        # buggy bound collapsed to total/slots and reported ~960 here.
        tasks = [1.0] * 959 + [10_000.0]
        assert imbalance_ratio(tasks, slots=960) == pytest.approx(1.0)

    def test_empty(self):
        assert imbalance_ratio([]) == 1.0


class TestBalancedMakespan:
    def test_lb_improves_skewed_bag(self):
        cfg = LoadBalanceConfig()
        units = [10.0] * 500 + [100_000.0]
        plain = imbalance_ratio([u * cfg.cycles_per_unit for u in units])
        # The unsplit schedule already sits at its lower bound — the
        # dominant task IS the bound — so its ratio is 1.0.  The LB win
        # comes from splitting that task, which shrinks the bound
        # itself and shows up as makespan speedup.
        assert plain == pytest.approx(1.0)
        assert speedup_from_lb(units, cfg) > 1.5

    def test_lb_harmless_on_uniform_bag(self):
        cfg = LoadBalanceConfig()
        units = [50.0] * 2000
        # nothing crosses W3, so LB is a no-op modulo overheads
        s = speedup_from_lb(units, cfg)
        assert s == pytest.approx(1.0, rel=0.01)

    def test_makespan_positive(self):
        cfg = LoadBalanceConfig()
        assert balanced_makespan([10.0, 5000.0], cfg) > 0


class TestThresholdTuning:
    """The U-shapes behind Tables IX and X."""

    def test_w1_tradeoff_exists(self):
        units = [10.0] * 200 + [3000.0] * 30 + [40_000.0] * 3
        times = {}
        for w1 in (1100, 4096, 1_000_000):
            cfg = LoadBalanceConfig(w1=w1)
            times[w1] = balanced_makespan(units, cfg, slots=64)
        # An intermediate W1 should beat the no-split extreme.
        assert times[4096] <= times[1_000_000]

    def test_w3_small_pays_merge_overhead(self):
        units = [300.0] * 5000
        t_small = balanced_makespan(units, LoadBalanceConfig(w3=33),
                                    slots=960)
        t_right = balanced_makespan(units, LoadBalanceConfig(w3=512),
                                    slots=960)
        assert t_small > t_right
