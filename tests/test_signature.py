"""Tests for vertex signature encoding (Section III-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signature import (
    candidate_mask,
    encode_all,
    encode_vertex,
    is_candidate,
    num_groups,
    num_words,
)
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph

from oracle import brute_force_matches


class TestLayout:
    def test_num_words(self):
        assert num_words(512) == 16
        assert num_words(64) == 2

    def test_num_groups(self):
        assert num_groups(512, 32) == 240
        assert num_groups(64, 32) == 16

    def test_word0_is_raw_label(self):
        g = LabeledGraph([1234567], [])
        sig = encode_vertex(g, 0, 512)
        assert int(sig[0]) == 1234567

    def test_isolated_vertex_tail_empty(self):
        g = LabeledGraph([5], [])
        sig = encode_vertex(g, 0, 512)
        assert not np.any(sig[1:])


class TestGroupStates:
    def test_single_pair_sets_01(self):
        g = LabeledGraph([0, 7], [(0, 1, 3)])
        sig = encode_vertex(g, 0, 512)
        tail = sig[1:]
        # Exactly one group set, to state 01.
        bits = np.unpackbits(tail.view(np.uint8))
        assert bits.sum() == 1

    def test_duplicate_pairs_set_11(self):
        # Two neighbors with identical (edge label, vertex label) pairs.
        g = LabeledGraph([0, 7, 7], [(0, 1, 3), (0, 2, 3)])
        sig = encode_vertex(g, 0, 512)
        bits = np.unpackbits(sig[1:].view(np.uint8))
        assert bits.sum() == 2  # the "11" state

    def test_distinct_pairs_two_groups(self):
        g = LabeledGraph([0, 7, 8], [(0, 1, 3), (0, 2, 3)])
        sig = encode_vertex(g, 0, 512)
        bits = np.unpackbits(sig[1:].view(np.uint8))
        # Two distinct keys: 2 bits if no hash collision, 2 if collided
        # into "11"; either way exactly two bits.
        assert bits.sum() == 2


class TestCandidateRule:
    def test_label_mismatch_rejected(self):
        g = LabeledGraph([1, 2], [])
        s0 = encode_vertex(g, 0, 512)
        s1 = encode_vertex(g, 1, 512)
        assert not is_candidate(s0, s1)

    def test_identical_signature_accepted(self):
        g = LabeledGraph([1, 1], [])
        s0 = encode_vertex(g, 0, 512)
        assert is_candidate(s0, s0)

    def test_superset_neighborhood_accepted(self):
        # data vertex has strictly more structure than the query vertex
        data = LabeledGraph([0, 7, 8], [(0, 1, 3), (0, 2, 4)])
        query = LabeledGraph([0, 7], [(0, 1, 3)])
        sv = encode_vertex(data, 0, 512)
        su = encode_vertex(query, 0, 512)
        assert is_candidate(sv, su)

    def test_missing_structure_rejected(self):
        data = LabeledGraph([0, 7], [(0, 1, 3)])
        query = LabeledGraph([0, 7, 8], [(0, 1, 3), (0, 2, 4)])
        sv = encode_vertex(data, 0, 512)
        su = encode_vertex(query, 0, 512)
        assert not is_candidate(sv, su)

    def test_multiplicity_pruning(self):
        # Query vertex needs TWO (3, 7) pairs; data vertex has one.
        query = LabeledGraph([0, 7, 7], [(0, 1, 3), (0, 2, 3)])
        data = LabeledGraph([0, 7], [(0, 1, 3)])
        su = encode_vertex(query, 0, 512)
        sv = encode_vertex(data, 0, 512)
        assert not is_candidate(sv, su)


class TestVectorizedMask:
    def test_mask_agrees_with_scalar(self):
        g = scale_free_graph(120, 3, 4, 4, seed=2)
        table = encode_all(g, 256)
        q = random_walk_query(g, 4, seed=1)
        su = encode_vertex(q, 0, 256)
        mask = candidate_mask(table, su)
        for v in range(g.num_vertices):
            assert mask[v] == is_candidate(table[v], su)


class TestSoundness:
    """The filter must never prune a true match (necessity of the rule)."""

    @pytest.mark.parametrize("bits", [64, 128, 256, 512])
    def test_all_true_matches_pass(self, bits):
        g = scale_free_graph(100, 3, 3, 3, seed=6)
        table = encode_all(g, bits)
        for seed in range(4):
            q = random_walk_query(g, 4, seed=seed)
            matches = brute_force_matches(q, g)
            for match in matches:
                for u, v in enumerate(match):
                    su = encode_vertex(q, u, bits)
                    assert is_candidate(table[v], su), (bits, u, v)

    def test_longer_signatures_prune_no_less(self):
        g = scale_free_graph(300, 4, 5, 8, seed=8)
        q = random_walk_query(g, 6, seed=3)
        sizes = []
        for bits in (64, 256, 512):
            table = encode_all(g, bits)
            total = 0
            for u in range(q.num_vertices):
                su = encode_vertex(q, u, bits)
                total += int(candidate_mask(table, su).sum())
            sizes.append(total)
        # Pruning power should not get worse as N grows (Table V trend).
        assert sizes[0] >= sizes[1] >= sizes[2]


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), bits=st.sampled_from([64, 128, 512]))
def test_property_signature_soundness(seed, bits):
    g = scale_free_graph(60, 2, 3, 2, seed=seed % 7)
    q = random_walk_query(g, 3, seed=seed)
    table = encode_all(g, bits)
    for match in brute_force_matches(q, g):
        for u, v in enumerate(match):
            su = encode_vertex(q, u, bits)
            assert is_candidate(table[v], su)
