"""Tests for cost-aware executor chunking and argument validation.

Chunking policy moves work between pickled chunks, never answers: the
regression here is (a) that a skewed batch — one heavy query plus many
light ones — no longer lands its heavy query in the same static slice
as a pile of others, and (b) that results stay byte-identical to the
serial reference under either policy.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import random_walk_query, scale_free_graph
from repro.service import BatchEngine, make_executor
from repro.service.executors import (
    CHUNKING_KINDS,
    ProcessExecutor,
    balanced_chunks,
    estimated_task_cost,
)


class _FakePrepared:
    def __init__(self, sizes, plan="plan"):
        self.candidate_sizes = sizes
        self.plan = plan


class TestEstimatedTaskCost:
    def test_sums_candidate_mass(self):
        assert estimated_task_cost(
            _FakePrepared({0: 10, 1: 5, 2: 1})) == 16

    def test_planless_and_empty_score_one(self):
        assert estimated_task_cost(_FakePrepared({}, plan=None)) == 1
        assert estimated_task_cost(_FakePrepared({0: 50}, plan=None)) == 1
        assert estimated_task_cost(object()) == 1


class TestBalancedChunks:
    def test_skewed_batch_balances_better_than_static(self):
        # One huge task plus seven tiny ones, two chunks.  A static
        # equal-count split puts the huge task with three others; LPT
        # isolates it.
        costs = [1000, 1, 1, 1, 1, 1, 1, 1]
        items = list(range(8))
        chunks = balanced_chunks(items, 2, costs)
        loads = [sum(costs[i] for i in chunk) for chunk in chunks]
        static_loads = [sum(costs[0:4]), sum(costs[4:8])]
        assert max(loads) < max(static_loads)
        assert max(loads) == 1000  # the heavy task rides alone-ish
        # Every item appears exactly once.
        assert sorted(i for chunk in chunks for i in chunk) == items

    def test_deterministic_and_order_contract(self):
        costs = [5, 3, 8, 1, 9, 2]
        items = ["a", "b", "c", "d", "e", "f"]
        first = balanced_chunks(items, 3, costs)
        second = balanced_chunks(items, 3, costs)
        assert first == second
        # Chunks are ordered by first item; items inside a chunk keep
        # submission order.
        firsts = [items.index(chunk[0]) for chunk in first]
        assert firsts == sorted(firsts)
        for chunk in first:
            indexes = [items.index(x) for x in chunk]
            assert indexes == sorted(indexes)

    def test_more_chunks_than_items(self):
        chunks = balanced_chunks([1, 2], 8, [1, 1])
        assert sorted(x for c in chunks for x in c) == [1, 2]

    def test_cost_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one cost per item"):
            balanced_chunks([1, 2], 2, [1])


class TestMakeExecutorValidation:
    @pytest.mark.parametrize("workers", [0, -1, -100])
    def test_rejects_non_positive_workers(self, workers):
        for kind in ("serial", "thread", "process"):
            with pytest.raises(ValueError, match="max_workers"):
                make_executor(kind, max_workers=workers)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            make_executor("gpu")

    def test_rejects_unknown_chunking(self):
        with pytest.raises(ValueError, match="unknown chunking"):
            make_executor("process", 2, chunking="dynamic")
        with pytest.raises(ValueError, match="unknown chunking"):
            ProcessExecutor(chunking="dynamic")

    def test_chunking_kinds_constant(self):
        assert CHUNKING_KINDS == ("static", "cost")

    def test_cost_chunking_constructs(self):
        executor = make_executor("process", 2, chunking="cost")
        assert isinstance(executor, ProcessExecutor)
        assert executor.chunking == "cost"
        executor.shutdown()


class TestCostChunkingEndToEnd:
    def test_prepared_chunks_balance_skew(self):
        executor = ProcessExecutor(max_workers=2, chunking="cost")
        tasks = [(i, _FakePrepared({0: 500 if i == 0 else 2}))
                 for i in range(9)]
        chunks = executor._prepared_chunks(tasks)
        static = executor._chunks(tasks)
        heavy_chunk = next(c for c in chunks if c[0][0] == 0)
        static_heavy = next(c for c in static if any(i == 0
                                                     for i, _ in c))
        assert len(heavy_chunk) < len(static_heavy)
        assert sorted(i for c in chunks for i, _ in c) == list(range(9))

    def test_explicit_chunk_size_wins_over_cost(self):
        executor = ProcessExecutor(max_workers=2, chunk_size=3,
                                   chunking="cost")
        tasks = [(i, _FakePrepared({0: 100 if i == 0 else 1}))
                 for i in range(6)]
        chunks = executor._prepared_chunks(tasks)
        assert [len(c) for c in chunks] == [3, 3]

    def test_skewed_batch_results_identical_across_chunking(self):
        """A genuinely skewed batch (one dense hub query, several tiny
        ones) must produce byte-identical reports under static and
        cost chunking."""
        graph = scale_free_graph(48, 3, 3, 3, seed=11)
        queries = ([random_walk_query(graph, 5, seed=1)]
                   + [random_walk_query(graph, 3, seed=s)
                      for s in range(2, 8)])
        reference = None
        for chunking in CHUNKING_KINDS:
            with make_executor("process", 2, chunking=chunking) as ex:
                service = BatchEngine(graph, executor=ex)
                report = service.run_batch(queries)
            got = ([sorted(item.result.matches)
                    for item in report.items],
                   [item.result.counters.gld for item in report.items],
                   report.cache.hits)
            if reference is None:
                reference = got
            assert got == reference
