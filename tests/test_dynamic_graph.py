"""Tests for the dynamic-graph overlay (GraphDelta + DynamicGraph)."""

import numpy as np
import pytest

from repro.dynamic import DynamicGraph, GraphDelta, random_update_stream
from repro.errors import GraphError
from repro.graph.generators import scale_free_graph
from repro.graph.labeled_graph import GraphBuilder, LabeledGraph


def small_graph():
    b = GraphBuilder()
    b.add_vertices([0, 1, 0, 1])
    b.add_edge(0, 1, 5)
    b.add_edge(1, 2, 5)
    b.add_edge(2, 3, 7)
    return b.build()


class TestDeltaBuilder:
    def test_add_vertex_ids_are_sequential(self):
        d = GraphDelta.for_graph(small_graph())
        assert d.add_vertex(9) == 4
        assert d.add_vertex(9) == 5
        assert len(d) == 2

    def test_for_graph_accepts_count(self):
        d = GraphDelta.for_graph(10)
        assert d.add_vertex(0) == 10

    def test_chaining(self):
        d = GraphDelta.for_graph(4).add_edge(0, 2, 1).remove_edge(0, 1)
        assert d.num_ops == 2


class TestOverlayReads:
    def test_neighbors_through_overlay(self):
        g = DynamicGraph(small_graph())
        g.apply(GraphDelta.for_graph(4).add_edge(0, 3, 5)
                .remove_edge(1, 2))
        assert list(g.neighbors_by_label(0, 5)) == [1, 3]
        assert list(g.neighbors_by_label(1, 5)) == [0]
        assert list(g.neighbors_by_label(2, 7)) == [3]
        assert g.has_edge(0, 3) and not g.has_edge(1, 2)
        assert g.num_edges == 3

    def test_new_vertex_adjacency(self):
        g = DynamicGraph(small_graph())
        d = GraphDelta.for_graph(4)
        v = d.add_vertex(label=0)
        d.add_edge(v, 1, 5)
        g.apply(d)
        assert g.num_vertices == 5
        assert g.vertex_label(v) == 0
        assert list(g.neighbors_by_label(v, 5)) == [1]
        assert list(g.neighbors_by_label(1, 5)) == [0, 2, v]

    def test_edge_label_via_overlay(self):
        g = DynamicGraph(small_graph())
        g.apply(GraphDelta.for_graph(4).remove_edge(2, 3)
                .add_edge(2, 3, 9))
        assert g.edge_label(2, 3) == 9
        assert list(g.neighbors_by_label(2, 7)) == []
        assert list(g.neighbors_by_label(2, 9)) == [3]

    def test_remove_vertex_isolates(self):
        g = DynamicGraph(small_graph())
        g.apply(GraphDelta.for_graph(4).remove_vertex(1))
        assert g.num_vertices == 4  # ids stay dense and stable
        assert list(g.neighbors_by_label(0, 5)) == []
        assert list(g.neighbors_by_label(2, 5)) == []
        assert g.num_edges == 1


class TestApplyValidation:
    def test_missing_endpoint(self):
        g = DynamicGraph(small_graph())
        with pytest.raises(GraphError):
            g.apply(GraphDelta.for_graph(4).add_edge(0, 99, 1))

    def test_self_loop(self):
        g = DynamicGraph(small_graph())
        with pytest.raises(GraphError):
            g.apply(GraphDelta.for_graph(4).add_edge(2, 2, 1))

    def test_duplicate_edge(self):
        g = DynamicGraph(small_graph())
        with pytest.raises(GraphError):
            g.apply(GraphDelta.for_graph(4).add_edge(1, 0, 5))

    def test_remove_missing_edge(self):
        g = DynamicGraph(small_graph())
        with pytest.raises(GraphError):
            g.apply(GraphDelta.for_graph(4).remove_edge(0, 3))

    def test_unknown_op(self):
        g = DynamicGraph(small_graph())
        with pytest.raises(GraphError):
            g.apply(GraphDelta(ops=[("frobnicate", 1)]))


class TestCommit:
    def test_net_change_sets(self):
        g = DynamicGraph(small_graph())
        d = GraphDelta.for_graph(4)
        v = d.add_vertex(1)
        d.add_edge(v, 0, 7)
        d.remove_edge(0, 1)
        g.apply(d)
        commit = g.commit()
        assert commit.inserted_edges == [(0, v, 7)]
        assert commit.deleted_edges == [(0, 1, 5)]
        assert commit.new_vertices == [v]
        assert commit.touched_vertices == {0, 1, v}

    def test_delete_then_readd_same_label_is_net_noop(self):
        g = DynamicGraph(small_graph())
        g.apply(GraphDelta.for_graph(4).remove_edge(0, 1)
                .add_edge(0, 1, 5))
        commit = g.commit()
        assert commit.inserted_edges == []
        assert commit.deleted_edges == []

    def test_relabel_is_delete_plus_insert(self):
        g = DynamicGraph(small_graph())
        g.apply(GraphDelta.for_graph(4).remove_edge(0, 1)
                .add_edge(0, 1, 8))
        commit = g.commit()
        assert commit.deleted_edges == [(0, 1, 5)]
        assert commit.inserted_edges == [(0, 1, 8)]

    def test_add_then_remove_same_window_is_net_noop(self):
        g = DynamicGraph(small_graph())
        g.apply(GraphDelta.for_graph(4).add_edge(0, 3, 2)
                .remove_edge(0, 3))
        commit = g.commit()
        assert commit.inserted_edges == []
        assert commit.deleted_edges == []

    def test_snapshot_matches_overlay(self):
        base = scale_free_graph(40, 3, 3, 3, seed=4)
        g = DynamicGraph(base)
        for delta in random_update_stream(base, 3, 10, seed=5):
            g.apply(delta)
        expected = sorted(g.edges())
        n = g.num_vertices
        labels = [g.vertex_label(v) for v in range(n)]
        commit = g.commit()
        snap = commit.snapshot
        assert sorted(snap.edges()) == expected
        assert [snap.vertex_label(v) for v in range(n)] == labels
        # overlay reset: reads now come straight from the snapshot
        assert g.pending_ops == 0
        for v in range(0, n, 5):
            for lab in snap.distinct_edge_labels():
                assert np.array_equal(g.neighbors_by_label(v, lab),
                                      snap.neighbors_by_label(v, lab))

    def test_commit_composition_over_batches(self):
        base = scale_free_graph(30, 3, 2, 2, seed=8)
        g = DynamicGraph(base)
        live = {(u, v): lab for u, v, lab in base.edges()}
        for delta in random_update_stream(base, 4, 8, seed=9):
            g.apply(delta)
            commit = g.commit()
            for u, v, lab in commit.deleted_edges:
                assert live.pop((u, v)) == lab
            for u, v, lab in commit.inserted_edges:
                assert (u, v) not in live
                live[(u, v)] = lab
            assert {(u, v): lab for u, v, lab
                    in commit.snapshot.edges()} == live


class TestRandomUpdateStream:
    def test_stream_applies_cleanly(self):
        base = scale_free_graph(50, 3, 3, 3, seed=1)
        g = DynamicGraph(base)
        stream = random_update_stream(base, 5, 16, seed=2)
        assert len(stream) == 5
        for delta in stream:
            g.apply(delta)  # raises on any invalid op
        assert g.num_edges > 0

    def test_stream_deterministic(self):
        base = scale_free_graph(50, 3, 3, 3, seed=1)
        a = random_update_stream(base, 3, 8, seed=7)
        b = random_update_stream(base, 3, 8, seed=7)
        assert [d.ops for d in a] == [d.ops for d in b]

    def test_stream_on_empty_graph(self):
        base = LabeledGraph([0], [])
        g = DynamicGraph(base)
        for delta in random_update_stream(base, 2, 4, seed=3):
            g.apply(delta)
        assert g.num_vertices > 1
