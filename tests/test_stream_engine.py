"""Differential tests for the StreamEngine (continuous queries).

The acceptance anchor: for randomized update streams of inserts and
deletes, the delta match results composed over batches must equal the
brute-force oracle on every committed snapshot — and, at the end of the
stream, a cold GSI engine over each storage backend must agree with the
composed sets.
"""

import pytest

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.dynamic import GraphDelta, StreamEngine, random_update_stream
from repro.errors import GraphError
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import GraphBuilder, LabeledGraph
from repro.storage.factory import build_storage, storage_kinds

from oracle import brute_force_matches


def run_stream(graph_seed, stream_seed, batches=5, batch_size=10,
               query_sizes=(2, 3, 4)):
    graph = scale_free_graph(50, 3, 3, 3, seed=graph_seed)
    engine = StreamEngine(graph)
    queries = [random_walk_query(graph, k, seed=stream_seed + i)
               for i, k in enumerate(query_sizes)]
    qids = [engine.register(q) for q in queries]
    stream = random_update_stream(graph, batches, batch_size,
                                  seed=stream_seed)
    for delta in stream:
        engine.apply_batch(delta)
        snapshot = engine.graph
        for qid, q in zip(qids, queries):
            assert engine.matches(qid) == brute_force_matches(q, snapshot)
    return engine, queries, qids


class TestDifferentialStream:
    @pytest.mark.parametrize("graph_seed,stream_seed", [
        (1, 0), (2, 3), (5, 1), (9, 4),
    ])
    def test_composed_deltas_equal_oracle_every_batch(self, graph_seed,
                                                      stream_seed):
        run_stream(graph_seed, stream_seed)

    def test_final_snapshot_agrees_across_storage_backends(self):
        engine, queries, qids = run_stream(3, 2, batches=4,
                                           batch_size=12)
        final = engine.graph
        for kind in storage_kinds():
            cold = GSIEngine(final, store=build_storage(kind, final))
            for qid, q in zip(qids, queries):
                assert cold.match(q).match_set() == engine.matches(qid), \
                    f"storage backend {kind} disagrees with the stream"

    def test_delete_heavy_stream(self):
        graph = scale_free_graph(40, 3, 2, 2, seed=7)
        engine = StreamEngine(graph)
        q = random_walk_query(graph, 3, seed=1)
        qid = engine.register(q)
        stream = random_update_stream(graph, 4, 15, seed=8,
                                      delete_fraction=0.7)
        for delta in stream:
            engine.apply_batch(delta)
            assert engine.matches(qid) == \
                brute_force_matches(q, engine.graph)

    def test_maintained_artifacts_serve_adhoc_queries(self):
        engine, _, _ = run_stream(4, 5, batches=3, batch_size=10)
        q = random_walk_query(engine.graph, 4, seed=11)
        assert engine.match(q).match_set() == \
            brute_force_matches(q, engine.graph)
        assert engine.index.storage.validate() == {}


class TestDeltaSemantics:
    def triangle(self):
        b = GraphBuilder()
        u = b.add_vertices([0, 0, 0])
        b.add_edge(u[0], u[1], 0)
        b.add_edge(u[1], u[2], 0)
        b.add_edge(u[0], u[2], 0)
        return b.build()

    def test_created_and_destroyed_are_disjoint_and_exact(self):
        b = GraphBuilder()
        b.add_vertices([0, 0, 0, 0])
        b.add_edge(0, 1, 0)
        b.add_edge(1, 2, 0)
        graph = b.build()
        engine = StreamEngine(graph)
        qid = engine.register(self.triangle())
        assert engine.matches(qid) == set()

        report = engine.apply_batch(
            GraphDelta.for_graph(4).add_edge(0, 2, 0))
        delta = report.query_deltas[qid]
        assert len(delta.created) == 6  # one triangle, 6 embeddings
        assert delta.destroyed == set()
        assert delta.num_matches == 6

        report = engine.apply_batch(
            GraphDelta.for_graph(4).remove_edge(1, 2))
        delta = report.query_deltas[qid]
        assert delta.created == set()
        assert len(delta.destroyed) == 6
        assert engine.matches(qid) == set()

    def test_single_vertex_query_tracks_new_vertices(self):
        graph = LabeledGraph([0, 1], [(0, 1, 0)])
        engine = StreamEngine(graph)
        q = LabeledGraph([1], [])
        qid = engine.register(q)
        assert engine.matches(qid) == {(1,)}
        d = GraphDelta.for_graph(2)
        v = d.add_vertex(1)
        d.add_edge(v, 0, 0)
        report = engine.apply_batch(d)
        assert report.query_deltas[qid].created == {(v,)}
        assert engine.matches(qid) == {(1,), (v,)}

    def test_batch_report_counters(self):
        graph = scale_free_graph(30, 3, 2, 2, seed=2)
        engine = StreamEngine(graph)
        engine.register(random_walk_query(graph, 3, seed=0))
        d = random_update_stream(graph, 1, 8, seed=3)[0]
        report = engine.apply_batch(d)
        assert report.batch_index == 0
        assert report.num_inserted + report.num_deleted > 0
        assert report.maintenance.gst > 0
        assert report.wall_ms > 0
        assert "batch 0" in report.summary_line()
        assert engine.batches_applied == 1

    def test_unregister_stops_tracking(self):
        graph = scale_free_graph(30, 3, 2, 2, seed=2)
        engine = StreamEngine(graph)
        qid = engine.register(random_walk_query(graph, 3, seed=0))
        engine.unregister(qid)
        assert engine.num_registered == 0
        report = engine.apply_batch(
            random_update_stream(graph, 1, 4, seed=1)[0])
        assert report.query_deltas == {}

    def test_requires_pcsr_config(self):
        graph = scale_free_graph(20, 2, 2, 2, seed=1)
        with pytest.raises(GraphError):
            StreamEngine(graph, GSIConfig.baseline())


class TestQueryIdLifecycle:
    """Regression: a query id retired by ``unregister`` must never be
    reused, and reads through a stale id must raise, not silently serve
    another query's match set."""

    def make_engine(self):
        graph = scale_free_graph(30, 3, 2, 2, seed=2)
        return graph, StreamEngine(graph)

    def test_ids_monotonic_and_never_reused(self):
        graph, engine = self.make_engine()
        q1 = random_walk_query(graph, 3, seed=0)
        q2 = random_walk_query(graph, 3, seed=1)
        first = engine.register(q1)
        engine.unregister(first)
        second = engine.register(q2)
        assert second > first, "retired ids must never come back"
        third = engine.register(q1)
        assert third > second

    def test_stale_id_reads_raise(self):
        graph, engine = self.make_engine()
        qid = engine.register(random_walk_query(graph, 3, seed=0))
        engine.unregister(qid)
        # Even after new registrations and batches, the stale id raises.
        engine.register(random_walk_query(graph, 3, seed=1))
        engine.apply_batch(random_update_stream(graph, 1, 4, seed=1)[0])
        with pytest.raises(KeyError):
            engine.matches(qid)
        with pytest.raises(KeyError):
            engine.initial_result(qid)

    def test_unregister_unknown_id_raises(self):
        _, engine = self.make_engine()
        with pytest.raises(KeyError):
            engine.unregister(0)

    def test_double_unregister_raises(self):
        graph, engine = self.make_engine()
        qid = engine.register(random_walk_query(graph, 3, seed=0))
        engine.unregister(qid)
        with pytest.raises(KeyError):
            engine.unregister(qid)

    def test_never_issued_id_raises(self):
        _, engine = self.make_engine()
        with pytest.raises(KeyError):
            engine.matches(99)


class TestExecutorParity:
    """Per-query delta matching through thread/process pools must
    reproduce the serial reports exactly, batch by batch."""

    def run_with(self, executor):
        graph = scale_free_graph(40, 3, 3, 3, seed=6)
        engine = StreamEngine(graph, executor=executor)
        queries = [random_walk_query(graph, k, seed=s)
                   for s, k in enumerate((3, 4, 4))]
        qids = [engine.register(q) for q in queries]
        trace = []
        for delta in random_update_stream(graph, 3, 10, seed=4):
            report = engine.apply_batch(delta)
            trace.append(sorted(
                (qid, frozenset(d.created), frozenset(d.destroyed))
                for qid, d in report.query_deltas.items()))
        final = [frozenset(engine.matches(qid)) for qid in qids]
        return trace, final, engine

    def test_thread_and_process_match_serial(self):
        from repro.service import make_executor

        ref_trace, ref_final, _ = self.run_with(None)
        for kind in ("thread", "process"):
            with make_executor(kind, 2) as executor:
                trace, final, _ = self.run_with(executor)
            assert trace == ref_trace, f"{kind} deltas diverge"
            assert final == ref_final, f"{kind} final sets diverge"

    def test_failing_executor_falls_back_to_serial(self):
        """The graph/index commit precedes delta matching; a pool dying
        mid-batch (e.g. worker OOM) must not desync the live match
        sets — the engine re-runs the deltas in-process instead."""
        from repro.service.executors import SerialExecutor

        class DyingExecutor(SerialExecutor):
            name = "dying"

            def map_tasks(self, fn, payloads, shared=None):
                raise RuntimeError("simulated pool death")

        graph = scale_free_graph(40, 3, 3, 3, seed=6)
        engine = StreamEngine(graph, executor=DyingExecutor())
        q = random_walk_query(graph, 3, seed=1)
        qid = engine.register(q)
        for delta in random_update_stream(graph, 2, 8, seed=3):
            with pytest.warns(RuntimeWarning, match="dying"):
                report = engine.apply_batch(delta)
            assert report.executor_fallback
            assert "SERIAL" in report.summary_line()
            assert engine.matches(qid) == \
                brute_force_matches(q, engine.graph)

    def test_parallel_stream_equals_oracle(self):
        from repro.service import ThreadExecutor

        graph = scale_free_graph(40, 3, 3, 3, seed=9)
        engine = StreamEngine(graph, executor=ThreadExecutor(4))
        queries = [random_walk_query(graph, 3, seed=s)
                   for s in range(3)]
        qids = [engine.register(q) for q in queries]
        for delta in random_update_stream(graph, 3, 8, seed=2):
            engine.apply_batch(delta)
            for qid, q in zip(qids, queries):
                assert engine.matches(qid) == \
                    brute_force_matches(q, engine.graph)


class TestPlanInvalidation:
    def test_shifted_labels_invalidate_cached_plans(self):
        graph = scale_free_graph(40, 3, 3, 3, seed=5)
        engine = StreamEngine(graph)
        q = random_walk_query(graph, 4, seed=2)
        engine.register(q)  # caches the plan for q's shape
        assert len(engine.plan_cache) == 1
        lab = int(next(iter(q.edges()))[2])
        # Insert an edge with one of q's labels: its frequency shifts.
        u, v = 0, graph.num_vertices - 1
        d = GraphDelta.for_graph(graph)
        if graph.has_edge(u, v):
            d.remove_edge(u, v)
        else:
            d.add_edge(u, v, lab)
        report = engine.apply_batch(d)
        assert report.plans_invalidated >= 1
        assert lab in report.labels_shifted or report.labels_shifted

    def test_untouched_labels_keep_plans(self):
        b = GraphBuilder()
        b.add_vertices([0, 0, 0, 1, 1])
        b.add_edge(0, 1, 0)
        b.add_edge(1, 2, 0)
        b.add_edge(3, 4, 5)
        graph = b.build()
        engine = StreamEngine(graph)
        q = LabeledGraph([0, 0], [(0, 1, 0)])  # only uses label 0
        engine.register(q)
        assert len(engine.plan_cache) == 1
        # Shift only label 5's frequency.
        report = engine.apply_batch(
            GraphDelta.for_graph(5).add_edge(2, 3, 5))
        assert report.labels_shifted == (5,)
        assert report.plans_invalidated == 0
        assert len(engine.plan_cache) == 1


class TestSharedBatchSeed:
    """The per-batch candidate seed (touched vertices, label-grouped
    inserted edges, dead pairs, seed signature rows) is computed once
    per batch and shared across registered queries — seeding
    transactions must not scale with the number of queries."""

    def seed_tx(self, num_queries, num_copies_of_each=1):
        graph = scale_free_graph(40, 3, 3, 3, seed=2)
        engine = StreamEngine(graph)
        for i in range(num_queries):
            for _ in range(num_copies_of_each):
                engine.register(random_walk_query(graph, 3, seed=i))
        for delta in random_update_stream(graph, 3, 10, seed=4):
            engine.apply_batch(delta)
        return engine.index.meter.labeled_gld("delta_seed")

    def test_seed_transactions_independent_of_query_count(self):
        one = self.seed_tx(1)
        four = self.seed_tx(4)
        assert one > 0
        # Before the fix each query re-read the seed rows, costing ~4x
        # here; the shared seed pins the cost to once per batch.
        assert four == one

    def test_seed_rows_cover_inserted_endpoints_only(self):
        graph = scale_free_graph(30, 3, 3, 3, seed=1)
        engine = StreamEngine(graph)
        report = engine.apply_batch(
            GraphDelta.for_graph(graph).remove_edge(
                *next(iter(graph.edges()))[:2]))
        # Delete-only batch: nothing to seed, nothing to read.
        assert engine.index.meter.labeled_gld("delta_seed") == 0
        assert report.num_deleted == 1

    def test_shared_seed_results_match_oracle(self):
        # Sharing must not change results: several queries with
        # overlapping labels over the same stream, checked per batch.
        graph = scale_free_graph(35, 3, 2, 2, seed=6)
        engine = StreamEngine(graph)
        queries = [random_walk_query(graph, k, seed=s)
                   for k, s in ((2, 0), (3, 0), (3, 1), (4, 2))]
        qids = [engine.register(q) for q in queries]
        for delta in random_update_stream(graph, 4, 12, seed=9):
            engine.apply_batch(delta)
            for qid, q in zip(qids, queries):
                assert engine.matches(qid) == \
                    brute_force_matches(q, engine.graph)


class TestIncrementalCommit:
    def test_commit_transactions_reported_and_small(self):
        graph = scale_free_graph(200, 4, 3, 3, seed=3)
        engine = StreamEngine(graph)
        report = engine.apply_batch(
            GraphDelta.for_graph(graph).add_edge(0, 199, 0))
        # One inserted edge touches two rows; the commit must cost a
        # handful of transactions, nowhere near the |E|-scale rebuild.
        assert 0 < report.commit_transactions < 20
        assert report.pcsr["total_ci_words"] > 0

    def test_empty_batch_commits_for_free(self):
        graph = scale_free_graph(30, 3, 3, 3, seed=3)
        engine = StreamEngine(graph)
        before = engine.graph
        report = engine.apply_batch(GraphDelta.for_graph(graph))
        assert report.commit_transactions == 0
        assert engine.graph is before  # snapshot reused, not rebuilt
