"""Tests for incremental index maintenance (signature table + PCSR)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signature import encode_all
from repro.dynamic import (
    DynamicGraph,
    DynamicIndex,
    DynamicPCSRStorage,
    full_rebuild_transactions,
    random_update_stream,
)
from repro.errors import StorageError
from repro.graph.generators import scale_free_graph
from repro.graph.labeled_graph import GraphBuilder, LabeledGraph
from repro.graph.partition import EdgeLabelPartition, partition_by_edge_label
from repro.storage.pcsr import PCSRPartition


def star_partition(num_leaves, gpn=16):
    edges = [(0, v, 0) for v in range(1, num_leaves + 1)]
    g = LabeledGraph([0] * (num_leaves + 1), edges)
    return PCSRPartition(partition_by_edge_label(g)[0], gpn=gpn)


class TestPCSRIncrementalOps:
    def test_insert_key_into_free_slot(self):
        p = star_partition(3)
        assert p.insert_key(99, np.array([0]))
        assert list(p.neighbors(99)) == [0]
        assert p.validate() == []

    def test_insert_key_rejects_existing(self):
        p = star_partition(3)
        with pytest.raises(StorageError):
            p.insert_key(0, np.array([5]))

    def test_append_neighbors_keeps_sorted(self):
        p = star_partition(4)
        p.append_neighbors(0, np.array([99, 50]))
        assert list(p.neighbors(0)) == [1, 2, 3, 4, 50, 99]
        assert p.validate() == []

    def test_append_neighbors_rejects_missing_key(self):
        p = star_partition(3)
        with pytest.raises(StorageError):
            p.append_neighbors(77, np.array([0]))

    def test_remove_neighbor(self):
        p = star_partition(4)
        p.remove_neighbor(0, 2)
        assert list(p.neighbors(0)) == [1, 3, 4]
        assert p.validate() == []

    def test_remove_last_neighbor_leaves_empty_key(self):
        p = star_partition(2)
        p.remove_neighbor(1, 0)
        assert list(p.neighbors(1)) == []
        assert p.key_count() == 3  # key slot survives with empty extent
        assert p.validate() == []

    def test_remove_missing_neighbor_raises(self):
        p = star_partition(2)
        with pytest.raises(StorageError):
            p.remove_neighbor(1, 99)

    def test_items_round_trip(self):
        p = star_partition(5)
        items = dict(p.items())
        assert sorted(items) == list(range(6))
        assert list(items[0]) == [1, 2, 3, 4, 5]

    def test_chain_extension_through_empty_pool(self):
        # GPN=2: one key per group; inserting extra keys that collide
        # must chain through empty groups, exactly like Algorithm 1.
        edges = [(0, v, 0) for v in range(1, 6)]
        g = LabeledGraph([0] * 30, edges)
        p = PCSRPartition(partition_by_edge_label(g)[0], gpn=2)
        inserted = []
        for v in range(10, 14):
            if p.insert_key(v, np.array([0]), None):
                inserted.append(v)
        assert p.validate() == []
        for v in inserted:
            assert list(p.neighbors(v)) == [0]

    def test_insert_key_starvation_returns_false(self):
        # A single-group partition (one vertex pair) has no empty pool.
        g = LabeledGraph([0, 0], [(0, 1, 0)])
        p = PCSRPartition(partition_by_edge_label(g)[0], gpn=2)
        assert p._empty_pool == set()
        got_false = False
        for v in range(2, 10):
            if not p.insert_key(v, np.array([0])):
                got_false = True
                break
        assert got_false
        assert p.validate() == []

    def test_probe_transactions_counts_actual_miss_reads(self):
        # A miss pays for every group actually probed: one read when
        # the home group ends the chain, more when it must walk one.
        p = star_partition(3)
        present_reads, gid, _ = p._find_key(0)
        assert gid >= 0
        assert p.probe_transactions(0) == present_reads
        # Missing vertex: cost equals the walked chain length, >= 1.
        reads, g2, _ = p._find_key(123456)
        assert g2 == -1
        assert p.probe_transactions(123456) == reads >= 1


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 80), st.integers(0, 80)),
                min_size=1, max_size=60),
       st.integers(2, 16))
def test_property_incremental_inserts_keep_validate_clean(pairs, gpn):
    """Acceptance: validate() reports nothing after arbitrary
    incremental insert sequences (with rebuild fallback on starvation,
    as the dynamic storage layer does)."""
    seed = [(0, 1, 0)]
    g = LabeledGraph([0] * 81, seed)
    p = PCSRPartition(partition_by_edge_label(g)[0], gpn=gpn)
    adj = {0: {1}, 1: {0}}
    for a, b in pairs:
        if a == b or b in adj.get(a, ()):
            continue
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
        for x, y in ((a, b), (b, a)):
            if p._find_key(x)[1] >= 0:
                p.append_neighbors(x, np.array([y]))
            elif not p.insert_key(x, np.array([y])):
                items = {v: arr for v, arr in p.items()}
                items[x] = np.array([y], dtype=np.int64)
                p = PCSRPartition(
                    EdgeLabelPartition(0, items), gpn=gpn)
        assert p.validate() == [], (a, b)
    for v, nbrs in adj.items():
        assert sorted(int(x) for x in p.neighbors(v)) == sorted(nbrs)


class TestDynamicPCSRStorage:
    def test_insert_and_delete_edges(self):
        g = scale_free_graph(60, 3, 3, 3, seed=2)
        store = DynamicPCSRStorage(g)
        store.insert_edge(0, 59, 99)  # brand new label
        assert list(store.neighbors(0, 99)) == [59]
        store.delete_edge(0, 59, 99)
        assert list(store.neighbors(0, 99)) == []
        assert store.validate() == {}

    def test_delete_unknown_label_raises(self):
        g = scale_free_graph(20, 2, 2, 2, seed=1)
        store = DynamicPCSRStorage(g)
        with pytest.raises(KeyError):
            store.delete_edge(0, 1, 12345)

    def test_occupancy_policy_triggers_rebuild(self):
        b = GraphBuilder()
        b.add_vertices([0] * 40)
        b.add_edge(0, 1, 0)
        g = b.build()
        store = DynamicPCSRStorage(g, rebuild_occupancy=1.5)
        # The label-0 partition starts with 2 keys / 2 groups; adding
        # keys beyond 1.5 per group must rebuild rather than chain
        # forever.
        for v in range(2, 12):
            store.insert_edge(0, v, 0)
        assert store.rebuilds >= 1
        part = store.partition(0)
        assert part.occupancy() <= 1.5
        assert part.validate() == []
        assert sorted(int(x) for x in store.neighbors(0, 0)) \
            == list(range(1, 12))

    def test_matches_rebuilt_storage_after_stream(self):
        base = scale_free_graph(80, 3, 3, 4, seed=3)
        dyn = DynamicGraph(base)
        store = DynamicPCSRStorage(base)
        for delta in random_update_stream(base, 4, 20, seed=4):
            dyn.apply(delta)
            commit = dyn.commit()
            for u, v, lab in commit.deleted_edges:
                store.delete_edge(u, v, lab)
            for u, v, lab in commit.inserted_edges:
                store.insert_edge(u, v, lab)
        final = dyn.base
        assert store.validate() == {}
        for v in range(final.num_vertices):
            for lab in final.distinct_edge_labels():
                assert list(store.neighbors(v, lab)) == \
                    list(final.neighbors_by_label(v, lab))


class TestDynamicIndex:
    def test_signature_rows_match_full_encode(self):
        base = scale_free_graph(50, 3, 3, 3, seed=6)
        dyn = DynamicGraph(base)
        index = DynamicIndex(base, signature_bits=256)
        for delta in random_update_stream(base, 3, 12, seed=7):
            dyn.apply(delta)
            index.apply_commit(dyn.commit())
        final = dyn.base
        expected = encode_all(final, 256, 32)
        assert np.array_equal(index.signature_table.table, expected)
        assert index.signature_table.num_vertices == final.num_vertices

    def test_maintenance_is_metered(self):
        base = scale_free_graph(50, 3, 3, 3, seed=6)
        dyn = DynamicGraph(base)
        index = DynamicIndex(base)
        dyn.apply(random_update_stream(base, 1, 10, seed=1)[0])
        index.apply_commit(dyn.commit())
        snap = index.meter.snapshot()
        assert snap.gld > 0 and snap.gst > 0

    def test_full_rebuild_estimate_scales_with_graph(self):
        small = scale_free_graph(50, 3, 3, 3, seed=1)
        large = scale_free_graph(500, 3, 3, 3, seed=1)
        assert full_rebuild_transactions(large) \
            > 5 * full_rebuild_transactions(small)
