"""Unit tests for the LabeledGraph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.labeled_graph import (
    GraphBuilder,
    LabeledGraph,
    path_query,
    triangle_query,
)


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledGraph([], [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0

    def test_single_vertex(self):
        g = LabeledGraph([7], [])
        assert g.num_vertices == 1
        assert g.vertex_label(0) == 7
        assert g.degree(0) == 0

    def test_basic_edges(self):
        g = LabeledGraph([0, 1, 2], [(0, 1, 5), (1, 2, 6)])
        assert g.num_edges == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)  # undirected
        assert not g.has_edge(0, 2)
        assert g.edge_label(0, 1) == 5
        assert g.edge_label(2, 1) == 6

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            LabeledGraph([0, 1], [(0, 0, 1)])

    def test_bad_vertex_rejected(self):
        with pytest.raises(GraphError):
            LabeledGraph([0, 1], [(0, 5, 1)])

    def test_conflicting_duplicate_edge_rejected(self):
        with pytest.raises(GraphError):
            LabeledGraph([0, 1], [(0, 1, 1), (1, 0, 2)])

    def test_consistent_duplicate_edge_deduplicated(self):
        g = LabeledGraph([0, 1], [(0, 1, 1), (1, 0, 1)])
        assert g.num_edges == 1

    def test_2d_labels_rejected(self):
        with pytest.raises(GraphError):
            LabeledGraph(np.zeros((2, 2)), [])


class TestAdjacency:
    def test_neighbors_sorted_within_label(self):
        g = LabeledGraph([0] * 5, [(0, 3, 1), (0, 1, 1), (0, 2, 2),
                                   (0, 4, 1)])
        nbl = g.neighbors_by_label(0, 1)
        assert list(nbl) == [1, 3, 4]
        assert list(g.neighbors_by_label(0, 2)) == [2]
        assert list(g.neighbors_by_label(0, 9)) == []

    def test_degree_counts_all_labels(self):
        g = LabeledGraph([0] * 4, [(0, 1, 1), (0, 2, 2), (0, 3, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_incident_labels_align_with_neighbors(self):
        g = LabeledGraph([0] * 4, [(0, 1, 5), (0, 2, 3), (0, 3, 5)])
        nbrs = g.neighbors(0)
        labs = g.incident_labels(0)
        got = {(int(n), int(l)) for n, l in zip(nbrs, labs)}
        assert got == {(1, 5), (2, 3), (3, 5)}

    def test_edge_label_missing_edge_raises(self):
        g = LabeledGraph([0, 1, 2], [(0, 1, 1)])
        with pytest.raises(GraphError):
            g.edge_label(0, 2)

    def test_edges_iteration_normalized(self):
        g = LabeledGraph([0, 1, 2], [(2, 0, 4), (1, 2, 3)])
        edges = set(g.edges())
        assert edges == {(0, 2, 4), (1, 2, 3)}


class TestLabels:
    def test_edge_label_frequency(self):
        g = LabeledGraph([0] * 4, [(0, 1, 1), (1, 2, 1), (2, 3, 2)])
        assert g.edge_label_frequency(1) == 2
        assert g.edge_label_frequency(2) == 1
        assert g.edge_label_frequency(99) == 0

    def test_distinct_labels(self):
        g = LabeledGraph([3, 1, 3], [(0, 1, 9), (1, 2, 4)])
        assert g.distinct_vertex_labels() == [1, 3]
        assert g.distinct_edge_labels() == [4, 9]

    def test_vertex_labels_array(self):
        g = LabeledGraph([4, 5, 6], [])
        assert list(g.vertex_labels) == [4, 5, 6]


class TestConnectivity:
    def test_connected_path(self):
        assert path_query([0, 0, 0]).is_connected()

    def test_disconnected(self):
        g = LabeledGraph([0, 0, 0, 0], [(0, 1, 0)])
        assert not g.is_connected()

    def test_empty_is_connected(self):
        assert LabeledGraph([], []).is_connected()

    def test_max_degree(self):
        g = LabeledGraph([0] * 5, [(0, i, 0) for i in range(1, 5)])
        assert g.max_degree() == 4


class TestHelpers:
    def test_triangle_query(self):
        t = triangle_query((1, 2, 3), (4, 5, 6))
        assert t.num_vertices == 3
        assert t.num_edges == 3
        assert t.edge_label(0, 1) == 4
        assert t.edge_label(1, 2) == 5
        assert t.edge_label(0, 2) == 6

    def test_path_query_labels(self):
        p = path_query([1, 2, 3], [7, 8])
        assert p.edge_label(0, 1) == 7
        assert p.edge_label(1, 2) == 8

    def test_path_query_bad_edge_labels(self):
        with pytest.raises(GraphError):
            path_query([1, 2, 3], [7])

    def test_builder_roundtrip(self):
        b = GraphBuilder()
        ids = b.add_vertices([1, 2, 3])
        b.add_edge(ids[0], ids[2], 9)
        assert b.num_vertices == 3
        g = b.build()
        assert g.num_vertices == 3
        assert g.edge_label(0, 2) == 9

    def test_subgraph_of_edges(self):
        g = LabeledGraph([0, 0, 0], [(0, 1, 1), (1, 2, 2)])
        sub = g.subgraph_of_edges([(0, 1, 1)])
        assert sub.num_edges == 1
        assert sub.num_vertices == 3


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19),
                          st.integers(0, 3)), max_size=60))
def test_property_adjacency_is_symmetric(edge_list):
    edges = [(u, v, l) for u, v, l in edge_list if u != v]
    seen = {}
    dedup = []
    for u, v, l in edges:
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen[key] = l
            dedup.append((u, v, l))
    g = LabeledGraph([0] * 20, dedup)
    for u, v, l in dedup:
        assert g.has_edge(u, v) and g.has_edge(v, u)
        assert v in set(int(x) for x in g.neighbors_by_label(u, l))
        assert u in set(int(x) for x in g.neighbors_by_label(v, l))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14),
                          st.integers(0, 2)), max_size=40))
def test_property_degree_equals_neighbor_count(edge_list):
    seen = set()
    dedup = []
    for u, v, l in edge_list:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen.add(key)
            dedup.append((u, v, l))
    g = LabeledGraph([0] * 15, dedup)
    assert sum(g.degree(v) for v in range(15)) == 2 * g.num_edges
    for v in range(15):
        assert g.degree(v) == len(g.neighbors(v))
