"""Tests for the plan cache and the canonical query fingerprint."""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import GSIEngine
from repro.core.plan import plan_join_order
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph, path_query, triangle_query
from repro.service import BatchEngine
from repro.service.fingerprint import query_fingerprint, wl_colors
from repro.service.plan_cache import PlanCache, remap_plan

from oracle import brute_force_matches, paper_query


def renumber(graph: LabeledGraph, perm) -> LabeledGraph:
    """Isomorphic copy with vertex ``v`` renamed to ``perm[v]``."""
    vlabels = [0] * graph.num_vertices
    for v in range(graph.num_vertices):
        vlabels[perm[v]] = graph.vertex_label(v)
    edges = [(perm[u], perm[v], lab) for u, v, lab in graph.edges()]
    return LabeledGraph(vlabels, edges)


class TestFingerprint:
    def test_deterministic(self):
        q = paper_query()
        assert query_fingerprint(q).digest == query_fingerprint(q).digest

    def test_isomorphic_queries_share_digest(self):
        q = random_walk_query(scale_free_graph(80, 3, 3, 3, seed=1),
                              5, seed=2)
        for perm in ([4, 3, 2, 1, 0], [1, 2, 3, 4, 0], [2, 0, 4, 1, 3]):
            iso = renumber(q, perm)
            assert query_fingerprint(iso).digest == \
                query_fingerprint(q).digest

    def test_label_change_changes_digest(self):
        a = triangle_query((0, 0, 0), (0, 0, 0))
        b = triangle_query((0, 0, 1), (0, 0, 0))
        c = triangle_query((0, 0, 0), (0, 0, 1))
        digests = {query_fingerprint(x).digest for x in (a, b, c)}
        assert len(digests) == 3

    def test_structure_change_changes_digest(self):
        tri = triangle_query()
        path = path_query([0, 0, 0])
        assert query_fingerprint(tri).digest != \
            query_fingerprint(path).digest

    def test_mapping_is_bijective(self):
        q = paper_query()
        fp = query_fingerprint(q)
        assert sorted(fp.mapping) == list(range(q.num_vertices))
        inv = fp.inverse()
        assert all(inv[fp.mapping[v]] == v
                   for v in range(q.num_vertices))

    def test_budget_exhaustion_returns_none(self):
        # A 3x3 rook's-graph-like single-label query has many
        # automorphisms; a tiny budget must bail out, not mis-hash.
        q = triangle_query()
        assert query_fingerprint(q, node_budget=2) is None

    def test_wl_colors_invariant_under_renumbering(self):
        q = random_walk_query(scale_free_graph(60, 3, 3, 3, seed=4),
                              5, seed=1)
        perm = [3, 0, 4, 2, 1]
        iso = renumber(q, perm)
        colors, iso_colors = wl_colors(q), wl_colors(iso)
        assert sorted(colors) == sorted(iso_colors)
        assert all(colors[v] == iso_colors[perm[v]]
                   for v in range(q.num_vertices))


class TestRemapPlan:
    def test_roundtrip_identity(self):
        g = scale_free_graph(80, 3, 3, 3, seed=3)
        q = random_walk_query(g, 5, seed=7)
        sizes = {u: 10 + u for u in range(5)}
        plan = plan_join_order(q, g, sizes)
        fp = query_fingerprint(q)
        assert remap_plan(remap_plan(plan, fp.mapping),
                          fp.inverse()) == plan


class TestPlanCacheAccounting:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        g = scale_free_graph(80, 3, 3, 3, seed=5)
        q = random_walk_query(g, 4, seed=0)
        plan, fp = cache.lookup(q)
        assert plan is None and fp is not None
        assert cache.stats.misses == 1
        cache.store(fp, plan_join_order(q, g, {u: 1 for u in range(4)}))
        hit, _ = cache.lookup(q)
        assert hit is not None
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_isomorphic_query_hits(self):
        cache = PlanCache()
        g = scale_free_graph(80, 3, 3, 3, seed=5)
        q = random_walk_query(g, 5, seed=3)
        _, fp = cache.lookup(q)
        sizes = {u: 5 for u in range(5)}
        cache.store(fp, plan_join_order(q, g, sizes))
        iso = renumber(q, [4, 0, 3, 1, 2])
        plan, _ = cache.lookup(iso)
        assert plan is not None, "isomorphic query should hit"
        # The remapped plan must be *valid for iso*: starts somewhere,
        # covers all vertices, every step links into the prefix.
        assert sorted(plan.order) == list(range(5))
        joined = {plan.start_vertex}
        for step in plan.steps:
            assert step.linking_edges
            for w, lab in step.linking_edges:
                assert w in joined
                assert iso.edge_label(step.vertex, w) == lab
            joined.add(step.vertex)

    def test_eviction_at_capacity_is_lru(self):
        cache = PlanCache(capacity=2)
        g = scale_free_graph(100, 3, 4, 4, seed=6)
        queries = [random_walk_query(g, k, seed=1) for k in (3, 4, 5)]
        fps = []
        for q in queries:
            _, fp = cache.lookup(q)
            cache.store(fp, plan_join_order(
                q, g, {u: 1 for u in range(q.num_vertices)}))
            fps.append(fp)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # queries[0] was least recently used -> evicted.
        plan0, _ = cache.lookup(queries[0])
        assert plan0 is None
        plan2, _ = cache.lookup(queries[2])
        assert plan2 is not None

    def test_uncacheable_counted_not_stored(self):
        cache = PlanCache(node_budget=2)
        q = triangle_query()
        plan, fp = cache.lookup(q)
        assert plan is None and fp is None
        assert cache.stats.uncacheable == 1
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_clear_keeps_stats(self):
        cache = PlanCache()
        g = scale_free_graph(60, 3, 3, 3, seed=2)
        q = random_walk_query(g, 4, seed=2)
        _, fp = cache.lookup(q)
        cache.store(fp, plan_join_order(q, g, {u: 1 for u in range(4)}))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1


class TestLabelInvalidation:
    def _cache_plan(self, cache, query, graph):
        fp = query_fingerprint(query)
        sizes = {u: graph.num_vertices
                 for u in range(query.num_vertices)}
        plan = plan_join_order(query, graph, sizes)
        cache.store(fp, plan,
                    edge_labels=query.distinct_edge_labels())
        return fp

    def test_invalidate_drops_dependent_plans_only(self):
        graph = scale_free_graph(60, 3, 3, 3, seed=4)
        q_a = path_query([0, 0, 0], [0, 0])   # uses edge label 0
        q_b = path_query([0, 0, 0], [1, 1])   # uses edge label 1
        cache = PlanCache()
        self._cache_plan(cache, q_a, graph)
        self._cache_plan(cache, q_b, graph)
        assert len(cache) == 2
        dropped = cache.invalidate_labels([1])
        assert dropped == 1
        assert len(cache) == 1
        assert cache.stats.invalidations == 1
        # q_a survives and still hits.
        plan, _ = cache.lookup(q_a)
        assert plan is not None
        plan, _ = cache.lookup(q_b)
        assert plan is None

    def test_invalidate_without_labels_is_noop(self):
        graph = scale_free_graph(40, 3, 2, 2, seed=4)
        cache = PlanCache()
        self._cache_plan(cache, path_query([0, 0], [0]), graph)
        assert cache.invalidate_labels([]) == 0
        assert len(cache) == 1

    def test_plans_stored_without_labels_drop_conservatively(self):
        graph = scale_free_graph(40, 3, 2, 2, seed=4)
        q = path_query([0, 0], [0])
        cache = PlanCache()
        fp = query_fingerprint(q)
        sizes = {u: 10 for u in range(q.num_vertices)}
        cache.store(fp, plan_join_order(q, graph, sizes))  # no labels
        assert cache.invalidate_labels([99]) == 1
        assert len(cache) == 0


class TestConcurrency:
    """Regression tests for the LRU mutation race: ``move_to_end`` /
    eviction on the shared ``OrderedDict`` must be lock-protected when
    many worker threads drive the cache at tiny capacity."""

    def test_hammer_lookup_store_tiny_capacity(self):
        graph = scale_free_graph(100, 3, 4, 4, seed=6)
        # More distinct shapes than capacity -> constant eviction churn.
        queries = [random_walk_query(graph, k, seed=1)
                   for k in (3, 4, 5, 6, 7, 8)]
        plans = {k: plan_join_order(
            q, graph, {u: 1 for u in range(q.num_vertices)})
            for k, q in enumerate(queries)}
        cache = PlanCache(capacity=2)
        rounds = 60
        failures = []

        def worker(offset: int) -> None:
            try:
                for i in range(rounds):
                    k = (i + offset) % len(queries)
                    plan, fp = cache.lookup(queries[k])
                    if plan is None and fp is not None:
                        cache.store(fp, plans[k])
                    assert len(cache) <= cache.capacity
            except Exception as exc:  # noqa: BLE001 - surface in main
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures
        stats = cache.stats_snapshot()
        assert stats.lookups == 8 * rounds
        assert stats.hits + stats.misses == stats.lookups
        assert len(cache) <= 2

    def test_hammer_service_single_query_path(self, small_graph,
                                              small_queries):
        """Concurrent ``BatchEngine.match`` calls (the request-at-a-time
        serving path) share one tiny cache; results must stay correct
        and the cache within capacity."""
        service = BatchEngine(small_graph, cache_capacity=2)
        expected = [brute_force_matches(q, small_graph)
                    for q in small_queries]
        failures = []

        def worker(offset: int) -> None:
            try:
                for i in range(10):
                    k = (i + offset) % len(small_queries)
                    result = service.match(small_queries[k])
                    assert result.match_set() == expected[k]
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures
        assert len(service.plan_cache) <= 2

    def test_run_batch_tiny_capacity_still_correct(self, small_graph):
        queries = [random_walk_query(small_graph, k, seed=2)
                   for k in (3, 4, 5, 6)] * 4
        service = BatchEngine(small_graph, cache_capacity=2,
                              max_workers=8)
        report = service.run_batch(queries)
        assert report.errors == 0
        for query, result in zip(queries, report.results):
            assert result.match_set() == \
                brute_force_matches(query, small_graph)
        assert len(service.plan_cache) <= 2
        assert report.cache.evictions > 0


class TestCandidateShapeMemo:
    """The plan cache's candidate-shape memo: repeated query labels skip
    the host-side signature-table scan with bit-identical results."""

    def test_shape_hits_on_repeated_shapes(self, small_graph,
                                           small_queries):
        engine = GSIEngine(small_graph)
        cache = PlanCache()
        for q in small_queries:
            engine.prepare(q, plan_cache=cache)
        first = cache.stats_snapshot()
        assert first.shape_misses > 0
        for q in small_queries:
            engine.prepare(q, plan_cache=cache)
        second = cache.stats_snapshot().diff(first)
        # Second pass scans nothing: every query vertex is a memo hit.
        assert second.shape_misses == 0
        assert second.shape_hits == sum(
            q.num_vertices for q in small_queries)

    def test_memoized_results_bit_identical(self, small_graph,
                                            small_queries):
        cached_engine = GSIEngine(small_graph)
        plain_engine = GSIEngine(small_graph)
        cache = PlanCache()
        for _ in range(2):  # second pass runs fully out of the memo
            for q in small_queries:
                hit = cached_engine.execute(
                    cached_engine.prepare(q, plan_cache=cache))
                cold = plain_engine.execute(plain_engine.prepare(q))
                assert hit.match_set() == cold.match_set()
                assert hit.elapsed_ms == cold.elapsed_ms
                assert hit.counters == cold.counters
                assert hit.candidate_sizes == cold.candidate_sizes

    def test_shape_capacity_evicts(self, small_graph, small_queries):
        cache = PlanCache(shape_capacity=1)
        engine = GSIEngine(small_graph)
        for q in small_queries:
            engine.prepare(q, plan_cache=cache)
        assert len(cache.shapes) <= 1

    def test_clear_drops_shapes(self, small_graph, small_queries):
        cache = PlanCache()
        engine = GSIEngine(small_graph)
        engine.prepare(small_queries[0], plan_cache=cache)
        assert len(cache.shapes) > 0
        cache.clear()
        assert len(cache.shapes) == 0

    def test_shape_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(shape_capacity=0)

    def test_owner_guard_rejects_stale_binding(self):
        """Simulates a mid-scan rebind by a concurrent engine: lookups
        and stores carrying the old owner must miss / be dropped, never
        serve or pollute the other table's entries."""
        import numpy as np

        class FakeTable:  # weakref-able stand-in
            pass

        cache = PlanCache()
        table_a, table_b = FakeTable(), FakeTable()
        cand = np.array([1, 2, 3])
        cache.shapes.bind(table_a)
        cache.shapes.store(b"sig", "cost-a", cand, owner=table_a)
        assert cache.shapes.lookup(b"sig", owner=table_a) is not None
        cache.shapes.bind(table_b)  # concurrent engine rebinds (clears)
        assert len(cache.shapes) == 0
        # The first engine's in-flight scan now misses and cannot store.
        assert cache.shapes.lookup(b"sig", owner=table_a) is None
        cache.shapes.store(b"sig", "cost-a", cand, owner=table_a)
        assert cache.shapes.lookup(b"sig", owner=table_b) is None
        assert len(cache.shapes) == 0

    def test_shared_cache_across_graphs_stays_correct(self):
        """Sharing one PlanCache between engines over *different* data
        graphs is safe for plans (valid on any graph) — the shape memo
        must not leak one graph's candidate ids to the other."""
        graph_a = scale_free_graph(60, 3, 3, 3, seed=1)
        graph_b = scale_free_graph(90, 3, 3, 3, seed=2)
        cache = PlanCache()
        engine_a = GSIEngine(graph_a)
        engine_b = GSIEngine(graph_b)
        for _ in range(2):  # alternate engines through the shared cache
            for graph, engine in ((graph_a, engine_a),
                                  (graph_b, engine_b)):
                q = random_walk_query(graph, 4, seed=3)
                result = engine.execute(
                    engine.prepare(q, plan_cache=cache))
                assert result.match_set() == \
                    brute_force_matches(q, graph)


class TestCachedPlanEquivalence:
    def test_cached_result_byte_identical(self, small_graph, small_queries):
        """A cache-hit run must reproduce the cold run exactly: same
        matches, same simulated time, same counters, same phases."""
        engine = GSIEngine(small_graph)
        cache = PlanCache()
        for q in small_queries:
            cold_prepared = engine.prepare(q, plan_cache=cache)
            assert not cold_prepared.plan_cached
            cold = engine.execute(cold_prepared)

            hit_prepared = engine.prepare(q, plan_cache=cache)
            if cold_prepared.plan is not None:
                assert hit_prepared.plan_cached
                assert hit_prepared.plan == cold_prepared.plan
            hit = engine.execute(hit_prepared)

            assert hit.matches == cold.matches
            assert hit.elapsed_ms == cold.elapsed_ms
            assert hit.counters == cold.counters
            assert hit.phases == cold.phases
            assert hit.candidate_sizes == cold.candidate_sizes
            assert hit.join_order == cold.join_order

    def test_cached_plan_correct_for_isomorphic_query(self):
        g = scale_free_graph(70, 3, 3, 3, seed=9)
        q = random_walk_query(g, 5, seed=5)
        engine = GSIEngine(g)
        cache = PlanCache()
        engine.execute(engine.prepare(q, plan_cache=cache))
        iso = renumber(q, [2, 4, 0, 1, 3])
        prepared = engine.prepare(iso, plan_cache=cache)
        if prepared.plan is not None:
            assert prepared.plan_cached
        result = engine.execute(prepared)
        assert result.match_set() == brute_force_matches(iso, g)
