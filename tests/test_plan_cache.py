"""Tests for the plan cache and the canonical query fingerprint."""

from __future__ import annotations

import pytest

from repro.core.engine import GSIEngine
from repro.core.plan import plan_join_order
from repro.graph.generators import random_walk_query, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph, path_query, triangle_query
from repro.service.fingerprint import query_fingerprint, wl_colors
from repro.service.plan_cache import PlanCache, remap_plan

from oracle import brute_force_matches, paper_query


def renumber(graph: LabeledGraph, perm) -> LabeledGraph:
    """Isomorphic copy with vertex ``v`` renamed to ``perm[v]``."""
    vlabels = [0] * graph.num_vertices
    for v in range(graph.num_vertices):
        vlabels[perm[v]] = graph.vertex_label(v)
    edges = [(perm[u], perm[v], lab) for u, v, lab in graph.edges()]
    return LabeledGraph(vlabels, edges)


class TestFingerprint:
    def test_deterministic(self):
        q = paper_query()
        assert query_fingerprint(q).digest == query_fingerprint(q).digest

    def test_isomorphic_queries_share_digest(self):
        q = random_walk_query(scale_free_graph(80, 3, 3, 3, seed=1),
                              5, seed=2)
        for perm in ([4, 3, 2, 1, 0], [1, 2, 3, 4, 0], [2, 0, 4, 1, 3]):
            iso = renumber(q, perm)
            assert query_fingerprint(iso).digest == \
                query_fingerprint(q).digest

    def test_label_change_changes_digest(self):
        a = triangle_query((0, 0, 0), (0, 0, 0))
        b = triangle_query((0, 0, 1), (0, 0, 0))
        c = triangle_query((0, 0, 0), (0, 0, 1))
        digests = {query_fingerprint(x).digest for x in (a, b, c)}
        assert len(digests) == 3

    def test_structure_change_changes_digest(self):
        tri = triangle_query()
        path = path_query([0, 0, 0])
        assert query_fingerprint(tri).digest != \
            query_fingerprint(path).digest

    def test_mapping_is_bijective(self):
        q = paper_query()
        fp = query_fingerprint(q)
        assert sorted(fp.mapping) == list(range(q.num_vertices))
        inv = fp.inverse()
        assert all(inv[fp.mapping[v]] == v
                   for v in range(q.num_vertices))

    def test_budget_exhaustion_returns_none(self):
        # A 3x3 rook's-graph-like single-label query has many
        # automorphisms; a tiny budget must bail out, not mis-hash.
        q = triangle_query()
        assert query_fingerprint(q, node_budget=2) is None

    def test_wl_colors_invariant_under_renumbering(self):
        q = random_walk_query(scale_free_graph(60, 3, 3, 3, seed=4),
                              5, seed=1)
        perm = [3, 0, 4, 2, 1]
        iso = renumber(q, perm)
        colors, iso_colors = wl_colors(q), wl_colors(iso)
        assert sorted(colors) == sorted(iso_colors)
        assert all(colors[v] == iso_colors[perm[v]]
                   for v in range(q.num_vertices))


class TestRemapPlan:
    def test_roundtrip_identity(self):
        g = scale_free_graph(80, 3, 3, 3, seed=3)
        q = random_walk_query(g, 5, seed=7)
        sizes = {u: 10 + u for u in range(5)}
        plan = plan_join_order(q, g, sizes)
        fp = query_fingerprint(q)
        assert remap_plan(remap_plan(plan, fp.mapping),
                          fp.inverse()) == plan


class TestPlanCacheAccounting:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        g = scale_free_graph(80, 3, 3, 3, seed=5)
        q = random_walk_query(g, 4, seed=0)
        plan, fp = cache.lookup(q)
        assert plan is None and fp is not None
        assert cache.stats.misses == 1
        cache.store(fp, plan_join_order(q, g, {u: 1 for u in range(4)}))
        hit, _ = cache.lookup(q)
        assert hit is not None
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_isomorphic_query_hits(self):
        cache = PlanCache()
        g = scale_free_graph(80, 3, 3, 3, seed=5)
        q = random_walk_query(g, 5, seed=3)
        _, fp = cache.lookup(q)
        sizes = {u: 5 for u in range(5)}
        cache.store(fp, plan_join_order(q, g, sizes))
        iso = renumber(q, [4, 0, 3, 1, 2])
        plan, _ = cache.lookup(iso)
        assert plan is not None, "isomorphic query should hit"
        # The remapped plan must be *valid for iso*: starts somewhere,
        # covers all vertices, every step links into the prefix.
        assert sorted(plan.order) == list(range(5))
        joined = {plan.start_vertex}
        for step in plan.steps:
            assert step.linking_edges
            for w, lab in step.linking_edges:
                assert w in joined
                assert iso.edge_label(step.vertex, w) == lab
            joined.add(step.vertex)

    def test_eviction_at_capacity_is_lru(self):
        cache = PlanCache(capacity=2)
        g = scale_free_graph(100, 3, 4, 4, seed=6)
        queries = [random_walk_query(g, k, seed=1) for k in (3, 4, 5)]
        fps = []
        for q in queries:
            _, fp = cache.lookup(q)
            cache.store(fp, plan_join_order(
                q, g, {u: 1 for u in range(q.num_vertices)}))
            fps.append(fp)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # queries[0] was least recently used -> evicted.
        plan0, _ = cache.lookup(queries[0])
        assert plan0 is None
        plan2, _ = cache.lookup(queries[2])
        assert plan2 is not None

    def test_uncacheable_counted_not_stored(self):
        cache = PlanCache(node_budget=2)
        q = triangle_query()
        plan, fp = cache.lookup(q)
        assert plan is None and fp is None
        assert cache.stats.uncacheable == 1
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_clear_keeps_stats(self):
        cache = PlanCache()
        g = scale_free_graph(60, 3, 3, 3, seed=2)
        q = random_walk_query(g, 4, seed=2)
        _, fp = cache.lookup(q)
        cache.store(fp, plan_join_order(q, g, {u: 1 for u in range(4)}))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1


class TestLabelInvalidation:
    def _cache_plan(self, cache, query, graph):
        fp = query_fingerprint(query)
        sizes = {u: graph.num_vertices
                 for u in range(query.num_vertices)}
        plan = plan_join_order(query, graph, sizes)
        cache.store(fp, plan,
                    edge_labels=query.distinct_edge_labels())
        return fp

    def test_invalidate_drops_dependent_plans_only(self):
        graph = scale_free_graph(60, 3, 3, 3, seed=4)
        q_a = path_query([0, 0, 0], [0, 0])   # uses edge label 0
        q_b = path_query([0, 0, 0], [1, 1])   # uses edge label 1
        cache = PlanCache()
        self._cache_plan(cache, q_a, graph)
        self._cache_plan(cache, q_b, graph)
        assert len(cache) == 2
        dropped = cache.invalidate_labels([1])
        assert dropped == 1
        assert len(cache) == 1
        assert cache.stats.invalidations == 1
        # q_a survives and still hits.
        plan, _ = cache.lookup(q_a)
        assert plan is not None
        plan, _ = cache.lookup(q_b)
        assert plan is None

    def test_invalidate_without_labels_is_noop(self):
        graph = scale_free_graph(40, 3, 2, 2, seed=4)
        cache = PlanCache()
        self._cache_plan(cache, path_query([0, 0], [0]), graph)
        assert cache.invalidate_labels([]) == 0
        assert len(cache) == 1

    def test_plans_stored_without_labels_drop_conservatively(self):
        graph = scale_free_graph(40, 3, 2, 2, seed=4)
        q = path_query([0, 0], [0])
        cache = PlanCache()
        fp = query_fingerprint(q)
        sizes = {u: 10 for u in range(q.num_vertices)}
        cache.store(fp, plan_join_order(q, graph, sizes))  # no labels
        assert cache.invalidate_labels([99]) == 1
        assert len(cache) == 0


class TestCachedPlanEquivalence:
    def test_cached_result_byte_identical(self, small_graph, small_queries):
        """A cache-hit run must reproduce the cold run exactly: same
        matches, same simulated time, same counters, same phases."""
        engine = GSIEngine(small_graph)
        cache = PlanCache()
        for q in small_queries:
            cold_prepared = engine.prepare(q, plan_cache=cache)
            assert not cold_prepared.plan_cached
            cold = engine.execute(cold_prepared)

            hit_prepared = engine.prepare(q, plan_cache=cache)
            if cold_prepared.plan is not None:
                assert hit_prepared.plan_cached
                assert hit_prepared.plan == cold_prepared.plan
            hit = engine.execute(hit_prepared)

            assert hit.matches == cold.matches
            assert hit.elapsed_ms == cold.elapsed_ms
            assert hit.counters == cold.counters
            assert hit.phases == cold.phases
            assert hit.candidate_sizes == cold.candidate_sizes
            assert hit.join_order == cold.join_order

    def test_cached_plan_correct_for_isomorphic_query(self):
        g = scale_free_graph(70, 3, 3, 3, seed=9)
        q = random_walk_query(g, 5, seed=5)
        engine = GSIEngine(g)
        cache = PlanCache()
        engine.execute(engine.prepare(q, plan_cache=cache))
        iso = renumber(q, [2, 4, 0, 1, 3])
        prepared = engine.prepare(iso, plan_cache=cache)
        if prepared.plan is not None:
            assert prepared.plan_cached
        result = engine.execute(prepared)
        assert result.match_set() == brute_force_matches(iso, g)
