"""Tests for edge-label partitioning P(G, l)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.partition import partition_by_edge_label


class TestPartition:
    def test_simple_split(self):
        g = LabeledGraph([0] * 4, [(0, 1, 1), (1, 2, 1), (2, 3, 2)])
        parts = partition_by_edge_label(g)
        assert set(parts) == {1, 2}
        p1 = parts[1]
        assert list(p1.vertices) == [0, 1, 2]
        assert list(p1.neighbors(1)) == [0, 2]
        assert list(parts[2].neighbors(3)) == [2]

    def test_missing_vertex_returns_empty(self):
        g = LabeledGraph([0] * 3, [(0, 1, 1)])
        parts = partition_by_edge_label(g)
        assert len(parts[1].neighbors(2)) == 0
        assert not parts[1].has_vertex(2)

    def test_counts(self):
        g = LabeledGraph([0] * 4, [(0, 1, 1), (1, 2, 1), (0, 2, 1)])
        p = partition_by_edge_label(g)[1]
        assert p.num_vertices == 3
        assert p.num_directed_edges == 6

    def test_items_sorted_by_vertex(self):
        g = LabeledGraph([0] * 5, [(4, 1, 0), (3, 0, 0)])
        items = partition_by_edge_label(g)[0].items()
        assert [v for v, _ in items] == [0, 1, 3, 4]

    def test_neighbors_sorted(self):
        g = LabeledGraph([0] * 5, [(0, 4, 1), (0, 2, 1), (0, 3, 1)])
        p = partition_by_edge_label(g)[1]
        assert list(p.neighbors(0)) == [2, 3, 4]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11),
                          st.integers(0, 3)), max_size=50))
def test_property_partitions_cover_graph_exactly(edge_list):
    seen = set()
    dedup = []
    for u, v, l in edge_list:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen.add(key)
            dedup.append((u, v, l))
    g = LabeledGraph([0] * 12, dedup)
    parts = partition_by_edge_label(g)
    # Union over partitions == full adjacency, per label.
    for v in range(12):
        for lab in g.distinct_edge_labels():
            expect = sorted(int(x) for x in g.neighbors_by_label(v, lab))
            part = parts.get(lab)
            got = sorted(int(x) for x in part.neighbors(v)) if part else []
            assert got == expect
    # Total directed edges match.
    assert sum(p.num_directed_edges for p in parts.values()) \
        == 2 * g.num_edges
