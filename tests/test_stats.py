"""Tests for graph statistics."""

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.stats import (
    edge_label_histogram,
    graph_stats,
    vertex_label_histogram,
)


class TestGraphStats:
    def test_basic(self):
        g = LabeledGraph([1, 1, 2], [(0, 1, 5), (1, 2, 5)])
        s = graph_stats(g)
        assert s.num_vertices == 3
        assert s.num_edges == 2
        assert s.num_vertex_labels == 2
        assert s.num_edge_labels == 1
        assert s.max_degree == 2
        assert abs(s.mean_degree - 4 / 3) < 1e-9

    def test_empty(self):
        s = graph_stats(LabeledGraph([], []))
        assert s.num_vertices == 0
        assert s.max_degree == 0
        assert s.mean_degree == 0.0

    def test_as_row_contains_fields(self):
        s = graph_stats(LabeledGraph([0], []))
        row = s.as_row()
        assert "|V|=" in row and "MD=" in row


class TestHistograms:
    def test_edge_histogram(self):
        g = LabeledGraph([0] * 4, [(0, 1, 1), (1, 2, 1), (2, 3, 9)])
        assert edge_label_histogram(g) == {1: 2, 9: 1}

    def test_vertex_histogram(self):
        g = LabeledGraph([5, 5, 7], [])
        assert vertex_label_histogram(g) == {5: 2, 7: 1}
