"""Edge-case battery across the engine stack."""


from repro import GSIConfig, GSIEngine
from repro.baselines import GpSMEngine, TurboISOEngine, VF2Engine
from repro.graph.labeled_graph import (
    GraphBuilder,
    LabeledGraph,
    triangle_query,
)

from oracle import brute_force_matches


class TestSelfMatch:
    """A graph queried with itself must find at least its identity."""

    def test_triangle_on_itself(self):
        q = triangle_query((0, 1, 2), (3, 4, 5))
        r = GSIEngine(q).match(q)
        assert (0, 1, 2) in r.match_set()
        assert r.num_matches == 1  # fully labeled: rigid

    def test_symmetric_triangle_on_itself(self):
        q = triangle_query((0, 0, 0), (1, 1, 1))
        r = GSIEngine(q).match(q)
        assert r.num_matches == 6  # all automorphisms


class TestUnknownLabels:
    def test_query_edge_label_absent_from_graph(self, small_graph):
        lab = small_graph.vertex_label(0)
        q = LabeledGraph([lab, lab], [(0, 1, 987_654)])
        for engine in (GSIEngine(small_graph), VF2Engine(small_graph),
                       GpSMEngine(small_graph),
                       TurboISOEngine(small_graph)):
            assert engine.match(q).num_matches == 0

    def test_mixed_known_unknown_edge_labels(self, small_graph):
        lab = small_graph.vertex_label(0)
        known = small_graph.distinct_edge_labels()[0]
        q = LabeledGraph([lab, lab, lab],
                         [(0, 1, known), (1, 2, 987_654)])
        assert GSIEngine(small_graph).match(q).num_matches == 0


class TestDisconnectedDataGraph:
    def test_matching_spans_components(self):
        # Two identical components: a 3-path each.
        b = GraphBuilder()
        for base in (0, 3):
            ids = [b.add_vertex(0), b.add_vertex(1), b.add_vertex(0)]
            b.add_edge(ids[0], ids[1], 0)
            b.add_edge(ids[1], ids[2], 0)
        g = b.build()
        q = LabeledGraph([0, 1, 0], [(0, 1, 0), (1, 2, 0)])
        r = GSIEngine(g).match(q)
        assert r.match_set() == brute_force_matches(q, g)
        assert r.num_matches == 4  # 2 per component (reflection)


class TestDenseQueries:
    def test_query_larger_than_max_clique(self, small_graph):
        lab = small_graph.vertex_label(0)
        b = GraphBuilder()
        ids = b.add_vertices([lab] * 6)
        for i in range(6):
            for j in range(i + 1, 6):
                b.add_edge(ids[i], ids[j], 0)
        q = b.build()
        r = GSIEngine(small_graph).match(q)
        assert r.match_set() == brute_force_matches(q, small_graph)

    def test_multigraph_like_parallel_labels(self):
        # Same vertex pair cannot carry two labels; the query planner
        # must still handle two edges sharing endpoints via a middle
        # vertex (theta shape).
        b = GraphBuilder()
        x, m1, m2, y = b.add_vertices([0, 1, 1, 0])
        b.add_edge(x, m1, 0)
        b.add_edge(m1, y, 0)
        b.add_edge(x, m2, 0)
        b.add_edge(m2, y, 0)
        q = b.build()
        gb = GraphBuilder()
        gx, gm1, gm2, gm3, gy = gb.add_vertices([0, 1, 1, 1, 0])
        for gm in (gm1, gm2, gm3):
            gb.add_edge(gx, gm, 0)
            gb.add_edge(gm, gy, 0)
        g = gb.build()
        r = GSIEngine(g).match(q)
        assert r.match_set() == brute_force_matches(q, g)
        assert r.num_matches == 2 * 3 * 2  # x/y swap x m1,m2 choices


class TestLargeLabels:
    def test_huge_label_values(self):
        big = 2 ** 31 - 1
        g = LabeledGraph([big, big], [(0, 1, big)])
        q = LabeledGraph([big, big], [(0, 1, big)])
        r = GSIEngine(g).match(q)
        assert r.num_matches == 2

    def test_label_zero(self):
        g = LabeledGraph([0, 0], [(0, 1, 0)])
        q = LabeledGraph([0, 0], [(0, 1, 0)])
        assert GSIEngine(g).match(q).num_matches == 2


class TestStarAndChainExtremes:
    def test_long_chain_query(self, medium_graph):
        from repro.graph.templates import sample_path

        q = sample_path(medium_graph, 9, seed=4)
        r = GSIEngine(medium_graph, GSIConfig.gsi_opt()).match(q)
        assert r.num_matches >= 1
        assert not r.timed_out

    def test_high_degree_star(self, medium_graph):
        from repro.graph.templates import sample_star

        q = sample_star(medium_graph, 8, seed=4)
        gsi = GSIEngine(medium_graph).match(q)
        turbo = TurboISOEngine(medium_graph).match(q)
        assert gsi.match_set() == turbo.match_set()
