"""Labeled motif search in a social network (the paper's gowalla/enron
motivation).

Counts classic social-network motifs — labeled triangles, wedges and
4-cliques — using subgraph isomorphism, and shows how the embedding
count relates to motif counts (each triangle is found 6 times, once per
automorphism, when all labels are equal).

Run:  python examples/social_network_motifs.py
"""

from repro import GraphBuilder, GSIConfig, GSIEngine
from repro.graph.datasets import gowalla_like


def clique_query(k: int, vlabel: int, elabel: int):
    """A k-clique with uniform labels."""
    b = GraphBuilder()
    ids = b.add_vertices([vlabel] * k)
    for i in range(k):
        for j in range(i + 1, k):
            b.add_edge(ids[i], ids[j], elabel)
    return b.build()


def wedge_query(center_label: int, leaf_label: int, elabel: int):
    """A path of length 2 (the 'wedge' motif)."""
    b = GraphBuilder()
    leaf1 = b.add_vertex(leaf_label)
    center = b.add_vertex(center_label)
    leaf2 = b.add_vertex(leaf_label)
    b.add_edge(center, leaf1, elabel)
    b.add_edge(center, leaf2, elabel)
    return b.build()


def main() -> None:
    graph = gowalla_like()
    print(f"social network: {graph.num_vertices} users, "
          f"{graph.num_edges} ties")
    engine = GSIEngine(graph, GSIConfig.gsi_opt())

    # Most common vertex/edge labels make the densest motifs.
    vlabel = graph.distinct_vertex_labels()[0]
    elabel = max(graph.distinct_edge_labels(),
                 key=graph.edge_label_frequency)

    wedges = engine.match(wedge_query(vlabel, vlabel, elabel))
    print(f"wedges   (label {vlabel}/{elabel}): "
          f"{wedges.num_matches:7d} embeddings "
          f"= {wedges.num_matches // 2} motifs "
          f"({wedges.elapsed_ms:.3f} sim ms)")

    triangles = engine.match(clique_query(3, vlabel, elabel))
    assert triangles.num_matches % 6 == 0  # 3! automorphisms
    print(f"triangles(label {vlabel}/{elabel}): "
          f"{triangles.num_matches:7d} embeddings "
          f"= {triangles.num_matches // 6} motifs "
          f"({triangles.elapsed_ms:.3f} sim ms)")

    four_cliques = engine.match(clique_query(4, vlabel, elabel))
    assert four_cliques.num_matches % 24 == 0  # 4! automorphisms
    print(f"4-cliques(label {vlabel}/{elabel}): "
          f"{four_cliques.num_matches:7d} embeddings "
          f"= {four_cliques.num_matches // 24} motifs "
          f"({four_cliques.elapsed_ms:.3f} sim ms)")

    # Closure ratio: what fraction of wedges close into triangles.
    if wedges.num_matches:
        closure = triangles.num_matches / wedges.num_matches
        print(f"labeled clustering (triangle/wedge embedding ratio): "
              f"{closure:.3f}")


if __name__ == "__main__":
    main()
