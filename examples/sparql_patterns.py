"""SPARQL-style basic graph patterns over a triple store.

The paper motivates subgraph isomorphism with "search over a knowledge
graph" — systems like gStore answer SPARQL by matching the query's basic
graph pattern against the RDF graph.  This example builds a small typed
triple store and answers patterns through GSI.

Run:  python examples/sparql_patterns.py
"""

from repro.query import PatternExecutor, TripleStore


def build_movie_store() -> TripleStore:
    store = TripleStore()
    people = ["keanu", "carrie", "hugo", "lana", "lilly", "ron"]
    movies = ["matrix", "matrix2", "johnwick", "speed"]
    genres = ["scifi", "action"]
    for p in people:
        store.add_type(p, "Person")
    for m in movies:
        store.add_type(m, "Movie")
    for g in genres:
        store.add_type(g, "Genre")

    store.add_triple("keanu", "acted_in", "matrix")
    store.add_triple("keanu", "acted_in", "matrix2")
    store.add_triple("keanu", "acted_in", "johnwick")
    store.add_triple("keanu", "acted_in", "speed")
    store.add_triple("carrie", "acted_in", "matrix")
    store.add_triple("carrie", "acted_in", "matrix2")
    store.add_triple("hugo", "acted_in", "matrix")
    store.add_triple("lana", "directed", "matrix")
    store.add_triple("lilly", "directed", "matrix")
    store.add_triple("lana", "directed", "matrix2")
    store.add_triple("ron", "directed", "speed")
    store.add_triple("matrix", "has_genre", "scifi")
    store.add_triple("matrix2", "has_genre", "scifi")
    store.add_triple("johnwick", "has_genre", "action")
    store.add_triple("speed", "has_genre", "action")
    store.freeze()
    return store


def main() -> None:
    store = build_movie_store()
    print(f"triple store: {len(store.entities)} entities, "
          f"{store.num_triples()} triples, "
          f"{len(store.predicates)} predicates\n")
    executor = PatternExecutor(store)

    print("Q1: co-stars (two people in the same movie)")
    r = executor.run("""
        ?a a Person
        ?b a Person
        ?m a Movie
        ?a acted_in ?m
        ?b acted_in ?m
    """)
    pairs = sorted({tuple(sorted((b["?a"], b["?b"])))
                    for b in r.bindings})
    for a, b in pairs:
        print(f"  {a} & {b}")

    print("\nQ2: actors directed by lana in a scifi movie")
    r = executor.run("""
        ?actor a Person
        ?m a Movie
        ?actor acted_in ?m
        lana directed ?m
        ?m has_genre scifi
    """)
    print(f"  {sorted({b['?actor'] for b in r.bindings})}")

    print("\nQ3: directors who also acted (in any movie pair)")
    r = executor.run("""
        ?d a Person
        ?m1 a Movie
        ?m2 a Movie
        ?d directed ?m1
        ?d acted_in ?m2
    """)
    print(f"  {sorted({b['?d'] for b in r.bindings}) or 'none'}")

    print(f"\nengine time for Q2: "
          f"{r.engine_result.elapsed_ms:.3f} simulated ms, "
          f"{r.engine_result.counters.kernel_launches} kernels")


if __name__ == "__main__":
    main()
