"""Tour of the four graph storage structures (paper Section IV).

Builds CSR, Basic Representation, Compressed Representation, and PCSR
over the same graph and shows the Table II trade-off live: transactions
per N(v, l) extraction versus total space.

Run:  python examples/storage_structures_tour.py
"""

import numpy as np

from repro.graph.datasets import dbpedia_like
from repro.storage import PCSRStorage, build_storage, storage_kinds


def main() -> None:
    graph = dbpedia_like()
    print(f"graph: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"|LE|={len(graph.distinct_edge_labels())}")
    print()

    rng = np.random.default_rng(1)
    labels = graph.distinct_edge_labels()
    probes = [(int(rng.integers(graph.num_vertices)),
               labels[int(rng.integers(len(labels)))])
              for _ in range(500)]
    hub = max(range(graph.num_vertices), key=graph.degree)
    hub_label = max(labels,
                    key=lambda l: len(graph.neighbors_by_label(hub, l)))

    print(f"{'structure':<12} {'avg tx':>8} {'hub tx':>8} "
          f"{'space (words)':>14}")
    for kind in storage_kinds():
        store = build_storage(kind, graph)
        avg_tx = np.mean([store.lookup_transactions(v, l)
                          for v, l in probes])
        hub_tx = store.lookup_transactions(hub, hub_label)
        print(f"{kind:<12} {avg_tx:8.2f} {hub_tx:8d} "
              f"{store.space_words():14d}")

    # The structures are interchangeable: identical answers.
    stores = [build_storage(kind, graph) for kind in storage_kinds()]
    for v, l in probes[:50]:
        answers = [tuple(sorted(int(x) for x in s.neighbors(v, l)))
                   for s in stores]
        assert len(set(answers)) == 1
    print("\nall four structures agree on N(v, l) for 50 random probes")

    # PCSR internals: hash-group health.
    pcsr = PCSRStorage(graph, gpn=16)
    print(f"PCSR longest overflow chain: {pcsr.max_chain_length()} "
          f"(paper: <= 3 expected, 1 observed with GPN=16)")


if __name__ == "__main__":
    main()
