"""Six-engine shoot-out on one dataset (a miniature Figure 12).

Runs VF3-style, CFL-Match-style, GpSM, GunrockSM, GSI and GSI-opt on the
same query workload, verifies they all find the same embeddings, and
prints the paper-style comparison.

Run:  python examples/engine_shootout.py
"""

from repro import GSIConfig, GSIEngine, query_workload
from repro.baselines import (
    CFLMatchEngine,
    GpSMEngine,
    GunrockSMEngine,
    VF2Engine,
)
from repro.graph.datasets import watdiv_like


def main() -> None:
    graph = watdiv_like()
    queries = query_workload(graph, num_queries=3, query_vertices=10,
                             seed=7)
    print(f"dataset: |V|={graph.num_vertices} |E|={graph.num_edges}; "
          f"{len(queries)} ten-vertex queries\n")

    engines = [
        VF2Engine(graph, wall_budget_s=20.0),
        CFLMatchEngine(graph, wall_budget_s=20.0),
        GpSMEngine(graph, max_intermediate_rows=300_000),
        GunrockSMEngine(graph, max_intermediate_rows=300_000),
        GSIEngine(graph, GSIConfig.gsi()),
        GSIEngine(graph, GSIConfig.gsi_opt()),
    ]
    labels = ["VF3", "CFL-Match", "GpSM", "GunrockSM", "GSI", "GSI-opt"]

    print(f"{'engine':<12} {'avg sim ms':>12} {'matches':>9} "
          f"{'join GLD':>10}")
    reference = None
    for label, engine in zip(labels, engines):
        total_ms, total_matches, total_gld = 0.0, 0, 0
        match_sets = []
        for q in queries:
            r = engine.match(q)
            total_ms += r.elapsed_ms
            total_matches += r.num_matches
            total_gld += r.counters.join_gld
            match_sets.append(r.match_set())
        if reference is None:
            reference = match_sets
        else:
            assert match_sets == reference, f"{label} disagrees!"
        print(f"{label:<12} {total_ms / len(queries):12.3f} "
              f"{total_matches:9d} {total_gld // len(queries):10d}")

    print("\nall engines returned identical embeddings "
          "(cross-validated per query)")


if __name__ == "__main__":
    main()
