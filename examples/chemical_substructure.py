"""Chemical substructure search (the paper's first motivating
application, citing graph-indexing work on compound databases).

Molecules are labeled graphs: vertex labels are elements, edge labels
are bond types.  Substructure search — "which compounds contain this
functional group?" — is subgraph isomorphism per compound.

Run:  python examples/chemical_substructure.py
"""

from repro import GraphBuilder, GSIConfig, GSIEngine

# element labels
C, O, N, H = 0, 1, 2, 3
ELEMENT = {C: "C", O: "O", N: "N", H: "H"}
# bond labels
SINGLE, DOUBLE, AROMATIC = 0, 1, 2


def ethanol():
    """CH3-CH2-OH (hydrogens omitted except the hydroxyl)."""
    b = GraphBuilder()
    c1, c2, o = b.add_vertices([C, C, O])
    h = b.add_vertex(H)
    b.add_edge(c1, c2, SINGLE)
    b.add_edge(c2, o, SINGLE)
    b.add_edge(o, h, SINGLE)
    return b.build()


def acetic_acid():
    """CH3-COOH: carbonyl plus hydroxyl on the same carbon."""
    b = GraphBuilder()
    c1, c2, o1, o2 = b.add_vertices([C, C, O, O])
    h = b.add_vertex(H)
    b.add_edge(c1, c2, SINGLE)
    b.add_edge(c2, o1, DOUBLE)   # C=O
    b.add_edge(c2, o2, SINGLE)   # C-O
    b.add_edge(o2, h, SINGLE)    # O-H
    return b.build()


def acetamide():
    """CH3-CO-NH2: carbonyl with an amine."""
    b = GraphBuilder()
    c1, c2, o, n = b.add_vertices([C, C, O, N])
    b.add_edge(c1, c2, SINGLE)
    b.add_edge(c2, o, DOUBLE)
    b.add_edge(c2, n, SINGLE)
    return b.build()


def benzene():
    """Aromatic six-ring."""
    b = GraphBuilder()
    ring = b.add_vertices([C] * 6)
    for i in range(6):
        b.add_edge(ring[i], ring[(i + 1) % 6], AROMATIC)
    return b.build()


def hydroxyl_group():
    """-O-H attached to any carbon."""
    b = GraphBuilder()
    c, o, h = b.add_vertices([C, O, H])
    b.add_edge(c, o, SINGLE)
    b.add_edge(o, h, SINGLE)
    return b.build()


def carbonyl_group():
    """C=O."""
    b = GraphBuilder()
    c, o = b.add_vertices([C, O])
    b.add_edge(c, o, DOUBLE)
    return b.build()


def carboxyl_group():
    """-COOH: carbonyl and hydroxyl on one carbon."""
    b = GraphBuilder()
    c, o1, o2, h = b.add_vertices([C, O, O, H])
    b.add_edge(c, o1, DOUBLE)
    b.add_edge(c, o2, SINGLE)
    b.add_edge(o2, h, SINGLE)
    return b.build()


def main() -> None:
    compounds = {
        "ethanol": ethanol(),
        "acetic acid": acetic_acid(),
        "acetamide": acetamide(),
        "benzene": benzene(),
    }
    groups = {
        "hydroxyl (-OH)": hydroxyl_group(),
        "carbonyl (C=O)": carbonyl_group(),
        "carboxyl (-COOH)": carboxyl_group(),
    }

    print(f"{'compound':<14}" + "".join(f"{g:<20}" for g in groups))
    expected = {
        ("ethanol", "hydroxyl (-OH)"): True,
        ("ethanol", "carbonyl (C=O)"): False,
        ("ethanol", "carboxyl (-COOH)"): False,
        ("acetic acid", "hydroxyl (-OH)"): True,
        ("acetic acid", "carbonyl (C=O)"): True,
        ("acetic acid", "carboxyl (-COOH)"): True,
        ("acetamide", "hydroxyl (-OH)"): False,
        ("acetamide", "carbonyl (C=O)"): True,
        ("acetamide", "carboxyl (-COOH)"): False,
        ("benzene", "hydroxyl (-OH)"): False,
        ("benzene", "carbonyl (C=O)"): False,
        ("benzene", "carboxyl (-COOH)"): False,
    }
    for cname, compound in compounds.items():
        engine = GSIEngine(compound, GSIConfig.gsi())
        row = [f"{cname:<14}"]
        for gname, group in groups.items():
            found = engine.match(group).num_matches > 0
            assert found == expected[(cname, gname)], (cname, gname)
            row.append(f"{'yes' if found else '-':<20}")
        print("".join(row))
    print("\nall containment answers verified against chemistry")


if __name__ == "__main__":
    main()
