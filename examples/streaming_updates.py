"""Continuous queries over a stream of graph updates.

A small social-network scenario: friendships ("knows", label 0) and
co-memberships ("attends", label 1) arrive and disappear over time,
while two standing pattern subscriptions stay registered:

* a "knows"-triangle of people (a tightly knit trio), and
* a wedge person-event-person (two people at the same event).

Each update batch is applied through the dynamic subsystem — the PCSR
partitions and the signature table are maintained *in place*, never
rebuilt — and every batch emits only the matches it created or
destroyed.  At the end, a cold engine over the final snapshot confirms
the composed delta results.
"""

from repro.core.engine import GSIEngine
from repro.dynamic import GraphDelta, StreamEngine
from repro.graph.labeled_graph import GraphBuilder

PERSON, EVENT = 0, 1
KNOWS, ATTENDS = 0, 1


def base_graph():
    b = GraphBuilder()
    people = b.add_vertices([PERSON] * 6)       # 0..5
    events = b.add_vertices([EVENT] * 2)        # 6..7
    b.add_edge(people[0], people[1], KNOWS)
    b.add_edge(people[1], people[2], KNOWS)
    b.add_edge(people[3], people[4], KNOWS)
    b.add_edge(people[0], events[0], ATTENDS)
    b.add_edge(people[2], events[0], ATTENDS)
    b.add_edge(people[4], events[1], ATTENDS)
    return b.build()


def triangle_of_friends():
    b = GraphBuilder()
    u = b.add_vertices([PERSON] * 3)
    b.add_edge(u[0], u[1], KNOWS)
    b.add_edge(u[1], u[2], KNOWS)
    b.add_edge(u[0], u[2], KNOWS)
    return b.build()


def same_event_wedge():
    b = GraphBuilder()
    p1 = b.add_vertex(PERSON)
    ev = b.add_vertex(EVENT)
    p2 = b.add_vertex(PERSON)
    b.add_edge(p1, ev, ATTENDS)
    b.add_edge(p2, ev, ATTENDS)
    return b.build()


def main() -> None:
    graph = base_graph()
    engine = StreamEngine(graph)
    tri = engine.register(triangle_of_friends())
    wedge = engine.register(same_event_wedge())
    print(f"registered 2 continuous queries on |V|={graph.num_vertices} "
          f"|E|={graph.num_edges}: "
          f"{len(engine.matches(tri))} triangles, "
          f"{len(engine.matches(wedge))} wedges")

    batches = []
    # Batch 1: closing edges create a triangle and a new wedge.
    d = GraphDelta.for_graph(engine.graph)
    d.add_edge(0, 2, KNOWS)          # closes triangle 0-1-2
    d.add_edge(1, 6, ATTENDS)        # person 1 attends event 6
    batches.append(("friendships close", d))
    # Batch 2: a newcomer joins an event and befriends two people.
    d = GraphDelta.for_graph(engine.graph)
    newcomer = d.add_vertex(PERSON)
    d.add_edge(newcomer, 3, KNOWS)
    d.add_edge(newcomer, 4, KNOWS)
    d.add_edge(newcomer, 7, ATTENDS)
    batches.append(("newcomer arrives", d))
    # Batch 3: a friendship breaks and one person leaves an event.
    d = GraphDelta.for_graph(engine.graph)
    d.remove_edge(0, 1)              # triangle 0-1-2 dissolves
    d.remove_edge(2, 6)
    batches.append(("links dissolve", d))

    for name, delta in batches:
        report = engine.apply_batch(delta)
        per_query = ", ".join(
            f"q{qid}: +{len(qd.created)}/-{len(qd.destroyed)} "
            f"(live {qd.num_matches})"
            for qid, qd in sorted(report.query_deltas.items()))
        print(f"[{name}] {per_query} | maintenance "
              f"gld={report.maintenance.gld} gst={report.maintenance.gst} "
              f"plans invalidated={report.plans_invalidated}")

    # Composed deltas must equal a cold full run on the final snapshot.
    cold = GSIEngine(engine.graph)
    for qid, query in ((tri, triangle_of_friends()),
                       (wedge, same_event_wedge())):
        assert engine.matches(qid) == cold.match(query).match_set()
    print("composed delta results verified against a cold engine on "
          "the final snapshot")


if __name__ == "__main__":
    main()
