"""Batch service: serve many subgraph queries from one shared engine.

The engine's offline artifacts (signature table, PCSR storage) are built
once; a worker pool executes a whole batch of queries through the
``prepare``/``execute`` path, and a plan cache lets repeated or
isomorphic query shapes skip join-order planning.

Run:  python examples/batch_service.py
"""

import time

from repro import BatchEngine, GSIConfig, GSIEngine, random_walk_query
from repro.graph.generators import scale_free_graph


def main() -> None:
    graph = scale_free_graph(400, 4, 6, 6, seed=9)
    config = GSIConfig.gsi_opt()

    # A multi-user workload: 8 distinct query shapes, each submitted by
    # 4 "users" (32 queries total).
    shapes = [random_walk_query(graph, 5, seed=s) for s in range(8)]
    batch = shapes * 4

    # --- One-at-a-time service: every request pays engine setup. ---
    t0 = time.perf_counter()
    sequential = [GSIEngine(graph, config).match(q) for q in batch]
    sequential_ms = (time.perf_counter() - t0) * 1000.0

    # --- Batch service: artifacts amortized, plans cached. ---
    service = BatchEngine(graph, config, max_workers=4)
    t0 = time.perf_counter()
    report = service.run_batch(batch)
    batched_ms = (time.perf_counter() - t0) * 1000.0

    # Batching never changes answers: same matches, same simulated cost.
    for seq_result, batch_result in zip(sequential, report.results):
        assert seq_result.match_set() == batch_result.match_set()
        assert seq_result.elapsed_ms == batch_result.elapsed_ms

    print(f"data graph: |V|={graph.num_vertices} |E|={graph.num_edges}")
    print(f"batch of {len(batch)} queries "
          f"({len(shapes)} distinct shapes x 4 users)")
    print(f"  one-at-a-time  : {sequential_ms:8.1f} ms wall")
    print(f"  batch service  : {batched_ms:8.1f} ms wall "
          f"({sequential_ms / max(batched_ms, 1e-9):.1f}x)")
    print(f"  {report.summary_line()}")
    hits = report.cache.hits
    assert hits > 0, "repeated shapes should hit the plan cache"
    print(f"  {hits} of {report.num_queries} queries reused a cached plan")


if __name__ == "__main__":
    main()
