"""Quickstart: build a labeled graph, run one subgraph search with GSI.

Run:  python examples/quickstart.py
"""

from repro import GraphBuilder, GSIConfig, GSIEngine


def main() -> None:
    # --- Build a small data graph (vertex labels: 0=person, 1=city,
    #     2=company; edge labels: 0=knows, 1=lives_in, 2=works_at) ---
    b = GraphBuilder()
    alice = b.add_vertex(0)
    bob = b.add_vertex(0)
    carol = b.add_vertex(0)
    springfield = b.add_vertex(1)
    acme = b.add_vertex(2)

    b.add_edge(alice, bob, 0)           # alice knows bob
    b.add_edge(bob, carol, 0)           # bob knows carol
    b.add_edge(alice, carol, 0)         # alice knows carol
    b.add_edge(alice, springfield, 1)   # alice lives_in springfield
    b.add_edge(bob, springfield, 1)     # bob lives_in springfield
    b.add_edge(carol, acme, 2)          # carol works_at acme
    graph = b.build()

    # --- Query: two people who know each other and live in the same
    #     city (a labeled triangle) ---
    qb = GraphBuilder()
    p1 = qb.add_vertex(0)
    p2 = qb.add_vertex(0)
    city = qb.add_vertex(1)
    qb.add_edge(p1, p2, 0)
    qb.add_edge(p1, city, 1)
    qb.add_edge(p2, city, 1)
    query = qb.build()

    # --- Match with the fully optimized GSI configuration ---
    engine = GSIEngine(graph, GSIConfig.gsi_opt())
    result = engine.match(query)

    names = {alice: "alice", bob: "bob", carol: "carol",
             springfield: "springfield", acme: "acme"}
    print(f"query has {query.num_vertices} vertices, "
          f"{query.num_edges} edges")
    print(f"found {result.num_matches} embeddings in "
          f"{result.elapsed_ms:.3f} simulated ms "
          f"(GLD={result.counters.gld}, "
          f"kernels={result.counters.kernel_launches})")
    for match in sorted(result.matches):
        mapped = ", ".join(
            f"u{u}->{names[v]}" for u, v in enumerate(match))
        print(f"  {mapped}")

    # Both (alice, bob) orientations of the triangle are embeddings.
    assert result.num_matches == 2


if __name__ == "__main__":
    main()
