"""Knowledge-graph pattern search (the paper's DBpedia motivation).

Subgraph isomorphism is the core of SPARQL basic-graph-pattern matching
over RDF: vertices are entities typed by vertex labels, predicates are
edge labels.  This example builds a DBpedia-like synthetic knowledge
graph and runs star and path patterns of the kind a SPARQL engine
(e.g. gStore) would dispatch to a subgraph matcher.

Run:  python examples/knowledge_graph_search.py
"""

from repro import GraphBuilder, GSIConfig, GSIEngine
from repro.graph.datasets import dbpedia_like
from repro.graph.generators import random_walk_query


def star_pattern(center_label: int, spokes, edge_labels):
    """A star query: one center connected to len(spokes) neighbors."""
    b = GraphBuilder()
    center = b.add_vertex(center_label)
    for spoke_label, elab in zip(spokes, edge_labels):
        s = b.add_vertex(spoke_label)
        b.add_edge(center, s, elab)
    return b.build()


def main() -> None:
    graph = dbpedia_like()
    print(f"knowledge graph: {graph.num_vertices} entities, "
          f"{graph.num_edges} triples, "
          f"{len(graph.distinct_edge_labels())} predicates")

    engine = GSIEngine(graph, GSIConfig.gsi_opt())

    # --- Star pattern: an entity with two specific predicates ---
    # (like SPARQL: ?x p0 ?a . ?x p1 ?b)
    vlabels = graph.distinct_vertex_labels()
    elabels = graph.distinct_edge_labels()
    star = star_pattern(vlabels[0], [vlabels[1], vlabels[2]],
                        [elabels[0], elabels[1]])
    r = engine.match(star)
    print(f"star pattern: {r.num_matches} bindings in "
          f"{r.elapsed_ms:.3f} simulated ms "
          f"(min candidate set {r.min_candidate_size})")

    # --- Realistic patterns sampled from the graph itself ---
    for size in (4, 6, 8):
        query = random_walk_query(graph, size, seed=size)
        r = engine.match(query)
        print(f"{size}-vertex walk pattern: {r.num_matches:6d} bindings "
              f"in {r.elapsed_ms:8.3f} simulated ms "
              f"(join order {r.join_order})")

    # --- The same pattern through the edge-oriented GpSM baseline ---
    from repro.baselines import GpSMEngine

    query = random_walk_query(graph, 6, seed=6)
    gsi_r = engine.match(query)
    gpsm_r = GpSMEngine(graph).match(query)
    assert gsi_r.match_set() == gpsm_r.match_set()
    print(f"cross-check vs GpSM: both find {gsi_r.num_matches} bindings; "
          f"GSI {gsi_r.elapsed_ms:.3f} ms vs GpSM "
          f"{gpsm_r.elapsed_ms:.3f} ms (two-step output scheme)")


if __name__ == "__main__":
    main()
