"""Exception hierarchy for the GSI reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Invalid graph construction or query (bad vertex id, bad label...)."""


class StorageError(ReproError):
    """A graph storage structure was built or probed inconsistently."""


class PlanError(ReproError):
    """The join planner could not produce a valid vertex order."""


class ConfigError(ReproError):
    """An engine configuration value is out of its documented range."""


class BudgetExceeded(ReproError):
    """A simulated-time or operation budget was exhausted mid-query.

    Engines raise this internally and convert it into a ``timed_out``
    result; it escapes only if the caller invokes low-level pieces
    directly with a budget attached.
    """
