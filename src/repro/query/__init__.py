"""SPARQL-style pattern layer over GSI (the knowledge-graph use case)."""

from repro.query.executor import PatternExecutor, PatternResult, run_pattern
from repro.query.labels import LabelDictionary
from repro.query.pattern import (
    EdgeClause,
    GraphPattern,
    is_variable,
    parse_pattern,
)
from repro.query.triples import TripleStore

__all__ = [
    "PatternExecutor",
    "PatternResult",
    "run_pattern",
    "LabelDictionary",
    "EdgeClause",
    "GraphPattern",
    "is_variable",
    "parse_pattern",
    "TripleStore",
]
