"""Bidirectional dictionaries between user-facing labels and dense ids.

The engines work on integer labels; real applications (the paper's
knowledge-graph motivation, Section I) have IRIs and strings.  A
:class:`LabelDictionary` interns arbitrary hashable labels into dense
integer ids and back.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional


class LabelDictionary:
    """Dense interning of hashable labels.

    >>> d = LabelDictionary()
    >>> d.intern("Person")
    0
    >>> d.intern("City")
    1
    >>> d.intern("Person")
    0
    >>> d.label_of(1)
    'City'
    """

    def __init__(self) -> None:
        self._by_label: Dict[Hashable, int] = {}
        self._by_id: List[Hashable] = []

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._by_label

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._by_id)

    def intern(self, label: Hashable) -> int:
        """Id of ``label``, assigning the next dense id if new."""
        existing = self._by_label.get(label)
        if existing is not None:
            return existing
        new_id = len(self._by_id)
        self._by_label[label] = new_id
        self._by_id.append(label)
        return new_id

    def id_of(self, label: Hashable) -> int:
        """Id of a known label; raises ``KeyError`` if absent."""
        return self._by_label[label]

    def get(self, label: Hashable) -> Optional[int]:
        """Id of ``label`` or None."""
        return self._by_label.get(label)

    def label_of(self, label_id: int) -> Hashable:
        """Label of a known id; raises ``IndexError`` if out of range."""
        if label_id < 0:
            raise IndexError(f"negative label id {label_id}")
        return self._by_id[label_id]
