"""Execute basic graph patterns against a triple store via GSI.

This is the glue the paper's knowledge-graph motivation implies: compile
a SPARQL-style pattern into a labeled query graph, run the subgraph-
isomorphism engine, and decode embeddings back into variable bindings.

Constants in the pattern (grounded entities) become query vertices typed
by their declared type; since the engine knows only labels, the grounding
is enforced by filtering embeddings afterwards — correct, and cheap
because grounded patterns are highly selective already.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.core.result import MatchResult
from repro.errors import GraphError
from repro.graph.labeled_graph import GraphBuilder
from repro.query.pattern import GraphPattern, parse_pattern
from repro.query.triples import TripleStore
from repro.service.plan_cache import PlanCache

Binding = Dict[str, str]


@dataclass
class PatternResult:
    """Bindings plus the underlying engine measurement."""

    bindings: List[Binding]
    engine_result: MatchResult

    @property
    def num_bindings(self) -> int:
        return len(self.bindings)


class PatternExecutor:
    """Compiles and runs graph patterns over one frozen triple store."""

    def __init__(self, store: TripleStore,
                 config: Optional[GSIConfig] = None,
                 plan_cache_capacity: int = 64) -> None:
        self.store = store
        self.engine = GSIEngine(store.graph,
                                config if config is not None
                                else GSIConfig.gsi_opt())
        # Interactive pattern workloads repeat shapes constantly (same
        # template, different constants); cache their join plans.
        self.plan_cache = PlanCache(capacity=plan_cache_capacity)

    # ------------------------------------------------------------------

    def _compile(self, pattern: GraphPattern):
        """Build the query graph; returns (query, term -> vertex id)."""
        store = self.store
        builder = GraphBuilder()
        vertex_of: Dict[str, int] = {}

        for var, type_name in pattern.var_types.items():
            tid = store.types.get(type_name)
            if tid is None:
                raise GraphError(f"unknown type {type_name!r}")
            vertex_of[var] = builder.add_vertex(tid)
        for const in pattern.constants():
            if const not in store.entities:
                raise GraphError(f"unknown entity {const!r}")
            tid = store.types.id_of(store.type_of(const))
            vertex_of[const] = builder.add_vertex(tid)

        for clause in pattern.edges:
            pid = store.predicates.get(clause.predicate)
            if pid is None:
                raise GraphError(
                    f"unknown predicate {clause.predicate!r}")
            builder.add_edge(vertex_of[clause.subject],
                             vertex_of[clause.obj], pid)
        return builder.build(), vertex_of

    def run(self, pattern_text: str) -> PatternResult:
        """Parse, compile, execute; returns decoded variable bindings."""
        pattern = parse_pattern(pattern_text)
        query, vertex_of = self._compile(pattern)
        prepared = self.engine.prepare(query, plan_cache=self.plan_cache)
        result = self.engine.execute(prepared)

        constants = pattern.constants()
        const_vertex = {
            c: self.store.entities.id_of(c) for c in constants}

        bindings: List[Binding] = []
        for match in result.matches:
            # Grounded terms must land exactly on their entity.
            if any(match[vertex_of[c]] != const_vertex[c]
                   for c in constants):
                continue
            bindings.append({
                var: self.store.entity_name(match[vertex_of[var]])
                for var in pattern.variables
            })
        return PatternResult(bindings=bindings, engine_result=result)


def run_pattern(store: TripleStore, pattern_text: str,
                config: Optional[GSIConfig] = None) -> PatternResult:
    """One-shot convenience wrapper around :class:`PatternExecutor`."""
    return PatternExecutor(store, config).run(pattern_text)
