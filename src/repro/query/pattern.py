"""Basic graph patterns: the SPARQL-shaped query syntax.

Grammar (one clause per line; ``#`` comments; trailing ``.`` optional)::

    ?var a TypeName          # type declaration for a variable
    ?x predicate ?y          # edge between two variables
    ?x predicate entity      # edge between a variable and a constant

Example::

    ?p1 a Person
    ?p2 a Person
    ?c  a City
    ?p1 knows    ?p2
    ?p1 lives_in ?c
    ?p2 lives_in ?c

Every variable must carry exactly one type declaration (the engines
match on vertex labels).  Constants are entity names from the triple
store; their type is looked up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import GraphError


@dataclass(frozen=True)
class EdgeClause:
    """One triple pattern ``subject predicate object``."""

    subject: str
    predicate: str
    obj: str

    def terms(self) -> Tuple[str, str]:
        return (self.subject, self.obj)


@dataclass
class GraphPattern:
    """A parsed basic graph pattern."""

    var_types: Dict[str, str] = field(default_factory=dict)
    edges: List[EdgeClause] = field(default_factory=list)

    @property
    def variables(self) -> List[str]:
        """Variables in declaration order."""
        return list(self.var_types)

    def constants(self) -> List[str]:
        """Constant entity names referenced by edge clauses."""
        out = []
        for clause in self.edges:
            for term in clause.terms():
                if not is_variable(term) and term not in out:
                    out.append(term)
        return out


def is_variable(term: str) -> bool:
    """SPARQL-style variables start with ``?``."""
    return term.startswith("?")


def parse_pattern(text: str) -> GraphPattern:
    """Parse the pattern syntax above into a :class:`GraphPattern`.

    Raises :class:`~repro.errors.GraphError` on malformed clauses,
    duplicate or missing type declarations, or patterns without edges.
    """
    pattern = GraphPattern()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.endswith("."):
            line = line[:-1].rstrip()
        parts = line.split()
        if len(parts) != 3:
            raise GraphError(
                f"pattern line {lineno}: expected 3 terms, got {parts!r}")
        subject, predicate, obj = parts
        if predicate == "a":
            if not is_variable(subject):
                raise GraphError(
                    f"pattern line {lineno}: type declaration needs a "
                    f"variable subject, got {subject!r}")
            if subject in pattern.var_types:
                raise GraphError(
                    f"pattern line {lineno}: duplicate type for {subject}")
            pattern.var_types[subject] = obj
            continue
        if is_variable(predicate):
            raise GraphError(
                f"pattern line {lineno}: variable predicates are not "
                f"supported")
        if subject == obj:
            raise GraphError(
                f"pattern line {lineno}: self-loop clause")
        pattern.edges.append(EdgeClause(subject, predicate, obj))

    if not pattern.edges and len(pattern.var_types) != 1:
        raise GraphError("pattern needs at least one edge clause "
                         "(or exactly one typed variable)")
    for clause in pattern.edges:
        for term in clause.terms():
            if is_variable(term) and term not in pattern.var_types:
                raise GraphError(
                    f"variable {term} has no type declaration "
                    f"('{term} a SomeType')")
    return pattern
