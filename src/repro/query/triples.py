"""A tiny triple store: string triples in, a labeled graph out.

This is the application substrate of the paper's knowledge-graph
motivation (gStore answers SPARQL via subgraph matching, [4] in the
paper).  Entities, types and predicates are strings; internally they
become dense ids over a :class:`~repro.graph.labeled_graph.LabeledGraph`.

Simplifications relative to full RDF, documented for users:

* edges are **undirected** (the paper's Definition 1 graphs are
  undirected) — a triple ``(s, p, o)`` and its inverse coincide;
* one edge per entity pair (conflicting predicates between the same
  pair are rejected);
* every entity must be typed via :meth:`TripleStore.add_type` before
  :meth:`TripleStore.freeze`, because the engines match on vertex labels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.labeled_graph import LabeledGraph
from repro.query.labels import LabelDictionary


class TripleStore:
    """Accumulates typed entities and predicate edges, then freezes."""

    def __init__(self) -> None:
        self.entities = LabelDictionary()
        self.types = LabelDictionary()
        self.predicates = LabelDictionary()
        self._entity_type: Dict[int, int] = {}
        self._edges: List[Tuple[int, int, int]] = []
        self._graph: Optional[LabeledGraph] = None

    # ------------------------------------------------------------------

    def add_type(self, entity: str, entity_type: str) -> int:
        """Declare ``entity`` to be of ``entity_type``; returns its id."""
        self._mutable()
        eid = self.entities.intern(entity)
        tid = self.types.intern(entity_type)
        prev = self._entity_type.get(eid)
        if prev is not None and prev != tid:
            raise GraphError(
                f"entity {entity!r} retyped from "
                f"{self.types.label_of(prev)!r} to {entity_type!r}")
        self._entity_type[eid] = tid
        return eid

    def add_triple(self, subject: str, predicate: str, obj: str) -> None:
        """Add the (undirected) edge ``subject -predicate- obj``."""
        self._mutable()
        s = self.entities.intern(subject)
        o = self.entities.intern(obj)
        if s == o:
            raise GraphError(f"self-referential triple on {subject!r}")
        p = self.predicates.intern(predicate)
        self._edges.append((s, o, p))

    def freeze(self) -> LabeledGraph:
        """Validate typing and build the immutable labeled graph."""
        untyped = [self.entities.label_of(eid)
                   for eid in range(len(self.entities))
                   if eid not in self._entity_type]
        if untyped:
            raise GraphError(
                f"entities missing a type declaration: {untyped[:5]}"
                + ("..." if len(untyped) > 5 else ""))
        labels = [self._entity_type[eid]
                  for eid in range(len(self.entities))]
        self._graph = LabeledGraph(labels, self._edges)
        return self._graph

    # ------------------------------------------------------------------

    @property
    def graph(self) -> LabeledGraph:
        """The frozen graph; raises if :meth:`freeze` was not called."""
        if self._graph is None:
            raise GraphError("TripleStore not frozen yet")
        return self._graph

    def entity_name(self, vertex_id: int) -> str:
        """Entity string of a data-graph vertex id."""
        return str(self.entities.label_of(vertex_id))

    def type_of(self, entity: str) -> str:
        """Declared type of an entity."""
        eid = self.entities.id_of(entity)
        return str(self.types.label_of(self._entity_type[eid]))

    def num_triples(self) -> int:
        """Number of stored predicate edges."""
        return len(self._edges)

    def _mutable(self) -> None:
        if self._graph is not None:
            raise GraphError("TripleStore already frozen")
