"""Dynamic-graph subsystem: streaming updates, in-place index
maintenance, and continuous queries (see README's dynamic section)."""

from repro.dynamic.delta import GraphDelta, random_update_stream
from repro.dynamic.graph import (
    CommitResult,
    DynamicGraph,
    full_commit_transactions,
)
from repro.dynamic.index import (
    DynamicIndex,
    DynamicPCSRStorage,
    DynamicSignatureTable,
    full_rebuild_transactions,
)
from repro.dynamic.stream import (
    QueryDelta,
    StreamBatchReport,
    StreamEngine,
)

__all__ = [
    "CommitResult",
    "DynamicGraph",
    "DynamicIndex",
    "DynamicPCSRStorage",
    "DynamicSignatureTable",
    "GraphDelta",
    "QueryDelta",
    "StreamBatchReport",
    "StreamEngine",
    "full_commit_transactions",
    "full_rebuild_transactions",
    "random_update_stream",
]
