"""Continuous queries over a stream of graph updates.

A :class:`StreamEngine` owns one :class:`~repro.dynamic.graph.
DynamicGraph`, the incrementally maintained engine artifacts
(:class:`~repro.dynamic.index.DynamicIndex`), and a set of *continuous*
subgraph queries.  Each :meth:`apply_batch` call:

1. applies the :class:`~repro.dynamic.delta.GraphDelta` and commits a
   fresh snapshot;
2. maintains the signature table and PCSR partitions in place (metered
   — this is the incremental-vs-rebuild cost the benchmark compares);
3. invalidates cached join plans whose edge-label statistics shifted;
4. emits a *delta* result per continuous query — the matches created
   and destroyed by this batch — computed from the changed vertices
   rather than re-running the query.

Delta-matching is exact, not heuristic: a match created by the batch
must embed at least one net-inserted edge (vertex labels never change),
so seeding partial embeddings on inserted edges and extending them over
the new snapshot enumerates exactly the new matches; a match destroyed
by the batch must use at least one net-deleted edge, so filtering the
live match set finds exactly the dead ones.  The differential test
suite checks the composition of these deltas against the brute-force
oracle on every committed snapshot.

Per-query delta matching is pure host-side work over batch-constant
inputs (the committed snapshot, the shared :class:`_BatchSeed`, the
maintained signature table), so registered queries are embarrassingly
parallel: the engine fans them out through a pluggable
:class:`~repro.service.executors.QueryExecutor` — the same executor
abstraction the batch service uses.  Delta matching is implemented as
module-level functions over a picklable :class:`_DeltaContext` so a
process pool can run queries on real cores; results merge back in
registration order, so every executor produces identical reports.

Under a process executor on the default shm data plane the
batch-constant context (committed snapshot + signature table) lives in
named shared-memory segments (:mod:`repro.storage.shm`): each commit
publishes the new snapshot as a *patch* over the previous publication —
only the chunks containing touched vertices allocate new segments, the
rest are shared by refcount — and what pickles into each worker chunk
is a :class:`~repro.storage.shm.GraphSnapshotHandle` of O(handle)
bytes, independent of ``|G|``.  Workers attach read-only by name and
memoize per epoch.  (On the legacy pickle plane, or for executors
without a ``data_plane``, the full context still rides in the pickle —
the benchmark's ``--executor compare`` mode measures the difference.)
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.core.result import MatchResult
from repro.core.signature import encode_vertex, is_candidate
from repro.dynamic.delta import GraphDelta
from repro.dynamic.graph import CommitResult, DynamicGraph
from repro.dynamic.index import DEFAULT_COMPACT_DEAD_RATIO, DynamicIndex
from repro.errors import GraphError
from repro.gpusim.constants import LABEL_DELTA_SEED
from repro.gpusim.meter import MeterSnapshot
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.metrics import get_registry
from repro.obs.trace import (
    Span,
    TraceContext,
    get_tracer,
    shipped_spans,
)
from repro.service.executors import QueryExecutor, SerialExecutor
from repro.service.plan_cache import PlanCache
from repro.storage.shm import (
    DEFAULT_CHUNK,
    BlockLease,
    GraphSnapshotHandle,
    attach_snapshot,
    publish_snapshot,
    publish_snapshot_patch,
)

Match = Tuple[int, ...]


@dataclass
class QueryDelta:
    """Per-continuous-query outcome of one update batch."""

    query_id: int
    created: Set[Match] = field(default_factory=set)
    destroyed: Set[Match] = field(default_factory=set)
    num_matches: int = 0  # live matches after the batch
    host_ms: float = 0.0

    @property
    def net(self) -> int:
        return len(self.created) - len(self.destroyed)


@dataclass
class StreamBatchReport:
    """Everything one :meth:`StreamEngine.apply_batch` did."""

    batch_index: int
    num_inserted: int = 0
    num_deleted: int = 0
    num_new_vertices: int = 0
    query_deltas: Dict[int, QueryDelta] = field(default_factory=dict)
    maintenance: MeterSnapshot = field(default_factory=MeterSnapshot)
    rebuilds: int = 0
    compactions: int = 0
    #: simulated transactions the CSR-splice snapshot commit cost
    commit_transactions: int = 0
    plans_invalidated: int = 0
    labels_shifted: Tuple[int, ...] = ()
    #: PCSR health after this batch (``DynamicPCSRStorage.stats()``)
    pcsr: Dict[str, object] = field(default_factory=dict)
    #: True when the configured executor failed and delta matching was
    #: re-run in-process (results stay exact; wall-clock degrades)
    executor_fallback: bool = False
    wall_ms: float = 0.0

    @property
    def total_created(self) -> int:
        return sum(len(d.created) for d in self.query_deltas.values())

    @property
    def total_destroyed(self) -> int:
        return sum(len(d.destroyed) for d in self.query_deltas.values())

    def summary_line(self) -> str:
        return (f"batch {self.batch_index}: "
                f"+{self.num_inserted}/-{self.num_deleted} edges "
                f"(+{self.num_new_vertices} vertices) | "
                f"matches +{self.total_created}/-{self.total_destroyed} "
                f"over {len(self.query_deltas)} queries | "
                f"commit tx={self.commit_transactions} "
                f"maintain gld={self.maintenance.gld} "
                f"gst={self.maintenance.gst} "
                f"rebuilds={self.rebuilds} "
                f"compactions={self.compactions} | "
                f"plans invalidated={self.plans_invalidated} | "
                + ("EXECUTOR FELL BACK TO SERIAL | "
                   if self.executor_fallback else "")
                + f"{self.wall_ms:.1f} ms")


@dataclass
class _Registered:
    query_id: int
    query: LabeledGraph
    matches: Set[Match]
    initial: MatchResult


@dataclass
class _BatchSeed:
    """Per-batch candidate-seeding context, computed once per batch and
    shared by every registered query (instead of each query re-deriving
    it): the inserted edges grouped by edge label, the dead-pair set,
    and the signature rows of the touched (inserted-edge endpoint)
    vertices — the rows every query's seed check reads."""

    inserted_by_label: Dict[int, List[Tuple[int, int]]]
    dead_pairs: Set[Tuple[int, int]]
    seed_rows: Dict[int, np.ndarray]


@dataclass
class _DeltaContext:
    """Batch-constant inputs of per-query delta matching.

    One instance per update batch, shared (pickled once per worker
    chunk under a process executor) by every registered query's
    created/destroyed computation.  Everything here is read-only for
    the duration of the batch.

    When ``handle`` is set (shm data plane), pickling drops the
    data-graph-sized members — the committed snapshot and the signature
    table — and a worker re-derives them by attaching the published
    shared-memory segments, so the pickled context is O(handle) bytes.
    The in-process object always keeps the direct references: serial
    and thread executors (and the serial fallback after a pool failure)
    never attach.
    """

    snapshot: LabeledGraph
    new_vertices: Tuple[int, ...]
    seed: _BatchSeed
    table: np.ndarray
    signature_bits: int
    label_bits: int
    handle: Optional[GraphSnapshotHandle] = None
    #: coordinator trace context; rides the pickle into process workers
    #: so per-query delta spans re-parent under ``stream.apply_batch``
    trace: Optional[TraceContext] = None

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        if state.get("handle") is not None:
            state["snapshot"] = None
            state["table"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        if self.handle is not None:
            self.snapshot, self.table = attach_snapshot(self.handle)


#: payload per registered query: (query id, query graph, live matches)
_DeltaTask = Tuple[int, LabeledGraph, Set[Match]]


#: one query's delta outcome: (query id, created, destroyed, host ms,
#: spans recorded while computing it — empty unless the computation ran
#: in a process worker with the coordinator tracing)
_DeltaOutcome = Tuple[int, Set[Match], Set[Match], float,
                      List[Dict[str, object]]]


def _query_delta(ctx: _DeltaContext, task: _DeltaTask) -> _DeltaOutcome:
    """One registered query's (created, destroyed) delta for one batch.

    Module-level and side-effect free so every executor — including a
    process pool — runs the identical code path; the caller applies the
    returned sets to the live match set.  In a process worker the span
    recorded here ships back in the outcome tuple (via
    :func:`~repro.obs.trace.shipped_spans`) and the coordinator absorbs
    it; in-process executors record it directly.
    """
    query_id, query, live = task
    t0 = time.perf_counter()
    with shipped_spans(ctx.trace) as spans:
        with get_tracer().span("stream.query_delta", parent=ctx.trace,
                               query_id=query_id) as span:
            created = _delta_created(ctx, query)
            destroyed = _delta_destroyed(ctx, query, live)
            span.set_attribute("created", len(created))
            span.set_attribute("destroyed", len(destroyed))
    return (query_id, created, destroyed,
            (time.perf_counter() - t0) * 1000.0, spans)


def _delta_destroyed(ctx: _DeltaContext, query: LabeledGraph,
                     live: Set[Match]) -> Set[Match]:
    """Live matches that embed a net-deleted edge (exactly the ones
    this batch killed: vertex labels are immutable, so nothing else
    can invalidate an existing match)."""
    dead_pairs = ctx.seed.dead_pairs
    if not dead_pairs or not live:
        return set()
    qedges = list(query.edges())
    destroyed = set()
    for m in live:
        for a, b, _ in qedges:
            ga, gb = m[a], m[b]
            key = (ga, gb) if ga < gb else (gb, ga)
            if key in dead_pairs:
                destroyed.add(m)
                break
    return destroyed


def _delta_created(ctx: _DeltaContext, query: LabeledGraph) -> Set[Match]:
    """Matches that exist on the new snapshot but not the old one.

    Every such match embeds a net-inserted edge (or, for
    single-vertex queries, a new vertex), so partial embeddings
    seeded on the inserted edges and extended over the new snapshot
    enumerate them exactly.  Candidate pruning goes through the
    incrementally maintained signature table; the seed endpoints'
    rows come pre-loaded from the shared :class:`_BatchSeed`.
    """
    graph = ctx.snapshot
    seed = ctx.seed
    nq = query.num_vertices
    if query.num_edges == 0:
        # Connected queries with no edges are single vertices.
        lab = query.vertex_label(0)
        return {(v,) for v in ctx.new_vertices
                if graph.vertex_label(v) == lab}
    if not seed.inserted_by_label:
        return set()

    bits = ctx.signature_bits
    lbits = ctx.label_bits
    table = ctx.table
    seed_rows = seed.seed_rows
    qsigs = [encode_vertex(query, u, bits, lbits) for u in range(nq)]

    def candidate(u: int, v: int) -> bool:
        if query.vertex_label(u) != graph.vertex_label(v):
            return False
        row = seed_rows.get(v)
        if row is None:
            row = table[v]
        return is_candidate(row, qsigs[u])

    qedges = list(query.edges())
    created: Set[Match] = set()
    for qa, qb, qlab in qedges:
        for gu, gv in seed.inserted_by_label.get(qlab, ()):
            for x, y in ((gu, gv), (gv, gu)):
                if candidate(qa, x) and candidate(qb, y):
                    _extend({qa: x, qb: y}, query, graph,
                            candidate, created)
    return created


def _extend(seed: Dict[int, int], query: LabeledGraph,
            graph: LabeledGraph, candidate, out: Set[Match]) -> None:
    """Backtracking completion of a seeded partial embedding.

    Order is BFS from the seeded vertices, so every next query
    vertex has an already-matched neighbor and candidates come from
    one ``N(v, l)`` list — the "touching changed vertices" frontier
    — never a full vertex scan.
    """
    nq = query.num_vertices
    order: List[int] = []
    seen = set(seed)
    frontier = list(seed)
    while frontier:
        nxt = []
        for u in frontier:
            for w in query.neighbors(u):
                w = int(w)
                if w not in seen:
                    seen.add(w)
                    order.append(w)
                    nxt.append(w)
        frontier = nxt
    # Connected query: BFS from any seed reaches everything.
    assign = dict(seed)
    used = set(seed.values())
    if len(used) < len(seed):
        return  # seed itself is non-injective

    def consistent(u: int, v: int) -> bool:
        for w, lab in zip(query.neighbors(u),
                          query.incident_labels(u)):
            w = int(w)
            if w in assign:
                gw = assign[w]
                if not graph.has_edge(gw, v) or \
                        graph.edge_label(gw, v) != int(lab):
                    return False
        return True

    # Check the seed pair's own consistency (other query edges
    # between the two seeded vertices, if any).
    items = list(seed.items())
    for u, v in items:
        if not consistent(u, v):
            return

    def rec(i: int) -> None:
        if i == len(order):
            out.add(tuple(assign[u] for u in range(nq)))
            return
        u = order[i]
        anchor = next(
            (int(w) for w in query.neighbors(u) if int(w) in assign),
            None)
        if anchor is None:
            return
        anchor_lab = None
        for w, lab in zip(query.neighbors(u),
                          query.incident_labels(u)):
            if int(w) == anchor:
                anchor_lab = int(lab)
                break
        for v in graph.neighbors_by_label(assign[anchor], anchor_lab):
            v = int(v)
            if v in used or not candidate(u, v):
                continue
            if not consistent(u, v):
                continue
            assign[u] = v
            used.add(v)
            rec(i + 1)
            del assign[u]
            used.discard(v)

    rec(0)


class StreamEngine:
    """Serve continuous subgraph queries over a dynamic graph."""

    name = "GSI-stream"

    def __init__(self, graph: LabeledGraph,
                 config: Optional[GSIConfig] = None,
                 cache_capacity: int = 256,
                 rebuild_occupancy: float = 1.5,
                 compact_dead_ratio: float = DEFAULT_COMPACT_DEAD_RATIO,
                 executor: Optional[QueryExecutor] = None,
                 bulk_updates: bool = True,
                 compact_max_groups: Optional[int] = None
                 ) -> None:
        self.config = config if config is not None else GSIConfig()
        if not self.config.use_pcsr:
            raise GraphError(
                "StreamEngine maintains PCSR in place; it requires a "
                "config with use_pcsr=True")
        self.index = DynamicIndex(
            graph,
            signature_bits=self.config.signature_bits,
            label_bits=self.config.label_bits,
            column_first=self.config.column_first_signatures,
            gpn=self.config.gpn,
            rebuild_occupancy=rebuild_occupancy,
            compact_dead_ratio=compact_dead_ratio,
            bulk_updates=bulk_updates,
            compact_max_groups=compact_max_groups)
        # Commits meter into the same stream so one snapshot covers the
        # whole update path; the labels keep the costs attributable.
        self.dynamic = DynamicGraph(graph, meter=self.index.meter)
        self.plan_cache = PlanCache(capacity=cache_capacity)
        # The engine joins straight out of the maintained artifacts.
        self.engine = GSIEngine(
            graph, self.config,
            signature_table=self.index.signature_table,
            store=self.index.storage)
        self._registered: Dict[int, _Registered] = {}
        # Monotonic, never reused: a stale id held after unregister can
        # only ever raise, never silently read another query's matches.
        self._next_query_id = 0
        self.batches_applied = 0
        # Per-query delta matching fans out through the same executor
        # abstraction as the batch service (serial by default).
        self.executor = executor if executor is not None \
            else SerialExecutor()
        # shm data plane: the current snapshot publication (handle +
        # lease).  Published lazily on the first batch that fans out to
        # a shm-plane process executor, patched per commit thereafter.
        self._plane: Optional[
            Tuple[GraphSnapshotHandle, BlockLease]] = None
        #: rows per published chunk — the patch-sharing granularity
        #: (tests shrink it to exercise chunk reuse on small graphs)
        self.plane_chunk = DEFAULT_CHUNK

    # ------------------------------------------------------------------
    # Query management
    # ------------------------------------------------------------------

    @property
    def graph(self) -> LabeledGraph:
        """The current committed snapshot."""
        return self.dynamic.base

    def match(self, query: LabeledGraph) -> MatchResult:
        """Ad-hoc query against the current snapshot (plan-cached)."""
        prepared = self.engine.prepare(query, plan_cache=self.plan_cache)
        return self.engine.execute(prepared)

    def register(self, query: LabeledGraph) -> int:
        """Register a continuous query; runs it once in full to seed the
        live match set.  Returns the query id used in batch reports."""
        result = self.match(query)
        qid = self._next_query_id
        self._next_query_id += 1
        self._registered[qid] = _Registered(
            query_id=qid, query=query,
            matches=set(result.matches), initial=result)
        return qid

    def _registered_or_raise(self, query_id: int) -> _Registered:
        reg = self._registered.get(query_id)
        if reg is None:
            raise KeyError(
                f"query id {query_id} is not registered (ids are "
                f"monotonic and never reused after unregister)")
        return reg

    def unregister(self, query_id: int) -> None:
        """Stop tracking a continuous query.

        The id is retired permanently — ids are monotonic and never
        reused, so a stale id held across batches raises ``KeyError``
        from :meth:`matches` / :meth:`initial_result` instead of
        silently serving some later query's match set.
        """
        self._registered_or_raise(query_id)
        del self._registered[query_id]

    def matches(self, query_id: int) -> Set[Match]:
        """Current live match set of a registered query.

        Raises ``KeyError`` for unregistered (or never-issued) ids.
        """
        return set(self._registered_or_raise(query_id).matches)

    def initial_result(self, query_id: int) -> MatchResult:
        return self._registered_or_raise(query_id).initial

    @property
    def num_registered(self) -> int:
        return len(self._registered)

    # ------------------------------------------------------------------
    # The update path
    # ------------------------------------------------------------------

    def apply_batch(self, delta: GraphDelta) -> StreamBatchReport:
        """Apply one update batch end to end (see module docstring)."""
        with get_tracer().span("stream.apply_batch",
                               batch_index=self.batches_applied) as span:
            report = self._apply_batch_inner(delta, span)
            span.set_attribute("created", report.total_created)
            span.set_attribute("destroyed", report.total_destroyed)
        self._record_stream_metrics(report)
        return report

    @staticmethod
    def _record_stream_metrics(report: StreamBatchReport) -> None:
        """Roll one batch's maintenance events into the registry."""
        registry = get_registry()
        maintenance = registry.counter(
            "gsi_pcsr_maintenance_total",
            "PCSR maintenance events applied by the stream index.")
        if report.compactions:
            maintenance.inc(float(report.compactions), kind="compact")
        if report.rebuilds:
            maintenance.inc(float(report.rebuilds), kind="rebuild")
        edges = registry.counter(
            "gsi_stream_edges_total",
            "Edges applied by stream update batches.")
        if report.num_inserted:
            edges.inc(float(report.num_inserted), kind="insert")
        if report.num_deleted:
            edges.inc(float(report.num_deleted), kind="delete")

    def _apply_batch_inner(self, delta: GraphDelta,
                           span: Span) -> StreamBatchReport:
        t0 = time.perf_counter()
        old_snapshot = self.dynamic.base
        self.dynamic.apply(delta)
        commit = self.dynamic.commit()

        meter_before = self.index.meter.snapshot()
        rebuilds_before = self.index.rebuilds
        compactions_before = self.index.compactions
        self.index.apply_commit(commit)
        maintenance = self.index.meter.snapshot().diff(meter_before)

        # Plans are keyed by query shape, but scored against edge-label
        # frequencies; drop the ones whose statistics moved.
        shifted = tuple(sorted(
            lab for lab in set(old_snapshot.distinct_edge_labels())
            | set(commit.snapshot.distinct_edge_labels())
            if old_snapshot.edge_label_frequency(lab)
            != commit.snapshot.edge_label_frequency(lab)))
        invalidated = self.plan_cache.invalidate_labels(shifted)
        # Candidate-shape memos read maintained signature-table rows;
        # any row change can flip any candidate set, so drop them all
        # whenever the batch touched the graph.
        if (commit.inserted_edges or commit.deleted_edges
                or commit.new_vertices):
            self.plan_cache.shapes.clear()

        # The engine now serves the new snapshot from the same
        # (incrementally updated) artifacts.
        self.engine.graph = commit.snapshot

        report = StreamBatchReport(
            batch_index=self.batches_applied,
            num_inserted=len(commit.inserted_edges),
            num_deleted=len(commit.deleted_edges),
            num_new_vertices=len(commit.new_vertices),
            maintenance=maintenance,
            rebuilds=self.index.rebuilds - rebuilds_before,
            compactions=self.index.compactions - compactions_before,
            commit_transactions=commit.commit_transactions,
            plans_invalidated=invalidated,
            labels_shifted=shifted,
            pcsr=self.index.storage.stats())
        seed = self._build_batch_seed(commit)
        ctx = _DeltaContext(
            snapshot=commit.snapshot,
            new_vertices=tuple(commit.new_vertices),
            seed=seed,
            table=self.index.signature_table.table,
            signature_bits=self.config.signature_bits,
            label_bits=self.config.label_bits,
            handle=self._publish_snapshot(commit),
            trace=span.context() if span.trace_id else None)
        # Snapshot the registration list: per-query work is handed to
        # the executor as pure tasks, and merged back by query id in
        # registration order regardless of completion order.
        regs = list(self._registered.items())
        tasks: List[_DeltaTask] = [
            (qid, reg.query, reg.matches) for qid, reg in regs]
        try:
            outcomes = self.executor.map_tasks(_query_delta, tasks,
                                               shared=ctx)
        except Exception as exc:  # noqa: BLE001 - the graph/index are
            # already committed above; live match sets must not be left
            # behind because a pool died (e.g. BrokenProcessPool after
            # worker OOM).  Delta matching is side-effect free, so
            # re-running it in-process keeps the batch exact; a genuine
            # bug in _query_delta re-raises identically from the serial
            # run.  The degradation is surfaced, not swallowed: via the
            # warning and ``StreamBatchReport.executor_fallback``.
            warnings.warn(
                f"executor {self.executor.name!r} failed "
                f"({type(exc).__name__}: {exc}); delta matching for "
                f"batch {self.batches_applied} re-ran serially",
                RuntimeWarning, stacklevel=2)
            report.executor_fallback = True
            outcomes = SerialExecutor().map_tasks(_query_delta, tasks,
                                                  shared=ctx)
        # Validate the whole merge before mutating any live set, so a
        # misbehaving executor can never leave queries half-updated.
        if [out[0] for out in outcomes] != [qid for qid, _ in regs]:
            raise RuntimeError(
                f"executor {self.executor.name!r} returned results "
                f"out of order or incomplete "
                f"({len(outcomes)} results for {len(regs)} queries); "
                f"no deltas were applied")
        tracer = get_tracer()
        for (qid, reg), (_, created, destroyed, host_ms,
                         spans) in zip(regs, outcomes):
            if spans:
                tracer.absorb(spans)
            reg.matches -= destroyed
            reg.matches |= created
            report.query_deltas[qid] = QueryDelta(
                query_id=qid, created=created, destroyed=destroyed,
                num_matches=len(reg.matches),
                host_ms=host_ms)
        report.wall_ms = (time.perf_counter() - t0) * 1000.0
        self.batches_applied += 1
        return report

    # ------------------------------------------------------------------
    # The shm data plane
    # ------------------------------------------------------------------

    def _uses_shm_plane(self) -> bool:
        """Whether the configured executor ships contexts by handle."""
        return (getattr(self.executor, "name", None) == "process"
                and getattr(self.executor, "data_plane", None) == "shm")

    def _publish_snapshot(self, commit: CommitResult
                          ) -> Optional[GraphSnapshotHandle]:
        """Publish this commit's snapshot + signature rows into shared
        memory, patching the previous publication.

        Only chunks containing a touched vertex allocate new segments;
        the rest are re-leased from the previous epoch, so steady-state
        commits cost O(changes) fresh shared memory.  The previous
        lease is released only *after* the new publication holds its
        references, which is what keeps the shared chunks alive.
        Returns ``None`` (and publishes nothing) unless the executor
        fans out over the shm plane.
        """
        if not self._uses_shm_plane():
            return None
        epoch = self.batches_applied + 1
        table = self.index.signature_table.table
        prev = self._plane
        if prev is not None and prev[0].graph.chunk == self.plane_chunk:
            handle, lease = publish_snapshot_patch(
                prev[0], commit.snapshot, table,
                commit.touched_vertices, epoch=epoch,
                chunk=self.plane_chunk)
        else:
            handle, lease = publish_snapshot(
                commit.snapshot, table, epoch=epoch,
                chunk=self.plane_chunk)
        self._plane = (handle, lease)
        if prev is not None:
            prev[1].release()
        return handle

    def close(self) -> None:
        """Release the snapshot publication (idempotent).  The engine
        stays usable; the next batch republishes in full."""
        plane, self._plane = self._plane, None
        if plane is not None:
            plane[1].release()

    def __enter__(self) -> "StreamEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Delta matching
    # ------------------------------------------------------------------

    def _build_batch_seed(self, commit: CommitResult) -> _BatchSeed:
        """Derive the shared candidate-seeding context for one batch.

        Runs once per batch, not once per registered query: the
        label-grouped inserted edges, the dead-pair set and the touched
        (seed endpoint) vertices' signature rows are all
        query-independent — reading those rows is metered here (label
        ``delta_seed``) exactly once, so seeding transactions scale
        with the change set, not with the number of registered queries.
        """
        by_label: Dict[int, List[Tuple[int, int]]] = {}
        endpoints: Set[int] = set()
        for u, v, lab in commit.inserted_edges:
            by_label.setdefault(lab, []).append((u, v))
            endpoints.add(u)
            endpoints.add(v)
        dead_pairs = {(u, v) for u, v, _ in commit.deleted_edges}
        table = self.index.signature_table.table
        seed_rows = {v: table[v] for v in endpoints}
        if endpoints:
            per_row = self.index.signatures.row_transactions()
            self.index.meter.add_gld(per_row * len(endpoints),
                                     label=LABEL_DELTA_SEED)
        return _BatchSeed(inserted_by_label=by_label,
                          dead_pairs=dead_pairs, seed_rows=seed_rows)

