"""A mutable overlay over an immutable :class:`LabeledGraph` snapshot.

:class:`DynamicGraph` accepts :class:`~repro.dynamic.delta.GraphDelta`
batches and answers the adjacency primitive ``N(v, l)`` *through* the
overlay, so readers always see base-snapshot-plus-pending-updates.
``commit()`` freezes the overlay into a fresh immutable snapshot (the
one every engine and the brute-force oracle understand) and reports the
net change set since the previous commit — exactly what incremental
index maintenance and delta matching consume.

Vertex ids are dense and stable: removing a vertex deletes its incident
edges but keeps its id (it becomes isolated), so match tuples stay
comparable across commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.dynamic.delta import GraphDelta
from repro.errors import GraphError
from repro.gpusim.constants import LABEL_COMMIT_PATCH
from repro.gpusim.meter import MemoryMeter
from repro.gpusim.transactions import contiguous_read
from repro.graph.labeled_graph import CSRPatchStats, Edge, LabeledGraph

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class CommitResult:
    """Net effect of one :meth:`DynamicGraph.commit`.

    ``inserted_edges`` / ``deleted_edges`` are *net* against the
    previous snapshot: an edge deleted and re-added with the same label
    inside the window appears in neither; a relabel appears in both
    (delete old label, insert new).
    """

    snapshot: LabeledGraph
    inserted_edges: List[Edge] = field(default_factory=list)
    deleted_edges: List[Edge] = field(default_factory=list)
    new_vertices: List[int] = field(default_factory=list)
    #: CSR-splice accounting for this commit (zero rows == no-op commit)
    patch_stats: CSRPatchStats = field(default_factory=CSRPatchStats)
    #: simulated transactions the commit itself cost (O(changes))
    commit_transactions: int = 0

    @property
    def touched_vertices(self) -> Set[int]:
        """Vertices whose adjacency (hence signature) changed."""
        touched: Set[int] = set(self.new_vertices)
        for u, v, _ in self.inserted_edges:
            touched.add(u)
            touched.add(v)
        for u, v, _ in self.deleted_edges:
            touched.add(u)
            touched.add(v)
        return touched


class DynamicGraph:
    """Mutable graph = base snapshot + overlay of pending updates."""

    def __init__(self, base: LabeledGraph,
                 meter: Optional[MemoryMeter] = None) -> None:
        self._base = base
        #: records commit-path transactions (labeled ``commit_patch``)
        self.meter = meter
        self._extra_labels: List[int] = []
        # Net overlay vs. the base snapshot, keyed by (min, max) pair.
        self._added: Dict[Tuple[int, int], int] = {}
        self._removed: Set[Tuple[int, int]] = set()
        # Per-vertex overlay adjacency for fast reads.
        self._adj_add: Dict[int, Dict[int, int]] = {}
        self._adj_rem: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # Read API (the LabeledGraph subset engines and tests need)
    # ------------------------------------------------------------------

    @property
    def base(self) -> LabeledGraph:
        """The snapshot the overlay is relative to."""
        return self._base

    @property
    def num_vertices(self) -> int:
        return self._base.num_vertices + len(self._extra_labels)

    @property
    def num_edges(self) -> int:
        return (self._base.num_edges - len(self._removed)
                + len(self._added))

    def vertex_label(self, v: int) -> int:
        nb = self._base.num_vertices
        if v < nb:
            return self._base.vertex_label(v)
        return self._extra_labels[v - nb]

    def has_edge(self, u: int, v: int) -> bool:
        key = (u, v) if u < v else (v, u)
        if key in self._added:
            return True
        if key in self._removed:
            return False
        return (u < self._base.num_vertices and v < self._base.num_vertices
                and self._base.has_edge(u, v))

    def edge_label(self, u: int, v: int) -> int:
        key = (u, v) if u < v else (v, u)
        if key in self._added:
            return self._added[key]
        if key in self._removed:
            raise GraphError(f"no edge between {u} and {v}")
        return self._base.edge_label(u, v)

    def neighbors_by_label(self, v: int, label: int) -> np.ndarray:
        """``N(v, l)`` through the overlay, sorted."""
        base = (self._base.neighbors_by_label(v, label)
                if v < self._base.num_vertices else _EMPTY)
        removed = self._adj_rem.get(v)
        added = self._adj_add.get(v)
        if not removed and not added:
            return base
        keep = ([int(w) for w in base if int(w) not in removed]
                if removed else [int(w) for w in base])
        if added:
            keep.extend(w for w, lab in added.items() if lab == label)
        return np.array(sorted(keep), dtype=np.int64)

    def edges(self) -> Iterator[Edge]:
        """All live edges ``(u, v, label)`` with ``u < v``."""
        for u, v, lab in self._base.edges():
            if (u, v) not in self._removed:
                yield (u, v, lab)
        for (u, v), lab in self._added.items():
            yield (u, v, lab)

    @property
    def pending_ops(self) -> int:
        """Net overlay size (edges added + removed + vertices added)."""
        return len(self._added) + len(self._removed) + \
            len(self._extra_labels)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _record_add(self, u: int, v: int, label: int) -> None:
        self._adj_add.setdefault(u, {})[v] = label
        self._adj_add.setdefault(v, {})[u] = label

    def _unrecord_add(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            nbrs = self._adj_add.get(a)
            if nbrs is not None:
                nbrs.pop(b, None)
                if not nbrs:
                    del self._adj_add[a]

    def apply(self, delta: GraphDelta) -> None:
        """Apply one update batch to the overlay, in operation order.

        Raises :class:`~repro.errors.GraphError` on invalid operations
        (missing endpoints, self loops, duplicate edges, deleting a
        nonexistent edge); the overlay is left in the state reached just
        before the offending operation.
        """
        for op in delta.ops:
            kind = op[0]
            if kind == "add_vertex":
                self._extra_labels.append(int(op[1]))
            elif kind == "add_edge":
                _, u, v, lab = op
                n = self.num_vertices
                if not (0 <= u < n and 0 <= v < n):
                    raise GraphError(
                        f"edge ({u}, {v}) references a missing vertex")
                if u == v:
                    raise GraphError(
                        f"self loop at vertex {u} is not allowed")
                if self.has_edge(u, v):
                    raise GraphError(
                        f"edge ({u}, {v}) already exists; remove it "
                        f"first to relabel")
                key = (u, v) if u < v else (v, u)
                if key in self._removed and \
                        self._base.edge_label(*key) == lab:
                    # Net no-op: deletion and re-insertion cancel.
                    self._removed.discard(key)
                    rem_u = self._adj_rem.get(key[0])
                    rem_v = self._adj_rem.get(key[1])
                    if rem_u:
                        rem_u.discard(key[1])
                    if rem_v:
                        rem_v.discard(key[0])
                else:
                    self._added[key] = lab
                    self._record_add(key[0], key[1], lab)
            elif kind == "remove_edge":
                _, u, v = op
                if not self.has_edge(u, v):
                    raise GraphError(f"no edge between {u} and {v}")
                key = (u, v) if u < v else (v, u)
                if key in self._added:
                    del self._added[key]
                    self._unrecord_add(*key)
                else:
                    self._removed.add(key)
                    self._adj_rem.setdefault(key[0], set()).add(key[1])
                    self._adj_rem.setdefault(key[1], set()).add(key[0])
            elif kind == "remove_vertex":
                v = op[1]
                if not 0 <= v < self.num_vertices:
                    raise GraphError(f"no vertex {v}")
                incident = [
                    (v, int(w)) for lab in self._incident_labels(v)
                    for w in self.neighbors_by_label(v, lab)
                ]
                inner = GraphDelta(
                    ops=[("remove_edge", a, b) for a, b in incident])
                self.apply(inner)
            else:
                raise GraphError(f"unknown delta operation {kind!r}")

    def _incident_labels(self, v: int) -> List[int]:
        labels: Set[int] = set()
        if v < self._base.num_vertices:
            labels.update(int(x) for x in self._base.incident_labels(v))
        added = self._adj_add.get(v)
        if added:
            labels.update(added.values())
        return sorted(labels)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def commit(self) -> CommitResult:
        """Freeze the overlay into a fresh snapshot and reset it.

        Returns the new snapshot plus the net change set since the last
        commit; the overlay then tracks the new snapshot.  The snapshot
        is produced by :meth:`LabeledGraph.apply_changes` — a CSR splice
        of the touched rows only — so a commit costs O(changes), not
        O(|E|); an empty overlay returns the base snapshot unchanged.
        Commit transactions are recorded into ``self.meter`` (when set)
        under the label ``commit_patch`` and reported on the result.
        """
        base = self._base
        deleted = [(u, v, base.edge_label(u, v))
                   for (u, v) in sorted(self._removed)]
        inserted = [(u, v, lab)
                    for (u, v), lab in sorted(self._added.items())]
        new_vertices = list(range(base.num_vertices, self.num_vertices))

        if not (inserted or deleted or self._extra_labels):
            return CommitResult(snapshot=base)
        snapshot, stats = base.apply_changes(inserted, deleted,
                                             self._extra_labels)
        # Price the splice: stream the touched rows' old words in and
        # their new words (plus one offset-row update each) back out.
        gld = contiguous_read(stats.words_read)
        gst = (contiguous_read(stats.words_written)
               + contiguous_read(stats.rows_spliced))
        if self.meter is not None:
            self.meter.add_gld(gld, label=LABEL_COMMIT_PATCH)
            self.meter.add_gst(gst)

        self._base = snapshot
        self._extra_labels = []
        self._added = {}
        self._removed = set()
        self._adj_add = {}
        self._adj_rem = {}
        return CommitResult(snapshot=snapshot, inserted_edges=inserted,
                            deleted_edges=deleted,
                            new_vertices=new_vertices,
                            patch_stats=stats,
                            commit_transactions=gld + gst)


def full_commit_transactions(graph: LabeledGraph) -> int:
    """Transactions for committing by rebuilding the whole CSR snapshot
    (the pre-patch behavior the benchmark compares against): stream the
    edge list in and write both mirrored incidence arrays plus the
    offset array back out."""
    e, n = graph.num_edges, graph.num_vertices
    return (contiguous_read(3 * e)            # read (u, v, label) triples
            + contiguous_read(2 * 2 * e)      # write nbr + elab mirrors
            + contiguous_read(n + 1))         # write the offset array
