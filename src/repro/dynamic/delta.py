"""Update batches for dynamic graphs: the unit of streaming change.

A :class:`GraphDelta` is an ordered batch of vertex insertions, edge
insertions and edge/vertex deletions.  Deltas are plain value objects —
they validate nothing by themselves; :class:`repro.dynamic.graph.
DynamicGraph` checks every operation against the live overlay when the
delta is applied.

:func:`random_update_stream` generates seeded streams of deltas against
an evolving graph, which is what the CLI ``stream`` command, the
streaming example and ``bench_stream_updates.py`` all replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.graph.labeled_graph import LabeledGraph

# Operation payloads: ("add_vertex", label), ("add_edge", u, v, label),
# ("remove_edge", u, v), ("remove_vertex", v).
Op = Tuple


@dataclass
class GraphDelta:
    """One ordered batch of graph updates.

    Operations apply in insertion order, so a delta may delete an edge
    and re-add it with a different label (a relabel).  ``add_vertex``
    returns the id the vertex *will* receive — ids are assigned densely
    after the current maximum, so callers can wire new vertices into new
    edges inside the same delta.
    """

    ops: List[Op] = field(default_factory=list)
    #: next vertex id this delta will assign (set by the builder calls)
    _next_vertex: int = 0

    @classmethod
    def for_graph(cls, graph_or_num_vertices) -> "GraphDelta":
        """A delta builder aware of the current vertex-id ceiling."""
        n = (graph_or_num_vertices if isinstance(graph_or_num_vertices, int)
             else graph_or_num_vertices.num_vertices)
        return cls(ops=[], _next_vertex=n)

    def add_vertex(self, label: int) -> int:
        """Queue a vertex insertion; returns the id it will get."""
        self.ops.append(("add_vertex", int(label)))
        vid = self._next_vertex
        self._next_vertex += 1
        return vid

    def add_edge(self, u: int, v: int, label: int) -> "GraphDelta":
        """Queue an undirected labeled edge insertion."""
        self.ops.append(("add_edge", int(u), int(v), int(label)))
        return self

    def remove_edge(self, u: int, v: int) -> "GraphDelta":
        """Queue an edge deletion."""
        self.ops.append(("remove_edge", int(u), int(v)))
        return self

    def remove_vertex(self, v: int) -> "GraphDelta":
        """Queue a vertex isolation: all incident edges are deleted.

        Vertex ids stay dense and stable, so the vertex itself remains
        (with its label) as an isolated vertex — the same convention
        dynamic-graph systems with preallocated node capacity use.
        """
        self.ops.append(("remove_vertex", int(v)))
        return self

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def __len__(self) -> int:
        return len(self.ops)


def random_update_stream(graph: LabeledGraph, num_batches: int,
                         batch_size: int, seed: int = 0,
                         delete_fraction: float = 0.3,
                         new_vertex_fraction: float = 0.05
                         ) -> List[GraphDelta]:
    """Seeded stream of update batches against an evolving graph.

    Each batch mixes edge insertions (between existing vertices, or from
    a freshly inserted vertex), and deletions of currently live edges.
    The stream is generated against a shadow copy of the graph state, so
    deletions always name live edges and insertions never duplicate one.
    """
    rng = np.random.default_rng(seed)
    live = {(u, v): lab for u, v, lab in graph.edges()}
    # Parallel list over `live` for O(1) uniform edge sampling: deletes
    # swap-pop instead of re-sorting the whole edge set.
    live_list = list(live)
    live_pos = {key: i for i, key in enumerate(live_list)}
    vlabels = [int(x) for x in graph.vertex_labels]
    vertex_label_pool = sorted(set(vlabels)) or [0]
    edge_label_pool = graph.distinct_edge_labels() or [0]

    def track(key):
        live_pos[key] = len(live_list)
        live_list.append(key)

    def untrack(key):
        i = live_pos.pop(key)
        last = live_list.pop()
        if last != key:
            live_list[i] = last
            live_pos[last] = i

    batches: List[GraphDelta] = []
    for _ in range(num_batches):
        delta = GraphDelta.for_graph(len(vlabels))
        for _ in range(batch_size):
            roll = float(rng.random())
            if roll < delete_fraction and live:
                u, v = live_list[int(rng.integers(len(live_list)))]
                delta.remove_edge(u, v)
                del live[(u, v)]
                untrack((u, v))
                continue
            if roll > 1.0 - new_vertex_fraction or len(vlabels) < 2:
                lab = vertex_label_pool[
                    int(rng.integers(len(vertex_label_pool)))]
                vid = delta.add_vertex(lab)
                vlabels.append(lab)
                if vid > 0:  # anchor the newcomer when possible
                    anchor = int(rng.integers(vid))
                    elab = edge_label_pool[
                        int(rng.integers(len(edge_label_pool)))]
                    delta.add_edge(anchor, vid, elab)
                    key = (min(anchor, vid), max(anchor, vid))
                    live[key] = elab
                    track(key)
                continue
            # Insert a fresh edge between existing vertices.
            for _attempt in range(20):
                u = int(rng.integers(len(vlabels)))
                v = int(rng.integers(len(vlabels)))
                if u == v:
                    continue
                key = (min(u, v), max(u, v))
                if key in live:
                    continue
                elab = edge_label_pool[
                    int(rng.integers(len(edge_label_pool)))]
                delta.add_edge(key[0], key[1], elab)
                live[key] = elab
                track(key)
                break
        batches.append(delta)
    return batches
