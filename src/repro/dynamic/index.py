"""Incremental maintenance of the engine's offline artifacts.

The paper builds the signature table and PCSR offline and treats them as
immutable; this module keeps both *live* under streaming updates:

* :class:`DynamicSignatureTable` re-encodes only the rows of vertices
  whose adjacency changed (a signature depends solely on the vertex's
  own label and its incident ``(edge label, neighbor label)`` pairs) and
  appends rows for new vertices.
* :class:`DynamicPCSRStorage` routes edge updates into in-place
  :class:`~repro.storage.pcsr.PCSRPartition` maintenance and rebuilds a
  partition only when its occupancy passes the policy threshold or the
  empty-group pool runs dry (Claim 1 starvation).

Both record their simulated memory transactions into one shared
:class:`~repro.gpusim.meter.MemoryMeter`, so "incremental maintenance
vs. full rebuild" is a measured comparison, not an assertion —
:func:`full_rebuild_transactions` prices the rebuild-everything
alternative in the same units.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.signature import encode_vertex, num_words
from repro.core.signature_table import SignatureTable
from repro.dynamic.graph import CommitResult
from repro.gpusim.constants import LABEL_PCSR_REBUILD, LABEL_SIG_MAINTAIN
from repro.gpusim.meter import MemoryMeter
from repro.gpusim.transactions import contiguous_read
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.partition import EdgeLabelPartition
from repro.storage.base import EMPTY
from repro.storage.pcsr import PCSRPartition, PCSRStorage

#: rebuild a partition when keys-per-group exceeds this multiple of the
#: one-to-one design point (1.0 keys per group at build time)
DEFAULT_REBUILD_OCCUPANCY = 1.5

#: compact a partition's ci layer in place when the fraction of dead
#: (relocation-orphaned) words exceeds this
DEFAULT_COMPACT_DEAD_RATIO = 0.25

#: never compact below this many dead words (avoids thrashing tiny
#: partitions where one relocation trips the ratio)
MIN_COMPACT_DEAD_WORDS = 16


class DynamicSignatureTable:
    """Keeps a :class:`SignatureTable` current under graph updates.

    Mutates the wrapped table in place (rows and ``num_vertices``), so
    an engine holding the same instance sees updates immediately.
    """

    def __init__(self, table: SignatureTable, signature_bits: int,
                 label_bits: int = 32,
                 meter: Optional[MemoryMeter] = None) -> None:
        self.table = table
        self.signature_bits = signature_bits
        self.label_bits = label_bits
        self.meter = meter
        self.rows_updated = 0
        # Geometric over-allocation: the wrapped table's `table` array
        # is a view of this buffer's live prefix, so growing by one
        # vertex is O(1) amortized, not a full-table copy per batch.
        self._buf = table.table

    def row_transactions(self) -> int:
        """Transactions to read or write one table row (layout shape is
        the same either way)."""
        return self._row_write_transactions()

    def _row_write_transactions(self) -> int:
        # Column-first scatters one row across `words` distinct columns
        # (one transaction each); row-first keeps the row contiguous.
        w = num_words(self.signature_bits)
        if self.table.column_first:
            return w
        return max(1, math.ceil(w * 4 / 128))

    def apply(self, graph: LabeledGraph,
              touched_vertices: Iterable[int]) -> int:
        """Re-encode ``touched_vertices`` rows against ``graph``.

        Grows the table first when ``graph`` has new vertices.  Returns
        the number of rows written.
        """
        inner = self.table
        n = graph.num_vertices
        if n > inner.num_vertices:
            if n > len(self._buf):
                capacity = max(n, 2 * len(self._buf))
                buf = np.zeros((capacity, inner.words), dtype=np.uint32)
                buf[:inner.num_vertices] = \
                    self._buf[:inner.num_vertices]
                self._buf = buf
            inner.table = self._buf[:n]
            inner.num_vertices = n
        rows = 0
        per_row = self._row_write_transactions()
        for v in sorted(set(touched_vertices)):
            inner.table[v] = encode_vertex(
                graph, v, self.signature_bits, self.label_bits)
            rows += 1
            if self.meter is not None:
                # Re-encoding streams the vertex's adjacency and writes
                # one table row.
                self.meter.add_gld(
                    max(1, contiguous_read(graph.degree(v))),
                    label=LABEL_SIG_MAINTAIN)
                self.meter.add_gst(per_row)
        self.rows_updated += rows
        return rows


class DynamicPCSRStorage(PCSRStorage):
    """PCSR over every edge-label partition, maintained in place.

    The read path (``N(v, l)``, transaction accounting) is inherited
    from :class:`~repro.storage.pcsr.PCSRStorage` unchanged — a
    :class:`~repro.core.engine.GSIEngine` joins straight out of this
    store; what this subclass adds is the update path.
    """

    kind = "dynamic-pcsr"

    def __init__(self, graph: LabeledGraph, gpn: int = 16,
                 rebuild_occupancy: float = DEFAULT_REBUILD_OCCUPANCY,
                 compact_dead_ratio: float = DEFAULT_COMPACT_DEAD_RATIO,
                 meter: Optional[MemoryMeter] = None,
                 compact_max_groups: Optional[int] = None) -> None:
        super().__init__(graph, gpn=gpn)
        self.rebuild_occupancy = rebuild_occupancy
        self.compact_dead_ratio = compact_dead_ratio
        #: bound on region moves per compaction call (None = full sweep);
        #: bounds worst-case pause at the cost of deferred reclamation
        self.compact_max_groups = compact_max_groups
        self.meter = meter if meter is not None else MemoryMeter()
        self.rebuilds = 0
        self.incremental_ops = 0
        self.compactions = 0
        self.words_reclaimed = 0

    # --- Update path ----------------------------------------------------

    def _rebuild_partition(self, label: int,
                           adjacency: Dict[int, np.ndarray]) -> None:
        """Full Algorithm-1 rebuild of one partition, metered."""
        adjacency = {v: a for v, a in adjacency.items() if len(a)}
        part = PCSRPartition(EdgeLabelPartition(label, adjacency),
                             gpn=self.gpn)
        self._parts[label] = part
        self.rebuilds += 1
        # Price the rebuild: stream the old structure out and the new
        # structure (group layer + ci) back in.
        meter = self.meter
        meter.add_gld(contiguous_read(part.groups.size + len(part.ci)),
                      label=LABEL_PCSR_REBUILD)
        meter.add_gst(contiguous_read(part.groups.size)
                      + contiguous_read(len(part.ci)))

    def _current_adjacency(self, label: int) -> Dict[int, np.ndarray]:
        part = self._parts.get(label)
        if part is None:
            return {}
        return dict(part.items())

    def _maybe_compact(self, label: int) -> None:
        """Fire the dead-space-ratio compaction policy on one partition:
        when relocation-orphaned words exceed ``compact_dead_ratio`` of
        the ci layer (and the floor), slide the live regions together in
        place — the explicit reclamation that bounds ci growth between
        occupancy rebuilds."""
        part = self._parts.get(label)
        if part is None:
            return
        if (part.dead_words() >= MIN_COMPACT_DEAD_WORDS
                and part.dead_ratio() > self.compact_dead_ratio):
            self.words_reclaimed += part.compact(
                self.meter, max_groups=self.compact_max_groups)
            self.compactions += 1

    def insert_edge(self, u: int, v: int, label: int) -> None:
        """Add one undirected edge to the ``label`` partition in place,
        falling back to a rebuild per the occupancy / Claim-1 policy."""
        part = self._parts.get(label)
        if part is None:
            # First edge with this label: a fresh two-key partition.
            adjacency = {
                u: np.array([v], dtype=np.int64),
                v: np.array([u], dtype=np.int64),
            }
            self._parts[label] = PCSRPartition(
                EdgeLabelPartition(label, adjacency), gpn=self.gpn)
            self.meter.add_gst(
                contiguous_read(self._parts[label].groups.size) + 1)
            return
        new_keys = sum(1 for x in (u, v) if part._find_key(x)[1] < 0)
        if new_keys and ((part.key_count() + new_keys) / part.num_groups
                         > self.rebuild_occupancy):
            adjacency = self._current_adjacency(label)
            for a, b in ((u, v), (v, u)):
                arr = adjacency.get(a, EMPTY)
                adjacency[a] = np.sort(np.append(arr, b))
            self._rebuild_partition(label, adjacency)
            return
        for a, b in ((u, v), (v, u)):
            if part._find_key(a)[1] >= 0:
                part.append_neighbors(
                    a, np.array([b], dtype=np.int64), self.meter)
                self.incremental_ops += 1
            elif part.insert_key(a, np.array([b], dtype=np.int64),
                                 self.meter):
                self.incremental_ops += 1
            else:
                # Claim-1 starvation: no empty group left to chain into.
                adjacency = self._current_adjacency(label)
                arr = adjacency.get(a, EMPTY)
                adjacency[a] = np.sort(np.append(arr, b))
                self._rebuild_partition(label, adjacency)
                part = self._parts[label]
        self._maybe_compact(label)

    def delete_edge(self, u: int, v: int, label: int) -> None:
        """Remove one undirected edge from the ``label`` partition."""
        part = self._parts.get(label)
        if part is None:
            raise KeyError(f"no partition for edge label {label}")
        part.remove_neighbor(u, v, self.meter)
        part.remove_neighbor(v, u, self.meter)
        self.incremental_ops += 2
        self._maybe_compact(label)

    @staticmethod
    def _delta_by_label(inserted_edges, deleted_edges):
        """Group undirected edge lists into per-label, per-key deltas."""
        adds: Dict[int, Dict[int, list]] = {}
        dels: Dict[int, Dict[int, list]] = {}
        for bucket, edges in ((dels, deleted_edges),
                              (adds, inserted_edges)):
            for u, v, lab in edges:
                per_key = bucket.setdefault(lab, {})
                per_key.setdefault(u, []).append(v)
                per_key.setdefault(v, []).append(u)
        return adds, dels

    def apply_batch(self, inserted_edges, deleted_edges) -> None:
        """Apply one committed batch with bulk per-partition merges.

        The per-edge path walks a group chain and shifts a region for
        *every* edge; this groups the batch by label and key and calls
        :meth:`PCSRPartition.apply_bulk` — one chain walk per touched
        key, one merge + rewrite per affected group region.  Policy
        (occupancy rebuilds, Claim-1 fallback, compaction) is identical
        to the per-edge path.
        """
        adds, dels = self._delta_by_label(inserted_edges, deleted_edges)
        for lab in sorted(set(adds) | set(dels)):
            ins = {v: np.asarray(lst, dtype=np.int64)
                   for v, lst in adds.get(lab, {}).items()}
            rem = {v: np.asarray(lst, dtype=np.int64)
                   for v, lst in dels.get(lab, {}).items()}
            part = self._parts.get(lab)
            if part is None:
                if rem:
                    raise KeyError(f"no partition for edge label {lab}")
                adjacency = {v: np.unique(arr) for v, arr in ins.items()}
                self._parts[lab] = PCSRPartition(
                    EdgeLabelPartition(lab, adjacency), gpn=self.gpn)
                self.meter.add_gst(
                    contiguous_read(self._parts[lab].groups.size)
                    + contiguous_read(len(self._parts[lab].ci)))
                continue
            # Cheap upper bound first (every insert key new); only pay
            # the exact chain walks when that bound crosses the policy.
            new_keys = len(ins)
            if new_keys and ((part.key_count() + new_keys)
                             / part.num_groups > self.rebuild_occupancy):
                new_keys = sum(1 for v in ins
                               if part._find_key(v)[1] < 0)
            if new_keys and ((part.key_count() + new_keys)
                             / part.num_groups > self.rebuild_occupancy):
                self._rebuild_partition(
                    lab, self._merged_adjacency(lab, ins, rem))
            elif part.apply_bulk(ins, rem, self.meter):
                self.incremental_ops += (sum(map(len, ins.values()))
                                         + sum(map(len, rem.values())))
            else:
                # Claim-1 starvation; apply_bulk left the partition
                # untouched, so the delta still applies cleanly here.
                self._rebuild_partition(
                    lab, self._merged_adjacency(lab, ins, rem))
            self._maybe_compact(lab)

    def _merged_adjacency(self, label: int, ins: Dict[int, np.ndarray],
                          rem: Dict[int, np.ndarray]
                          ) -> Dict[int, np.ndarray]:
        """Current adjacency of one partition with a delta applied."""
        adjacency = self._current_adjacency(label)
        for v, arr in rem.items():
            cur = adjacency.get(v, EMPTY)
            adjacency[v] = cur[~np.isin(cur, arr)]
        for v, arr in ins.items():
            adjacency[v] = np.union1d(adjacency.get(v, EMPTY), arr)
        return adjacency

    def stats(self) -> Dict[str, object]:
        """PCSR health plus maintenance counters (compactions fired,
        rebuilds, words reclaimed) for reports and the CLI."""
        out = super().stats()
        out.update(rebuilds=self.rebuilds,
                   compactions=self.compactions,
                   words_reclaimed=self.words_reclaimed,
                   incremental_ops=self.incremental_ops,
                   compact_dead_ratio=self.compact_dead_ratio)
        return out

    def validate(self) -> Dict[int, list]:
        """Per-label structural violations (empty when healthy)."""
        out = {}
        for lab, part in self._parts.items():
            problems = part.validate()
            if problems:
                out[lab] = problems
        return out


class DynamicIndex:
    """All engine artifacts, kept live under committed update batches."""

    def __init__(self, graph: LabeledGraph, signature_bits: int = 512,
                 label_bits: int = 32, column_first: bool = True,
                 gpn: int = 16,
                 rebuild_occupancy: float = DEFAULT_REBUILD_OCCUPANCY,
                 compact_dead_ratio: float = DEFAULT_COMPACT_DEAD_RATIO,
                 bulk_updates: bool = True,
                 compact_max_groups: Optional[int] = None
                 ) -> None:
        self.meter = MemoryMeter()
        #: route commits through PCSRPartition.apply_bulk (one merge per
        #: group region) instead of per-edge maintenance calls
        self.bulk_updates = bulk_updates
        self.signature_table = SignatureTable.build(
            graph, signature_bits, label_bits, column_first=column_first)
        self.signatures = DynamicSignatureTable(
            self.signature_table, signature_bits, label_bits,
            meter=self.meter)
        self.storage = DynamicPCSRStorage(
            graph, gpn=gpn, rebuild_occupancy=rebuild_occupancy,
            compact_dead_ratio=compact_dead_ratio,
            meter=self.meter, compact_max_groups=compact_max_groups)

    def apply_commit(self, commit: CommitResult) -> None:
        """Maintain every artifact for one committed batch.

        Deletions apply before insertions so freed ci slack is
        reusable within the same batch.
        """
        if self.bulk_updates:
            self.storage.apply_batch(commit.inserted_edges,
                                     commit.deleted_edges)
        else:
            for u, v, lab in commit.deleted_edges:
                self.storage.delete_edge(u, v, lab)
            for u, v, lab in commit.inserted_edges:
                self.storage.insert_edge(u, v, lab)
        self.signatures.apply(commit.snapshot, commit.touched_vertices)

    @property
    def rebuilds(self) -> int:
        return self.storage.rebuilds

    @property
    def compactions(self) -> int:
        return self.storage.compactions


def full_rebuild_transactions(graph: LabeledGraph,
                              signature_bits: int = 512,
                              gpn: int = 16) -> int:
    """Transactions to rebuild every artifact from scratch (the
    rebuild-and-rerun alternative the benchmark compares against).

    Prices writing the whole signature table plus, per edge-label
    partition, the PCSR group layer and ci — without constructing
    anything.
    """
    words = num_words(signature_bits)
    total = contiguous_read(graph.num_vertices * words)
    per_label_vertices: Dict[int, set] = {}
    per_label_entries: Dict[int, int] = {}
    for u, v, lab in graph.edges():
        per_label_vertices.setdefault(lab, set()).update((u, v))
        per_label_entries[lab] = per_label_entries.get(lab, 0) + 2
    for lab, verts in per_label_vertices.items():
        group_words = max(1, len(verts)) * gpn * 2
        total += contiguous_read(group_words)
        total += contiguous_read(per_label_entries[lab])
    return total
