"""Shared latency statistics: percentiles and bounded reservoirs.

The one home for percentile math.  ``BatchReport`` latency percentiles
(:mod:`repro.service.batch`) and the serving subsystem's per-tenant
SLO reservoirs (:mod:`repro.serve.metrics`) both previously carried
their own copies of this logic; they now delegate here.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

#: samples kept per reservoir by default; a bounded sliding window so
#: a week-old latency spike ages out of the SLO view
DEFAULT_RESERVOIR = 4096

#: the percentile set SLO summaries report
SUMMARY_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of ``values`` (0.0 if empty)."""
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    if not values:
        return 0.0
    arr = np.asarray(values, dtype=np.float64)
    return float(np.percentile(arr, pct))


def percentile_summary(values: Sequence[float],
                       pcts: Sequence[float] = SUMMARY_PERCENTILES
                       ) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` over ``values``.

    Keys are ``p<pct>`` with integral percentiles rendered without a
    decimal point (``p99`` not ``p99.0``).
    """
    def key(p: float) -> str:
        return f"p{int(p)}" if float(p).is_integer() else f"p{p}"

    if not values:
        return {key(p): 0.0 for p in pcts}
    arr = np.asarray(values, dtype=np.float64)
    cut = np.percentile(arr, list(pcts))
    return {key(p): float(v) for p, v in zip(pcts, cut)}


class Reservoir:
    """A bounded sample window with drop-oldest-half eviction.

    Appends are amortized O(1): when the window exceeds ``capacity``
    the oldest half is removed in one splice, so percentiles always
    reflect (at least) the most recent ``capacity // 2`` samples.
    Not thread-safe; callers synchronize (``ServerMetrics`` holds its
    own lock).
    """

    __slots__ = ("capacity", "_samples")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR) -> None:
        if capacity < 2:
            raise ValueError(
                f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self._samples.append(float(value))
        if len(self._samples) > self.capacity:
            del self._samples[:self.capacity // 2]

    def samples(self) -> List[float]:
        """A copy of the current window, oldest first."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, pct: float) -> float:
        return percentile(self._samples, pct)

    def summary(self, pcts: Sequence[float] = SUMMARY_PERCENTILES
                ) -> Dict[str, float]:
        return percentile_summary(self._samples, pcts)


__all__ = ["DEFAULT_RESERVOIR", "SUMMARY_PERCENTILES", "percentile",
           "percentile_summary", "Reservoir"]
