"""Metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per process, reached via
:func:`get_registry`.  Metrics carry labels drawn from the
:data:`OBS_LABEL_KEYS` registry — the same frozen-registry discipline
``METER_LABELS`` imposes on simulated-transaction attribution — so
dashboards never fragment on ad-hoc label spellings.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-ready
dicts and merge across workers and shards with
:func:`merge_metric_snapshots`, mirroring
:func:`repro.gpusim.meter.merge_shard_snapshots`: counters and
histogram buckets add, gauges keep their maximum.  Process workers
record into a scoped registry (:func:`scoped_registry`) and ship its
snapshot back with their results.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple, Type

# ---------------------------------------------------------------------------
# label registry (mirrors repro.gpusim.constants.METER_LABELS)
# ---------------------------------------------------------------------------

OBS_LABEL_CACHE = "cache"
"""Which cache a hit/miss counter refers to (``plan`` / ``shape``)."""

OBS_LABEL_SHARD = "shard"
"""Shard ordinal for scatter-gather attribution."""

OBS_LABEL_EXECUTOR = "executor"
"""Executor kind (``serial`` / ``thread`` / ``process``)."""

OBS_LABEL_LANE = "lane"
"""Join-kernel lane (``per_row`` / ``vector`` / ``numba``)."""

OBS_LABEL_PLANE = "plane"
"""Process-executor data plane (``pickle`` / ``shm``)."""

OBS_LABEL_TENANT = "tenant"
"""Serving tenant a request-plane counter is attributed to."""

OBS_LABEL_PHASE = "phase"
"""Engine phase (``filter`` / ``plan`` / ``join``)."""

OBS_LABEL_KIND = "kind"
"""Free discriminator within one metric (e.g. shed reason)."""

OBS_LABEL_RESULT = "result"
"""Outcome discriminator (``hit`` / ``miss``, ``ok`` / ``error``)."""

OBS_LABEL_KEYS = frozenset({
    OBS_LABEL_CACHE,
    OBS_LABEL_SHARD,
    OBS_LABEL_EXECUTOR,
    OBS_LABEL_LANE,
    OBS_LABEL_PLANE,
    OBS_LABEL_TENANT,
    OBS_LABEL_PHASE,
    OBS_LABEL_KIND,
    OBS_LABEL_RESULT,
})
"""Every label key a metric may carry.  New keys are added here, next
to an OBS_LABEL_* constant, never inline at a call site."""

#: default histogram buckets for millisecond latencies
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0)

#: default histogram buckets for sizes/counts (powers of two)
SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    """Canonical hashable key for one label set (validated)."""
    for key in labels:
        if key not in OBS_LABEL_KEYS:
            raise ValueError(
                f"unregistered metric label {key!r}; add an "
                f"OBS_LABEL_* constant to repro.obs.metrics "
                f"(OBS_LABEL_KEYS registry)")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing per-label-set totals."""

    #: gsilint GSI003: hot paths on several threads inc concurrently
    _GUARDED_BY_LOCK = ("_values",)

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (got {value})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        key = _label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _snapshot(self) -> Dict[str, Any]:
        with self._lock:
            values = [{"labels": dict(key), "value": val}
                      for key, val in sorted(self._values.items())]
        return {"type": "counter", "help": self.help_text,
                "values": values}


class Gauge:
    """A point-in-time level (queue depth, fill ratio)."""

    #: gsilint GSI003: set from loop + runner threads concurrently
    _GUARDED_BY_LOCK = ("_values",)

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: Any) -> float:
        key = _label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _snapshot(self) -> Dict[str, Any]:
        with self._lock:
            values = [{"labels": dict(key), "value": val}
                      for key, val in sorted(self._values.items())]
        return {"type": "gauge", "help": self.help_text,
                "values": values}


class Histogram:
    """Fixed-bucket distribution (plus sum and count).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    overflow, Prometheus-style.  Bucket counts are *non*-cumulative in
    snapshots (they add cleanly under merge); the exporter cumulates.
    """

    #: gsilint GSI003: observed from worker threads concurrently
    _GUARDED_BY_LOCK = ("_series",)

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float]) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"histogram {name} needs ascending buckets, got "
                f"{buckets!r}")
        self.name = name
        self.help_text = help_text
        self.buckets: Tuple[float, ...] = tuple(
            float(b) for b in buckets)
        self._lock = threading.Lock()
        self._series: Dict[_LabelKey, Dict[str, Any]] = {}

    def _series_unlocked(self, key: _LabelKey) -> Dict[str, Any]:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = {
                "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0, "count": 0}
        return series

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            series = self._series_unlocked(key)
            series["counts"][idx] += 1
            series["sum"] += float(value)
            series["count"] += 1

    def count(self, **labels: Any) -> int:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            return int(series["count"]) if series is not None else 0

    def _absorb(self, entry: Dict[str, Any]) -> None:
        """Fold one shipped series entry (same buckets) into this."""
        if len(entry["counts"]) != len(self.buckets) + 1:
            raise ValueError(
                f"histogram {self.name}: shipped entry has "
                f"{len(entry['counts'])} buckets, expected "
                f"{len(self.buckets) + 1}")
        key = _label_key(entry["labels"])
        with self._lock:
            series = self._series_unlocked(key)
            series["counts"] = [
                a + b for a, b in zip(series["counts"],
                                      entry["counts"])]
            series["sum"] += entry["sum"]
            series["count"] += entry["count"]

    def _snapshot(self) -> Dict[str, Any]:
        with self._lock:
            values = [{"labels": dict(key),
                       "counts": list(series["counts"]),
                       "sum": series["sum"], "count": series["count"]}
                      for key, series in sorted(self._series.items())]
        return {"type": "histogram", "help": self.help_text,
                "buckets": list(self.buckets), "values": values}


class MetricsRegistry:
    """Name-keyed collection of counters, gauges and histograms."""

    #: gsilint GSI003: get-or-create races with snapshotting
    _GUARDED_BY_LOCK = ("_metrics",)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: Type[Any],
                       factory_args: Tuple[Any, ...]) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = kind(*factory_args)
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}")
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._get_or_create(name, Counter, (name, help_text))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._get_or_create(name, Gauge, (name, help_text))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = LATENCY_BUCKETS_MS
                  ) -> Histogram:
        metric = self._get_or_create(
            name, Histogram, (name, help_text, tuple(buckets)))
        assert isinstance(metric, Histogram)
        return metric

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state of every metric (mergeable, exportable)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric._snapshot() for name, metric in metrics}

    def reset(self) -> None:
        """Drop every registered metric (test isolation)."""
        with self._lock:
            self._metrics.clear()


def merge_metric_snapshots(snapshots: Sequence[Dict[str, Any]]
                           ) -> Dict[str, Any]:
    """Fold per-worker/per-shard snapshots into one.

    Counters and histogram bucket counts/sums add; gauges keep the
    maximum observed level (a fill gauge merged across workers reads
    as the high-water mark).  The same-name metric must have the same
    type and buckets everywhere.
    """
    merged: Dict[str, Any] = {}
    for snap in snapshots:
        for name, metric in snap.items():
            into = merged.get(name)
            if into is None:
                merged[name] = {
                    "type": metric["type"], "help": metric["help"],
                    **({"buckets": list(metric["buckets"])}
                       if metric["type"] == "histogram" else {}),
                    "values": [
                        {k: (list(v) if isinstance(v, list) else
                             (dict(v) if isinstance(v, dict) else v))
                         for k, v in entry.items()}
                        for entry in metric["values"]],
                }
                continue
            if into["type"] != metric["type"]:
                raise ValueError(
                    f"metric {name!r} merges {into['type']} with "
                    f"{metric['type']}")
            by_labels = {_label_key(e["labels"]): e
                         for e in into["values"]}
            for entry in metric["values"]:
                key = _label_key(entry["labels"])
                have = by_labels.get(key)
                if have is None:
                    fresh = {
                        k: (list(v) if isinstance(v, list) else
                            (dict(v) if isinstance(v, dict) else v))
                        for k, v in entry.items()}
                    by_labels[key] = fresh
                    into["values"].append(fresh)
                elif metric["type"] == "counter":
                    have["value"] += entry["value"]
                elif metric["type"] == "gauge":
                    have["value"] = max(have["value"], entry["value"])
                else:
                    have["counts"] = [
                        a + b for a, b in
                        zip(have["counts"], entry["counts"])]
                    have["sum"] += entry["sum"]
                    have["count"] += entry["count"]
            into["values"].sort(
                key=lambda e: _label_key(e["labels"]))
    return merged


_DEFAULT_REGISTRY = MetricsRegistry()
_ACTIVE_REGISTRY: MetricsRegistry = _DEFAULT_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-global registry hot paths record into."""
    return _ACTIVE_REGISTRY


def set_registry(registry: Optional[MetricsRegistry]
                 ) -> MetricsRegistry:
    """Install ``registry`` globally (None restores the default);
    returns the previously installed registry."""
    global _ACTIVE_REGISTRY
    previous = _ACTIVE_REGISTRY
    _ACTIVE_REGISTRY = (registry if registry is not None
                        else _DEFAULT_REGISTRY)
    return previous


@contextmanager
def scoped_registry() -> Iterator[MetricsRegistry]:
    """Record into a fresh registry for the duration of the block.

    Process workers wrap each shipped chunk in this so their snapshot
    contains exactly the chunk's deltas; the coordinator merges the
    shipped snapshot into its own registry via
    :func:`absorb_snapshot`.
    """
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


def absorb_snapshot(snapshot: Dict[str, Any],
                    registry: Optional[MetricsRegistry] = None) -> None:
    """Fold one shipped snapshot into ``registry`` (default: global).

    Counters and histograms replay additively; gauges apply as levels.
    """
    into = registry if registry is not None else get_registry()
    for name, metric in snapshot.items():
        if metric["type"] == "counter":
            counter = into.counter(name, metric["help"])
            for entry in metric["values"]:
                counter.inc(entry["value"], **entry["labels"])
        elif metric["type"] == "gauge":
            gauge = into.gauge(name, metric["help"])
            for entry in metric["values"]:
                gauge.set(entry["value"], **entry["labels"])
        else:
            hist = into.histogram(name, metric["help"],
                                  metric["buckets"])
            for entry in metric["values"]:
                hist._absorb(entry)
