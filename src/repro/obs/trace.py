"""Tracing core: spans, tracers, and cross-process trace contexts.

One :class:`Tracer` collects :class:`Span` records for a single trace
tree.  Spans are context managers timed with ``time.perf_counter`` and
carry structured attributes (query fingerprint, shard id, executor
kind, kernel lane).  Nesting is tracked per thread, so serial and
thread-pool executors parent spans automatically; process workers get
a :class:`TraceContext` — the ``(trace_id, span_id)`` pair that pickles
with ``PreparedQuery`` chunks, ``_DeltaContext`` and ``_ShardContext``
— record spans locally under :func:`shipped_spans`, and ship the
finished span dicts back with their results, where the coordinator
re-parents them into one coherent tree via :meth:`Tracer.absorb`.

The module-global tracer defaults to :class:`NullTracer`, whose
``span()`` returns a shared inert span: the disabled path is one
virtual call and no allocation, so instrumentation can stay in hot
paths permanently.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Dict, Iterator, List, Optional, Type


def _new_id() -> str:
    """A fresh 64-bit hex id for traces and spans."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The picklable propagation handle: trace id + parent span id.

    This is everything a remote worker needs to record spans that
    re-parent correctly when shipped back to the coordinator.
    """

    trace_id: str
    span_id: str


class Span:
    """One timed operation in a trace.

    Use as a context manager (``with tracer.span("phase") as sp:``) or
    call :meth:`end` explicitly — gsilint rule GSI006 enforces that one
    of the two happens.  Timing uses ``perf_counter`` for duration and
    ``time.time`` for the wall-clock start (so spans from different
    processes line up on one timeline).
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id",
                 "attributes", "duration_ms", "_tracer", "_start_perf",
                 "_start_wall", "_ended", "_entered")

    def __init__(self, tracer: Optional["Tracer"], name: str,
                 trace_id: str, parent_id: Optional[str],
                 attributes: Dict[str, Any]) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attributes = attributes
        self.duration_ms = 0.0
        self._tracer = tracer
        self._start_perf = time.perf_counter()
        self._start_wall = time.time()
        self._ended = False
        self._entered = False

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one structured attribute to the span."""
        self.attributes[key] = value

    def context(self) -> TraceContext:
        """The :class:`TraceContext` for children of this span."""
        return TraceContext(self.trace_id, self.span_id)

    def end(self) -> None:
        """Finalize the span and hand it to the owning tracer."""
        if self._ended:
            return
        self._ended = True
        self.duration_ms = (time.perf_counter()
                            - self._start_perf) * 1000.0
        if self._tracer is not None:
            self._tracer._finish(self)

    def to_dict(self) -> Dict[str, Any]:
        """JSON/pickle-ready record (the NDJSON line, one per span)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ms": self._start_wall * 1000.0,
            "duration_ms": self.duration_ms,
            "pid": os.getpid(),
            "attrs": dict(self.attributes),
        }

    def __enter__(self) -> "Span":
        self._entered = True
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self.end()


class _SpanStack(threading.local):
    """Per-thread stack of active spans (automatic parenting)."""

    def __init__(self) -> None:
        self.stack: List[Span] = []


class Tracer:
    """Collects the spans of one trace tree.

    Thread-safe: serial and thread-pool executors record into the same
    tracer concurrently; nesting is tracked per thread and the
    finished-span list is lock-guarded.
    """

    #: gsilint GSI003: worker threads end spans while the coordinator
    #: absorbs shipped ones; every touch goes through self._lock
    _GUARDED_BY_LOCK = ("_finished",)

    def __init__(self, trace_id: Optional[str] = None,
                 parent: Optional[TraceContext] = None) -> None:
        if parent is not None and trace_id is None:
            trace_id = parent.trace_id
        self.trace_id = trace_id if trace_id is not None else _new_id()
        self._root_parent = parent.span_id if parent is not None else None
        self._lock = threading.Lock()
        self._finished: List[Dict[str, Any]] = []
        self._active = _SpanStack()

    # -- recording ----------------------------------------------------

    def span(self, name: str, parent: Optional[TraceContext] = None,
             **attributes: Any) -> Span:
        """Open a span; parent is the innermost active span on this
        thread unless an explicit :class:`TraceContext` is given."""
        if parent is not None:
            parent_id: Optional[str] = parent.span_id
        elif self._active.stack:
            parent_id = self._active.stack[-1].span_id
        else:
            parent_id = self._root_parent
        return Span(self, name, self.trace_id, parent_id, attributes)

    def _push(self, span: Span) -> None:
        self._active.stack.append(span)

    def _finish(self, span: Span) -> None:
        stack = self._active.stack
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span.to_dict())

    # -- reading / merging --------------------------------------------

    def current_context(self) -> Optional[TraceContext]:
        """Propagation context of the innermost active span, if any."""
        if self._active.stack:
            return self._active.stack[-1].context()
        if self._root_parent is not None:
            return TraceContext(self.trace_id, self._root_parent)
        return None

    def absorb(self, span_dicts: List[Dict[str, Any]]) -> None:
        """Merge spans shipped back from a remote worker."""
        if not span_dicts:
            return
        with self._lock:
            self._finished.extend(span_dicts)

    def finished(self) -> List[Dict[str, Any]]:
        """Snapshot of all finished span dicts, in end order."""
        with self._lock:
            return list(self._finished)


class NullSpan(Span):
    """The shared inert span the disabled path hands out."""

    def __init__(self) -> None:
        super().__init__(None, "", "", None, {})

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    def end(self) -> None:
        return None

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        return None


class NullTracer(Tracer):
    """Tracing disabled: every call is a no-op returning shared
    objects, so instrumented hot paths pay near-zero overhead."""

    def __init__(self) -> None:
        super().__init__(trace_id="")
        self._null_span = NullSpan()

    def span(self, name: str, parent: Optional[TraceContext] = None,
             **attributes: Any) -> Span:
        return self._null_span

    def current_context(self) -> Optional[TraceContext]:
        return None

    def absorb(self, span_dicts: List[Dict[str, Any]]) -> None:
        return None

    def finished(self) -> List[Dict[str, Any]]:
        return []


_NULL_TRACER = NullTracer()
_ACTIVE_TRACER: Tracer = _NULL_TRACER


def get_tracer() -> Tracer:
    """The process-global tracer (a :class:`NullTracer` by default)."""
    return _ACTIVE_TRACER


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` globally (None restores the null tracer);
    returns the previously installed tracer."""
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer if tracer is not None else _NULL_TRACER
    return previous


def tracing_active() -> bool:
    """True when a recording (non-null) tracer is installed."""
    return not isinstance(_ACTIVE_TRACER, NullTracer)


def current_trace_context() -> Optional[TraceContext]:
    """Propagation context of the active tracer, or None when
    disabled — the value stamped onto picklable carriers."""
    return _ACTIVE_TRACER.current_context()


@contextmanager
def shipped_spans(ctx: Optional[TraceContext]
                  ) -> Iterator[List[Dict[str, Any]]]:
    """Collect spans for shipping across a process boundary.

    Inside a process worker (no recording tracer installed) this
    installs a fresh :class:`Tracer` bound to ``ctx`` for the duration
    of the block and fills the yielded list with the finished span
    dicts afterwards — the worker returns that list with its results.
    When ``ctx`` is None (tracing disabled) or a recording tracer is
    already active (serial / thread executors in the coordinator),
    spans land in the active tracer directly and the list stays empty.
    """
    out: List[Dict[str, Any]] = []
    if ctx is None or tracing_active():
        yield out
        return
    local = Tracer(parent=ctx)
    previous = set_tracer(local)
    try:
        yield out
    finally:
        set_tracer(previous)
        out.extend(local.finished())
