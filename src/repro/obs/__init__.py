"""Unified observability for the GSI reproduction (``repro.obs``).

Four pieces, one subsystem:

* :mod:`repro.obs.trace` — ``Span``/``Tracer`` context managers with a
  picklable ``TraceContext`` so spans recorded inside fork- and
  spawn-mode process workers re-parent into one coherent tree.
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms under the ``OBS_LABEL_KEYS`` label registry, with
  snapshots that merge across workers and shards.
* :mod:`repro.obs.stats` — the shared percentile/reservoir helpers
  the batch and serving reports both use.
* :mod:`repro.obs.export` — NDJSON span logs, chrome://tracing JSON,
  and Prometheus text exposition.

Tracing defaults to a :class:`~repro.obs.trace.NullTracer` (and hot
paths only consult the registry they already hold), so the disabled
path adds near-zero overhead.
"""

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    read_spans_ndjson,
    validate_span_tree,
    write_chrome_trace,
    write_spans_ndjson,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    OBS_LABEL_KEYS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    absorb_snapshot,
    get_registry,
    merge_metric_snapshots,
    scoped_registry,
    set_registry,
)
from repro.obs.stats import (
    DEFAULT_RESERVOIR,
    Reservoir,
    percentile,
    percentile_summary,
)
from repro.obs.trace import (
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    current_trace_context,
    get_tracer,
    set_tracer,
    shipped_spans,
    tracing_active,
)

__all__ = [
    "chrome_trace", "prometheus_text", "read_spans_ndjson",
    "validate_span_tree", "write_chrome_trace", "write_spans_ndjson",
    "LATENCY_BUCKETS_MS", "OBS_LABEL_KEYS", "SIZE_BUCKETS", "Counter",
    "Gauge", "Histogram", "MetricsRegistry", "absorb_snapshot",
    "get_registry", "merge_metric_snapshots", "scoped_registry",
    "set_registry", "DEFAULT_RESERVOIR", "Reservoir", "percentile",
    "percentile_summary", "NullTracer", "Span", "TraceContext",
    "Tracer", "current_trace_context", "get_tracer", "set_tracer",
    "shipped_spans", "tracing_active",
]
