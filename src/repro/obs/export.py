"""Exporters: NDJSON span logs, chrome://tracing JSON, Prometheus text.

Three consumers, three formats, one span-dict/snapshot schema:

* ``write_spans_ndjson`` — one JSON object per line per span; the
  ``--trace-out PATH`` sink, trivially greppable and streamable.
* ``chrome_trace`` — the Chrome trace-event JSON that
  ``chrome://tracing`` / Perfetto load for flamegraph inspection.
* ``prometheus_text`` — the Prometheus exposition format rendered
  from a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, served
  by the serve protocol's ``metrics`` op and the ``repro obs`` CLI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union


def _json_default(value: Any) -> str:
    return str(value)


def write_spans_ndjson(spans: Iterable[Dict[str, Any]],
                       path: Union[str, Path]) -> Path:
    """Write spans as newline-delimited JSON; returns the path."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(span, sort_keys=True, default=_json_default)
             for span in spans]
    target.write_text("\n".join(lines) + ("\n" if lines else ""),
                      encoding="utf-8")
    return target


def read_spans_ndjson(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load an NDJSON span log (blank lines ignored)."""
    spans: List[Dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        obj = json.loads(line)
        if not isinstance(obj, dict):
            raise ValueError(
                f"{path}:{lineno}: span line is not a JSON object")
        spans.append(obj)
    return spans


def validate_span_tree(spans: Sequence[Dict[str, Any]]
                       ) -> Dict[str, Any]:
    """Structural check of one span log.

    Returns ``{"spans": n, "trace_ids": [...], "roots": [...],
    "orphans": [...], "connected": bool}`` — connected means a single
    trace id, at least one root, and every parent link resolving to a
    recorded span.  The obs-smoke CI leg and the cross-process
    propagation tests both key off this.
    """
    ids = {span["span_id"] for span in spans}
    trace_ids = sorted({span["trace_id"] for span in spans})
    roots = [span["span_id"] for span in spans
             if span.get("parent_id") is None]
    orphans = [span["span_id"] for span in spans
               if span.get("parent_id") is not None
               and span["parent_id"] not in ids]
    connected = (len(trace_ids) == 1 and len(roots) >= 1
                 and not orphans and bool(spans))
    return {"spans": len(spans), "trace_ids": trace_ids,
            "roots": roots, "orphans": orphans,
            "connected": connected}


def chrome_trace(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Spans as a chrome://tracing / Perfetto trace-event object.

    Complete events (``ph: "X"``) with microsecond timestamps on the
    wall clock, one row (tid) per recording process so coordinator
    and worker spans land on separate tracks.
    """
    events: List[Dict[str, Any]] = []
    for span in spans:
        pid = int(span.get("pid", 0))
        events.append({
            "name": span["name"],
            "cat": "gsi",
            "ph": "X",
            "ts": float(span["start_ms"]) * 1000.0,
            "dur": float(span["duration_ms"]) * 1000.0,
            "pid": 1,
            "tid": pid,
            "args": dict(span.get("attrs", {})),
        })
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Dict[str, Any]],
                       path: Union[str, Path]) -> Path:
    """Dump :func:`chrome_trace` output as JSON; returns the path."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(chrome_trace(spans), indent=2,
                   default=_json_default) + "\n",
        encoding="utf-8")
    return target


# ---------------------------------------------------------------------------
# Prometheus exposition format
# ---------------------------------------------------------------------------


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _label_block(labels: Dict[str, str],
                 extra: Union[Dict[str, str], None] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(val))}"'
        for key, val in sorted(merged.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render one metrics snapshot in Prometheus text format.

    Histogram bucket counts are cumulated here (snapshots keep them
    per-bucket so they merge additively) and get the conventional
    ``_bucket``/``_sum``/``_count`` series with ``le`` labels.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        metric = snapshot[name]
        kind = metric["type"]
        if metric["help"]:
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            for entry in metric["values"]:
                lines.append(
                    f"{name}{_label_block(entry['labels'])} "
                    f"{_format_value(entry['value'])}")
            continue
        buckets = [float(b) for b in metric["buckets"]]
        for entry in metric["values"]:
            cumulative = 0
            for bound, count in zip(buckets, entry["counts"]):
                cumulative += int(count)
                block = _label_block(entry["labels"],
                                     {"le": _format_value(bound)})
                lines.append(f"{name}_bucket{block} {cumulative}")
            cumulative += int(entry["counts"][-1])
            block = _label_block(entry["labels"], {"le": "+Inf"})
            lines.append(f"{name}_bucket{block} {cumulative}")
            lines.append(
                f"{name}_sum{_label_block(entry['labels'])} "
                f"{_format_value(entry['sum'])}")
            lines.append(
                f"{name}_count{_label_block(entry['labels'])} "
                f"{int(entry['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = ["write_spans_ndjson", "read_spans_ndjson",
           "validate_span_tree", "chrome_trace", "write_chrome_trace",
           "prometheus_text"]
