"""Synthetic stand-ins for the paper's five evaluation datasets (Table III).

The paper evaluates on enron, gowalla, road_central, WatDiv, and DBpedia —
but assigns vertex/edge labels synthetically (power-law).  We reproduce the
*class* of each dataset (topology type, label vocabulary sizes, degree
skew) at roughly 1/100–1/1000 scale so a pure-Python substrate completes
the full benchmark suite in minutes.  The scaled |LV| / |LE| keep the same
ratios that drive the paper's effects (e.g. DBpedia's huge |LE| is what
makes PCSR shine; road's mesh topology is what makes load balance moot).

Every function takes a ``scale`` multiplier (1.0 = the default reduced
size) and a seed, so scalability sweeps (Figure 13) and robustness checks
are one-liners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.graph.generators import mesh_graph, rdf_like_graph, scale_free_graph
from repro.graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class DatasetSpec:
    """Descriptor for one named dataset (mirrors a Table III row)."""

    name: str
    graph_type: str          # "scale-free" or "mesh"
    paper_vertices: str      # the paper's |V| (for documentation)
    paper_edges: str         # the paper's |E|
    num_vertex_labels: int
    num_edge_labels: int


#: Scaled label vocabularies.  The paper's |LV|/|LE| (Table III: enron
#: 10/100, gowalla 100/100, road 1K/1K, WatDiv 1K/86, DBpedia 1K/57K)
#: are reduced along with the graphs so that per-label frequencies —
#: the quantity that drives candidate sizes, N(v, l) lengths, and hence
#: every experiment — stay in the paper's regime.  Relative ordering is
#: preserved (enron smallest vocabularies, DBpedia the largest |LE|).
SPECS: Dict[str, DatasetSpec] = {
    "enron": DatasetSpec("enron", "scale-free", "69K", "274K", 10, 25),
    "gowalla": DatasetSpec("gowalla", "scale-free", "196K", "1.9M", 12, 30),
    "road": DatasetSpec("road", "mesh", "14M", "16M", 20, 20),
    "watdiv": DatasetSpec("watdiv", "scale-free", "10M", "109M", 15, 30),
    "dbpedia": DatasetSpec("dbpedia", "scale-free", "22M", "170M", 15, 60),
}


def enron_like(scale: float = 1.0, seed: int = 7) -> LabeledGraph:
    """Small scale-free email network: few vertex labels, mild skew."""
    n = max(50, int(700 * scale))
    return scale_free_graph(
        num_vertices=n, edges_per_vertex=4,
        num_vertex_labels=SPECS["enron"].num_vertex_labels,
        num_edge_labels=SPECS["enron"].num_edge_labels, seed=seed)


def gowalla_like(scale: float = 1.0, seed: int = 11) -> LabeledGraph:
    """Mid-size scale-free social network with 100/100 labels."""
    n = max(100, int(1800 * scale))
    return scale_free_graph(
        num_vertices=n, edges_per_vertex=6,
        num_vertex_labels=SPECS["gowalla"].num_vertex_labels,
        num_edge_labels=SPECS["gowalla"].num_edge_labels, seed=seed)


def road_like(scale: float = 1.0, seed: int = 13) -> LabeledGraph:
    """Mesh road network: max degree 4, no hubs, many labels.

    The paper's road_central has |LV| = |LE| = 1K at 14M vertices; we keep
    the label-to-vertex ratio comparable at the reduced size.
    """
    side = max(10, int(55 * (scale ** 0.5)))
    return mesh_graph(
        rows=side, cols=side,
        num_vertex_labels=SPECS["road"].num_vertex_labels,
        num_edge_labels=SPECS["road"].num_edge_labels, seed=seed)


def watdiv_like(scale: float = 1.0, seed: int = 17) -> LabeledGraph:
    """RDF benchmark stand-in: 86 edge labels, strong hub skew."""
    n = max(100, int(1500 * scale))
    return rdf_like_graph(
        num_vertices=n, num_edges=int(n * 7),
        num_vertex_labels=SPECS["watdiv"].num_vertex_labels,
        num_edge_labels=SPECS["watdiv"].num_edge_labels, seed=seed)


def dbpedia_like(scale: float = 1.0, seed: int = 19) -> LabeledGraph:
    """Knowledge-graph stand-in: very many edge labels, extreme hubs.

    DBpedia's 57K distinct predicates are what break the Basic
    Representation (space O(|E| + |LE|·|V|)); we scale |LE| down with the
    graph but keep it the largest vocabulary of the five datasets.
    """
    n = max(100, int(1700 * scale))
    return rdf_like_graph(
        num_vertices=n, num_edges=int(n * 6),
        num_vertex_labels=SPECS["dbpedia"].num_vertex_labels,
        num_edge_labels=SPECS["dbpedia"].num_edge_labels, seed=seed,
        hub_fraction=0.005)


LOADERS: Dict[str, Callable[..., LabeledGraph]] = {
    "enron": enron_like,
    "gowalla": gowalla_like,
    "road": road_like,
    "watdiv": watdiv_like,
    "dbpedia": dbpedia_like,
}


def load(name: str, scale: float = 1.0, seed: int = 0) -> LabeledGraph:
    """Load a named dataset stand-in (see :data:`SPECS` for names)."""
    try:
        loader = LOADERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(LOADERS)}"
        ) from None
    if seed:
        return loader(scale=scale, seed=seed)
    return loader(scale=scale)


def all_names() -> List[str]:
    """Dataset names in the order the paper's tables list them."""
    return ["enron", "gowalla", "road", "watdiv", "dbpedia"]


def watdiv_series(steps: int = 10, base_vertices: int = 400,
                  seed: int = 17) -> List[LabeledGraph]:
    """The Figure 13 scalability series: watdiv10M .. watdiv100M analogs.

    The paper grows vertices and edges linearly with the step index; we do
    the same from a reduced base size.
    """
    series = []
    for i in range(1, steps + 1):
        n = base_vertices * i
        series.append(rdf_like_graph(
            num_vertices=n, num_edges=n * 7,
            num_vertex_labels=SPECS["watdiv"].num_vertex_labels,
            num_edge_labels=SPECS["watdiv"].num_edge_labels,
            seed=seed + i))
    return series
