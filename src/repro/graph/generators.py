"""Graph and query generators used throughout the evaluation.

The paper's datasets come from SNAP / DBpedia / WatDiv but, lacking labels,
the authors *assign vertex and edge labels following a power-law
distribution* (Section VII-A).  We therefore generate topology classes
(scale-free and mesh-like, the two types in Table III) and reuse the same
power-law labeling procedure, plus the paper's random-walk query generator.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.labeled_graph import LabeledGraph


def power_law_labels(count: int, num_labels: int, rng: np.random.Generator,
                     exponent: float = 1.5) -> np.ndarray:
    """Draw ``count`` labels from ``{0..num_labels-1}`` with power-law mass.

    Label ``i`` gets probability proportional to ``(i + 1) ** -exponent``,
    mirroring the skewed label frequencies of real RDF predicates.
    """
    if num_labels <= 0:
        raise GraphError("num_labels must be positive")
    ranks = np.arange(1, num_labels + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    weights /= weights.sum()
    return rng.choice(num_labels, size=count, p=weights).astype(np.int64)


def scale_free_graph(num_vertices: int, edges_per_vertex: int,
                     num_vertex_labels: int, num_edge_labels: int,
                     seed: int = 0, label_exponent: float = 1.5
                     ) -> LabeledGraph:
    """A Barabási–Albert-style scale-free graph with power-law labels.

    Matches the "scale-free" type of enron / gowalla / WatDiv / DBpedia in
    Table III: heavy-tailed degrees with a few hub vertices.

    Parameters
    ----------
    num_vertices:
        Number of vertices.
    edges_per_vertex:
        Edges attached from each newly arriving vertex (BA ``m``).
    """
    if num_vertices < 2:
        raise GraphError("need at least two vertices")
    m = max(1, min(edges_per_vertex, num_vertices - 1))
    rng = np.random.default_rng(seed)

    # Preferential attachment via the repeated-endpoints trick: every edge
    # endpoint is appended to `targets`, so sampling uniformly from it is
    # degree-proportional.
    edges: Set[Tuple[int, int]] = set()
    targets: List[int] = list(range(m))
    for v in range(m, num_vertices):
        chosen: Set[int] = set()
        while len(chosen) < m:
            pick = targets[int(rng.integers(len(targets)))]
            if pick != v:
                chosen.add(pick)
        for w in chosen:
            edges.add((min(v, w), max(v, w)))
            targets.append(w)
            targets.append(v)

    vlabels = power_law_labels(num_vertices, num_vertex_labels, rng,
                               label_exponent)
    elabels = power_law_labels(len(edges), num_edge_labels, rng,
                               label_exponent)
    triples = [(u, v, int(lab)) for (u, v), lab in
               zip(sorted(edges), elabels)]
    return LabeledGraph(vlabels, triples)


def mesh_graph(rows: int, cols: int, num_vertex_labels: int,
               num_edge_labels: int, seed: int = 0,
               label_exponent: float = 1.5) -> LabeledGraph:
    """A 2-D grid graph with power-law labels.

    Matches the "mesh-like" type of the road_central dataset in Table III:
    tiny, nearly uniform degrees (max degree 4) and huge diameter.
    """
    if rows < 1 or cols < 1:
        raise GraphError("mesh dimensions must be positive")
    rng = np.random.default_rng(seed)
    n = rows * cols

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))

    vlabels = power_law_labels(n, num_vertex_labels, rng, label_exponent)
    elabels = power_law_labels(len(edges), num_edge_labels, rng,
                               label_exponent)
    triples = [(u, v, int(lab)) for (u, v), lab in zip(edges, elabels)]
    return LabeledGraph(vlabels, triples)


def rdf_like_graph(num_vertices: int, num_edges: int, num_vertex_labels: int,
                   num_edge_labels: int, seed: int = 0,
                   label_exponent: float = 1.5, hub_fraction: float = 0.01
                   ) -> LabeledGraph:
    """An RDF-shaped graph: a small hub set (classes / popular entities)
    attracting a large share of edges, the rest scale-free-ish.

    This is the stand-in for WatDiv / DBpedia, whose defining features for
    GSI are (a) very many distinct edge labels and (b) extreme degree skew
    (Table III reports max degree 2.2M for DBpedia).
    """
    if num_vertices < 2:
        raise GraphError("need at least two vertices")
    rng = np.random.default_rng(seed)
    num_hubs = max(1, int(num_vertices * hub_fraction))

    edges: Set[Tuple[int, int]] = set()
    # Ensure connectivity with a random spanning tree first.
    perm = rng.permutation(num_vertices)
    for i in range(1, num_vertices):
        child = int(perm[i])
        parent = int(perm[int(rng.integers(i))])
        edges.add((min(child, parent), max(child, parent)))

    attempts = 0
    max_attempts = num_edges * 20
    while len(edges) < num_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(num_vertices))
        # Half of the remaining edges point at hubs, producing the skew.
        if rng.random() < 0.5:
            v = int(rng.integers(num_hubs))
        else:
            v = int(rng.integers(num_vertices))
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))

    vlabels = power_law_labels(num_vertices, num_vertex_labels, rng,
                               label_exponent)
    elabels = power_law_labels(len(edges), num_edge_labels, rng,
                               label_exponent)
    triples = [(u, v, int(lab)) for (u, v), lab in
               zip(sorted(edges), elabels)]
    return LabeledGraph(vlabels, triples)


def random_walk_query(graph: LabeledGraph, num_vertices: int,
                      seed: int = 0, extra_edges: int = 0,
                      max_restarts: int = 200) -> LabeledGraph:
    """Generate a query graph by random walk over ``graph`` (Section VII-A).

    Starting from a random vertex, walk until ``num_vertices`` distinct
    vertices are visited; the visited vertices plus all edges *among them
    traversed by the walk* (with their labels) form the query.  With
    ``extra_edges > 0``, additional data-graph edges among the visited
    vertices are added, which is how Figure 15 varies ``|E(Q)|``
    independently of ``|V(Q)|``.

    Returns a :class:`LabeledGraph` whose vertex ids are ``0..k-1`` (the
    order of first visit); it is connected by construction.
    """
    if num_vertices < 1:
        raise GraphError("query must have at least one vertex")
    if num_vertices > graph.num_vertices:
        raise GraphError("query larger than the data graph")
    rng = np.random.default_rng(seed)

    for _ in range(max_restarts):
        start = int(rng.integers(graph.num_vertices))
        visited: List[int] = [start]
        index = {start: 0}
        walk_edges: Set[Tuple[int, int]] = set()
        current = start
        steps = 0
        step_budget = 50 * num_vertices + 100
        while len(visited) < num_vertices and steps < step_budget:
            steps += 1
            nbrs = graph.neighbors(current)
            if len(nbrs) == 0:
                break
            nxt = int(nbrs[int(rng.integers(len(nbrs)))])
            if nxt not in index:
                index[nxt] = len(visited)
                visited.append(nxt)
            walk_edges.add((min(current, nxt), max(current, nxt)))
            current = nxt
        if len(visited) < num_vertices:
            continue

        if extra_edges > 0:
            candidates = []
            for i, u in enumerate(visited):
                for v in visited[i + 1:]:
                    key = (min(u, v), max(u, v))
                    if key not in walk_edges and graph.has_edge(u, v):
                        candidates.append(key)
            rng.shuffle(candidates)
            for key in candidates[:extra_edges]:
                walk_edges.add(key)

        vlabels = [graph.vertex_label(v) for v in visited]
        triples = [
            (index[u], index[v], graph.edge_label(u, v))
            for u, v in sorted(walk_edges)
        ]
        return LabeledGraph(vlabels, triples)

    raise GraphError(
        f"could not grow a {num_vertices}-vertex connected query in "
        f"{max_restarts} restarts (graph too fragmented)"
    )


def query_workload(graph: LabeledGraph, num_queries: int,
                   query_vertices: int, seed: int = 0,
                   extra_edges: int = 0) -> List[LabeledGraph]:
    """A list of random-walk queries with distinct derived seeds."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(num_queries):
        out.append(random_walk_query(
            graph, query_vertices, seed=int(rng.integers(2 ** 31)),
            extra_edges=extra_edges))
    return out
