"""Labeled-graph substrate: structures, generators, datasets, I/O."""

from repro.graph.generators import (
    mesh_graph,
    power_law_labels,
    query_workload,
    random_walk_query,
    rdf_like_graph,
    scale_free_graph,
)
from repro.graph.io import load_graph, save_graph
from repro.graph.labeled_graph import (
    GraphBuilder,
    LabeledGraph,
    path_query,
    triangle_query,
)
from repro.graph.partition import EdgeLabelPartition, partition_by_edge_label
from repro.graph.stats import (
    GraphStats,
    edge_label_histogram,
    graph_stats,
    vertex_label_histogram,
)

__all__ = [
    "GraphBuilder",
    "LabeledGraph",
    "path_query",
    "triangle_query",
    "EdgeLabelPartition",
    "partition_by_edge_label",
    "mesh_graph",
    "power_law_labels",
    "query_workload",
    "random_walk_query",
    "rdf_like_graph",
    "scale_free_graph",
    "GraphStats",
    "edge_label_histogram",
    "graph_stats",
    "vertex_label_histogram",
    "load_graph",
    "save_graph",
]
