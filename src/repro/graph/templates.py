"""Query-template generators: the classic subgraph-matching shapes.

Besides the paper's random-walk queries, the subgraph-matching
literature evaluates on structured templates — paths, stars, cycles,
cliques, and "flower" combinations.  These helpers instantiate a
template against a data graph by *sampling an actual occurrence*, so
every generated query is guaranteed to have at least one match.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.labeled_graph import GraphBuilder, LabeledGraph


def _labels_of(graph: LabeledGraph, vertices: Sequence[int]) -> List[int]:
    return [graph.vertex_label(int(v)) for v in vertices]


def sample_path(graph: LabeledGraph, length: int, seed: int = 0,
                max_tries: int = 500) -> LabeledGraph:
    """A path template with ``length`` edges sampled from ``graph``.

    Vertices along the sample are distinct, so the template embeds.
    """
    if length < 1:
        raise GraphError("path needs at least one edge")
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        v = int(rng.integers(graph.num_vertices))
        walk = [v]
        ok = True
        for _ in range(length):
            nbrs = [int(x) for x in graph.neighbors(walk[-1])
                    if int(x) not in walk]
            if not nbrs:
                ok = False
                break
            walk.append(nbrs[int(rng.integers(len(nbrs)))])
        if not ok:
            continue
        b = GraphBuilder()
        ids = b.add_vertices(_labels_of(graph, walk))
        for i in range(length):
            b.add_edge(ids[i], ids[i + 1],
                       graph.edge_label(walk[i], walk[i + 1]))
        return b.build()
    raise GraphError(f"no simple path of length {length} found")


def sample_star(graph: LabeledGraph, leaves: int, seed: int = 0,
                max_tries: int = 500) -> LabeledGraph:
    """A star template: one center with ``leaves`` sampled neighbors."""
    if leaves < 1:
        raise GraphError("star needs at least one leaf")
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        center = int(rng.integers(graph.num_vertices))
        nbrs = graph.neighbors(center)
        if len(nbrs) < leaves:
            continue
        chosen = rng.choice(len(nbrs), size=leaves, replace=False)
        picked = [int(nbrs[i]) for i in chosen]
        b = GraphBuilder()
        c = b.add_vertex(graph.vertex_label(center))
        for w in picked:
            leaf = b.add_vertex(graph.vertex_label(w))
            b.add_edge(c, leaf, graph.edge_label(center, w))
        return b.build()
    raise GraphError(f"no vertex with {leaves} neighbors found")


def sample_cycle(graph: LabeledGraph, length: int, seed: int = 0,
                 max_tries: int = 2000) -> LabeledGraph:
    """A cycle template of ``length`` edges sampled from ``graph``.

    Found by sampling simple paths of ``length - 1`` edges whose
    endpoints are adjacent.
    """
    if length < 3:
        raise GraphError("cycle needs at least three edges")
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        v = int(rng.integers(graph.num_vertices))
        walk = [v]
        ok = True
        for _ in range(length - 1):
            nbrs = [int(x) for x in graph.neighbors(walk[-1])
                    if int(x) not in walk]
            if not nbrs:
                ok = False
                break
            walk.append(nbrs[int(rng.integers(len(nbrs)))])
        if not ok or not graph.has_edge(walk[-1], walk[0]):
            continue
        b = GraphBuilder()
        ids = b.add_vertices(_labels_of(graph, walk))
        for i in range(length - 1):
            b.add_edge(ids[i], ids[i + 1],
                       graph.edge_label(walk[i], walk[i + 1]))
        b.add_edge(ids[-1], ids[0],
                   graph.edge_label(walk[-1], walk[0]))
        return b.build()
    raise GraphError(f"no {length}-cycle found in {max_tries} tries")


def sample_clique(graph: LabeledGraph, size: int, seed: int = 0,
                  max_tries: int = 5000) -> LabeledGraph:
    """A clique template of ``size`` vertices sampled from ``graph``."""
    if size < 2:
        raise GraphError("clique needs at least two vertices")
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        v = int(rng.integers(graph.num_vertices))
        members = [v]
        candidates = set(int(x) for x in graph.neighbors(v))
        while len(members) < size and candidates:
            w = sorted(candidates)[int(rng.integers(len(candidates)))]
            members.append(w)
            candidates &= set(int(x) for x in graph.neighbors(w))
            candidates.discard(w)
        if len(members) < size:
            continue
        b = GraphBuilder()
        ids = b.add_vertices(_labels_of(graph, members))
        for i in range(size):
            for j in range(i + 1, size):
                b.add_edge(ids[i], ids[j],
                           graph.edge_label(members[i], members[j]))
        return b.build()
    raise GraphError(f"no {size}-clique found in {max_tries} tries")


TEMPLATE_SAMPLERS = {
    "path": sample_path,
    "star": sample_star,
    "cycle": sample_cycle,
    "clique": sample_clique,
}


def template_workload(graph: LabeledGraph, template: str, size: int,
                      count: int, seed: int = 0) -> List[LabeledGraph]:
    """``count`` instances of one template family.

    ``size`` means edges for paths/cycles, leaves for stars, vertices
    for cliques (each sampler's natural parameter).
    """
    try:
        sampler = TEMPLATE_SAMPLERS[template]
    except KeyError:
        raise GraphError(
            f"unknown template {template!r}; choose from "
            f"{sorted(TEMPLATE_SAMPLERS)}") from None
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        out.append(sampler(graph, size, seed=int(rng.integers(2 ** 31))))
    return out
