"""Binary persistence for graphs and precomputed engine structures.

Building signature tables and PCSR partitions is the "offline" phase of
the paper; real deployments persist them.  NumPy ``.npz`` archives keep
everything dependency-free and fast to reload.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.core.signature_table import SignatureTable
from repro.errors import GraphError
from repro.graph.labeled_graph import LabeledGraph

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_graph_npz(graph: LabeledGraph, path: PathLike) -> None:
    """Write a graph to a compressed ``.npz`` archive."""
    edges = list(graph.edges())
    arr = (np.array(edges, dtype=np.int64) if edges
           else np.empty((0, 3), dtype=np.int64))
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        vertex_labels=np.asarray(graph.vertex_labels, dtype=np.int64),
        edges=arr,
    )


def load_graph_npz(path: PathLike) -> LabeledGraph:
    """Load a graph written by :func:`save_graph_npz`."""
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise GraphError(
                f"unsupported graph archive version {version}")
        vlabels = data["vertex_labels"]
        edges = [tuple(int(x) for x in row) for row in data["edges"]]
    return LabeledGraph(vlabels, edges)


def save_signature_table(table: SignatureTable, path: PathLike) -> None:
    """Persist a precomputed signature table."""
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        table=table.table,
        column_first=np.bool_(table.column_first),
    )


def load_signature_table(path: PathLike) -> SignatureTable:
    """Reload a signature table written by :func:`save_signature_table`."""
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise GraphError(
                f"unsupported signature archive version {version}")
        return SignatureTable(data["table"].astype(np.uint32),
                              column_first=bool(data["column_first"]))
