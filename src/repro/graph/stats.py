"""Descriptive statistics over labeled graphs (Table III style)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary of one graph, mirroring a Table III row."""

    num_vertices: int
    num_edges: int
    num_vertex_labels: int
    num_edge_labels: int
    max_degree: int
    mean_degree: float

    def as_row(self) -> str:
        """Render as a fixed-width text row for harness output."""
        return (
            f"|V|={self.num_vertices:>8}  |E|={self.num_edges:>8}  "
            f"|LV|={self.num_vertex_labels:>5}  "
            f"|LE|={self.num_edge_labels:>5}  "
            f"MD={self.max_degree:>6}  avg_deg={self.mean_degree:6.2f}"
        )


def graph_stats(graph: LabeledGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    n = graph.num_vertices
    degrees = np.array([graph.degree(v) for v in range(n)], dtype=np.int64)
    return GraphStats(
        num_vertices=n,
        num_edges=graph.num_edges,
        num_vertex_labels=len(graph.distinct_vertex_labels()),
        num_edge_labels=len(graph.distinct_edge_labels()),
        max_degree=int(degrees.max()) if n else 0,
        mean_degree=float(degrees.mean()) if n else 0.0,
    )


def edge_label_histogram(graph: LabeledGraph) -> Dict[int, int]:
    """``freq(l)`` for every edge label, as a dict."""
    return {lab: graph.edge_label_frequency(lab)
            for lab in graph.distinct_edge_labels()}


def vertex_label_histogram(graph: LabeledGraph) -> Dict[int, int]:
    """Occurrences of each vertex label."""
    unique, counts = np.unique(graph.vertex_labels, return_counts=True)
    return {int(lab): int(cnt) for lab, cnt in zip(unique, counts)}
