"""Undirected labeled graphs: the substrate both GSI and all baselines share.

A :class:`LabeledGraph` is immutable once built.  Vertices are dense integer
ids ``0..n-1``; every vertex carries an integer label and every edge carries
an integer label (Definition 1 of the paper).  Internally adjacency is kept
in a CSR-like layout where each vertex's incidence segment is sorted by
``(edge_label, neighbor)`` so that ``N(v, l)`` — the primitive the whole
paper revolves around — is a binary search plus one contiguous slice.

Use :class:`GraphBuilder` to construct graphs incrementally::

    b = GraphBuilder()
    a_vertex = b.add_vertex(label=3)
    other = b.add_vertex(label=5)
    b.add_edge(a_vertex, other, label=1)
    g = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.arraytypes import Array
from repro.errors import GraphError

Edge = Tuple[int, int, int]  # (u, v, edge_label) with u < v


@dataclass(frozen=True)
class CSRPatchStats:
    """Work accounting for one :meth:`LabeledGraph.apply_changes` call.

    Only *touched* rows count: the CSR splice streams each changed
    vertex's old incidence segment in and its new segment out, so these
    numbers scale with the change set, not with ``|E|``.  (The untouched
    remainder of the arrays is shared wholesale — on a device that is a
    buffer reuse / copy-on-write, not a stream.)
    """

    rows_spliced: int = 0
    #: incidence words read from the touched rows of the old CSR
    words_read: int = 0
    #: incidence words written into the touched rows of the new CSR
    words_written: int = 0

    @property
    def touched_words(self) -> int:
        return self.words_read + self.words_written


class LabeledGraph:
    """An immutable undirected graph with vertex and edge labels.

    Parameters
    ----------
    vertex_labels:
        Sequence of integer labels, one per vertex; its length defines the
        number of vertices.
    edges:
        Iterable of ``(u, v, label)`` triples.  Edges are undirected; at
        most one edge may exist between a vertex pair, and self loops are
        rejected (subgraph isomorphism is defined on simple graphs).
    """

    def __init__(self, vertex_labels: Sequence[int],
                 edges: Iterable[Edge]) -> None:
        self._vlabels = np.asarray(vertex_labels, dtype=np.int64)
        if self._vlabels.ndim != 1:
            raise GraphError("vertex_labels must be one-dimensional")
        n = int(self._vlabels.shape[0])

        if isinstance(edges, np.ndarray):
            edge_arr = np.asarray(edges, dtype=np.int64)
        else:
            edge_list = list(edges)
            edge_arr = (np.asarray(edge_list, dtype=np.int64) if edge_list
                        else np.empty((0, 3), dtype=np.int64))
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 3)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 3:
            raise GraphError("edges must be (u, v, label) triples")

        eu, ev, elab = edge_arr[:, 0], edge_arr[:, 1], edge_arr[:, 2]
        bad = (eu < 0) | (eu >= n) | (ev < 0) | (ev >= n)
        if bad.any():
            i = int(np.argmax(bad))
            raise GraphError(
                f"edge ({int(eu[i])}, {int(ev[i])}) references a missing "
                f"vertex")
        loops = eu == ev
        if loops.any():
            i = int(np.argmax(loops))
            raise GraphError(
                f"self loop at vertex {int(eu[i])} is not allowed")

        # Deduplicate on the normalized (min, max) endpoint pair, keeping
        # first-occurrence input order and rejecting conflicting labels.
        lo = np.minimum(eu, ev)
        hi = np.maximum(eu, ev)
        keys = lo * max(n, 1) + hi
        _, first_idx, inverse = np.unique(keys, return_index=True,
                                          return_inverse=True)
        conflict = elab != elab[first_idx][inverse]
        if conflict.any():
            i = int(np.argmax(conflict))
            j = int(first_idx[int(inverse[i])])
            raise GraphError(
                f"conflicting labels {int(elab[j])} and {int(elab[i])} "
                f"for edge {(int(lo[i]), int(hi[i]))}")
        kept = np.sort(first_idx)
        lo, hi, elab = lo[kept], hi[kept], elab[kept]
        self._edge_map = dict(zip(zip(lo.tolist(), hi.tolist()),
                                  elab.tolist()))

        # Build the CSR-like incidence layout, each segment sorted by
        # (edge_label, neighbor) so N(v, l) is a searchsorted + slice.
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        lab_arr = np.concatenate([elab, elab])
        order = np.lexsort((dst, lab_arr, src))
        src, dst, lab_arr = src[order], dst[order], lab_arr[order]

        self._offsets = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self._offsets, src + 1, 1)
        np.cumsum(self._offsets, out=self._offsets)
        self._nbr = dst
        self._elab = lab_arr

        freq_labels, freq_counts = np.unique(elab, return_counts=True)
        self._edge_label_freq = dict(zip(freq_labels.tolist(),
                                         freq_counts.tolist()))

    # ------------------------------------------------------------------
    # Basic size / label accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices, ``|V(G)|``."""
        return int(self._vlabels.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, ``|E(G)|``."""
        return len(self._edge_map)

    @property
    def vertex_labels(self) -> Array:
        """Read-only array of vertex labels indexed by vertex id."""
        return self._vlabels

    def vertex_label(self, v: int) -> int:
        """Label of vertex ``v``."""
        return int(self._vlabels[v])

    def distinct_vertex_labels(self) -> List[int]:
        """Sorted list of vertex labels present in the graph."""
        return sorted(int(x) for x in np.unique(self._vlabels))

    def distinct_edge_labels(self) -> List[int]:
        """Sorted list of edge labels present in the graph."""
        return sorted(self._edge_label_freq)

    def edge_label_frequency(self, label: int) -> int:
        """``freq(l)``: how many edges of ``G`` carry ``label``."""
        return self._edge_label_freq.get(label, 0)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def degree(self, v: int) -> int:
        """Number of neighbors of ``v``."""
        return int(self._offsets[v + 1] - self._offsets[v])

    def neighbors(self, v: int) -> Array:
        """``N(v)``: neighbors of ``v`` (unsorted, grouped by label)."""
        return self._nbr[self._offsets[v]:self._offsets[v + 1]]

    def incident_labels(self, v: int) -> Array:
        """Edge labels aligned with :meth:`neighbors`."""
        return self._elab[self._offsets[v]:self._offsets[v + 1]]

    def neighbors_by_label(self, v: int, label: int) -> Array:
        """``N(v, l)``: neighbors of ``v`` over ``label`` edges, sorted.

        This is the primitive whose memory cost PCSR optimizes; here it is
        the *functional* version used by every engine for correctness.
        """
        lo, hi = self._offsets[v], self._offsets[v + 1]
        seg = self._elab[lo:hi]
        left = lo + np.searchsorted(seg, label, side="left")
        right = lo + np.searchsorted(seg, label, side="right")
        return self._nbr[left:right]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge exists between ``u`` and ``v``."""
        key = (u, v) if u < v else (v, u)
        return key in self._edge_map

    def edge_label(self, u: int, v: int) -> int:
        """Label of the edge between ``u`` and ``v``.

        Raises :class:`~repro.errors.GraphError` if no such edge exists.
        """
        key = (u, v) if u < v else (v, u)
        try:
            return self._edge_map[key]
        except KeyError:
            raise GraphError(f"no edge between {u} and {v}") from None

    def edges(self) -> Iterator[Edge]:
        """Iterate ``(u, v, label)`` with ``u < v`` in insertion order."""
        for (u, v), lab in self._edge_map.items():
            yield (u, v, lab)

    def max_degree(self) -> int:
        """Maximum degree over all vertices (``MD`` in Table III)."""
        if self.num_vertices == 0:
            return 0
        return int(np.max(self._offsets[1:] - self._offsets[:-1]))

    def csr_arrays(self) -> Tuple[Array, Array, Array,
                                  Array]:
        """``(vertex_labels, degrees, neighbors, incident_labels)``.

        The shift-invariant CSR view the shared-memory data plane
        publishes: degrees ship instead of offsets because a patched
        snapshot shifts every offset after the first touched row while
        untouched rows' degrees (and incidence content) are unchanged —
        which is what lets untouched blocks be shared between snapshots.
        Offsets are recovered as the prefix sum of the degrees.
        """
        return (self._vlabels, self._offsets[1:] - self._offsets[:-1],
                self._nbr, self._elab)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the graph is connected (BFS from vertex 0)."""
        n = self.num_vertices
        if n == 0:
            return True
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            v = stack.pop()
            for w in self.neighbors(v):
                w = int(w)
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
        return count == n

    def subgraph_of_edges(self, keep: Iterable[Edge]) -> "LabeledGraph":
        """New graph with the same vertex set but only ``keep`` edges."""
        return LabeledGraph(self._vlabels.copy(), keep)

    # ------------------------------------------------------------------
    # Incremental construction (the O(changes) commit path)
    # ------------------------------------------------------------------

    def apply_changes(self, inserted: Iterable[Edge],
                      deleted: Iterable[Edge],
                      new_vertex_labels: Sequence[int] = (),
                      ) -> Tuple["LabeledGraph", CSRPatchStats]:
        """New graph = this graph plus a *net* change set, by CSR splice.

        ``inserted`` and ``deleted`` are ``(u, v, label)`` triples net
        against this graph (a relabel appears in both).  Only the rows
        of touched vertices are re-derived — filtered, merged and
        re-sorted by ``(edge_label, neighbor)`` — and spliced into
        copies of the CSR arrays; every untouched row is block-copied
        unchanged.  Work and the returned :class:`CSRPatchStats` scale
        with the change set, which is what makes
        :meth:`repro.dynamic.graph.DynamicGraph.commit` O(changes)
        instead of O(|E|).

        Raises :class:`~repro.errors.GraphError` when a deletion names a
        missing edge (or the wrong label), an insertion duplicates a
        surviving edge, or an endpoint is out of range.
        """
        n_old = self.num_vertices
        extra = np.asarray(list(new_vertex_labels), dtype=np.int64)
        n = n_old + len(extra)

        # --- Normalize + validate the change set (O(changes)). --------
        del_pairs: Dict[Tuple[int, int], int] = {}
        for u, v, lab in deleted:
            u, v, lab = int(u), int(v), int(lab)
            key = (u, v) if u < v else (v, u)
            if key in del_pairs:
                raise GraphError(f"edge {key} deleted twice")
            have = self._edge_map.get(key)
            if have is None:
                raise GraphError(f"no edge between {key[0]} and {key[1]}")
            if have != lab:
                raise GraphError(
                    f"edge {key} carries label {have}, not {lab}")
            del_pairs[key] = lab
        ins_pairs: Dict[Tuple[int, int], int] = {}
        for u, v, lab in inserted:
            u, v, lab = int(u), int(v), int(lab)
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(
                    f"edge ({u}, {v}) references a missing vertex")
            if u == v:
                raise GraphError(f"self loop at vertex {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in ins_pairs:
                raise GraphError(f"edge {key} inserted twice")
            if key in self._edge_map and key not in del_pairs:
                raise GraphError(
                    f"edge {key} already exists; delete it first to "
                    f"relabel")
            ins_pairs[key] = lab

        if not del_pairs and not ins_pairs and not len(extra):
            return self, CSRPatchStats()

        # --- Per-vertex change lists (O(changes)). --------------------
        rem_at: Dict[int, Set[int]] = {}
        add_at: Dict[int, List[Tuple[int, int]]] = {}
        for (lo, hi), _lab in del_pairs.items():
            rem_at.setdefault(lo, set()).add(hi)
            rem_at.setdefault(hi, set()).add(lo)
        for (lo, hi), lab in ins_pairs.items():
            add_at.setdefault(lo, []).append((lab, hi))
            add_at.setdefault(hi, []).append((lab, lo))
        touched = sorted(set(rem_at) | set(add_at)
                         | set(range(n_old, n)))

        # --- Metadata: labels, edge map, label frequencies. -----------
        vlabels = (np.concatenate([self._vlabels, extra]) if len(extra)
                   else self._vlabels)
        edge_map = dict(self._edge_map)
        freq = dict(self._edge_label_freq)
        for key, lab in del_pairs.items():
            del edge_map[key]
            freq[lab] -= 1
            if not freq[lab]:
                del freq[lab]
        for key, lab in ins_pairs.items():
            edge_map[key] = lab
            freq[lab] = freq.get(lab, 0) + 1

        # --- Offsets: adjust touched degrees, re-prefix-sum. ----------
        deg = np.empty(n, dtype=np.int64)
        np.subtract(self._offsets[1:], self._offsets[:-1],
                    out=deg[:n_old])
        deg[n_old:] = 0
        for v in touched:
            deg[v] += (len(add_at.get(v, ()))
                       - len(rem_at.get(v, ())))
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=offsets[1:])

        # --- Splice rows: bulk-copy untouched runs, rebuild touched. --
        total = int(offsets[n])
        nbr = np.empty(total, dtype=np.int64)
        elab = np.empty(total, dtype=np.int64)
        words_read = 0
        words_written = 0
        prev = 0  # next untouched vertex to copy from
        for v in touched:
            if prev < v and prev < n_old:
                stop = min(v, n_old)
                o_lo, o_hi = int(self._offsets[prev]), \
                    int(self._offsets[stop])
                d_lo = int(offsets[prev])
                nbr[d_lo:d_lo + (o_hi - o_lo)] = self._nbr[o_lo:o_hi]
                elab[d_lo:d_lo + (o_hi - o_lo)] = self._elab[o_lo:o_hi]
            if v < n_old:
                o_lo, o_hi = int(self._offsets[v]), \
                    int(self._offsets[v + 1])
                seg_n = self._nbr[o_lo:o_hi]
                seg_l = self._elab[o_lo:o_hi]
                words_read += o_hi - o_lo
            else:
                seg_n = seg_l = nbr[:0]
            rem = rem_at.get(v)
            if rem:
                keep = ~np.isin(seg_n,
                                np.fromiter(rem, dtype=np.int64,
                                            count=len(rem)))
                seg_n, seg_l = seg_n[keep], seg_l[keep]
            adds = add_at.get(v)
            if adds:
                add_l = np.array([a[0] for a in adds], dtype=np.int64)
                add_n = np.array([a[1] for a in adds], dtype=np.int64)
                seg_n = np.concatenate([seg_n, add_n])
                seg_l = np.concatenate([seg_l, add_l])
                order = np.lexsort((seg_n, seg_l))
                seg_n, seg_l = seg_n[order], seg_l[order]
            d_lo = int(offsets[v])
            nbr[d_lo:d_lo + len(seg_n)] = seg_n
            elab[d_lo:d_lo + len(seg_l)] = seg_l
            words_written += len(seg_n)
            prev = v + 1
        if prev < n_old:
            o_lo, o_hi = int(self._offsets[prev]), \
                int(self._offsets[n_old])
            d_lo = int(offsets[prev])
            nbr[d_lo:d_lo + (o_hi - o_lo)] = self._nbr[o_lo:o_hi]
            elab[d_lo:d_lo + (o_hi - o_lo)] = self._elab[o_lo:o_hi]

        patched = object.__new__(LabeledGraph)
        patched._vlabels = vlabels
        patched._edge_map = edge_map
        patched._offsets = offsets
        patched._nbr = nbr
        patched._elab = elab
        patched._edge_label_freq = freq
        stats = CSRPatchStats(rows_spliced=len(touched),
                              words_read=words_read,
                              words_written=words_written)
        return patched, stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LabeledGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"|LV|={len(set(self._vlabels.tolist()))}, "
            f"|LE|={len(self._edge_label_freq)})"
        )


class GraphBuilder:
    """Mutable accumulator that produces a :class:`LabeledGraph`."""

    def __init__(self) -> None:
        self._vlabels: List[int] = []
        self._edges: List[Edge] = []

    def add_vertex(self, label: int) -> int:
        """Add one vertex with ``label``; returns its id."""
        self._vlabels.append(int(label))
        return len(self._vlabels) - 1

    def add_vertices(self, labels: Iterable[int]) -> List[int]:
        """Add several vertices; returns their ids in order."""
        return [self.add_vertex(lab) for lab in labels]

    def add_edge(self, u: int, v: int, label: int) -> None:
        """Add one undirected labeled edge."""
        self._edges.append((int(u), int(v), int(label)))

    @property
    def num_vertices(self) -> int:
        return len(self._vlabels)

    def build(self) -> LabeledGraph:
        """Freeze into an immutable :class:`LabeledGraph`."""
        return LabeledGraph(self._vlabels, self._edges)


def triangle_query(vlabels: Tuple[int, int, int] = (0, 0, 0),
                   elabels: Tuple[int, int, int] = (0, 0, 0)) -> LabeledGraph:
    """A labeled triangle, the smallest cyclic query; handy in tests."""
    b = GraphBuilder()
    ids = b.add_vertices(vlabels)
    b.add_edge(ids[0], ids[1], elabels[0])
    b.add_edge(ids[1], ids[2], elabels[1])
    b.add_edge(ids[0], ids[2], elabels[2])
    return b.build()


def path_query(vlabels: Sequence[int], elabels: Optional[Sequence[int]] = None
               ) -> LabeledGraph:
    """A labeled path ``v0 - v1 - ... - vk``; handy in tests and examples."""
    if elabels is None:
        elabels = [0] * (len(vlabels) - 1)
    if len(elabels) != len(vlabels) - 1:
        raise GraphError("need exactly len(vlabels) - 1 edge labels")
    b = GraphBuilder()
    ids = b.add_vertices(vlabels)
    for i, lab in enumerate(elabels):
        b.add_edge(ids[i], ids[i + 1], lab)
    return b.build()
