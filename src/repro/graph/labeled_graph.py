"""Undirected labeled graphs: the substrate both GSI and all baselines share.

A :class:`LabeledGraph` is immutable once built.  Vertices are dense integer
ids ``0..n-1``; every vertex carries an integer label and every edge carries
an integer label (Definition 1 of the paper).  Internally adjacency is kept
in a CSR-like layout where each vertex's incidence segment is sorted by
``(edge_label, neighbor)`` so that ``N(v, l)`` — the primitive the whole
paper revolves around — is a binary search plus one contiguous slice.

Use :class:`GraphBuilder` to construct graphs incrementally::

    b = GraphBuilder()
    a_vertex = b.add_vertex(label=3)
    other = b.add_vertex(label=5)
    b.add_edge(a_vertex, other, label=1)
    g = b.build()
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError

Edge = Tuple[int, int, int]  # (u, v, edge_label) with u < v


class LabeledGraph:
    """An immutable undirected graph with vertex and edge labels.

    Parameters
    ----------
    vertex_labels:
        Sequence of integer labels, one per vertex; its length defines the
        number of vertices.
    edges:
        Iterable of ``(u, v, label)`` triples.  Edges are undirected; at
        most one edge may exist between a vertex pair, and self loops are
        rejected (subgraph isomorphism is defined on simple graphs).
    """

    def __init__(self, vertex_labels: Sequence[int], edges: Iterable[Edge]):
        self._vlabels = np.asarray(vertex_labels, dtype=np.int64)
        if self._vlabels.ndim != 1:
            raise GraphError("vertex_labels must be one-dimensional")
        n = int(self._vlabels.shape[0])

        if isinstance(edges, np.ndarray):
            edge_arr = np.asarray(edges, dtype=np.int64)
        else:
            edge_list = list(edges)
            edge_arr = (np.asarray(edge_list, dtype=np.int64) if edge_list
                        else np.empty((0, 3), dtype=np.int64))
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 3)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 3:
            raise GraphError("edges must be (u, v, label) triples")

        eu, ev, elab = edge_arr[:, 0], edge_arr[:, 1], edge_arr[:, 2]
        bad = (eu < 0) | (eu >= n) | (ev < 0) | (ev >= n)
        if bad.any():
            i = int(np.argmax(bad))
            raise GraphError(
                f"edge ({int(eu[i])}, {int(ev[i])}) references a missing "
                f"vertex")
        loops = eu == ev
        if loops.any():
            i = int(np.argmax(loops))
            raise GraphError(
                f"self loop at vertex {int(eu[i])} is not allowed")

        # Deduplicate on the normalized (min, max) endpoint pair, keeping
        # first-occurrence input order and rejecting conflicting labels.
        lo = np.minimum(eu, ev)
        hi = np.maximum(eu, ev)
        keys = lo * max(n, 1) + hi
        _, first_idx, inverse = np.unique(keys, return_index=True,
                                          return_inverse=True)
        conflict = elab != elab[first_idx][inverse]
        if conflict.any():
            i = int(np.argmax(conflict))
            j = int(first_idx[int(inverse[i])])
            raise GraphError(
                f"conflicting labels {int(elab[j])} and {int(elab[i])} "
                f"for edge {(int(lo[i]), int(hi[i]))}")
        kept = np.sort(first_idx)
        lo, hi, elab = lo[kept], hi[kept], elab[kept]
        self._edge_map = dict(zip(zip(lo.tolist(), hi.tolist()),
                                  elab.tolist()))

        # Build the CSR-like incidence layout, each segment sorted by
        # (edge_label, neighbor) so N(v, l) is a searchsorted + slice.
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        lab_arr = np.concatenate([elab, elab])
        order = np.lexsort((dst, lab_arr, src))
        src, dst, lab_arr = src[order], dst[order], lab_arr[order]

        self._offsets = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self._offsets, src + 1, 1)
        np.cumsum(self._offsets, out=self._offsets)
        self._nbr = dst
        self._elab = lab_arr

        freq_labels, freq_counts = np.unique(elab, return_counts=True)
        self._edge_label_freq = dict(zip(freq_labels.tolist(),
                                         freq_counts.tolist()))

    # ------------------------------------------------------------------
    # Basic size / label accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices, ``|V(G)|``."""
        return int(self._vlabels.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, ``|E(G)|``."""
        return len(self._edge_map)

    @property
    def vertex_labels(self) -> np.ndarray:
        """Read-only array of vertex labels indexed by vertex id."""
        return self._vlabels

    def vertex_label(self, v: int) -> int:
        """Label of vertex ``v``."""
        return int(self._vlabels[v])

    def distinct_vertex_labels(self) -> List[int]:
        """Sorted list of vertex labels present in the graph."""
        return sorted(int(x) for x in np.unique(self._vlabels))

    def distinct_edge_labels(self) -> List[int]:
        """Sorted list of edge labels present in the graph."""
        return sorted(self._edge_label_freq)

    def edge_label_frequency(self, label: int) -> int:
        """``freq(l)``: how many edges of ``G`` carry ``label``."""
        return self._edge_label_freq.get(label, 0)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def degree(self, v: int) -> int:
        """Number of neighbors of ``v``."""
        return int(self._offsets[v + 1] - self._offsets[v])

    def neighbors(self, v: int) -> np.ndarray:
        """``N(v)``: all neighbors of ``v`` (unsorted by id, grouped by label)."""
        return self._nbr[self._offsets[v]:self._offsets[v + 1]]

    def incident_labels(self, v: int) -> np.ndarray:
        """Edge labels aligned with :meth:`neighbors`."""
        return self._elab[self._offsets[v]:self._offsets[v + 1]]

    def neighbors_by_label(self, v: int, label: int) -> np.ndarray:
        """``N(v, l)``: neighbors of ``v`` over edges labeled ``label``, sorted.

        This is the primitive whose memory cost PCSR optimizes; here it is
        the *functional* version used by every engine for correctness.
        """
        lo, hi = self._offsets[v], self._offsets[v + 1]
        seg = self._elab[lo:hi]
        left = lo + np.searchsorted(seg, label, side="left")
        right = lo + np.searchsorted(seg, label, side="right")
        return self._nbr[left:right]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge exists between ``u`` and ``v``."""
        key = (u, v) if u < v else (v, u)
        return key in self._edge_map

    def edge_label(self, u: int, v: int) -> int:
        """Label of the edge between ``u`` and ``v``.

        Raises :class:`~repro.errors.GraphError` if no such edge exists.
        """
        key = (u, v) if u < v else (v, u)
        try:
            return self._edge_map[key]
        except KeyError:
            raise GraphError(f"no edge between {u} and {v}") from None

    def edges(self) -> Iterator[Edge]:
        """Iterate ``(u, v, label)`` with ``u < v`` in insertion order."""
        for (u, v), lab in self._edge_map.items():
            yield (u, v, lab)

    def max_degree(self) -> int:
        """Maximum degree over all vertices (``MD`` in Table III)."""
        if self.num_vertices == 0:
            return 0
        return int(np.max(self._offsets[1:] - self._offsets[:-1]))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the graph is connected (BFS from vertex 0)."""
        n = self.num_vertices
        if n == 0:
            return True
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            v = stack.pop()
            for w in self.neighbors(v):
                w = int(w)
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
        return count == n

    def subgraph_of_edges(self, keep: Iterable[Edge]) -> "LabeledGraph":
        """New graph with the same vertex set but only ``keep`` edges."""
        return LabeledGraph(self._vlabels.copy(), keep)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LabeledGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"|LV|={len(set(self._vlabels.tolist()))}, "
            f"|LE|={len(self._edge_label_freq)})"
        )


class GraphBuilder:
    """Mutable accumulator that produces a :class:`LabeledGraph`."""

    def __init__(self) -> None:
        self._vlabels: List[int] = []
        self._edges: List[Edge] = []

    def add_vertex(self, label: int) -> int:
        """Add one vertex with ``label``; returns its id."""
        self._vlabels.append(int(label))
        return len(self._vlabels) - 1

    def add_vertices(self, labels: Iterable[int]) -> List[int]:
        """Add several vertices; returns their ids in order."""
        return [self.add_vertex(lab) for lab in labels]

    def add_edge(self, u: int, v: int, label: int) -> None:
        """Add one undirected labeled edge."""
        self._edges.append((int(u), int(v), int(label)))

    @property
    def num_vertices(self) -> int:
        return len(self._vlabels)

    def build(self) -> LabeledGraph:
        """Freeze into an immutable :class:`LabeledGraph`."""
        return LabeledGraph(self._vlabels, self._edges)


def triangle_query(vlabels: Tuple[int, int, int] = (0, 0, 0),
                   elabels: Tuple[int, int, int] = (0, 0, 0)) -> LabeledGraph:
    """A labeled triangle, the smallest cyclic query; handy in tests."""
    b = GraphBuilder()
    ids = b.add_vertices(vlabels)
    b.add_edge(ids[0], ids[1], elabels[0])
    b.add_edge(ids[1], ids[2], elabels[1])
    b.add_edge(ids[0], ids[2], elabels[2])
    return b.build()


def path_query(vlabels: Sequence[int], elabels: Optional[Sequence[int]] = None
               ) -> LabeledGraph:
    """A labeled path ``v0 - v1 - ... - vk``; handy in tests and examples."""
    if elabels is None:
        elabels = [0] * (len(vlabels) - 1)
    if len(elabels) != len(vlabels) - 1:
        raise GraphError("need exactly len(vlabels) - 1 edge labels")
    b = GraphBuilder()
    ids = b.add_vertices(vlabels)
    for i, lab in enumerate(elabels):
        b.add_edge(ids[i], ids[i + 1], lab)
    return b.build()
