"""Plain-text serialization for labeled graphs.

Format (one record per line, ``#`` comments allowed)::

    t <num_vertices> <num_edges>
    v <vertex_id> <label>
    e <u> <v> <label>

This is the same family of format used by common subgraph-matching code
releases, so externally produced graphs drop in directly.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from repro.errors import GraphError
from repro.graph.labeled_graph import LabeledGraph

PathLike = Union[str, Path]


def save_graph(graph: LabeledGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in the text format above."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as f:
        f.write(f"t {graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            f.write(f"v {v} {graph.vertex_label(v)}\n")
        for u, v, lab in graph.edges():
            f.write(f"e {u} {v} {lab}\n")


def load_graph(path: PathLike) -> LabeledGraph:
    """Read a graph previously written by :func:`save_graph`."""
    path = Path(path)
    num_vertices = -1
    labels: List[int] = []
    edges: List[Tuple[int, int, int]] = []
    with path.open("r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            kind = parts[0]
            if kind == "t":
                if len(parts) != 3:
                    raise GraphError(f"{path}:{lineno}: bad header")
                num_vertices = int(parts[1])
                labels = [0] * num_vertices
            elif kind == "v":
                if len(parts) != 3:
                    raise GraphError(f"{path}:{lineno}: bad vertex line")
                vid, lab = int(parts[1]), int(parts[2])
                if not 0 <= vid < num_vertices:
                    raise GraphError(
                        f"{path}:{lineno}: vertex id {vid} out of range")
                labels[vid] = lab
            elif kind == "e":
                if len(parts) != 4:
                    raise GraphError(f"{path}:{lineno}: bad edge line")
                edges.append((int(parts[1]), int(parts[2]), int(parts[3])))
            else:
                raise GraphError(
                    f"{path}:{lineno}: unknown record type {kind!r}")
    if num_vertices < 0:
        raise GraphError(f"{path}: missing 't' header line")
    return LabeledGraph(labels, edges)
