"""Edge-label partitioning: ``P(G, l)`` (Section IV of the paper).

For each edge label ``l``, the *edge l-partitioned graph* is the subgraph of
``G`` induced by all edges labeled ``l``; after partitioning, the label
itself is dropped.  PCSR and the other per-label storage structures are all
built from :class:`EdgeLabelPartition` objects.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.arraytypes import Array
from repro.graph.labeled_graph import LabeledGraph


class EdgeLabelPartition:
    """The subgraph of ``G`` induced by edges with one label.

    Attributes
    ----------
    label:
        The edge label this partition corresponds to.
    vertices:
        Sorted array of vertex ids that have at least one incident edge
        with this label.  Note these ids are *not* consecutive, which is
        exactly the problem PCSR's hashed row-offset layer solves.
    """

    def __init__(self, label: int, adjacency: Dict[int, Array]) -> None:
        self.label = label
        self._adj = adjacency
        self.vertices = np.array(sorted(adjacency), dtype=np.int64)

    @property
    def num_vertices(self) -> int:
        """``|V(G, l)|``: vertices incident to at least one l-edge."""
        return len(self._adj)

    @property
    def num_directed_edges(self) -> int:
        """Total adjacency entries (2x the undirected edge count)."""
        return int(sum(len(a) for a in self._adj.values()))

    def has_vertex(self, v: int) -> bool:
        """Whether ``v`` has any incident edge labeled :attr:`label`."""
        return v in self._adj

    def neighbors(self, v: int) -> Array:
        """``N(v, l)`` for this partition's ``l`` (empty if absent)."""
        arr = self._adj.get(v)
        if arr is None:
            return np.empty(0, dtype=np.int64)
        return arr

    def items(self) -> List[Tuple[int, Array]]:
        """``(vertex, neighbor array)`` pairs sorted by vertex id."""
        return [(int(v), self._adj[int(v)]) for v in self.vertices]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeLabelPartition(label={self.label}, "
            f"|V|={self.num_vertices}, entries={self.num_directed_edges})"
        )


def partition_by_edge_label(graph: LabeledGraph
                            ) -> Dict[int, EdgeLabelPartition]:
    """Split ``graph`` into one :class:`EdgeLabelPartition` per edge label.

    The union of all partitions' adjacency is exactly the graph's
    adjacency; each partition stores sorted neighbor arrays.
    """
    per_label: Dict[int, Dict[int, List[int]]] = {}
    for u, v, lab in graph.edges():
        adj = per_label.setdefault(lab, {})
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    result: Dict[int, EdgeLabelPartition] = {}
    for lab, adj in per_label.items():
        frozen = {
            v: np.array(sorted(nbrs), dtype=np.int64)
            for v, nbrs in adj.items()
        }
        result[lab] = EdgeLabelPartition(lab, frozen)
    return result
