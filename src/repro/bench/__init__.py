"""Benchmark harness: workloads, engine runners, paper-style reporting."""

from repro.bench.reporting import (
    drop_pct,
    render_series,
    render_table,
    speedup,
)
from repro.bench.runner import (
    DEFAULT_MAX_ROWS,
    DEFAULT_THRESHOLD_MS,
    WorkloadSummary,
    baseline_factory,
    gsi_factory,
    run_matrix,
    run_workload,
)
from repro.bench.workloads import Workload, standard_workloads

__all__ = [
    "drop_pct",
    "render_series",
    "render_table",
    "speedup",
    "DEFAULT_MAX_ROWS",
    "DEFAULT_THRESHOLD_MS",
    "WorkloadSummary",
    "baseline_factory",
    "gsi_factory",
    "run_matrix",
    "run_workload",
    "Workload",
    "standard_workloads",
]
