"""Benchmark workload definitions (Section VII-A's methodology).

The paper generates 100 random-walk queries per configuration and reports
the average query time; default query size is ``|V(Q)| = 12``.  At our
reduced graph scale we default to fewer queries per point (configurable)
but keep the generation procedure identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.graph.datasets import LOADERS
from repro.graph.generators import query_workload
from repro.graph.labeled_graph import LabeledGraph

DEFAULT_QUERY_VERTICES = 12
DEFAULT_NUM_QUERIES = 5
DEFAULT_WORKLOAD_SEED = 42


@dataclass
class Workload:
    """A data graph plus its query set."""

    name: str
    graph: LabeledGraph
    queries: List[LabeledGraph] = field(default_factory=list)

    @classmethod
    def for_dataset(cls, name: str, scale: float = 1.0,
                    num_queries: int = DEFAULT_NUM_QUERIES,
                    query_vertices: int = DEFAULT_QUERY_VERTICES,
                    seed: int = DEFAULT_WORKLOAD_SEED,
                    extra_edges: int = 0) -> "Workload":
        """Standard workload for one of the named datasets."""
        graph = LOADERS[name](scale=scale)
        queries = query_workload(graph, num_queries, query_vertices,
                                 seed=seed, extra_edges=extra_edges)
        return cls(name=name, graph=graph, queries=queries)

    @classmethod
    def for_graph(cls, name: str, graph: LabeledGraph,
                  num_queries: int = DEFAULT_NUM_QUERIES,
                  query_vertices: int = DEFAULT_QUERY_VERTICES,
                  seed: int = DEFAULT_WORKLOAD_SEED,
                  extra_edges: int = 0) -> "Workload":
        """Workload over an explicitly provided graph."""
        queries = query_workload(graph, num_queries, query_vertices,
                                 seed=seed, extra_edges=extra_edges)
        return cls(name=name, graph=graph, queries=queries)


def standard_workloads(num_queries: int = DEFAULT_NUM_QUERIES,
                       query_vertices: int = DEFAULT_QUERY_VERTICES,
                       scale: float = 1.0) -> Dict[str, Workload]:
    """One workload per paper dataset, in table order."""
    return {
        name: Workload.for_dataset(
            name, scale=scale, num_queries=num_queries,
            query_vertices=query_vertices)
        for name in ("enron", "gowalla", "road", "watdiv", "dbpedia")
    }
