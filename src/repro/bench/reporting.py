"""Text rendering of benchmark results in the paper's table shapes."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 note: str = "") -> str:
    """Fixed-width table matching the paper's presentation style."""
    cols = len(headers)
    widths = [len(str(h)) for h in headers]
    str_rows = []
    for row in rows:
        cells = [_fmt(c) for c in row]
        cells += [""] * (cols - len(cells))
        str_rows.append(cells)
        for i, c in enumerate(cells):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for cells in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
    if note:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_series(title: str, x_label: str, xs: Sequence[object],
                  series: Dict[str, Sequence[Optional[float]]],
                  y_label: str = "time (ms)") -> str:
    """Figure-style output: one row per x, one column per curve."""
    headers = [x_label] + list(series)
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for name in series:
            v = series[name][i]
            row.append("-" if v is None else v)
        rows.append(row)
    return render_table(title, headers, rows, note=y_label)


def drop_pct(before: float, after: float) -> str:
    """Percentage drop, rendered like the paper's 'drop' columns."""
    if before <= 0:
        return "0%"
    return f"{100.0 * (before - after) / before:.0f}%"


def speedup(before: float, after: float) -> str:
    """Speedup factor, rendered like the paper's 'speedup' columns."""
    if after <= 0:
        return "inf"
    return f"{before / after:.1f}x"
