"""Engine runners: execute a workload, average the paper's metrics.

Mirrors the paper's methodology: run every query of a workload, average
query response time; a simulated-time threshold (the paper uses 100 s)
marks engines that "show no result" in Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.baselines import (
    CFLMatchEngine,
    GpSMEngine,
    GunrockSMEngine,
    TurboISOEngine,
    UllmannEngine,
    VF2Engine,
)
from repro.bench.workloads import Workload
from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.core.result import MatchResult
from repro.graph.labeled_graph import LabeledGraph

if TYPE_CHECKING:  # runner is imported by the service benchmarks
    from repro.service.batch import BatchReport

#: the paper's Figure 12 cut-off, scaled to our reduced datasets
DEFAULT_THRESHOLD_MS = 2_000.0

#: safety cap so pure-Python joins cannot blow up the harness
DEFAULT_MAX_ROWS = 300_000


@dataclass
class WorkloadSummary:
    """Averaged metrics over one workload for one engine."""

    engine: str
    dataset: str
    avg_ms: float = 0.0
    avg_join_gld: float = 0.0
    avg_gst: float = 0.0
    total_matches: int = 0
    timeouts: int = 0
    queries: int = 0
    avg_min_candidates: float = 0.0
    results: List[MatchResult] = field(default_factory=list)

    @property
    def timed_out(self) -> bool:
        """Engine considered failed on this workload (Figure 12 gaps)."""
        return self.timeouts > self.queries // 2


EngineFactory = Callable[[LabeledGraph], object]


def gsi_factory(config: Optional[GSIConfig] = None,
                budget_ms: Optional[float] = DEFAULT_THRESHOLD_MS,
                max_rows: Optional[int] = DEFAULT_MAX_ROWS) -> EngineFactory:
    """Factory for GSI engines with harness-level safety limits."""
    base = config if config is not None else GSIConfig()

    def make(graph: LabeledGraph) -> GSIEngine:
        from dataclasses import replace
        cfg = replace(base, budget_ms=budget_ms,
                      max_intermediate_rows=max_rows)
        return GSIEngine(graph, cfg)

    return make


def baseline_factory(kind: str,
                     budget_ms: Optional[float] = DEFAULT_THRESHOLD_MS,
                     max_rows: Optional[int] = DEFAULT_MAX_ROWS,
                     wall_budget_s: Optional[float] = 15.0) -> EngineFactory:
    """Factory for one of the named baseline engines."""

    def make(graph: LabeledGraph):
        if kind == "vf3":
            return VF2Engine(graph, budget_ms=budget_ms,
                             wall_budget_s=wall_budget_s)
        if kind == "cfl":
            return CFLMatchEngine(graph, budget_ms=budget_ms,
                                  wall_budget_s=wall_budget_s)
        if kind == "ullmann":
            return UllmannEngine(graph, budget_ms=budget_ms,
                                 wall_budget_s=wall_budget_s)
        if kind == "turbo":
            return TurboISOEngine(graph, budget_ms=budget_ms,
                                  wall_budget_s=wall_budget_s)
        if kind == "gpsm":
            return GpSMEngine(graph, budget_ms=budget_ms,
                              max_intermediate_rows=max_rows)
        if kind == "gunrock":
            return GunrockSMEngine(graph, budget_ms=budget_ms,
                                   max_intermediate_rows=max_rows)
        raise ValueError(f"unknown engine kind {kind!r}")

    return make


def summarize_results(results: List[MatchResult], engine_label: str,
                      dataset: str) -> WorkloadSummary:
    """Average a list of per-query results into a :class:`WorkloadSummary`.

    Shared by the sequential and batched runners so both report the
    paper's metrics identically.
    """
    summary = WorkloadSummary(engine=engine_label, dataset=dataset)
    total_ms = total_gld = total_gst = total_minc = 0.0
    for result in results:
        summary.results.append(result)
        summary.queries += 1
        if result.timed_out:
            summary.timeouts += 1
            continue
        total_ms += result.elapsed_ms
        total_gld += result.counters.join_gld
        total_gst += result.counters.gst
        summary.total_matches += result.num_matches
        if result.min_candidate_size is not None:
            total_minc += result.min_candidate_size
    done = max(1, summary.queries - summary.timeouts)
    summary.avg_ms = total_ms / done
    summary.avg_join_gld = total_gld / done
    summary.avg_gst = total_gst / done
    summary.avg_min_candidates = total_minc / done
    return summary


def run_workload(factory: EngineFactory, workload: Workload,
                 engine_label: str = "") -> WorkloadSummary:
    """Run every query of ``workload`` on a fresh engine, average metrics."""
    engine = factory(workload.graph)
    label = engine_label or getattr(engine, "name", "engine")
    results: List[MatchResult] = [
        engine.match(query) for query in workload.queries]
    return summarize_results(results, label, workload.name)


def run_workload_batched(workload: Workload,
                         config: Optional[GSIConfig] = None,
                         engine_label: str = "gsi-batch",
                         max_workers: int = 4,
                         cache_capacity: int = 256,
                         budget_ms: Optional[float] = DEFAULT_THRESHOLD_MS,
                         max_rows: Optional[int] = DEFAULT_MAX_ROWS,
                         executor=None,
                         sharded=None,
                         ) -> Tuple[WorkloadSummary, "BatchReport"]:
    """Run a workload through the batch service.

    ``executor`` (a :class:`~repro.service.executors.QueryExecutor`)
    selects how the joining phase runs; ``None`` keeps the default
    thread pool of ``max_workers`` threads.  The caller owns the
    executor's lifecycle.

    ``sharded`` (a :class:`~repro.shard.engine.ShardedEngine`) serves
    the workload scatter-gather over its shards instead of from one
    engine; ``config``/``budget_ms``/``max_rows`` are then taken from
    the sharded engine's own config (the caller tuned it at
    construction).

    Returns the usual :class:`WorkloadSummary` plus the
    :class:`~repro.service.batch.BatchReport` with service-level metrics
    (latency percentiles, plan-cache hit rate, wall-clock throughput).
    """
    from repro.service.batch import BatchEngine

    if sharded is not None:
        engine = BatchEngine(sharded=sharded,
                             max_workers=max_workers,
                             executor=executor)
    else:
        base = config if config is not None else GSIConfig()
        cfg = replace(base, budget_ms=budget_ms,
                      max_intermediate_rows=max_rows)
        engine = BatchEngine(workload.graph, cfg,
                             cache_capacity=cache_capacity,
                             max_workers=max_workers,
                             executor=executor)
    report = engine.run_batch(workload.queries)
    summary = summarize_results(report.results, engine_label,
                                workload.name)
    return summary, report


def run_matrix(factories: Dict[str, EngineFactory],
               workloads: Dict[str, Workload]) -> List[WorkloadSummary]:
    """Cartesian product of engines x workloads (Figure 12 style)."""
    out: List[WorkloadSummary] = []
    for wname, workload in workloads.items():
        for ename, factory in factories.items():
            out.append(run_workload(factory, workload, engine_label=ename))
    return out
