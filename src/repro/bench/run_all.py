"""Regenerate every paper table/figure in one shot.

Usage::

    python -m repro.bench.run_all [--queries N] [--out DIR]

This is a thin, dependency-free alternative to the pytest benchmark
suite: it runs the same sweeps the `benchmarks/bench_*.py` files run and
writes the rendered tables to the output directory (default
``benchmarks/results/``), printing each to stdout as it completes.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.reporting import drop_pct, render_table, speedup
from repro.bench.runner import baseline_factory, gsi_factory, run_workload
from repro.bench.workloads import Workload, standard_workloads
from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine


def _emit(out_dir: Path, name: str, text: str) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(text)
    print()


def run_table6(workloads: Dict[str, Workload], out_dir: Path) -> None:
    chain = [("GSI-", GSIConfig.baseline()), ("+DS", GSIConfig.with_ds()),
             ("+PC", GSIConfig.with_pc()), ("+SO", GSIConfig.gsi())]
    rows = []
    for name, wl in workloads.items():
        summaries = [run_workload(gsi_factory(cfg), wl)
                     for _, cfg in chain]
        row: List[object] = [name]
        prev = None
        for s in summaries:
            row.append(f"{s.avg_join_gld:.0f}")
            if prev is not None:
                row.append(drop_pct(prev.avg_join_gld, s.avg_join_gld))
            prev = s
        prev = None
        for s in summaries:
            row.append(f"{s.avg_ms:.2f}")
            if prev is not None:
                row.append(speedup(prev.avg_ms, s.avg_ms))
            prev = s
        rows.append(row)
    headers = ["dataset", "GLD GSI-", "GLD +DS", "drop", "GLD +PC",
               "drop", "GLD +SO", "drop", "ms GSI-", "ms +DS", "spd",
               "ms +PC", "spd", "ms +SO", "spd"]
    _emit(out_dir, "table6_join_techniques",
          render_table("Table VI analog: join-phase techniques",
                       headers, rows))


def run_table7(workloads: Dict[str, Workload], out_dir: Path) -> None:
    rows = []
    for name, wl in workloads.items():
        nc = run_workload(gsi_factory(
            replace(GSIConfig.gsi(), use_write_cache=False)), wl)
        c = run_workload(gsi_factory(GSIConfig.gsi()), wl)
        rows.append([name, f"{nc.avg_gst:.0f}", f"{c.avg_gst:.0f}",
                     drop_pct(nc.avg_gst, c.avg_gst),
                     f"{nc.avg_ms:.2f}", f"{c.avg_ms:.2f}",
                     drop_pct(nc.avg_ms, c.avg_ms)])
    _emit(out_dir, "table7_write_cache",
          render_table("Table VII analog: write cache",
                       ["dataset", "GST no-cache", "GST cache", "drop",
                        "ms no-cache", "ms cache", "drop"], rows))


def run_table8(workloads: Dict[str, Workload], out_dir: Path) -> None:
    rows = []
    for name, wl in workloads.items():
        base = run_workload(gsi_factory(GSIConfig.gsi()), wl)
        lb = run_workload(gsi_factory(GSIConfig.with_lb()), wl)
        dr = run_workload(gsi_factory(GSIConfig.gsi_opt()), wl)
        rows.append([name, f"{base.avg_ms:.2f}", f"{lb.avg_ms:.2f}",
                     speedup(base.avg_ms, lb.avg_ms),
                     f"{dr.avg_ms:.2f}", speedup(lb.avg_ms, dr.avg_ms)])
    _emit(out_dir, "table8_optimizations",
          render_table("Table VIII analog: optimizations",
                       ["dataset", "ms GSI", "ms +LB", "speedup",
                        "ms +DR", "speedup"], rows))


def run_fig12(workloads: Dict[str, Workload], out_dir: Path) -> None:
    engines = [("VF3", baseline_factory("vf3")),
               ("CFL-Match", baseline_factory("cfl")),
               ("GpSM", baseline_factory("gpsm")),
               ("GunrockSM", baseline_factory("gunrock")),
               ("GSI", gsi_factory(GSIConfig.gsi())),
               ("GSI-opt", gsi_factory(GSIConfig.gsi_opt()))]
    rows = []
    for wname, wl in workloads.items():
        cells: List[object] = [wname]
        for _, factory in engines:
            s = run_workload(factory, wl)
            cells.append("-" if s.timed_out else f"{s.avg_ms:.2f}")
        rows.append(cells)
    _emit(out_dir, "fig12_overall",
          render_table("Figure 12 analog: overall comparison (avg ms)",
                       ["dataset"] + [e for e, _ in engines], rows))


def run_table4(workloads: Dict[str, Workload], out_dir: Path) -> None:
    from repro.core.filtering import label_degree_candidates
    from repro.gpusim.device import Device

    rows = []
    for name, wl in workloads.items():
        gsi = GSIEngine(wl.graph, GSIConfig.gsi())
        agg = {"GpSM": [0.0, 0.0], "GSM": [0.0, 0.0], "GSI": [0.0, 0.0]}
        for q in wl.queries:
            dev = Device()
            c = label_degree_candidates(q, wl.graph, dev, True)
            agg["GpSM"][0] += min(len(x) for x in c.values())
            agg["GpSM"][1] += dev.elapsed_ms
            dev = Device()
            c = label_degree_candidates(q, wl.graph, dev, False)
            agg["GSM"][0] += min(len(x) for x in c.values())
            agg["GSM"][1] += dev.elapsed_ms
            r = gsi.filter_only(q)
            agg["GSI"][0] += r.min_candidate_size
            agg["GSI"][1] += r.elapsed_ms
        n = len(wl.queries)
        rows.append([name] + [f"{agg[k][0] / n:.0f}"
                              for k in ("GpSM", "GSM", "GSI")]
                    + [f"{agg[k][1] / n:.3f}"
                       for k in ("GpSM", "GSM", "GSI")])
    _emit(out_dir, "table4_filtering",
          render_table("Table IV analog: filtering strategies",
                       ["dataset", "minC GpSM", "minC GSM", "minC GSI",
                        "ms GpSM", "ms GSM", "ms GSI"], rows))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench.run_all")
    parser.add_argument("--queries", type=int, default=3)
    parser.add_argument("--query-vertices", type=int, default=12)
    parser.add_argument("--out", default="benchmarks/results")
    args = parser.parse_args(argv)

    out_dir = Path(args.out)
    workloads = standard_workloads(num_queries=args.queries,
                                   query_vertices=args.query_vertices)
    run_table4(workloads, out_dir)
    run_table6(workloads, out_dir)
    run_table7(workloads, out_dir)
    run_table8(workloads, out_dir)
    run_fig12(workloads, out_dir)
    print(f"tables written to {out_dir}/ — the pytest suite "
          f"(pytest benchmarks/) additionally covers Tables II, V, "
          f"IX-XI and Figures 13-15 with shape assertions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
