"""The simulated GPU device: clock, kernel launches, and parallel primitives.

A :class:`Device` owns a :class:`~repro.gpusim.meter.MemoryMeter` and a
cycle clock.  Engines run their functional work in Python and report the
per-task costs of each kernel; the device schedules them over its warp
slots and advances the clock.  ``elapsed_ms`` is the simulated query time
that stands in for the paper's wall-clock measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.arraytypes import Array
from repro.errors import BudgetExceeded
from repro.gpusim.constants import (
    CYCLES_PER_GLD,
    CYCLES_PER_GST,
    CYCLES_PER_OP,
    KERNEL_QUEUE_CYCLES,
    WARP_SLOTS,
    cycles_to_ms,
)
from repro.gpusim.meter import MemoryMeter
from repro.gpusim.scheduler import LoadBalanceConfig, schedule_kernel
from repro.gpusim.transactions import contiguous_read


@dataclass
class KernelRecord:
    """Bookkeeping for one launched kernel (inspectable in tests)."""

    name: str
    num_tasks: int
    elapsed_cycles: float


class Device:
    """Simulated GPU: accumulates cycles across kernel launches.

    Parameters
    ----------
    meter:
        Shared event meter; a fresh one is created if omitted.
    slots:
        Concurrent warp contexts (default: 30 SMs x 32 warps).
    budget_cycles:
        Optional hard cap; exceeding it raises
        :class:`~repro.errors.BudgetExceeded`, which engines convert to a
        timed-out result.  This reproduces the paper's "100 second
        threshold" deterministically.
    """

    def __init__(self, meter: Optional[MemoryMeter] = None,
                 slots: int = WARP_SLOTS,
                 budget_cycles: Optional[float] = None) -> None:
        self.meter = meter if meter is not None else MemoryMeter()
        self.slots = slots
        self.budget_cycles = budget_cycles
        self.clock_cycles = 0.0
        self.kernels: List[KernelRecord] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def elapsed_ms(self) -> float:
        """Simulated elapsed time in milliseconds."""
        return cycles_to_ms(self.clock_cycles)

    def advance(self, cycles: float) -> None:
        """Advance the clock, enforcing the budget if one is set."""
        self.clock_cycles += cycles
        if (self.budget_cycles is not None
                and self.clock_cycles > self.budget_cycles):
            raise BudgetExceeded(
                f"simulated budget exhausted at {self.elapsed_ms:.1f} ms")

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def run_kernel(self, task_cycles: Sequence[float], name: str = "kernel",
                   lb: Optional[LoadBalanceConfig] = None,
                   task_units: Optional[Sequence[float]] = None) -> float:
        """Launch one kernel with the given per-task costs.

        Returns the kernel's elapsed cycles after scheduling (and load
        balancing when ``lb`` is given), and advances the device clock.
        """
        result = schedule_kernel(task_cycles, slots=self.slots, lb=lb,
                                 task_units=task_units)
        self.meter.add_kernel_launch(result.kernel_launches)
        self.kernels.append(
            KernelRecord(name, len(task_cycles), result.elapsed_cycles))
        self.advance(result.elapsed_cycles)
        return result.elapsed_cycles

    def launch_overhead(self, count: int = 1) -> None:
        """Charge the queue cost of ``count`` back-to-back tiny kernel
        launches (the naive one-kernel-per-set-operation mode); the
        launches pipeline through the driver rather than paying the full
        per-kernel latency each."""
        self.meter.add_kernel_launch(count)
        self.advance(KERNEL_QUEUE_CYCLES * count)

    # ------------------------------------------------------------------
    # Parallel primitives
    # ------------------------------------------------------------------

    def exclusive_prefix_sum(self, counts: Sequence[int],
                             name: str = "prefix_sum",
                             fused_tasks: Optional[Sequence[float]] = None
                             ) -> Array:
        """Exclusive scan (GBA offsets, M' offsets — Alg. 3 line 14, Alg. 4).

        Functionally ``offsets[i] = sum(counts[:i])`` with the total
        appended; cost-wise a work-efficient parallel scan: each element is
        read and written O(1) times through coalesced transactions, over
        ``log2(n)`` dependent steps.

        ``fused_tasks`` lets a caller fold per-element producer work into
        the same kernel (e.g. Alg. 4 reads each row's ``|N(v', l0)|``
        upper bound right before scanning it), saving a launch.
        """
        arr = np.asarray(counts, dtype=np.int64)
        n = int(arr.shape[0])
        offsets = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum(arr, out=offsets[1:])
        # Cost: 2 coalesced passes (read + write) plus log-depth latency.
        transactions = 2 * contiguous_read(n)
        self.meter.add_gld(transactions // 2 + transactions % 2)
        self.meter.add_gst(transactions // 2)
        self.meter.add_ops(2 * n)
        depth = max(1, int(np.ceil(np.log2(n))) if n > 1 else 1)
        per_slot = (transactions * CYCLES_PER_GLD) / max(1, self.slots)
        tasks = [per_slot + depth * CYCLES_PER_OP]
        if fused_tasks is not None:
            tasks.extend(fused_tasks)
        self.run_kernel(tasks, name=name)
        return offsets

    def memset_cycles(self, num_elements: int) -> None:
        """Charge a device-wide memset (e.g. zeroing a candidate bitset)."""
        transactions = contiguous_read(num_elements)
        self.meter.add_gst(transactions)
        per_slot = (transactions * CYCLES_PER_GST) / max(1, self.slots)
        self.run_kernel([per_slot], name="memset")
