"""Warp-slot scheduling: turns per-task costs into kernel elapsed time.

A kernel is a bag of warp tasks (in GSI's join, one task per intermediate
table row).  The device has ``WARP_SLOTS`` concurrent warp contexts; tasks
are dispatched in order to the least-loaded slot, and the kernel's elapsed
time is the *makespan* — exactly why the paper's Section VI-A says "the
overall performance is limited by the longest workload".

The 4-layer load-balance scheme (Section VI-A) is implemented here as task
splitting *before* scheduling:

1. tasks larger than ``W1`` get a dedicated kernel spread over the whole
   device (extra launch overhead);
2. tasks larger than ``W2`` (= block size) are spread over a block's warps;
3. within a block, work above ``W3`` is pooled in shared memory and split
   evenly (paying a merge overhead per chunk);
4. the remainder stays on its original warp.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.gpusim.constants import (
    KERNEL_LAUNCH_CYCLES,
    TASK_MERGE_CYCLES,
    WARPS_PER_BLOCK,
    WARP_SLOTS,
)


def makespan(task_cycles: Sequence[float], slots: int = WARP_SLOTS) -> float:
    """Elapsed cycles for tasks dispatched in-order to least-loaded slots.

    With fewer tasks than slots this is simply ``max(task_cycles)``; with
    skewed tasks the largest ones dominate, reproducing the imbalance the
    paper's load-balance scheme targets.
    """
    n = len(task_cycles)
    if n == 0:
        return 0.0
    if slots <= 1:
        return float(sum(task_cycles))
    if n <= slots:
        return float(max(task_cycles))
    heap: List[float] = [0.0] * slots
    for c in task_cycles:
        finish = heapq.heappop(heap)
        heapq.heappush(heap, finish + float(c))
    return max(heap)


@dataclass(frozen=True)
class LoadBalanceConfig:
    """Thresholds of the 4-layer scheme, in *work units* (list elements).

    The paper requires ``W1 > W2 > W3 > 32`` with ``W2`` fixed to the CUDA
    block size (1024); it tunes ``W1 = 4096`` and ``W3 = 256`` (Tables IX
    and X).
    """

    w1: int = 4096
    w2: int = 1024
    w3: int = 256
    cycles_per_unit: float = 14.0
    """Conversion from work units to cycles when splitting (one element
    costs roughly one coalesced-load share plus compare)."""


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one kernel's tasks."""

    elapsed_cycles: float
    kernel_launches: int
    num_tasks_scheduled: int


def split_tasks_4layer(task_units: Sequence[float],
                       cfg: LoadBalanceConfig
                     ) -> Tuple[List[float], float, int]:
    """Apply the 4-layer splitting to per-task work (in units).

    Returns ``(split_unit_list, extra_cycles, extra_launches)`` where
    ``extra_cycles`` covers the dedicated kernels of layer 1 and the merge
    overheads of layers 2-3, and ``extra_launches`` counts layer-1 kernels.
    """
    out: List[float] = []
    extra_cycles = 0.0
    extra_launches = 0
    # Merge overhead is paid by each chunk's warp in parallel, so it is
    # folded into the chunk's own cost (in units) rather than serialized.
    merge_units = TASK_MERGE_CYCLES / cfg.cycles_per_unit
    for units in task_units:
        if units > cfg.w1:
            # Layer 1: dedicated kernel over the whole device; the
            # launch itself is serial host-side overhead.
            extra_launches += 1
            extra_cycles += KERNEL_LAUNCH_CYCLES
            extra_cycles += (units * cfg.cycles_per_unit) / WARP_SLOTS
            continue
        if units > cfg.w2:
            # Layer 2: one whole block works on this task.
            per_warp = units / WARPS_PER_BLOCK
            out.extend([per_warp + merge_units] * WARPS_PER_BLOCK)
            continue
        if units > cfg.w3:
            # Layer 3: excess beyond W3 pooled and split evenly in-block.
            chunks = int(units // cfg.w3) + (1 if units % cfg.w3 else 0)
            per_chunk = units / chunks
            out.extend([per_chunk + merge_units] * chunks)
            continue
        # Layer 4: stays on its warp.
        out.append(float(units))
    return out, extra_cycles, extra_launches


def schedule_kernel(task_cycles: Sequence[float],
                    slots: int = WARP_SLOTS,
                    lb: Optional[LoadBalanceConfig] = None,
                    task_units: Optional[Sequence[float]] = None
                    ) -> ScheduleResult:
    """Schedule one kernel; optionally load-balanced.

    ``task_cycles`` is the authoritative cost per task.  When ``lb`` is
    given, ``task_units`` (work in list elements, defaulting to
    cycles/``cycles_per_unit``) drives the threshold comparisons, and the
    cycle costs are re-derived from the split units.
    """
    launches = 1
    if lb is None:
        elapsed = KERNEL_LAUNCH_CYCLES + makespan(task_cycles, slots)
        return ScheduleResult(elapsed, launches, len(task_cycles))

    if task_units is None:
        task_units = [c / lb.cycles_per_unit for c in task_cycles]
    split_units, extra_cycles, extra_launches = split_tasks_4layer(
        task_units, lb)
    split_cycles = [u * lb.cycles_per_unit for u in split_units]
    elapsed = (KERNEL_LAUNCH_CYCLES + makespan(split_cycles, slots)
               + extra_cycles)
    return ScheduleResult(elapsed, launches + extra_launches,
                          len(split_cycles))
