"""Memory-transaction arithmetic: the unit the whole paper optimizes.

Global memory is accessed through 128-byte transactions (Section II-B,
Figures 5-6).  A warp reading 32 consecutive aligned 4-byte words needs one
transaction (coalesced); reading 32 scattered words needs up to 32.  These
helpers turn access patterns into transaction counts, which the meter then
converts to cycles.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.gpusim.constants import (
    ELEMENT_BYTES,
    ELEMENTS_PER_TRANSACTION,
    TRANSACTION_BYTES,
)


def contiguous_read(num_elements: int, aligned: bool = True) -> int:
    """Transactions for a warp streaming ``num_elements`` consecutive words.

    With ``aligned=False`` the run may straddle one extra 128 B segment
    (Figure 6's uncoalesced example), costing one more transaction.
    """
    if num_elements <= 0:
        return 0
    base = math.ceil(num_elements / ELEMENTS_PER_TRANSACTION)
    if not aligned and num_elements % ELEMENTS_PER_TRANSACTION != 0:
        return base  # straddle already covered by the ceil
    if not aligned:
        return base + 1
    return base


def scattered_read(num_accesses: int) -> int:
    """Transactions for fully scattered single-word reads: one each."""
    return max(0, num_accesses)


def strided_read(num_accesses: int, stride_elements: int) -> int:
    """Transactions for a warp reading words ``stride_elements`` apart.

    This models the row-first signature-table layout (Figure 8c): thread
    ``t`` reads word ``t * stride``.  The warp's 32 accesses cover
    ``32 * stride * 4`` bytes, i.e. ``ceil(32*stride*4 / 128)`` segments,
    capped at one transaction per access.
    """
    if num_accesses <= 0:
        return 0
    if stride_elements <= 1:
        return contiguous_read(num_accesses)
    span_bytes = num_accesses * stride_elements * ELEMENT_BYTES
    return min(num_accesses, math.ceil(span_bytes / TRANSACTION_BYTES))


def coalesced_segments(addresses: Iterable[int],
                       element_bytes: int = ELEMENT_BYTES) -> int:
    """Exact transaction count for arbitrary word addresses.

    Counts the distinct 128 B segments touched — the definition of how
    many transactions the hardware issues for one warp-wide access.
    """
    segs = {(a * element_bytes) // TRANSACTION_BYTES for a in addresses}
    return len(segs)


def batched_write(num_elements: int) -> int:
    """Transactions for writing ``num_elements`` words through a full
    128 B write cache (Section V): one store per full batch."""
    return contiguous_read(num_elements)


def unbatched_write(num_elements: int) -> int:
    """Transactions for writing elements one by one (no write cache)."""
    return max(0, num_elements)
