"""Hardware constants for the simulated GPU (modeled on an NVIDIA Titan XP).

The paper's testbed is a Titan XP: 30 streaming multiprocessors, 128 cores
per SM, 48 KB shared memory per SM, 12 GB global memory, 128-byte global
memory transactions (Section II-B / VII).  The simulator is a *cost model*:
kernels run functionally in Python while these constants convert counted
events (memory transactions, launches, element operations) into simulated
cycles and milliseconds.

Latency constants are in line with published microbenchmarks of Pascal
GPUs; only *ratios* matter for reproducing the paper's comparisons.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Thread hierarchy (Section II-B)
# ---------------------------------------------------------------------------

WARP_SIZE = 32
"""Threads per warp; a warp executes in SIMD lock-step."""

NUM_SM = 30
"""Streaming multiprocessors on the device (Titan XP)."""

WARPS_PER_SM = 32
"""Resident warps we model per SM (occupancy-limited)."""

WARP_SLOTS = NUM_SM * WARPS_PER_SM
"""Total concurrent warp contexts; the parallel width of the device."""

BLOCK_THREADS = 1024
"""Threads per block (the paper sets W2 to the CUDA block size, 1024)."""

WARPS_PER_BLOCK = BLOCK_THREADS // WARP_SIZE
"""Warps per block: the region duplicate removal (Alg. 5) operates on."""

# ---------------------------------------------------------------------------
# Memory hierarchy (Section II-B)
# ---------------------------------------------------------------------------

TRANSACTION_BYTES = 128
"""Width of one global-memory transaction."""

ELEMENT_BYTES = 4
"""We store vertex ids / offsets as 32-bit words, as the paper does."""

ELEMENTS_PER_TRANSACTION = TRANSACTION_BYTES // ELEMENT_BYTES
"""Vertex ids fetched by one coalesced transaction (= warp width)."""

SHARED_MEMORY_BYTES = 48 * 1024
"""Shared memory per SM (Titan XP: 48 KB)."""

# ---------------------------------------------------------------------------
# Latency model (cycles)
# ---------------------------------------------------------------------------

CYCLES_PER_GLD = 400
"""Latency charged per global-memory *load* transaction."""

CYCLES_PER_GST = 400
"""Latency charged per global-memory *store* transaction."""

CYCLES_PER_SHARED = 25
"""Latency charged per shared-memory access (per 128 B batch)."""

CYCLES_PER_OP = 1
"""Cost of one warp-wide arithmetic/compare step on resident data."""

KERNEL_LAUNCH_CYCLES = 7_000
"""Fixed overhead of launching one kernel (~5 us at 1.4 GHz)."""

KERNEL_QUEUE_CYCLES = 400
"""Host-side queue cost per launch when many tiny kernels are issued
back-to-back (the naive one-kernel-per-set-operation mode): launches
pipeline through the driver at roughly this serial cost each."""

TASK_MERGE_CYCLES = 64
"""Overhead per chunk when the load balancer splits/merges a task
through shared memory (Section VI-A layers 2-3)."""

CLOCK_GHZ = 1.4
"""Core clock used to convert cycles to milliseconds."""

# ---------------------------------------------------------------------------
# CPU cost model (for the sequential baselines in Figure 12)
# ---------------------------------------------------------------------------

CPU_CLOCK_GHZ = 2.3
"""The paper's host CPU: Intel Xeon E5-2697 @ 2.30 GHz."""

CPU_CYCLES_PER_OP = 12
"""Cycles charged per counted basic operation (candidate check, edge
probe, recursion step) of a CPU engine.  Pointer-chasing graph code is
memory-bound, hence well above 1 cycle/op."""


# ---------------------------------------------------------------------------
# Meter-label registry (GSI002)
# ---------------------------------------------------------------------------
# Every labeled meter charge in the engine attributes its transactions
# to one of these phases.  The gsilint GSI002 rule rejects stringly-typed
# one-off labels at charge sites; new phases are added HERE (constant +
# METER_LABELS entry) so per-phase attribution stays enumerable by
# reports, benches, and the serving metrics layer.

LABEL_FILTER = "filter"
"""Candidate filtering: signature-table scans (Algorithm 1)."""

LABEL_JOIN = "join"
"""Joining phase: edge passes over the intermediate table (Alg. 3/4)."""

LABEL_STORAGE_LOCATE = "storage_locate"
"""Neighbor-store group/segment location reads."""

LABEL_STORAGE_READ = "storage_read"
"""Neighbor-store adjacency payload reads."""

LABEL_PCSR_MAINTAIN = "pcsr_maintain"
"""In-place PCSR inserts/removals (dynamic maintenance)."""

LABEL_PCSR_COMPACT = "pcsr_compact"
"""PCSR dead-space compaction sweeps."""

LABEL_PCSR_REBUILD = "pcsr_rebuild"
"""Full PCSR partition rebuilds (occupancy / Claim-1 starvation)."""

LABEL_SIG_MAINTAIN = "sig_maintain"
"""Incremental signature-table row updates."""

LABEL_COMMIT_PATCH = "commit_patch"
"""O(changes) CSR snapshot commits (row splicing)."""

LABEL_DELTA_SEED = "delta_seed"
"""Per-batch delta-match seed construction in the stream engine."""

METER_LABELS = frozenset({
    LABEL_FILTER,
    LABEL_JOIN,
    LABEL_STORAGE_LOCATE,
    LABEL_STORAGE_READ,
    LABEL_PCSR_MAINTAIN,
    LABEL_PCSR_COMPACT,
    LABEL_PCSR_REBUILD,
    LABEL_SIG_MAINTAIN,
    LABEL_COMMIT_PATCH,
    LABEL_DELTA_SEED,
})
"""The registry: every statically-known meter label. Dynamic labels
(per-shard ``shard{i}`` attribution from
:func:`~repro.gpusim.meter.merge_shard_snapshots`) are additive on top
and are not charge-site labels."""


def cycles_to_ms(cycles: float) -> float:
    """Convert simulated GPU cycles to milliseconds."""
    return cycles / (CLOCK_GHZ * 1e6)


def cpu_ops_to_ms(ops: float) -> float:
    """Convert counted CPU operations to simulated milliseconds."""
    return ops * CPU_CYCLES_PER_OP / (CPU_CLOCK_GHZ * 1e6)
