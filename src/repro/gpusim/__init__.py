"""Deterministic GPU cost-model simulator (the paper's Titan XP stand-in).

Functional work runs in Python/NumPy; this package counts the events the
paper measures (memory transactions, kernel launches) and schedules
per-warp task costs over simulated warp slots to produce elapsed time.
"""

from repro.gpusim import constants
from repro.gpusim.constants import cpu_ops_to_ms, cycles_to_ms
from repro.gpusim.device import Device, KernelRecord
from repro.gpusim.meter import (
    MemoryMeter,
    MeterSnapshot,
    merge_shard_snapshots,
)
from repro.gpusim.scheduler import (
    LoadBalanceConfig,
    ScheduleResult,
    makespan,
    schedule_kernel,
    split_tasks_4layer,
)
from repro.gpusim.transactions import (
    batched_write,
    coalesced_segments,
    contiguous_read,
    scattered_read,
    strided_read,
    unbatched_write,
)

__all__ = [
    "constants",
    "cycles_to_ms",
    "cpu_ops_to_ms",
    "Device",
    "KernelRecord",
    "MemoryMeter",
    "MeterSnapshot",
    "merge_shard_snapshots",
    "LoadBalanceConfig",
    "ScheduleResult",
    "makespan",
    "schedule_kernel",
    "split_tasks_4layer",
    "batched_write",
    "coalesced_segments",
    "contiguous_read",
    "scattered_read",
    "strided_read",
    "unbatched_write",
]
