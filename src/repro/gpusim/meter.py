"""Event counters for the simulated GPU.

A :class:`MemoryMeter` accumulates the quantities the paper reports in its
ablation tables: global-memory load transactions (GLD, Tables VI and XI),
global-memory store transactions (GST, Table VII), kernel launches, shared
memory traffic, and warp-wide element operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.gpusim.constants import (
    LABEL_JOIN,
    LABEL_STORAGE_LOCATE,
    LABEL_STORAGE_READ,
)


@dataclass
class MeterSnapshot:
    """Immutable copy of a meter's counters at one instant."""

    gld: int = 0
    gst: int = 0
    shared: int = 0
    ops: int = 0
    kernel_launches: int = 0
    labeled_gld: Dict[str, int] = field(default_factory=dict)

    def diff(self, earlier: "MeterSnapshot") -> "MeterSnapshot":
        """Counters accumulated since ``earlier``."""
        labeled = {
            k: v - earlier.labeled_gld.get(k, 0)
            for k, v in self.labeled_gld.items()
        }
        return MeterSnapshot(
            gld=self.gld - earlier.gld,
            gst=self.gst - earlier.gst,
            shared=self.shared - earlier.shared,
            ops=self.ops - earlier.ops,
            kernel_launches=self.kernel_launches - earlier.kernel_launches,
            labeled_gld=labeled,
        )

    @property
    def join_gld(self) -> int:
        """GLD attributed to the join phase (Table VI / XI metric)."""
        return (self.labeled_gld.get(LABEL_JOIN, 0)
                + self.labeled_gld.get(LABEL_STORAGE_LOCATE, 0)
                + self.labeled_gld.get(LABEL_STORAGE_READ, 0))

    @property
    def transactions(self) -> int:
        """Total memory transactions (GLD + GST), the sharding-bench
        per-shard work metric."""
        return self.gld + self.gst

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable counter dump (plain ints, string keys)."""
        return {
            "gld": int(self.gld),
            "gst": int(self.gst),
            "shared": int(self.shared),
            "ops": int(self.ops),
            "kernel_launches": int(self.kernel_launches),
            "labeled_gld": {str(k): int(v)
                            for k, v in self.labeled_gld.items()},
        }


def merge_shard_snapshots(snapshots: List[MeterSnapshot],
                          prefix: str = "shard") -> MeterSnapshot:
    """Merge per-shard meter snapshots into one attributed snapshot.

    Scalar counters and per-phase GLD labels are summed across shards;
    additionally each shard's *total* GLD is recorded under
    ``"{prefix}{i}"`` (and its GST under ``"{prefix}{i}/gst"``), so a
    merged scatter-gather result still answers "which shard did the
    work" from its ``labeled_gld`` alone.
    """
    merged = MeterSnapshot()
    labeled: Dict[str, int] = {}
    for i, snap in enumerate(snapshots):
        merged.gld += snap.gld
        merged.gst += snap.gst
        merged.shared += snap.shared
        merged.ops += snap.ops
        merged.kernel_launches += snap.kernel_launches
        for key, value in snap.labeled_gld.items():
            labeled[key] = labeled.get(key, 0) + value
        labeled[f"{prefix}{i}"] = snap.gld
        labeled[f"{prefix}{i}/gst"] = snap.gst
    merged.labeled_gld = labeled
    return merged


@dataclass
class MemoryMeter:
    """Mutable accumulator of simulated GPU events.

    One meter is created per engine run; storage structures and the join
    pipeline all record into it.
    """

    gld: int = 0
    gst: int = 0
    shared: int = 0
    ops: int = 0
    kernel_launches: int = 0
    _labels: Dict[str, int] = field(default_factory=dict)

    def add_gld(self, n: int, label: str = "") -> None:
        """Record ``n`` global-memory load transactions."""
        self.gld += n
        if label:
            self._labels[label] = self._labels.get(label, 0) + n

    def add_gst(self, n: int) -> None:
        """Record ``n`` global-memory store transactions."""
        self.gst += n

    def add_shared(self, n: int) -> None:
        """Record ``n`` shared-memory batch accesses."""
        self.shared += n

    def add_ops(self, n: int) -> None:
        """Record ``n`` warp-wide element operations."""
        self.ops += n

    def add_kernel_launch(self, n: int = 1) -> None:
        """Record ``n`` kernel launches."""
        self.kernel_launches += n

    def snapshot(self) -> MeterSnapshot:
        """Copy current counters (for before/after diffs)."""
        return MeterSnapshot(self.gld, self.gst, self.shared, self.ops,
                             self.kernel_launches, dict(self._labels))

    def labeled_gld(self, label: str) -> int:
        """GLD recorded under ``label`` (for per-source attribution)."""
        return self._labels.get(label, 0)

    def reset(self) -> None:
        """Zero all counters."""
        self.gld = self.gst = self.shared = self.ops = 0
        self.kernel_launches = 0
        self._labels.clear()
