"""Shared machinery for the CPU baselines (VF3, CFL-Match, Ullmann).

The paper measures CPU engines by wall time on a Xeon E5-2697; we replace
that with a deterministic operation-count cost model
(:func:`repro.gpusim.constants.cpu_ops_to_ms`).  Every candidate trial,
edge probe, and refinement step increments the counter; engines convert
the total to simulated milliseconds, and a budget turns "exceeds the 100 s
threshold" (Figure 12) into a deterministic timeout.

A real wall-clock guard is also applied: pure-Python backtracking can be
slower than the simulated CPU, so runaway searches abort and report a
timeout rather than hanging the benchmark harness.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import BudgetExceeded
from repro.gpusim.constants import (
    CPU_CLOCK_GHZ,
    CPU_CYCLES_PER_OP,
    cpu_ops_to_ms,
)

_CHECK_EVERY = 4096


class OpCounter:
    """Counts basic operations and enforces simulated + wall budgets."""

    def __init__(self, budget_ms: Optional[float] = None,
                 wall_budget_s: Optional[float] = None) -> None:
        self.ops = 0
        self._op_budget: Optional[int] = None
        if budget_ms is not None:
            self._op_budget = int(
                budget_ms * CPU_CLOCK_GHZ * 1e6 / CPU_CYCLES_PER_OP)
        self._wall_budget_s = wall_budget_s
        self._wall_start = time.monotonic()
        self._since_check = 0

    def add(self, n: int = 1) -> None:
        """Record ``n`` operations; raises on budget exhaustion."""
        self.ops += n
        if self._op_budget is not None and self.ops > self._op_budget:
            raise BudgetExceeded(
                f"CPU op budget exhausted at {self.elapsed_ms:.1f} ms")
        self._since_check += n
        if (self._wall_budget_s is not None
                and self._since_check >= _CHECK_EVERY):
            self._since_check = 0
            if time.monotonic() - self._wall_start > self._wall_budget_s:
                raise BudgetExceeded(
                    f"wall-clock guard tripped after {self.ops} ops")

    @property
    def elapsed_ms(self) -> float:
        """Simulated CPU milliseconds for the counted operations."""
        return cpu_ops_to_ms(self.ops)
