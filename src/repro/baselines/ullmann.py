"""Ullmann's algorithm (1976): the original depth-first subgraph matcher.

Candidate matrices per query vertex are refined by the classic rule —
a candidate ``v`` for ``u`` survives only if every query neighbor of ``u``
still has some candidate among ``v``'s neighbors — then a depth-first
search assigns vertices in id order.  Included as the historical baseline
of the related-work section.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


from repro.baselines.cpu_base import OpCounter
from repro.core.result import MatchResult
from repro.errors import BudgetExceeded
from repro.graph.labeled_graph import LabeledGraph


class UllmannEngine:
    """Sequential Ullmann matcher with the op-count cost model."""

    name = "Ullmann"

    def __init__(self, graph: LabeledGraph,
                 budget_ms: Optional[float] = None,
                 wall_budget_s: Optional[float] = 10.0) -> None:
        self.graph = graph
        self.budget_ms = budget_ms
        self.wall_budget_s = wall_budget_s

    # ------------------------------------------------------------------

    def _initial_candidates(self, query: LabeledGraph,
                            ops: OpCounter) -> Dict[int, Set[int]]:
        cands: Dict[int, Set[int]] = {}
        g = self.graph
        for u in range(query.num_vertices):
            ops.add(g.num_vertices)
            cands[u] = {
                v for v in range(g.num_vertices)
                if g.vertex_label(v) == query.vertex_label(u)
                and g.degree(v) >= query.degree(u)
            }
        return cands

    def _refine(self, query: LabeledGraph, cands: Dict[int, Set[int]],
                ops: OpCounter) -> bool:
        """Ullmann's refinement to a fixed point; False if a set empties."""
        changed = True
        while changed:
            changed = False
            for u in range(query.num_vertices):
                dead = []
                for v in cands[u]:
                    for w, lab in zip(query.neighbors(u),
                                      query.incident_labels(u)):
                        nbrs = set(
                            int(x) for x in
                            self.graph.neighbors_by_label(v, int(lab)))
                        # Refinement walks the whole neighbor list.
                        ops.add(max(1, len(nbrs)))
                        if not (nbrs & cands[int(w)]):
                            dead.append(v)
                            break
                if dead:
                    changed = True
                    cands[u] -= set(dead)
                    if not cands[u]:
                        return False
        return True

    # ------------------------------------------------------------------

    def match(self, query: LabeledGraph) -> MatchResult:
        """All embeddings of ``query`` via refined depth-first search."""
        ops = OpCounter(self.budget_ms, self.wall_budget_s)
        result = MatchResult(engine=self.name)
        matches: List[tuple] = []
        try:
            cands = self._initial_candidates(query, ops)
            result.candidate_sizes = {u: len(c) for u, c in cands.items()}
            if self._refine(query, cands, ops):
                assigned: Dict[int, int] = {}
                used: Set[int] = set()

                def dfs(u: int) -> None:
                    if u == query.num_vertices:
                        matches.append(tuple(
                            assigned[i] for i in range(u)))
                        return
                    for v in sorted(cands[u]):
                        ops.add(1)
                        if v in used:
                            continue
                        ok = True
                        for w, lab in zip(query.neighbors(u),
                                          query.incident_labels(u)):
                            w = int(w)
                            if w in assigned:
                                ops.add(1)
                                if (not self.graph.has_edge(assigned[w], v)
                                        or self.graph.edge_label(
                                            assigned[w], v) != int(lab)):
                                    ok = False
                                    break
                        if ok:
                            assigned[u] = v
                            used.add(v)
                            dfs(u + 1)
                            del assigned[u]
                            used.remove(v)

                dfs(0)
            result.matches = matches
        except BudgetExceeded:
            result.timed_out = True
        result.elapsed_ms = ops.elapsed_ms
        return result
