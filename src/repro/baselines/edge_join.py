"""Edge-oriented GPU join with the two-step output scheme.

This is the shared machinery of GpSM and GunrockSM (Section I, Example 1;
Section VIII).  Both engines:

1. collect *candidate edges* for each query edge — pairs ``(v1, v2)`` with
   matching endpoint labels where ``v2 ∈ N(v1, l)``;
2. join those edge tables along a spanning order of the query;
3. write every join result with the **two-step output scheme**: the join
   pass runs once to count results per warp, a prefix sum assigns output
   offsets, and the *same* join pass runs again to write — doubling the
   join work, which is exactly the overhead GSI's Prealloc-Combine
   removes.

Every kernel cost is scheduled on the same simulated device as GSI, so
Figure 12/13 comparisons are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.result import MatchResult, PhaseBreakdown
from repro.errors import BudgetExceeded, GraphError
from repro.gpusim.constants import (
    CLOCK_GHZ,
    CYCLES_PER_GLD,
    CYCLES_PER_OP,
    LABEL_JOIN,
)
from repro.gpusim.device import Device
from repro.gpusim.transactions import batched_write
from repro.graph.labeled_graph import LabeledGraph

Row = Tuple[int, ...]


@dataclass(frozen=True)
class EdgeJoinCostProfile:
    """Cost-model knobs that differ between GpSM and GunrockSM."""

    candidate_probe_gld: int = 2
    """Transactions per membership probe of a candidate set (both engines
    binary-search sorted arrays; top levels cached)."""

    batched_intermediate_writes: bool = True
    """GpSM writes two-step results coalesced; Gunrock's generic
    filter/advance pipeline materializes frontier elements individually."""

    extra_pass_ops_per_row: int = 0
    """Extra per-row bookkeeping ops (Gunrock's frontier management)."""


class EdgeJoinEngine:
    """Base class: candidate-edge collection + two-step edge joins.

    Subclasses provide the filtering strategy and a cost profile.
    """

    name = "EdgeJoin"

    def __init__(self, graph: LabeledGraph,
                 budget_ms: Optional[float] = None,
                 max_intermediate_rows: Optional[int] = None,
                 storage_kind: str = "csr") -> None:
        self.graph = graph
        self.budget_ms = budget_ms
        self.max_intermediate_rows = max_intermediate_rows
        # GpSM/GunrockSM ship with plain CSR; the paper's conclusion
        # notes any N(v, l)-based matcher can adopt PCSR instead, which
        # `storage_kind="pcsr"` enables (see bench_ablation_pcsr_everywhere).
        from repro.storage.factory import build_storage
        self.store = build_storage(storage_kind, graph)
        self.profile = EdgeJoinCostProfile()

    # -- subclass hook ---------------------------------------------------

    def _filter(self, query: LabeledGraph,
                device: Device) -> Dict[int, np.ndarray]:
        raise NotImplementedError

    # ---------------------------------------------------------------------

    def _edge_order(self, query: LabeledGraph,
                    cand_sizes: Dict[int, int]) -> List[Tuple[int, int, int]]:
        """Spanning-style edge order: grow from the rarest vertex, always
        picking an edge with at least one covered endpoint."""
        edges = list(query.edges())
        if not edges:
            raise GraphError("query has no edges")
        covered: Set[int] = set()
        ordered: List[Tuple[int, int, int]] = []
        remaining = edges[:]

        def edge_score(e: Tuple[int, int, int]) -> float:
            return min(cand_sizes.get(e[0], 0), cand_sizes.get(e[1], 0))

        first = min(remaining, key=edge_score)
        ordered.append(first)
        remaining.remove(first)
        covered.update((first[0], first[1]))
        while remaining:
            connected = [e for e in remaining
                         if e[0] in covered or e[1] in covered]
            nxt = min(connected, key=edge_score)
            ordered.append(nxt)
            remaining.remove(nxt)
            covered.update((nxt[0], nxt[1]))
        return ordered

    def _collect_candidate_edges(self, u1: int, u2: int, label: int,
                                 candidates: Dict[int, np.ndarray],
                                 device: Device) -> List[Tuple[int, int]]:
        """Candidate edge table for one query edge (two-step write)."""
        c1 = candidates[u1]
        c2_sorted = np.sort(np.asarray(candidates[u2], dtype=np.int64))
        pairs: List[Tuple[int, int]] = []
        cycles: List[float] = []
        gld = 0
        for v1 in c1:
            v1 = int(v1)
            nbrs = self.graph.neighbors_by_label(v1, label)
            tx = (self.store.locate_transactions(v1, label)
                  + self.store.read_transactions(v1, label))
            tx += len(nbrs) * self.profile.candidate_probe_gld
            gld += tx
            cycles.append(tx * CYCLES_PER_GLD
                          + self.store.streamed_elements(v1, label)
                          * CYCLES_PER_OP)
            if len(nbrs):
                idx = np.searchsorted(c2_sorted, nbrs)
                idx = np.minimum(idx, len(c2_sorted) - 1)
                hits = nbrs[c2_sorted[idx] == nbrs] if len(c2_sorted) else []
                for v2 in hits:
                    pairs.append((v1, int(v2)))
        # Two-step: count pass + write pass, identical read work.
        device.meter.add_gld(2 * gld, label=LABEL_JOIN)
        device.run_kernel(cycles, name=f"cand_edges_{u1}_{u2}_count")
        device.exclusive_prefix_sum([1] * max(1, len(c1)))
        device.run_kernel(cycles, name=f"cand_edges_{u1}_{u2}_write")
        device.meter.add_gst(batched_write(2 * len(pairs)))
        return pairs

    # ---------------------------------------------------------------------

    def _join_extend(self, rows: List[Row], columns: List[int],
                     u_from: int, u_new: int, label: int,
                     candidates: Dict[int, np.ndarray],
                     device: Device) -> List[Row]:
        """Extend M with a new query vertex through one query edge,
        running the per-row work twice (two-step scheme)."""
        col = columns.index(u_from)
        cand_sorted = np.sort(np.asarray(candidates[u_new], dtype=np.int64))
        width = len(columns)
        prof = self.profile

        new_rows: List[Row] = []
        cycles: List[float] = []
        gld_total = 0
        gst_total = 0
        per_row_results: List[List[int]] = []
        for row in rows:
            v = int(row[col])
            nbrs = self.graph.neighbors_by_label(v, label)
            tx = (self.store.locate_transactions(v, label)
                  + self.store.read_transactions(v, label)
                  + len(nbrs) * prof.candidate_probe_gld)
            gld_total += tx
            op_count = (self.store.streamed_elements(v, label)
                        + prof.extra_pass_ops_per_row)
            cycles.append(tx * CYCLES_PER_GLD + op_count * CYCLES_PER_OP)
            found: List[int] = []
            if len(nbrs) and len(cand_sorted):
                idx = np.searchsorted(cand_sorted, nbrs)
                idx = np.minimum(idx, len(cand_sorted) - 1)
                hits = nbrs[cand_sorted[idx] == nbrs]
                row_set = set(row)
                found = [int(x) for x in hits if int(x) not in row_set]
            per_row_results.append(found)
        # Pass 1: count.
        device.meter.add_gld(gld_total, label=LABEL_JOIN)
        device.run_kernel(cycles, name=f"join_{u_from}_{u_new}_count")
        device.exclusive_prefix_sum([len(f) for f in per_row_results])
        # Pass 2: identical work plus the output writes.
        device.meter.add_gld(gld_total, label=LABEL_JOIN)
        for row, found in zip(rows, per_row_results):
            if found:
                written = (width + 1) * len(found)
                gst_total += (batched_write(written)
                              if prof.batched_intermediate_writes
                              else written)
                for v2 in found:
                    new_rows.append(row + (v2,))
        device.meter.add_gst(gst_total)
        device.run_kernel(cycles, name=f"join_{u_from}_{u_new}_write")
        if (self.max_intermediate_rows is not None
                and len(new_rows) > self.max_intermediate_rows):
            raise BudgetExceeded("intermediate table overflow")
        return new_rows

    def _join_filter(self, rows: List[Row], columns: List[int],
                     u1: int, u2: int, label: int,
                     device: Device) -> List[Row]:
        """Semi-join: keep rows whose (u1, u2) pair is a real l-edge;
        per two-step, the check runs twice."""
        i1, i2 = columns.index(u1), columns.index(u2)
        prof = self.profile
        kept: List[Row] = []
        tx_per_row = prof.candidate_probe_gld
        cycles = [float(tx_per_row * CYCLES_PER_GLD)] * len(rows)
        for row in rows:
            a, b = int(row[i1]), int(row[i2])
            if self.graph.has_edge(a, b) and \
                    self.graph.edge_label(a, b) == label:
                kept.append(row)
        device.meter.add_gld(2 * tx_per_row * len(rows), label=LABEL_JOIN)
        device.run_kernel(cycles, name=f"filter_{u1}_{u2}_count")
        device.exclusive_prefix_sum([1] * max(1, len(rows)))
        device.run_kernel(cycles, name=f"filter_{u1}_{u2}_write")
        width = len(columns)
        device.meter.add_gst(batched_write(width * len(kept)))
        return kept

    # ---------------------------------------------------------------------

    def match(self, query: LabeledGraph) -> MatchResult:
        """All embeddings via candidate-edge collection + two-step joins."""
        device = Device(budget_cycles=(
            self.budget_ms * CLOCK_GHZ * 1e6
            if self.budget_ms is not None else None))
        result = MatchResult(engine=self.name)
        try:
            candidates = self._filter(query, device)
            result.candidate_sizes = {
                u: len(c) for u, c in candidates.items()}
            filter_ms = device.elapsed_ms
            if any(len(c) == 0 for c in candidates.values()):
                result.elapsed_ms = device.elapsed_ms
                result.phases = PhaseBreakdown(filter_ms=filter_ms)
                result.counters = device.meter.snapshot()
                return result

            order = self._edge_order(query, result.candidate_sizes)
            u1, u2, lab = order[0]
            pairs = self._collect_candidate_edges(
                u1, u2, lab, candidates, device)
            rows: List[Row] = [p for p in pairs if p[0] != p[1]]
            columns = [u1, u2]
            for (a, b, lab) in order[1:]:
                if not rows:
                    break
                a_in, b_in = a in columns, b in columns
                if a_in and b_in:
                    rows = self._join_filter(rows, columns, a, b, lab,
                                             device)
                elif a_in:
                    rows = self._join_extend(rows, columns, a, b, lab,
                                             candidates, device)
                    columns.append(b)
                else:
                    rows = self._join_extend(rows, columns, b, a, lab,
                                             candidates, device)
                    columns.append(a)

            perm = np.argsort(np.asarray(columns))
            result.matches = [tuple(int(r[j]) for j in perm) for r in rows]
            result.join_order = columns
            result.elapsed_ms = device.elapsed_ms
            result.phases = PhaseBreakdown(
                filter_ms=filter_ms,
                join_ms=device.elapsed_ms - filter_ms)
        except BudgetExceeded:
            result.matches = []
            result.timed_out = True
            result.elapsed_ms = device.elapsed_ms
        result.counters = device.meter.snapshot()
        return result
