"""GunrockSM (Wang, Wang, Owens — HPDC 2016): subgraph matching on the
Gunrock frontier library.

Filtering: node label + degree only (Table IV's "GSM" column shows its
candidate sets are the loosest).  Joining: the same edge-oriented
two-step join as GpSM, but through Gunrock's generic filter/advance
pipeline — frontier elements are materialized individually (unbatched
intermediate writes) with extra per-row frontier bookkeeping, while each
membership probe is slightly cheaper thanks to Gunrock's tuned advance
kernels.  The paper finds "no clear winner" between GpSM and GunrockSM;
the differing cost profile reproduces that.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.edge_join import EdgeJoinCostProfile, EdgeJoinEngine
from repro.core.filtering import label_degree_candidates
from repro.gpusim.device import Device
from repro.graph.labeled_graph import LabeledGraph


class GunrockSMEngine(EdgeJoinEngine):
    """GunrockSM on the simulated device."""

    name = "GunrockSM"

    def __init__(self, graph: LabeledGraph, **kwargs) -> None:
        super().__init__(graph, **kwargs)
        self.profile = EdgeJoinCostProfile(
            candidate_probe_gld=1,
            batched_intermediate_writes=False,
            extra_pass_ops_per_row=8,
        )

    def _filter(self, query: LabeledGraph,
                device: Device) -> Dict[int, np.ndarray]:
        return label_degree_candidates(query, self.graph, device,
                                       check_neighbor_labels=False)
