"""A VF2/VF3-style backtracking engine (the paper's strongest CPU rival).

VF3 (Carletti et al., TPAMI 2018) improves VF2 with node classification,
a precomputed matching order, and look-ahead feasibility rules.  This
implementation keeps its load-bearing ingredients:

* **matching order** by rarity: vertices sorted by candidate-set size over
  degree, restricted to stay connected (VF3's GreatestConstraintFirst in
  spirit);
* **feasibility rules**: label equality, degree, edge-consistency with all
  mapped neighbors, plus a 1-look-ahead on unmapped neighbor counts;
* depth-first state exploration with O(1) state updates.

Costs are counted per candidate trial / edge probe (see
:mod:`repro.baselines.cpu_base`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.baselines.cpu_base import OpCounter
from repro.core.result import MatchResult
from repro.errors import BudgetExceeded
from repro.graph.labeled_graph import LabeledGraph


class VF2Engine:
    """Sequential VF2/VF3-style matcher with the op-count cost model."""

    name = "VF3"

    def __init__(self, graph: LabeledGraph,
                 budget_ms: Optional[float] = None,
                 wall_budget_s: Optional[float] = 10.0) -> None:
        self.graph = graph
        self.budget_ms = budget_ms
        self.wall_budget_s = wall_budget_s
        # Node-classification tables (VF3's preprocessing): label -> ids.
        self._by_label: Dict[int, np.ndarray] = {}
        labels = graph.vertex_labels
        for lab in np.unique(labels):
            self._by_label[int(lab)] = np.nonzero(labels == lab)[0]

    # ------------------------------------------------------------------

    def _matching_order(self, query: LabeledGraph) -> List[int]:
        """Connected order, rarest (fewest same-label data vertices per
        degree) first — VF3's constraint-first ordering in spirit."""
        nq = query.num_vertices

        def rarity(u: int) -> float:
            pool = len(self._by_label.get(query.vertex_label(u), ()))
            return pool / max(1, query.degree(u))

        order = [min(range(nq), key=lambda u: (rarity(u), u))]
        chosen = set(order)
        while len(order) < nq:
            frontier = [
                u for u in range(nq) if u not in chosen
                and any(int(w) in chosen for w in query.neighbors(u))
            ]
            nxt = min(frontier, key=lambda u: (rarity(u), u))
            order.append(nxt)
            chosen.add(nxt)
        return order

    def match(self, query: LabeledGraph) -> MatchResult:
        """All embeddings of ``query`` by feasibility-pruned backtracking."""
        ops = OpCounter(self.budget_ms, self.wall_budget_s)
        result = MatchResult(engine=self.name)
        matches: List[tuple] = []
        graph = self.graph
        order = self._matching_order(query)
        result.join_order = order

        # Precompute, per position, the already-mapped query neighbors.
        pos_of = {u: i for i, u in enumerate(order)}
        mapped_nbrs: List[List[tuple]] = []
        for i, u in enumerate(order):
            prior = [
                (int(w), int(lab)) for w, lab in
                zip(query.neighbors(u), query.incident_labels(u))
                if pos_of[int(w)] < i
            ]
            mapped_nbrs.append(prior)

        assigned: Dict[int, int] = {}
        used: Set[int] = set()

        def candidates_at(i: int) -> List[int]:
            u = order[i]
            prior = mapped_nbrs[i]
            if prior:
                # Anchor on a mapped neighbor: candidates come from its
                # adjacency (the dominant VF-style pruning).
                w, lab = prior[0]
                pool = graph.neighbors_by_label(assigned[w], lab)
            else:
                pool = self._by_label.get(query.vertex_label(u), ())
            # The CPU walks this pool element by element.
            ops.add(len(pool))
            return [int(v) for v in pool]

        def feasible(i: int, v: int) -> bool:
            u = order[i]
            ops.add(2)  # label + degree checks
            if graph.vertex_label(v) != query.vertex_label(u):
                return False
            if graph.degree(v) < query.degree(u):
                return False
            for w, lab in mapped_nbrs[i]:
                # Edge probe: an adjacency lookup in v's neighbor list.
                ops.add(max(1, int(np.log2(max(2, graph.degree(v))))))
                if (not graph.has_edge(assigned[w], v)
                        or graph.edge_label(assigned[w], v) != lab):
                    return False
            # 1-look-ahead: v must retain enough unmapped neighbors —
            # a full scan of v's adjacency.
            remaining = sum(
                1 for w in query.neighbors(u) if int(w) not in assigned)
            unmapped = sum(
                1 for x in graph.neighbors(v) if int(x) not in used)
            ops.add(graph.degree(v))
            return unmapped >= remaining

        def dfs(i: int) -> None:
            if i == query.num_vertices:
                matches.append(tuple(
                    assigned[u] for u in range(query.num_vertices)))
                return
            for v in candidates_at(i):
                if v in used:
                    ops.add(1)
                    continue
                if feasible(i, v):
                    u = order[i]
                    assigned[u] = v
                    used.add(v)
                    dfs(i + 1)
                    del assigned[u]
                    used.remove(v)

        try:
            dfs(0)
            result.matches = matches
        except BudgetExceeded:
            result.timed_out = True
        result.elapsed_ms = ops.elapsed_ms
        return result
