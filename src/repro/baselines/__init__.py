"""Baseline engines: CPU (Ullmann, VF3-style, CFL-Match-style) and GPU
(GpSM, GunrockSM), all producing the same match sets as GSI."""

from repro.baselines.cfl import CFLMatchEngine, cfl_decompose, two_core
from repro.baselines.edge_join import EdgeJoinCostProfile, EdgeJoinEngine
from repro.baselines.gpsm import GpSMEngine
from repro.baselines.gunrock_sm import GunrockSMEngine
from repro.baselines.turbo_iso import TurboISOEngine, leaf_equivalence_classes
from repro.baselines.ullmann import UllmannEngine
from repro.baselines.vf2 import VF2Engine

__all__ = [
    "TurboISOEngine",
    "leaf_equivalence_classes",
    "CFLMatchEngine",
    "cfl_decompose",
    "two_core",
    "EdgeJoinCostProfile",
    "EdgeJoinEngine",
    "GpSMEngine",
    "GunrockSMEngine",
    "UllmannEngine",
    "VF2Engine",
]
