"""GpSM (Tran, Kim, He — DASFAA 2015): the first strong GPU matcher.

Filtering: label + degree, then a refinement pass that requires every
surviving candidate to carry all of the query vertex's incident edge
labels (Section I / VIII describe GpSM's "filter candidates and join
them" strategy).  Joining: edge-oriented with the two-step output scheme,
implemented in :mod:`repro.baselines.edge_join`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.edge_join import EdgeJoinCostProfile, EdgeJoinEngine
from repro.core.filtering import label_degree_candidates
from repro.gpusim.device import Device
from repro.graph.labeled_graph import LabeledGraph


class GpSMEngine(EdgeJoinEngine):
    """GpSM on the simulated device."""

    name = "GpSM"

    def __init__(self, graph: LabeledGraph, **kwargs) -> None:
        super().__init__(graph, **kwargs)
        self.profile = EdgeJoinCostProfile(
            candidate_probe_gld=2,
            batched_intermediate_writes=True,
            extra_pass_ops_per_row=0,
        )

    def _filter(self, query: LabeledGraph,
                device: Device) -> Dict[int, np.ndarray]:
        return label_degree_candidates(query, self.graph, device,
                                       check_neighbor_labels=True)
