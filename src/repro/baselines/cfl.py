"""A CFL-Match-style engine (Bi et al., SIGMOD 2016).

CFL-Match's contributions: decompose the query into **C**ore (the 2-core),
**F**orest (trees hanging off the core) and **L**eaf vertices, match in
that order to *postpone cartesian products*; filter candidates through a
BFS-built candidate space with bottom-up refinement (the CPI).  This
implementation keeps that structure:

* NLF-style filtering plus fixed-point edge-consistency refinement
  (the CPI's pruning effect);
* core-forest-leaf matching order, cores first by candidate rarity,
  degree-1 leaves always last;
* anchored backtracking identical in mechanics to the VF engine so the
  comparison isolates ordering + filtering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.baselines.cpu_base import OpCounter
from repro.core.result import MatchResult
from repro.errors import BudgetExceeded
from repro.graph.labeled_graph import LabeledGraph


def two_core(query: LabeledGraph) -> Set[int]:
    """Vertices of the query's 2-core (may be empty for tree queries)."""
    degree = {u: query.degree(u) for u in range(query.num_vertices)}
    alive = set(degree)
    changed = True
    while changed:
        changed = False
        for u in list(alive):
            live_deg = sum(1 for w in query.neighbors(u) if int(w) in alive)
            if live_deg < 2:
                alive.discard(u)
                changed = True
    return alive


def cfl_decompose(query: LabeledGraph) -> Tuple[Set[int], Set[int], Set[int]]:
    """Split query vertices into (core, forest, leaf) sets."""
    core = two_core(query)
    leaves = {
        u for u in range(query.num_vertices)
        if u not in core and query.degree(u) == 1
    }
    forest = {
        u for u in range(query.num_vertices)
        if u not in core and u not in leaves
    }
    return core, forest, leaves


class CFLMatchEngine:
    """Sequential CFL-Match-style matcher with the op-count cost model."""

    name = "CFL-Match"

    def __init__(self, graph: LabeledGraph,
                 budget_ms: Optional[float] = None,
                 wall_budget_s: Optional[float] = 10.0) -> None:
        self.graph = graph
        self.budget_ms = budget_ms
        self.wall_budget_s = wall_budget_s

    # ------------------------------------------------------------------
    # Candidate space (the CPI's filtering effect)
    # ------------------------------------------------------------------

    def _nlf_candidates(self, query: LabeledGraph,
                        ops: OpCounter) -> Dict[int, Set[int]]:
        """Neighbor-label-frequency filter: v needs at least u's count of
        neighbors per incident edge label."""
        g = self.graph
        cands: Dict[int, Set[int]] = {}
        for u in range(query.num_vertices):
            need: Dict[int, int] = {}
            for lab in query.incident_labels(u):
                need[int(lab)] = need.get(int(lab), 0) + 1
            ops.add(g.num_vertices)
            keep = set()
            for v in range(g.num_vertices):
                if g.vertex_label(v) != query.vertex_label(u):
                    continue
                if g.degree(v) < query.degree(u):
                    continue
                # NLF check scans v's incident-label counts.
                ops.add(len(need))
                if all(len(g.neighbors_by_label(v, lab)) >= cnt
                       for lab, cnt in need.items()):
                    keep.add(v)
            cands[u] = keep
        return cands

    def _refine(self, query: LabeledGraph, cands: Dict[int, Set[int]],
                ops: OpCounter) -> bool:
        """Fixed-point edge-consistency refinement (CPI top-down +
        bottom-up passes); False when a candidate set empties."""
        changed = True
        while changed:
            changed = False
            for u in range(query.num_vertices):
                dead = []
                for v in cands[u]:
                    for w, lab in zip(query.neighbors(u),
                                      query.incident_labels(u)):
                        nbrs = self.graph.neighbors_by_label(v, int(lab))
                        # The consistency test walks the neighbor list.
                        ops.add(max(1, len(nbrs)))
                        if not any(int(x) in cands[int(w)] for x in nbrs):
                            dead.append(v)
                            break
                if dead:
                    changed = True
                    cands[u] -= set(dead)
                    if not cands[u]:
                        return False
        return True

    # ------------------------------------------------------------------
    # Matching order: core -> forest -> leaf
    # ------------------------------------------------------------------

    def _order(self, query: LabeledGraph,
               cands: Dict[int, Set[int]]) -> List[int]:
        core, forest, leaves = cfl_decompose(query)

        def rarity(u: int) -> float:
            return len(cands[u]) / max(1, query.degree(u))

        def grow(order: List[int], pool: Set[int]) -> None:
            chosen = set(order)
            while pool - chosen:
                frontier = [
                    u for u in pool - chosen
                    if not order
                    or any(int(w) in chosen for w in query.neighbors(u))
                ]
                if not frontier:   # disconnected pool region
                    frontier = sorted(pool - chosen)
                u = min(frontier, key=lambda x: (rarity(x), x))
                order.append(u)
                chosen.add(u)

        order: List[int] = []
        if core:
            grow(order, core)
        grow(order, core | forest)
        grow(order, core | forest | leaves)
        return order

    # ------------------------------------------------------------------

    def match(self, query: LabeledGraph) -> MatchResult:
        """All embeddings, matched core-first to postpone cartesian
        products (the paper's Figure 12 CFL-Match bar)."""
        ops = OpCounter(self.budget_ms, self.wall_budget_s)
        result = MatchResult(engine=self.name)
        graph = self.graph
        matches: List[tuple] = []
        try:
            cands = self._nlf_candidates(query, ops)
            result.candidate_sizes = {u: len(c) for u, c in cands.items()}
            if not self._refine(query, cands, ops):
                result.elapsed_ms = ops.elapsed_ms
                return result

            order = self._order(query, cands)
            result.join_order = order
            pos_of = {u: i for i, u in enumerate(order)}
            mapped_nbrs: List[List[tuple]] = []
            for i, u in enumerate(order):
                mapped_nbrs.append([
                    (int(w), int(lab)) for w, lab in
                    zip(query.neighbors(u), query.incident_labels(u))
                    if pos_of[int(w)] < i
                ])

            assigned: Dict[int, int] = {}
            used: Set[int] = set()

            def dfs(i: int) -> None:
                if i == query.num_vertices:
                    matches.append(tuple(
                        assigned[u] for u in range(query.num_vertices)))
                    return
                u = order[i]
                prior = mapped_nbrs[i]
                if prior:
                    w, lab = prior[0]
                    raw = graph.neighbors_by_label(assigned[w], lab)
                    ops.add(len(raw))  # pool walked element by element
                    pool = [int(v) for v in raw if int(v) in cands[u]]
                else:
                    pool = sorted(cands[u])
                    ops.add(len(pool))
                for v in pool:
                    ops.add(1)
                    if v in used:
                        continue
                    ok = True
                    for w, lab in prior[1:] if prior else []:
                        ops.add(max(1, int(np.log2(max(2, graph.degree(v))))))
                        if (not graph.has_edge(assigned[w], v)
                                or graph.edge_label(assigned[w], v) != lab):
                            ok = False
                            break
                    if ok:
                        assigned[u] = v
                        used.add(v)
                        dfs(i + 1)
                        del assigned[u]
                        used.remove(v)

            dfs(0)
            result.matches = matches
        except BudgetExceeded:
            result.timed_out = True
        result.elapsed_ms = ops.elapsed_ms
        return result
