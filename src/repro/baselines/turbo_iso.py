"""A TurboISO-style CPU engine (Han, Lee, Lee — SIGMOD 2013).

TurboISO's headline idea (Section VIII of the GSI paper: "TurboISO
merges similar query nodes") is the **Neighborhood Equivalence Class
(NEC)**: query vertices that are interchangeable — same label, same
neighborhood — are merged into one representative with a multiplicity,
so the search explores the shared candidate pool *once* and expands
combinations at the end instead of backtracking through every
permutation of equivalent vertices.

This implementation merges the dominant NEC case (degree-1 leaves that
share their parent set, vertex label, and edge labels — the case
TurboISO's own examples center on) and otherwise searches like the VF
engine, so the comparison isolates the NEC effect.  Included as a
related-work extension beyond the paper's evaluated baselines.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.baselines.cpu_base import OpCounter
from repro.core.result import MatchResult
from repro.errors import BudgetExceeded
from repro.graph.labeled_graph import LabeledGraph

NecKey = Tuple[int, FrozenSet[Tuple[int, int]]]


def leaf_equivalence_classes(query: LabeledGraph) -> List[List[int]]:
    """Group degree-1 query vertices into NECs.

    Two leaves are equivalent iff they carry the same vertex label and
    attach to the same parent through the same edge label; matching one
    of them is then symmetric with matching the other.
    """
    classes: Dict[NecKey, List[int]] = {}
    for u in range(query.num_vertices):
        if query.degree(u) != 1:
            continue
        signature = frozenset(
            (int(w), int(lab)) for w, lab in
            zip(query.neighbors(u), query.incident_labels(u)))
        key = (query.vertex_label(u), signature)
        classes.setdefault(key, []).append(u)
    return [members for members in classes.values()]


class TurboISOEngine:
    """Sequential TurboISO-style matcher with NEC leaf merging."""

    name = "TurboISO"

    def __init__(self, graph: LabeledGraph,
                 budget_ms: Optional[float] = None,
                 wall_budget_s: Optional[float] = 10.0) -> None:
        self.graph = graph
        self.budget_ms = budget_ms
        self.wall_budget_s = wall_budget_s
        self._by_label: Dict[int, np.ndarray] = {}
        labels = graph.vertex_labels
        for lab in np.unique(labels):
            self._by_label[int(lab)] = np.nonzero(labels == lab)[0]

    # ------------------------------------------------------------------

    def _matching_order(self, query: LabeledGraph,
                        class_of: Dict[int, List[int]]) -> List[int]:
        """Connected rarity-first order over the *rewritten* query
        (non-leaf vertices plus one representative per NEC).

        Multi-member representatives sort last among ties: their pool
        should be anchored by an already-matched parent, never scanned
        label-wide (a label-wide pool would be permuted m-fold).
        """
        keep = set(class_of)
        keep.update(u for u in range(query.num_vertices)
                    if query.degree(u) != 1)

        def rarity(u: int) -> float:
            pool = len(self._by_label.get(query.vertex_label(u), ()))
            return pool / max(1, query.degree(u))

        def key(u: int):
            multi = len(class_of.get(u, [u])) > 1
            return (multi, rarity(u), u)

        start = min(keep, key=key)
        order = [start]
        chosen = {start}
        while len(order) < len(keep):
            frontier = [
                u for u in keep if u not in chosen
                and any(int(w) in chosen for w in query.neighbors(u))
            ]
            if not frontier:
                frontier = sorted(keep - chosen)
            nxt = min(frontier, key=key)
            order.append(nxt)
            chosen.add(nxt)
        return order

    def match(self, query: LabeledGraph) -> MatchResult:
        """All embeddings; NEC leaf pools expand combinatorially at the
        end instead of being backtracked through."""
        ops = OpCounter(self.budget_ms, self.wall_budget_s)
        result = MatchResult(engine=self.name)
        graph = self.graph
        matches: List[tuple] = []

        nec_classes = leaf_equivalence_classes(query)
        class_of: Dict[int, List[int]] = {}
        rep_of: Dict[int, int] = {}
        for members in nec_classes:
            rep = min(members)
            class_of[rep] = members
            for member in members:
                rep_of[member] = rep

        order = self._matching_order(query, class_of)
        result.join_order = order
        pos_of = {u: i for i, u in enumerate(order)}

        def placed_before(w: int, i: int) -> bool:
            """Whether query vertex w (possibly a non-representative NEC
            member, which is assigned together with its representative)
            is matched before position i."""
            anchor = rep_of.get(w, w)
            return anchor in pos_of and pos_of[anchor] < i

        mapped_nbrs: List[List[tuple]] = []
        for i, u in enumerate(order):
            mapped_nbrs.append([
                (int(w), int(lab)) for w, lab in
                zip(query.neighbors(u), query.incident_labels(u))
                if placed_before(int(w), i)
            ])

        assigned: Dict[int, int] = {}
        used: Set[int] = set()

        def candidate_pool(i: int) -> List[int]:
            u = order[i]
            prior = mapped_nbrs[i]
            if prior:
                w, lab = prior[0]
                pool = graph.neighbors_by_label(assigned[w], lab)
            else:
                pool = self._by_label.get(query.vertex_label(u), ())
            ops.add(len(pool))
            out = []
            for v in pool:
                v = int(v)
                if v in used:
                    continue
                if graph.vertex_label(v) != query.vertex_label(u):
                    continue
                if graph.degree(v) < query.degree(u):
                    continue
                ok = True
                for w, lab in prior[1:] if prior else []:
                    ops.add(1)
                    if (not graph.has_edge(assigned[w], v)
                            or graph.edge_label(assigned[w], v) != lab):
                        ok = False
                        break
                if ok:
                    out.append(v)
            return out

        def emit() -> None:
            matches.append(tuple(
                assigned[u] for u in range(query.num_vertices)))

        def dfs(i: int) -> None:
            if i == len(order):
                emit()
                return
            u = order[i]
            members = class_of.get(u)
            pool = candidate_pool(i)
            if members is None or len(members) == 1:
                for v in pool:
                    ops.add(1)
                    assigned[u] = v
                    used.add(v)
                    dfs(i + 1)
                    del assigned[u]
                    used.remove(v)
                return
            # NEC expansion: the pool is found ONCE; each ordered
            # m-selection instantiates the whole class.
            m = len(members)
            if len(pool) < m:
                return
            for combo in permutations(pool, m):
                ops.add(1)
                for member, v in zip(members, combo):
                    assigned[member] = v
                    used.add(v)
                dfs(i + 1)
                for member in members:
                    used.remove(assigned[member])
                    del assigned[member]

        try:
            dfs(0)
            result.matches = matches
        except BudgetExceeded:
            result.timed_out = True
        result.elapsed_ms = ops.elapsed_ms
        return result
