"""Load-balance analysis helpers for the 4-layer scheme (Section VI-A).

The scheme itself lives in :func:`repro.gpusim.scheduler.split_tasks_4layer`
(it reshapes kernel task lists); this module provides the measurement side
used by tests and the Table VIII-X benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from repro.gpusim.constants import WARP_SLOTS
from repro.gpusim.scheduler import (
    LoadBalanceConfig,
    makespan,
    split_tasks_4layer,
)


def imbalance_ratio(task_costs: Sequence[float],
                    slots: int = WARP_SLOTS) -> float:
    """Makespan divided by the ideal (perfectly balanced) time.

    The ideal is the classic scheduling lower bound
    ``max(total / slots, max(task_costs))`` — no schedule can finish
    before the average slot load, nor before the longest single task.
    1.0 means the attained makespan matches that bound; ratios above 1
    measure packing loss, which is what the 4-layer splitting scheme
    attacks (splitting shrinks the ``max`` term itself, so the *bound*
    drops — see :func:`speedup_from_lb`).
    """
    if not task_costs:
        return 1.0
    total = float(sum(task_costs))
    if total == 0:
        return 1.0
    ideal = max(total / slots, max(task_costs))
    span = makespan(task_costs, slots)
    return span / max(ideal, 1e-12)


def balanced_makespan(task_units: Sequence[float],
                      cfg: LoadBalanceConfig,
                      slots: int = WARP_SLOTS) -> float:
    """Makespan (cycles) after applying the 4-layer splitting."""
    split_units, extra_cycles, _ = split_tasks_4layer(task_units, cfg)
    cycles = [u * cfg.cycles_per_unit for u in split_units]
    return makespan(cycles, slots) + extra_cycles


def speedup_from_lb(task_units: Sequence[float],
                    cfg: LoadBalanceConfig,
                    slots: int = WARP_SLOTS) -> float:
    """Unbalanced / balanced makespan for one task bag."""
    baseline = makespan([u * cfg.cycles_per_unit for u in task_units], slots)
    balanced = balanced_makespan(task_units, cfg, slots)
    if balanced <= 0:
        return 1.0
    return baseline / balanced
