"""GSI engine configuration: every knob the paper tunes or ablates.

The evaluation section toggles techniques one by one (Tables VI-XI); this
config makes each toggle explicit so a benchmark is a config sweep:

========================  =======================================
``use_pcsr``              "+DS"  (PCSR vs traditional CSR, Table VI)
``use_prealloc_combine``  "+PC"  (vs two-step output scheme, Table VI)
``use_gpu_set_ops``       "+SO"  (vs one kernel per set op, Table VI)
``use_write_cache``       write cache ablation (Table VII)
``use_load_balance``      "+LB"  (4-layer scheme, Tables VIII-X)
``use_duplicate_removal`` "+DR"  (Alg. 5, Tables VIII and XI)
``signature_bits``        N      (Table V tunes 64..512)
``label_bits``            K      (fixed to 32 in the paper)
``gpn``                   group size of PCSR (16 -> 128 B groups)
``w1, w3``                load-balance thresholds (Tables IX-X)
``join_kernel``           host-side join lane: per-row or vectorized
========================  =======================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError
from repro.gpusim.scheduler import LoadBalanceConfig


@dataclass(frozen=True)
class GSIConfig:
    """Immutable GSI configuration; see module docstring for the mapping
    from fields to paper experiments."""

    # --- filtering phase (Section III-A) ---
    signature_bits: int = 512
    label_bits: int = 32
    column_first_signatures: bool = True

    # --- storage structure (Section IV) ---
    use_pcsr: bool = True
    gpn: int = 16

    # --- joining phase (Section V) ---
    use_prealloc_combine: bool = True
    use_gpu_set_ops: bool = True
    use_write_cache: bool = True

    # --- optimizations (Section VI) ---
    use_load_balance: bool = False
    use_duplicate_removal: bool = False
    w1: int = 4096
    w2: int = 1024
    w3: int = 256

    # --- resource limits ---
    budget_ms: Optional[float] = None
    max_intermediate_rows: Optional[int] = None

    # --- host execution lane (does not change metered costs) ---
    # "rows" iterates the intermediate table row by row; "vector" runs
    # each edge pass as bulk NumPy ops over the whole table; "numba"
    # additionally JIT-compiles the inner membership probes when numba
    # is installed (silently equivalent to "vector" otherwise).  All
    # lanes produce byte-identical match sets and meter totals.  The
    # default can be steered fleet-wide via ``GSI_JOIN_KERNEL``.
    join_kernel: str = field(default_factory=lambda: os.environ.get(
        "GSI_JOIN_KERNEL", "rows"))

    def __post_init__(self) -> None:
        n, k = self.signature_bits, self.label_bits
        if n % 32 != 0 or not 32 < n <= 512:
            raise ConfigError(
                "signature_bits must be a multiple of 32 in (32, 512], "
                f"got {n}")
        if k != 32:
            raise ConfigError("label_bits is fixed to 32 (Section VII-B)")
        if (n - k) % 2 != 0:
            raise ConfigError("signature_bits - label_bits must be even")
        if not 2 <= self.gpn <= 16:
            raise ConfigError(f"gpn must be in [2, 16], got {self.gpn}")
        if self.use_load_balance and not (self.w1 > self.w2 > self.w3 > 32):
            raise ConfigError(
                f"need W1 > W2 > W3 > 32, got {self.w1}/{self.w2}/{self.w3}")
        if self.join_kernel not in ("rows", "vector", "numba"):
            raise ConfigError(
                f"join_kernel must be 'rows', 'vector' or 'numba', "
                f"got {self.join_kernel!r}")

    # ------------------------------------------------------------------
    # Named presets from the paper
    # ------------------------------------------------------------------

    @staticmethod
    def baseline() -> "GSIConfig":
        """"GSI-": traditional CSR, two-step output, naive set ops."""
        return GSIConfig(use_pcsr=False, use_prealloc_combine=False,
                         use_gpu_set_ops=False, use_write_cache=False)

    @staticmethod
    def with_ds() -> "GSIConfig":
        """"+DS": GSI- plus the PCSR structure."""
        return replace(GSIConfig.baseline(), use_pcsr=True)

    @staticmethod
    def with_pc() -> "GSIConfig":
        """"+PC": +DS plus Prealloc-Combine."""
        return replace(GSIConfig.with_ds(), use_prealloc_combine=True)

    @staticmethod
    def with_so() -> "GSIConfig":
        """"+SO" == GSI: +PC plus GPU-friendly set operations."""
        return replace(GSIConfig.with_pc(), use_gpu_set_ops=True,
                       use_write_cache=True)

    @staticmethod
    def gsi() -> "GSIConfig":
        """GSI without Section VI optimizations (the Table VI endpoint)."""
        return GSIConfig()

    @staticmethod
    def with_lb() -> "GSIConfig":
        """"+LB": GSI plus the 4-layer load balance scheme."""
        return replace(GSIConfig.gsi(), use_load_balance=True)

    @staticmethod
    def gsi_opt() -> "GSIConfig":
        """GSI-opt: GSI plus load balance plus duplicate removal."""
        return replace(GSIConfig.gsi(), use_load_balance=True,
                       use_duplicate_removal=True)

    # ------------------------------------------------------------------

    def load_balance_config(self) -> Optional[LoadBalanceConfig]:
        """The scheduler's LB config, or None when disabled."""
        if not self.use_load_balance:
            return None
        return LoadBalanceConfig(w1=self.w1, w2=self.w2, w3=self.w3)

    @property
    def storage_kind(self) -> str:
        """Which neighbor store the join phase uses."""
        return "pcsr" if self.use_pcsr else "csr"
