"""The GSI engine: filtering phase + joining phase (Figure 7).

Construct once per data graph (signature table and storage structure are
built offline, as in the paper), then call :meth:`GSIEngine.match` per
query.  Every call simulates a fresh device, so results carry independent
time and transaction measurements.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.config import GSIConfig
from repro.core.filtering import filter_candidates
from repro.core.join import JoinContext, run_join_phase
from repro.core.plan import plan_join_order
from repro.core.result import MatchResult, PhaseBreakdown
from repro.core.set_ops import SetOpEngine
from repro.core.signature_table import SignatureTable
from repro.errors import BudgetExceeded, GraphError
from repro.graph.labeled_graph import LabeledGraph
from repro.gpusim.constants import CLOCK_GHZ
from repro.gpusim.device import Device
from repro.storage.factory import build_storage


class GSIEngine:
    """GPU-friendly subgraph isomorphism over one data graph.

    Parameters
    ----------
    graph:
        The data graph ``G``.
    config:
        Feature toggles and tuning parameters; defaults to plain GSI
        (PCSR + Prealloc-Combine + GPU set ops, no Section VI extras).
        Use :meth:`GSIConfig.gsi_opt` for the fully optimized variant.
    """

    name = "GSI"

    def __init__(self, graph: LabeledGraph,
                 config: Optional[GSIConfig] = None) -> None:
        self.graph = graph
        self.config = config if config is not None else GSIConfig()
        # Offline precomputation (not part of query response time).
        self.signature_table = SignatureTable.build(
            graph, self.config.signature_bits, self.config.label_bits,
            column_first=self.config.column_first_signatures)
        storage_kwargs = (
            {"gpn": self.config.gpn} if self.config.use_pcsr else {})
        self.store = build_storage(self.config.storage_kind, graph,
                                   **storage_kwargs)

    # ------------------------------------------------------------------

    def _make_device(self) -> Device:
        budget_cycles = None
        if self.config.budget_ms is not None:
            budget_cycles = self.config.budget_ms * CLOCK_GHZ * 1e6
        return Device(budget_cycles=budget_cycles)

    def filter_only(self, query: LabeledGraph) -> MatchResult:
        """Run just the filtering phase (Table IV's measurement)."""
        device = self._make_device()
        candidates = filter_candidates(
            query, self.signature_table, device,
            self.config.signature_bits, self.config.label_bits)
        result = MatchResult(engine=self.name)
        result.candidate_sizes = {u: len(c) for u, c in candidates.items()}
        result.elapsed_ms = device.elapsed_ms
        result.phases = PhaseBreakdown(filter_ms=device.elapsed_ms)
        result.counters = device.meter.snapshot()
        return result

    def match(self, query: LabeledGraph) -> MatchResult:
        """Find all subgraph-isomorphism embeddings of ``query``.

        Returns a :class:`~repro.core.result.MatchResult`; if the
        configured simulated budget is exhausted, ``timed_out`` is set
        and partial state is discarded.
        """
        if query.num_vertices == 0:
            raise GraphError("empty query")
        device = self._make_device()
        result = MatchResult(engine=self.name)
        try:
            candidates = filter_candidates(
                query, self.signature_table, device,
                self.config.signature_bits, self.config.label_bits)
            result.candidate_sizes = {
                u: len(c) for u, c in candidates.items()}
            filter_ms = device.elapsed_ms

            if any(len(c) == 0 for c in candidates.values()):
                result.elapsed_ms = device.elapsed_ms
                result.phases = PhaseBreakdown(filter_ms=filter_ms)
                result.counters = device.meter.snapshot()
                return result

            plan = plan_join_order(query, self.graph,
                                   result.candidate_sizes)
            result.join_order = plan.order
            ctx = JoinContext(
                graph=self.graph, store=self.store, device=device,
                config=self.config,
                set_engine=SetOpEngine(
                    friendly=self.config.use_gpu_set_ops,
                    write_cache=self.config.use_write_cache))
            rows = run_join_phase(ctx, plan, candidates)

            # Reorder row positions (join order) into query-vertex order.
            perm = np.argsort(np.asarray(plan.order))
            result.matches = [tuple(int(row[j]) for j in perm)
                              for row in rows]
            result.elapsed_ms = device.elapsed_ms
            result.phases = PhaseBreakdown(
                filter_ms=filter_ms,
                join_ms=device.elapsed_ms - filter_ms)
        except BudgetExceeded:
            result.matches = []
            result.timed_out = True
            result.elapsed_ms = device.elapsed_ms
        result.counters = device.meter.snapshot()
        return result

    # ------------------------------------------------------------------

    def candidate_sets(self, query: LabeledGraph) -> Dict[int, np.ndarray]:
        """Candidate sets only, without any cost accounting (testing aid)."""
        device = Device()
        return filter_candidates(query, self.signature_table, device,
                                 self.config.signature_bits,
                                 self.config.label_bits)
