"""The GSI engine: filtering phase + joining phase (Figure 7).

Construct once per data graph (signature table and storage structure are
built offline, as in the paper), then call :meth:`GSIEngine.match` per
query.  Every call simulates a fresh device, so results carry independent
time and transaction measurements.

``match`` is split into two explicit steps so services can interpose
between them:

* :meth:`GSIEngine.prepare` runs the filtering phase and join-order
  planning, returning a :class:`PreparedQuery`.  When a
  :class:`~repro.service.plan_cache.PlanCache` is supplied, planning is
  skipped for queries isomorphic to one already planned.
* :meth:`GSIEngine.execute` runs the joining phase of a prepared query
  and produces the final :class:`~repro.core.result.MatchResult`.

``match(query)`` is exactly ``execute(prepare(query))``; the CLI, the
benchmark runner, the pattern executor, and the batch service all drive
this same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.arraytypes import Array
from repro.core.config import GSIConfig
from repro.core.filtering import filter_candidates
from repro.core.join import JoinContext, run_join_phase
from repro.core.plan import JoinPlan, plan_join_order
from repro.core.result import MatchResult, PhaseBreakdown
from repro.core.set_ops import SetOpEngine
from repro.core.signature_table import SignatureTable
from repro.errors import BudgetExceeded, GraphError
from repro.gpusim.constants import CLOCK_GHZ
from repro.gpusim.device import Device
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.trace import TraceContext, get_tracer
from repro.storage.base import NeighborStore
from repro.storage.factory import build_storage

if TYPE_CHECKING:  # avoid a runtime core <-> service import cycle
    from repro.service.plan_cache import PlanCache


@dataclass
class PreparedQuery:
    """Everything the joining phase needs, produced by :meth:`prepare`.

    Attributes
    ----------
    query:
        The query graph this plan belongs to.
    candidates:
        ``C(u)`` per query vertex from the filtering phase.
    plan:
        The join order; ``None`` when filtering emptied a candidate set
        (the query provably has no matches) or the budget ran out.
    device:
        The simulated device that ran filtering; :meth:`execute`
        continues on the same device so ``elapsed_ms`` accumulates
        across both phases, exactly as in a single ``match`` call.
    plan_cached:
        True when ``plan`` came from a plan cache instead of
        :func:`~repro.core.plan.plan_join_order`.
    timed_out:
        True when the simulated budget was exhausted during filtering.
    trace:
        The coordinator's :class:`~repro.obs.trace.TraceContext` when
        tracing is active; it pickles with the prepared query into
        process workers so spans recorded there re-parent under the
        coordinator's trace tree.  ``None`` when tracing is disabled.
    """

    query: LabeledGraph
    device: Device
    candidates: Dict[int, Array] = field(default_factory=dict)
    candidate_sizes: Dict[int, int] = field(default_factory=dict)
    plan: Optional[JoinPlan] = None
    filter_ms: float = 0.0
    plan_cached: bool = False
    timed_out: bool = False
    trace: Optional[TraceContext] = None


class GSIEngine:
    """GPU-friendly subgraph isomorphism over one data graph.

    Parameters
    ----------
    graph:
        The data graph ``G``.
    config:
        Feature toggles and tuning parameters; defaults to plain GSI
        (PCSR + Prealloc-Combine + GPU set ops, no Section VI extras).
        Use :meth:`GSIConfig.gsi_opt` for the fully optimized variant.
    """

    name = "GSI"

    def __init__(self, graph: LabeledGraph,
                 config: Optional[GSIConfig] = None, *,
                 signature_table: Optional[SignatureTable] = None,
                 store: Optional[NeighborStore] = None) -> None:
        self.graph = graph
        self.config = config if config is not None else GSIConfig()
        # Offline precomputation (not part of query response time).
        # Callers maintaining artifacts externally (persistence, the
        # dynamic subsystem) inject them instead of rebuilding.
        if signature_table is not None:
            self.signature_table = signature_table
        else:
            self.signature_table = SignatureTable.build(
                graph, self.config.signature_bits, self.config.label_bits,
                column_first=self.config.column_first_signatures)
        if store is not None:
            self.store = store
        else:
            storage_kwargs = (
                {"gpn": self.config.gpn} if self.config.use_pcsr else {})
            self.store = build_storage(self.config.storage_kind, graph,
                                       **storage_kwargs)

    # ------------------------------------------------------------------

    def _make_device(self) -> Device:
        budget_cycles = None
        if self.config.budget_ms is not None:
            budget_cycles = self.config.budget_ms * CLOCK_GHZ * 1e6
        return Device(budget_cycles=budget_cycles)

    def filter_only(self, query: LabeledGraph) -> MatchResult:
        """Run just the filtering phase (Table IV's measurement)."""
        device = self._make_device()
        candidates = filter_candidates(
            query, self.signature_table, device,
            self.config.signature_bits, self.config.label_bits)
        result = MatchResult(engine=self.name)
        result.candidate_sizes = {u: len(c) for u, c in candidates.items()}
        result.elapsed_ms = device.elapsed_ms
        result.phases = PhaseBreakdown(filter_ms=device.elapsed_ms)
        result.counters = device.meter.snapshot()
        return result

    # ------------------------------------------------------------------
    # The two-step query path: prepare (filter + plan), then execute.
    # ------------------------------------------------------------------

    def prepare(self, query: LabeledGraph,
                plan_cache: Optional["PlanCache"] = None) -> PreparedQuery:
        """Filtering phase plus join-order planning.

        ``plan_cache`` (a :class:`~repro.service.plan_cache.PlanCache`)
        lets repeated or isomorphic queries skip
        :func:`~repro.core.plan.plan_join_order`.  Resubmitting the
        *same* query reuses the identical plan, so its simulated
        measurement is reproduced exactly.  An isomorphic query with
        different vertex numbering replays the cached plan translated
        through the isomorphism — a valid join order that fresh
        planning might not pick when score ties break differently, so
        its simulated time can deviate slightly; the match set never
        does.
        """
        if query.num_vertices == 0:
            raise GraphError("empty query")
        # The plan cache also memoizes candidate-set shapes (host-side
        # scan results keyed by encoded signature); simulated costs are
        # charged identically either way.
        shape_cache = (getattr(plan_cache, "shapes", None)
                       if plan_cache is not None else None)
        prepared = PreparedQuery(query=query, device=self._make_device())
        tracer = get_tracer()
        with tracer.span("gsi.prepare",
                         query_vertices=query.num_vertices) as span:
            prepared.trace = span.context() if span.trace_id else None
            try:
                with tracer.span("gsi.filter"):
                    prepared.candidates = filter_candidates(
                        query, self.signature_table, prepared.device,
                        self.config.signature_bits,
                        self.config.label_bits,
                        shape_cache=shape_cache)
            except BudgetExceeded:
                prepared.timed_out = True
                span.set_attribute("timed_out", True)
                return prepared
            prepared.candidate_sizes = {
                u: len(c) for u, c in prepared.candidates.items()}
            prepared.filter_ms = prepared.device.elapsed_ms

            if any(len(c) == 0 for c in prepared.candidates.values()):
                # provably no matches; nothing to plan
                span.set_attribute("empty_candidates", True)
                return prepared

            fingerprint = None
            if plan_cache is not None:
                cached, fingerprint = plan_cache.lookup(query)
                if cached is not None:
                    prepared.plan = cached
                    prepared.plan_cached = True
                    span.set_attribute("plan_cached", True)
                    if fingerprint is not None:
                        span.set_attribute("fingerprint",
                                           str(fingerprint)[:16])
                    return prepared
            with tracer.span("gsi.plan"):
                prepared.plan = plan_join_order(
                    query, self.graph, prepared.candidate_sizes)
            if plan_cache is not None and fingerprint is not None:
                plan_cache.store(
                    fingerprint, prepared.plan,
                    edge_labels=query.distinct_edge_labels())
                span.set_attribute("fingerprint",
                                   str(fingerprint)[:16])
        return prepared

    def execute(self, prepared: PreparedQuery) -> MatchResult:
        """Joining phase: run the prepared plan to a final result."""
        with get_tracer().span("gsi.execute", parent=prepared.trace,
                               lane=self.config.join_kernel) as span:
            result = self._execute_inner(prepared)
            span.set_attribute("matches", result.num_matches)
            if result.timed_out:
                span.set_attribute("timed_out", True)
        return result

    def _execute_inner(self, prepared: PreparedQuery) -> MatchResult:
        device = prepared.device
        result = MatchResult(engine=self.name)
        if prepared.timed_out:
            result.timed_out = True
            result.elapsed_ms = device.elapsed_ms
            result.counters = device.meter.snapshot()
            return result
        result.candidate_sizes = dict(prepared.candidate_sizes)
        if prepared.plan is None:
            # Some candidate set is empty: filtering already proved the
            # query unmatchable.
            result.elapsed_ms = device.elapsed_ms
            result.phases = PhaseBreakdown(filter_ms=prepared.filter_ms)
            result.counters = device.meter.snapshot()
            return result
        plan = prepared.plan
        result.join_order = plan.order
        try:
            ctx = JoinContext(
                graph=self.graph, store=self.store, device=device,
                config=self.config,
                set_engine=SetOpEngine(
                    friendly=self.config.use_gpu_set_ops,
                    write_cache=self.config.use_write_cache))
            rows = run_join_phase(ctx, plan, prepared.candidates)

            # Reorder row positions (join order) into query-vertex order.
            perm = np.argsort(np.asarray(plan.order))
            result.matches = [tuple(int(row[j]) for j in perm)
                              for row in rows]
            result.elapsed_ms = device.elapsed_ms
            result.phases = PhaseBreakdown(
                filter_ms=prepared.filter_ms,
                join_ms=device.elapsed_ms - prepared.filter_ms)
        except BudgetExceeded:
            result.matches = []
            result.timed_out = True
            result.elapsed_ms = device.elapsed_ms
        result.counters = device.meter.snapshot()
        return result

    def match(self, query: LabeledGraph) -> MatchResult:
        """Find all subgraph-isomorphism embeddings of ``query``.

        Returns a :class:`~repro.core.result.MatchResult`; if the
        configured simulated budget is exhausted, ``timed_out`` is set
        and partial state is discarded.
        """
        return self.execute(self.prepare(query))

    # ------------------------------------------------------------------

    def candidate_sets(self, query: LabeledGraph) -> Dict[int, Array]:
        """Candidate sets only, without any cost accounting (testing aid)."""
        device = Device()
        return filter_candidates(query, self.signature_table, device,
                                 self.config.signature_bits,
                                 self.config.label_bits)
