"""Vectorized join lane: whole edge passes as bulk NumPy ops.

:mod:`repro.core.join` executes one Python iteration per
intermediate-table row.  That is faithful to the warp-per-row mental
model but dominates host wall-clock once tables grow.  This module is a
drop-in replacement for the join phase (selected via
``GSIConfig.join_kernel``) that executes each edge pass over the *whole*
table at once:

* rows are grouped by their bound vertex (``np.unique``), so each
  distinct ``(v, label)`` neighbor list is fetched and concatenated
  exactly once — duplicate-removal sharing falls out of the grouping;
* ``(N(v, l) \\ m_i) ∩ C(u)`` and the refine intersections run as
  vectorized sorted-set operations over the flattened buffers, built on
  the same primitives (`CandidateSet.contains_mask`, sorted
  ``searchsorted`` probes) the per-row lane uses;
* per-row :class:`~repro.core.set_ops.RowCost` fields are derived from
  length arrays with the exact formulas of ``SetOpEngine``, so metered
  transaction totals, kernel cycle lists (hence simulated latency and
  budget-abort points) and match sets stay **byte-identical** to the
  per-row lane.  The differential tests assert this.

The optional ``"numba"`` lane JIT-compiles the membership probes when
numba is installed and silently degrades to the NumPy lane otherwise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.arraytypes import Array
from repro.core.plan import JoinPlan, JoinStep, select_first_edge
from repro.core.set_ops import CandidateSet
from repro.errors import BudgetExceeded
from repro.gpusim.constants import (
    CYCLES_PER_GLD,
    CYCLES_PER_GST,
    CYCLES_PER_OP,
    CYCLES_PER_SHARED,
    ELEMENTS_PER_TRANSACTION,
    LABEL_JOIN,
    WARPS_PER_BLOCK,
)
from repro.gpusim.transactions import contiguous_read
from repro.obs.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.core.join import JoinContext, Row

try:  # optional JIT lane; the container may not ship numba
    import numba  # type: ignore

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - absence is the common case
    numba = None
    HAVE_NUMBA = False


# ----------------------------------------------------------------------
# Vectorized cost primitives (elementwise twins of gpusim.transactions)
# ----------------------------------------------------------------------


def _cr_vec(n: Array) -> Array:
    """Elementwise ``contiguous_read``: ceil(n / 32) transactions."""
    return (n + ELEMENTS_PER_TRANSACTION - 1) // ELEMENTS_PER_TRANSACTION


def _write_cost_vec(n: Array, write_cache: bool) -> Array:
    """Elementwise ``SetOpEngine._write_cost``."""
    return _cr_vec(n) if write_cache else n


# ----------------------------------------------------------------------
# Functional building blocks
# ----------------------------------------------------------------------


def _shared_hit_mask(vcol: Array) -> Array:
    """Duplicate-removal hits: rows whose bound vertex already occurred
    earlier within the same ``WARPS_PER_BLOCK`` block (Alg. 5's
    first-occurrence stager keeps its own global read)."""
    num_rows = len(vcol)
    idx = np.arange(num_rows, dtype=np.int64)
    block_id = idx // WARPS_PER_BLOCK
    order = np.lexsort((idx, vcol, block_id))
    first = np.ones(num_rows, dtype=bool)
    if num_rows > 1:
        sb, sv = block_id[order], vcol[order]
        first[1:] = (sb[1:] != sb[:-1]) | (sv[1:] != sv[:-1])
    hit = np.empty(num_rows, dtype=bool)
    hit[order] = ~first
    return hit


if HAVE_NUMBA:  # pragma: no cover - only with numba installed

    @numba.njit(cache=True)
    def _membership_jit(values: Array, seg_of: Array,
                        seg_starts: Array, seg_lens: Array,
                        concat: Array) -> Array:
        out = np.zeros(values.shape[0], dtype=np.bool_)
        for i in range(values.shape[0]):
            start = seg_starts[seg_of[i]]
            n = seg_lens[seg_of[i]]
            lo, hi, v = 0, n, values[i]
            while lo < hi:
                mid = (lo + hi) // 2
                if concat[start + mid] < v:
                    lo = mid + 1
                else:
                    hi = mid
            out[i] = lo < n and concat[start + lo] == v
        return out


def _segment_membership(values: Array, seg_of: Array,
                        seg_starts: Array, seg_lens: Array,
                        concat: Array, use_numba: bool) -> Array:
    """``values[i] ∈ segment[seg_of[i]]`` for sorted-unique segments.

    Equivalent to per-row ``np.intersect1d(buf, nbrs,
    assume_unique=True)`` membership; the buffers stay sorted-unique, so
    filtering by this mask reproduces the intersection exactly.
    """
    if use_numba and HAVE_NUMBA:  # pragma: no cover - numba optional
        return _membership_jit(values, seg_of, seg_starts, seg_lens, concat)
    out = np.zeros(len(values), dtype=bool)
    if len(values) == 0:
        return out
    order = np.argsort(seg_of, kind="stable")
    sorted_seg = seg_of[order]
    bounds = np.flatnonzero(sorted_seg[1:] != sorted_seg[:-1]) + 1
    for run in np.split(order, bounds):
        seg = int(seg_of[run[0]])
        n = int(seg_lens[seg])
        if n == 0:
            continue
        segment = concat[seg_starts[seg]:seg_starts[seg] + n]
        vals = values[run]
        pos = np.minimum(np.searchsorted(segment, vals), n - 1)
        out[run] = segment[pos] == vals
    return out


# ----------------------------------------------------------------------
# Edge pass
# ----------------------------------------------------------------------


def _distinct_neighbors(
        ctx: "JoinContext", vcol: Array, label: int
) -> Tuple[Array, Array, Array, Array, Array, Array, Array]:
    """Fetch each distinct vertex's neighbor list once (shared memo with
    the per-row lane) and return grouped arrays."""
    uniq, inv = np.unique(vcol, return_inverse=True)
    num_uniq = len(uniq)
    locate_u = np.empty(num_uniq, dtype=np.int64)
    read_u = np.empty(num_uniq, dtype=np.int64)
    streamed_u = np.empty(num_uniq, dtype=np.int64)
    len_u = np.empty(num_uniq, dtype=np.int64)
    lists: List[Array] = []
    for k in range(num_uniq):
        nbrs, locate, read_tx, streamed = ctx.neighbors(int(uniq[k]), label)
        lists.append(nbrs)
        locate_u[k] = locate
        read_u[k] = read_tx
        streamed_u[k] = streamed
        len_u[k] = len(nbrs)
    starts_u = np.zeros(num_uniq + 1, dtype=np.int64)
    np.cumsum(len_u, out=starts_u[1:])
    concat = (np.concatenate(lists) if lists
              else np.empty(0, dtype=np.int64))
    return inv, concat, starts_u, locate_u, read_u, streamed_u, len_u


def _meter_and_launch(ctx: "JoinContext", gld: Array, gst: Array,
                      shared: Array, ops: Array,
                      launches: int, units: Array, name: str) -> None:
    """Bulk twin of ``_run_edge_kernel``: meter totals are plain sums, and
    the per-row cycle list is passed in the same row order, so scheduling
    (and any ``BudgetExceeded`` point) is identical."""
    device = ctx.device
    device.meter.add_gld(int(gld.sum()), label=LABEL_JOIN)
    device.meter.add_gst(int(gst.sum()))
    device.meter.add_shared(int(shared.sum()))
    device.meter.add_ops(int(ops.sum()))
    if launches:
        device.launch_overhead(launches)
    cycles = (gld * CYCLES_PER_GLD + gst * CYCLES_PER_GST
              + shared * CYCLES_PER_SHARED + ops * CYCLES_PER_OP)
    device.run_kernel(cycles.tolist(), name=name,
                      lb=ctx.config.load_balance_config(),
                      task_units=units.astype(np.float64).tolist())


def _edge_pass_vector(ctx: "JoinContext", rows_np: Array,
                      col_of: Dict[int, int],
                      edges: List[Tuple[int, int]], cand: CandidateSet,
                      count_only: bool, step_name: str
                      ) -> Tuple[Array, Array]:
    """All linking-edge kernels over the whole table at once.

    Returns ``(flat, counts)``: the per-row buffers concatenated in row
    order plus their lengths.
    """
    num_rows, width = rows_np.shape
    engine = ctx.set_engine
    friendly = engine.friendly
    write_cache = engine.write_cache
    dr = ctx.config.use_duplicate_removal
    use_numba = ctx.config.join_kernel == "numba"
    probe_factor = cand.probe_gld(1, friendly)

    flat = np.empty(0, dtype=np.int64)
    counts = np.zeros(num_rows, dtype=np.int64)
    for edge_idx, (u_prime, label) in enumerate(edges):
        vcol = rows_np[:, col_of[u_prime]]
        (inv, concat, starts_u, locate_u, read_u, streamed_u,
         len_u) = _distinct_neighbors(ctx, vcol, label)
        locate_r, read_r = locate_u[inv], read_u[inv]
        streamed_r = streamed_u[inv]
        shared_hit = (_shared_hit_mask(vcol) if dr
                      else np.zeros(num_rows, dtype=bool))
        locread = locate_r + read_r
        gld = np.where(shared_hit, 0, locread)
        shared = np.where(shared_hit, locread,
                          read_r if friendly else 0)
        launches = 0

        if edge_idx == 0:
            # buf_i = (N(v, l0) \ m_i) ∩ C(u), all rows at once: expand
            # each row's neighbor list by gathering from the per-vertex
            # concatenation, then mask per element.
            nlen_r = len_u[inv]
            total = int(nlen_r.sum())
            row_of = np.repeat(np.arange(num_rows, dtype=np.int64), nlen_r)
            head = np.zeros(num_rows + 1, dtype=np.int64)
            np.cumsum(nlen_r, out=head[1:])
            gather = (np.arange(total, dtype=np.int64) - head[:-1][row_of]
                      + starts_u[inv][row_of])
            vals = concat[gather]
            in_row = np.zeros(total, dtype=bool)
            for j in range(width):
                in_row |= vals == rows_np[row_of, j]
            keep_mask = ~in_row
            buf_mask = keep_mask & cand.contains_mask(concat)[gather]
            len_keep = np.bincount(row_of, weights=keep_mask,
                                   minlength=num_rows).astype(np.int64)
            counts = np.bincount(row_of, weights=buf_mask,
                                 minlength=num_rows).astype(np.int64)
            flat = vals[buf_mask]

            units = streamed_r
            row_read = contiguous_read(width)
            if friendly:
                shared = shared + row_read
            else:
                gld = gld + row_read
                launches += num_rows
            ops = streamed_r + width
            if friendly:
                gst = np.zeros(num_rows, dtype=np.int64)
            else:
                mid = _cr_vec(len_keep)
                gst = mid.copy()
                gld = gld + mid
                launches += num_rows
            gld = gld + len_keep * probe_factor
            ops = ops + len_keep
            gst = gst + _write_cost_vec(counts, write_cache)
            if write_cache:
                shared = shared + (counts > 0)
        else:
            # buf_i = buf_i ∩ N(v, l): one membership probe per element.
            counts_in = counts
            row_of = np.repeat(np.arange(num_rows, dtype=np.int64),
                               counts_in)
            member = _segment_membership(flat, inv[row_of], starts_u,
                                         len_u, concat, use_numba)
            counts = np.bincount(row_of, weights=member,
                                 minlength=num_rows).astype(np.int64)
            flat = flat[member]

            units = counts_in + streamed_r
            gld = gld + _cr_vec(counts_in)
            if not friendly:
                launches += num_rows
            ops = counts_in + streamed_r
            gst = _write_cost_vec(counts, write_cache)

        if dr:
            ops = ops + 4  # Alg. 5 synchronization overhead
        if count_only:
            gst = np.zeros(num_rows, dtype=np.int64)
        _meter_and_launch(ctx, gld, gst, shared, ops, launches, units,
                          name=f"{step_name}_e{edge_idx}")
    return flat, counts


# ----------------------------------------------------------------------
# Prealloc / link / two-step materialization
# ----------------------------------------------------------------------


def _prealloc_vector(ctx: "JoinContext", rows_np: Array,
                     col0: int, label0: int, step_name: str) -> None:
    """Algorithm 4's capacity bounds + GBA scan, grouped by vertex."""
    vcol = rows_np[:, col0]
    inv, _, _, locate_u, _, _, len_u = _distinct_neighbors(
        ctx, vcol, label0)
    locate_r = locate_u[inv]
    caps = len_u[inv]
    ctx.device.meter.add_gld(int(locate_r.sum()), label=LABEL_JOIN)
    tasks = (locate_r * CYCLES_PER_GLD).tolist()
    ctx.device.exclusive_prefix_sum(
        caps, name=f"{step_name}_prealloc_scan", fused_tasks=tasks)


def _materialize(rows_np: Array, flat: Array,
                 counts: Array) -> Array:
    """``m_i (+) z`` for every surviving z, as one bulk repeat+stack."""
    width = rows_np.shape[1]
    new_rows = np.empty((len(flat), width + 1), dtype=np.int64)
    new_rows[:, :width] = np.repeat(rows_np, counts, axis=0)
    new_rows[:, width] = flat
    return new_rows


def _link_vector(ctx: "JoinContext", rows_np: Array, flat: Array,
                 counts: Array, step_name: str) -> Array:
    """Alg. 3 lines 14-21 over the whole table."""
    ctx.device.exclusive_prefix_sum(counts, name=f"{step_name}_offsets")
    width = rows_np.shape[1]
    use_cache = ctx.config.use_write_cache and ctx.config.use_gpu_set_ops
    nz = counts > 0
    gld = np.where(nz, contiguous_read(width) + _cr_vec(counts), 0)
    written = (width + 1) * counts
    gst = np.where(nz, _write_cost_vec(written, use_cache), 0)
    ctx.device.meter.add_gld(int(gld.sum()), label=LABEL_JOIN)
    ctx.device.meter.add_gst(int(gst.sum()))
    cycles = gld * CYCLES_PER_GLD + gst * CYCLES_PER_GST
    ctx.device.run_kernel(cycles.tolist(), name=f"{step_name}_link",
                          lb=ctx.config.load_balance_config(),
                          task_units=counts.astype(np.float64).tolist())
    return _materialize(rows_np, flat, counts)


def _two_step_vector(ctx: "JoinContext", rows_np: Array,
                     flat: Array, counts: Array,
                     step_name: str) -> Array:
    """Two-step scheme's assembly: writes were charged in the repeated
    pass, only the offsets scan and batched stores land here."""
    ctx.device.exclusive_prefix_sum(counts, name=f"{step_name}_offsets")
    width = rows_np.shape[1]
    written = (width + 1) * counts[counts > 0]
    ctx.device.meter.add_gst(int(_cr_vec(written).sum()))
    return _materialize(rows_np, flat, counts)


# ----------------------------------------------------------------------
# Step / phase drivers (mirror execute_join_step / run_join_phase)
# ----------------------------------------------------------------------


def execute_join_step_vector(ctx: "JoinContext", rows_np: Array,
                             columns: List[int], step: JoinStep,
                             cand: CandidateSet) -> Array:
    """One Alg. 3 invocation over an ndarray intermediate table."""
    if rows_np.shape[0] == 0 or len(cand) == 0:
        return np.empty((0, rows_np.shape[1] + 1), dtype=np.int64)
    if ctx.config.max_intermediate_rows is not None and \
            rows_np.shape[0] > ctx.config.max_intermediate_rows:
        raise BudgetExceeded(
            "intermediate table exceeded "
            f"{ctx.config.max_intermediate_rows} rows")

    col_of = {qv: j for j, qv in enumerate(columns)}
    step_name = f"join_u{step.vertex}"
    first = select_first_edge(step, ctx.graph)
    edges = [first] + [e for e in step.linking_edges if e != first]

    if ctx.config.use_gpu_set_ops:
        bitset_words = (ctx.graph.num_vertices + 31) // 32
        ctx.device.memset_cycles(bitset_words)

    if ctx.config.use_prealloc_combine:
        _prealloc_vector(ctx, rows_np, col_of[first[0]], first[1], step_name)
        flat, counts = _edge_pass_vector(ctx, rows_np, col_of, edges, cand,
                                         count_only=False,
                                         step_name=step_name)
        return _link_vector(ctx, rows_np, flat, counts, step_name)

    _edge_pass_vector(ctx, rows_np, col_of, edges, cand, count_only=True,
                      step_name=step_name + "_count")
    flat, counts = _edge_pass_vector(ctx, rows_np, col_of, edges, cand,
                                     count_only=False,
                                     step_name=step_name + "_write")
    return _two_step_vector(ctx, rows_np, flat, counts, step_name)


def run_join_phase_vector(ctx: "JoinContext", plan: JoinPlan,
                          candidates: Dict[int, Array]
                          ) -> List["Row"]:
    """Vectorized twin of ``run_join_phase``; same rows, same meters."""
    lane = "numba" if (ctx.config.join_kernel == "numba"
                       and HAVE_NUMBA) else "vector"
    with get_tracer().span("kernel.join_phase", lane=lane,
                           steps=len(plan.steps)) as span:
        start_cands = candidates[plan.start_vertex]
        tx = contiguous_read(len(start_cands))
        ctx.device.meter.add_gld(tx, label=LABEL_JOIN)
        ctx.device.meter.add_gst(tx)
        ctx.device.run_kernel([float(tx * CYCLES_PER_GLD)],
                              name="init_m")

        rows_np = np.asarray(start_cands, dtype=np.int64).reshape(-1, 1)
        columns = [plan.start_vertex]
        for step in plan.steps:
            cand = CandidateSet(np.asarray(candidates[step.vertex],
                                           dtype=np.int64))
            rows_np = execute_join_step_vector(ctx, rows_np, columns,
                                               step, cand)
            columns.append(step.vertex)
            if rows_np.shape[0] == 0:
                break
        span.set_attribute("rows", int(rows_np.shape[0]))
    return [tuple(int(x) for x in row) for row in rows_np]
