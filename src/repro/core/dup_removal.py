"""Duplicate removal within a block (Algorithm 5, Section VI-B).

Rows of the intermediate table often repeat the same data vertex in the
same column (Figure 9: every row starts with ``v0``), so all their warps
would extract the same ``N(v, l)``.  Within one block, warps write their
vertex to shared memory, find the *first* warp holding the same vertex,
and share that warp's staged input buffer instead of re-reading global
memory.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.gpusim.constants import WARPS_PER_BLOCK


def sharing_assignment(block_vertices: Sequence[int]) -> List[int]:
    """Algorithm 5 lines 1-5: ``addr[i]`` = first occurrence of ``v_i``.

    ``block_vertices[i]`` is the vertex warp ``i`` of the block needs;
    the returned ``addr[i]`` points at the warp whose staged buffer warp
    ``i`` reads (itself, when it is the first occurrence).
    """
    first_of: Dict[int, int] = {}
    addr: List[int] = []
    for i, v in enumerate(block_vertices):
        if v not in first_of:
            first_of[v] = i
        addr.append(first_of[v])
    return addr


def distinct_loads(block_vertices: Sequence[int]) -> int:
    """How many global-memory list loads the block issues after sharing
    (= number of distinct vertices in the block)."""
    return len(set(block_vertices))


def removable_fraction(column_vertices: Sequence[int],
                       block_size: int = WARPS_PER_BLOCK) -> float:
    """Fraction of neighbor-list loads a column's duplicates save.

    The paper notes DR's bottleneck is its region size — one block —
    since each warp handles one row; this estimates the attainable
    saving for a given intermediate-table column.
    """
    n = len(column_vertices)
    if n == 0:
        return 0.0
    loads = 0
    for start in range(0, n, block_size):
        loads += distinct_loads(column_vertices[start:start + block_size])
    return 1.0 - loads / n
