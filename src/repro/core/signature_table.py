"""Signature table layout and the cost of scanning it (Fig. 8c vs 8d).

The table itself is identical under both layouts; what differs is the
memory-transaction count of the filtering scan:

* **row-first** (Fig. 8c): thread ``t`` reads the first word of signature
  ``t`` — consecutive threads touch addresses ``N/8`` bytes apart, so a
  warp's 32 reads hit many 128 B segments ("memory access gap").
* **column-first** (Fig. 8d): word ``j`` of all signatures is stored
  contiguously, so a warp's 32 reads of word ``j`` for 32 consecutive
  vertices coalesce into a single transaction.

The scan also exploits the Section VII-B refinement: word 0 (the raw
vertex label) is compared first, and only label-matching vertices read the
remaining words.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.arraytypes import Array
from repro.core.signature import candidate_mask
from repro.gpusim.constants import (
    CYCLES_PER_GLD,
    CYCLES_PER_OP,
    WARP_SIZE,
)
from repro.gpusim.transactions import strided_read
from repro.graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class ScanCost:
    """Counted cost of filtering one query vertex over the table."""

    gld_transactions: int
    #: per-warp cycles, feeds the kernel scheduler
    warp_task_cycles: Tuple[int, ...]


class SignatureTable:
    """The data-graph signature table plus its scan cost model.

    Parameters
    ----------
    table:
        ``(num_vertices, words)`` uint32 array from
        :func:`repro.core.signature.encode_all`.
    column_first:
        Layout flag; affects cost only, never results.
    """

    def __init__(self, table: Array, column_first: bool = True) -> None:
        self.table = table
        self.column_first = column_first
        self.num_vertices = int(table.shape[0])
        self.words = int(table.shape[1])

    @classmethod
    def build(cls, graph: LabeledGraph, signature_bits: int,
              label_bits: int = 32, column_first: bool = True
              ) -> "SignatureTable":
        """Encode all of ``graph`` (the paper does this offline)."""
        from repro.core.signature import encode_all

        return cls(encode_all(graph, signature_bits, label_bits),
                   column_first=column_first)

    # ------------------------------------------------------------------

    def filter(self, sig_u: Array) -> Array:
        """Candidate vertex ids for a query signature (functional)."""
        return np.nonzero(candidate_mask(self.table, sig_u))[0]

    def scan_cost(self, sig_u: Array) -> ScanCost:
        """Transaction/cycle cost of one full scan for ``sig_u``.

        Every warp handles 32 consecutive vertices.  All warps read word 0
        (the label); warps containing at least one label match read the
        remaining ``words - 1`` signature words for comparison.
        """
        n, w = self.num_vertices, self.words
        if n == 0:
            return ScanCost(0, ())
        label_hits = self.table[:, 0] == sig_u[0]
        num_warps = math.ceil(n / WARP_SIZE)

        pad = num_warps * WARP_SIZE - n
        hits_padded = np.pad(label_hits, (0, pad))
        warp_has_hit = hits_padded.reshape(num_warps, WARP_SIZE).any(axis=1)

        total_gld = 0
        task_cycles = []
        for warp in range(num_warps):
            if self.column_first:
                word0_tx = 1
                tail_tx = (w - 1) if warp_has_hit[warp] else 0
            else:
                # Row-first: a warp's 32 same-word reads are strided by
                # the signature width.
                word0_tx = strided_read(WARP_SIZE, w)
                tail_tx = ((w - 1) * strided_read(WARP_SIZE, w)
                           if warp_has_hit[warp] else 0)
            tx = word0_tx + tail_tx
            total_gld += tx
            task_cycles.append(tx * CYCLES_PER_GLD + w * CYCLES_PER_OP)
        return ScanCost(total_gld, tuple(task_cycles))
