"""Filtering phase: candidate set generation (Section III-A).

For each query vertex ``u`` the data-graph signature table is scanned in a
massively parallel fashion; vertices whose signatures pass the
:func:`~repro.core.signature.is_candidate` test form ``C(u)``.  The scan's
memory cost depends on the table layout (see
:mod:`repro.core.signature_table`); its *natural load balance* — every
thread reads a fixed-length signature — is why filtering is cheap on GPU.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.arraytypes import Array
from repro.core.signature import encode_vertex
from repro.core.signature_table import SignatureTable
from repro.gpusim.constants import LABEL_FILTER
from repro.gpusim.device import Device
from repro.graph.labeled_graph import LabeledGraph

if TYPE_CHECKING:  # avoid a runtime core <-> service import cycle
    from repro.service.plan_cache import CandidateShapeCache


def filter_candidates(query: LabeledGraph, table: SignatureTable,
                      device: Device, signature_bits: int,
                      label_bits: int = 32,
                      shape_cache: Optional[CandidateShapeCache] = None
                      ) -> Dict[int, Array]:
    """Compute ``C(u)`` for every query vertex, metering the scan.

    Query signatures are computed online (cheap: |V(Q)| encodings); each
    query vertex then launches one scan kernel over the table.

    ``shape_cache`` (a :class:`~repro.service.plan_cache.
    CandidateShapeCache`) memoizes the *host-side* table scan per
    encoded signature: repeated query labels reuse the candidate array
    and scan cost instead of re-scanning.  The memoized cost is still
    charged to ``device``, so simulated measurements are unchanged.

    Returns a dict mapping query vertex id to a sorted candidate array
    (read-only when it came from the shape cache).
    """
    candidates: Dict[int, Array] = {}
    if shape_cache is not None:
        # Candidate ids are only meaningful against this table; a memo
        # previously bound to a different table is dropped wholesale.
        shape_cache.bind(table)
    for u in range(query.num_vertices):
        sig_u = encode_vertex(query, u, signature_bits, label_bits)
        cached = None
        if shape_cache is not None:
            key = sig_u.tobytes()
            cached = shape_cache.lookup(key, owner=table)
        if cached is None:
            cost = table.scan_cost(sig_u)
            cand = None
        else:
            cost, cand = cached
        # Charge the simulated scan before doing the host-side work, so
        # a budget-exhausted query short-circuits (BudgetExceeded from
        # run_kernel) without paying the O(|V|) host scan it would have
        # skipped before the memo existed.
        device.meter.add_gld(cost.gld_transactions, label=LABEL_FILTER)
        device.run_kernel(cost.warp_task_cycles, name=f"filter_u{u}")
        if cand is None:
            cand = table.filter(sig_u)
            if shape_cache is not None:
                shape_cache.store(key, cost, cand, owner=table)
        candidates[u] = cand
    return candidates


def label_degree_candidates(query: LabeledGraph, graph: LabeledGraph,
                            device: Device,
                            check_neighbor_labels: bool = False
                            ) -> Dict[int, Array]:
    """The GpSM / GunrockSM filtering strategy (used in Table IV).

    Candidates are vertices with the same label and at least the query
    vertex's degree.  With ``check_neighbor_labels=True`` (GpSM's extra
    refinement pass) each surviving candidate additionally must carry all
    of the query vertex's incident edge labels, at the cost of streaming
    its full neighborhood.
    """
    degrees = np.array([graph.degree(v) for v in range(graph.num_vertices)],
                       dtype=np.int64)
    labels = graph.vertex_labels
    candidates: Dict[int, Array] = {}
    for u in range(query.num_vertices):
        mask = (labels == query.vertex_label(u)) & \
               (degrees >= query.degree(u))
        cand = np.nonzero(mask)[0]
        # Scan cost: one label word + one degree word per vertex,
        # coalesced: 2 transactions per warp of 32 vertices.
        num_warps = (graph.num_vertices + 31) // 32
        device.meter.add_gld(2 * num_warps, label=LABEL_FILTER)
        device.run_kernel([2 * 400.0] * num_warps, name=f"ld_filter_u{u}")

        if check_neighbor_labels and len(cand):
            required = set(int(l) for l in query.incident_labels(u))
            keep = []
            extra_tasks = []
            for v in cand:
                v = int(v)
                have = set(int(l) for l in graph.incident_labels(v))
                if required <= have:
                    keep.append(v)
                # Streaming the neighborhood's label array: deg/32 txns.
                tx = max(1, (graph.degree(v) + 31) // 32)
                device.meter.add_gld(tx, label=LABEL_FILTER)
                extra_tasks.append(tx * 400.0)
            if extra_tasks:
                device.run_kernel(extra_tasks, name=f"refine_u{u}")
            cand = np.array(keep, dtype=np.int64)
        candidates[u] = cand
    return candidates
