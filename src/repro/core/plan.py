"""Join-order planning (Algorithm 2, Lines 2-13).

The first query vertex minimizes ``score(u) = |C(u)| / deg(u)``; every
subsequent vertex is the connected, not-yet-joined vertex with minimum
score, where scores are re-weighted by the frequency of adjacent edge
labels as vertices join (``score(u') *= freq(L(uc u'))``) — infrequent
linking labels thus pull their endpoints earlier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


from repro.errors import PlanError
from repro.graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class JoinStep:
    """One iteration of the join phase.

    Attributes
    ----------
    vertex:
        The query vertex ``u`` joined at this step.
    linking_edges:
        ``(u', edge_label)`` pairs for every edge between ``u`` and the
        already-joined partial query ``Q'`` (the ``ES`` of Alg. 3).
    """

    vertex: int
    linking_edges: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class JoinPlan:
    """Complete join order: the start vertex plus one step per other."""

    start_vertex: int
    steps: Tuple[JoinStep, ...]

    @property
    def order(self) -> List[int]:
        """All query vertices in join order."""
        return [self.start_vertex] + [s.vertex for s in self.steps]


def plan_join_order(query: LabeledGraph, graph: LabeledGraph,
                    candidate_sizes: Dict[int, int]) -> JoinPlan:
    """Run Algorithm 2's ordering heuristic.

    ``candidate_sizes`` maps each query vertex to ``|C(u)|`` from the
    filtering phase.  Ties break on vertex id for determinism.
    """
    nq = query.num_vertices
    if nq == 0:
        raise PlanError("query has no vertices")
    if not query.is_connected():
        raise PlanError("query must be connected (split components first)")

    score = {
        u: candidate_sizes.get(u, 0) / max(1, query.degree(u))
        for u in range(nq)
    }

    start = min(range(nq), key=lambda u: (score[u], u))
    joined = {start}

    def reweight(uc: int) -> None:
        # Lines 12-13: adjacent scores scale by the linking label's
        # frequency in G.
        for u2, lab in zip(query.neighbors(uc), query.incident_labels(uc)):
            u2 = int(u2)
            score[u2] *= max(1, graph.edge_label_frequency(int(lab)))

    reweight(start)
    steps: List[JoinStep] = []
    while len(joined) < nq:
        frontier = [
            u for u in range(nq) if u not in joined
            and any(int(w) in joined for w in query.neighbors(u))
        ]
        if not frontier:
            raise PlanError("query disconnected mid-plan (bug)")
        u = min(frontier, key=lambda x: (score[x], x))
        linking = tuple(
            (int(w), int(lab))
            for w, lab in zip(query.neighbors(u), query.incident_labels(u))
            if int(w) in joined
        )
        steps.append(JoinStep(vertex=u, linking_edges=linking))
        joined.add(u)
        reweight(u)
    return JoinPlan(start_vertex=start, steps=tuple(steps))


def select_first_edge(step: JoinStep, graph: LabeledGraph
                      ) -> Tuple[int, int]:
    """Algorithm 4, Line 1: the linking edge with the rarest label in G.

    The first edge bounds the GBA buffer size per row, so picking the
    globally rarest label minimizes pre-allocated memory.
    """
    if not step.linking_edges:
        raise PlanError(f"step for vertex {step.vertex} has no linking edge")
    return min(
        step.linking_edges,
        key=lambda e: (graph.edge_label_frequency(e[1]), e[0]),
    )
