"""GPU-friendly set operations with counted costs (Section V).

Each join iteration performs, per intermediate-table row ``m_i``:

* first linking edge: ``buf_i = (N(v', l0) \\ m_i) ∩ C(u)``
* every other linking edge: ``buf_i = buf_i ∩ N(v', l)``

Two cost modes mirror the paper's ablation:

**GPU-friendly** (``+SO``): the row is cached in shared memory, neighbor
lists are streamed batch-by-batch (128 B per transaction), membership in
``C(u)`` is a single bitset transaction per element, and subtraction +
candidate check are fused; a 128 B write cache batches result stores.

**Naive**: every set operation is a separate kernel launch using a
traditional two-list intersection: the row is re-read per operation, the
intermediate result is materialized to global memory between kernels, and
``C(u)`` membership is a binary search (~2 dependent transactions per
element); stores are unbatched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.arraytypes import Array
from repro.gpusim.constants import (
    CYCLES_PER_GLD,
    CYCLES_PER_GST,
    CYCLES_PER_OP,
    CYCLES_PER_SHARED,
)
from repro.gpusim.transactions import (
    batched_write,
    contiguous_read,
    unbatched_write,
)


@dataclass
class RowCost:
    """Counted events for one row's work within one kernel."""

    gld: int = 0
    gst: int = 0
    shared: int = 0
    ops: int = 0
    launches: int = 0
    units: float = 0.0  # workload elements, drives load-balance thresholds

    def cycles(self) -> float:
        """Convert to warp-task cycles for the kernel scheduler."""
        return (self.gld * CYCLES_PER_GLD + self.gst * CYCLES_PER_GST
                + self.shared * CYCLES_PER_SHARED + self.ops * CYCLES_PER_OP)

    def merge(self, other: "RowCost") -> None:
        """Accumulate another cost into this one."""
        self.gld += other.gld
        self.gst += other.gst
        self.shared += other.shared
        self.ops += other.ops
        self.launches += other.launches
        self.units += other.units


@dataclass
class CandidateSet:
    """``C(u)`` in the three forms the join needs.

    ``sorted_ids`` drives functional set logic; the conceptual GPU-side
    bitset (friendly mode) or sorted array (naive mode) only matters for
    cost counting.
    """

    sorted_ids: Array
    _log_size: int = field(init=False)

    def __post_init__(self) -> None:
        n = max(2, len(self.sorted_ids))
        self._log_size = int(np.ceil(np.log2(n)))

    def __len__(self) -> int:
        return len(self.sorted_ids)

    def contains_mask(self, values: Array) -> Array:
        """Vectorized membership test for sorted unique ``values``."""
        if len(self.sorted_ids) == 0 or len(values) == 0:
            return np.zeros(len(values), dtype=bool)
        idx = np.searchsorted(self.sorted_ids, values)
        idx = np.minimum(idx, len(self.sorted_ids) - 1)
        return self.sorted_ids[idx] == values

    def probe_gld(self, num_elements: int, friendly: bool) -> int:
        """Transactions to test ``num_elements`` memberships.

        Friendly mode probes the bitset: exactly one transaction per
        element (Section V).  Naive mode binary-searches the sorted
        array; the top levels stay cached, costing ~2 dependent
        transactions per element.
        """
        if friendly:
            return num_elements
        return num_elements * min(2, self._log_size)


class SetOpEngine:
    """Executes the per-row set operations and counts their cost."""

    def __init__(self, friendly: bool = True, write_cache: bool = True
                 ) -> None:
        self.friendly = friendly
        self.write_cache = write_cache and friendly

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------

    def _write_cost(self, num_elements: int) -> int:
        """GST for writing a result list (write cache batches to 128 B)."""
        if self.write_cache:
            return batched_write(num_elements)
        return unbatched_write(num_elements)

    def _list_read_cost(self, num_elements: int) -> int:
        """GLD for streaming a neighbor list (batched in friendly mode)."""
        return contiguous_read(num_elements)

    # ------------------------------------------------------------------
    # Operations (functional result + cost)
    # ------------------------------------------------------------------

    def first_edge(self, row: Array, nbrs: Array,
                   locate_tx: int, cand: CandidateSet,
                   read_tx: Optional[int] = None,
                   streamed: Optional[int] = None,
                   nbrs_from_shared: bool = False
                   ) -> Tuple[Array, RowCost]:
        """``buf = (nbrs \\ row) ∩ C(u)`` — Alg. 3 lines 10-11 fused.

        ``read_tx`` / ``streamed`` come from the storage structure: plain
        CSR streams the whole unfiltered neighborhood, per-label stores
        only the answer.  ``nbrs_from_shared`` marks a duplicate-removal
        hit: the list is already staged in shared memory by another warp
        of the block, so its global reads are skipped.

        Returns ``(buf, RowCost)``.
        """
        if read_tx is None:
            read_tx = self._list_read_cost(len(nbrs))
        if streamed is None:
            streamed = len(nbrs)
        cost = RowCost(units=float(streamed))
        if nbrs_from_shared:
            cost.shared += locate_tx + read_tx
        else:
            cost.gld += locate_tx + read_tx
            if self.friendly:
                cost.shared += read_tx  # staged batch-by-batch

        if self.friendly:
            cost.shared += contiguous_read(len(row))  # row cached once
        else:
            cost.gld += contiguous_read(len(row))  # row re-read per op
            cost.launches += 1

        keep = nbrs[~np.isin(nbrs, row, assume_unique=False)]
        cost.ops += streamed + len(row)

        if not self.friendly:
            # Intermediate result materialized between the two kernels.
            mid_tx = contiguous_read(len(keep))
            cost.gst += mid_tx
            cost.gld += mid_tx
            cost.launches += 1

        cost.gld += cand.probe_gld(len(keep), self.friendly)
        cost.ops += len(keep)
        buf = keep[cand.contains_mask(keep)]

        cost.gst += self._write_cost(len(buf))
        if self.write_cache and len(buf):
            cost.shared += 1  # one shared-memory staging slot for the cache
        return buf, cost

    def refine_edge(self, buf: Array, nbrs: Array,
                    locate_tx: int, read_tx: Optional[int] = None,
                    streamed: Optional[int] = None,
                    nbrs_from_shared: bool = False
                    ) -> Tuple[Array, RowCost]:
        """``buf = buf ∩ nbrs`` — Alg. 3 line 13.

        Returns ``(new_buf, RowCost)``.
        """
        if read_tx is None:
            read_tx = self._list_read_cost(len(nbrs))
        if streamed is None:
            streamed = len(nbrs)
        cost = RowCost(units=float(len(buf) + streamed))
        if nbrs_from_shared:
            cost.shared += locate_tx + read_tx
        else:
            cost.gld += locate_tx + read_tx
            if self.friendly:
                cost.shared += read_tx

        # The current buffer is read back from the GBA.
        cost.gld += contiguous_read(len(buf))
        if not self.friendly:
            cost.launches += 1

        result = np.intersect1d(buf, nbrs, assume_unique=True)
        cost.ops += len(buf) + streamed

        cost.gst += self._write_cost(len(result))
        return result, cost

    def count_only_discount(self, cost: RowCost) -> RowCost:
        """Strip result stores from a cost (two-step scheme's first pass
        counts matches without writing them)."""
        return RowCost(gld=cost.gld, gst=0, shared=cost.shared,
                       ops=cost.ops, launches=cost.launches,
                       units=cost.units)
