"""The parallel vertex-oriented join (Algorithms 3 and 4, Section V).

Each iteration joins the intermediate table ``M`` (all partial matches of
the joined subquery ``Q'``) with the candidate set ``C(u)`` of the next
query vertex.  Per row, one simulated warp:

1. (Prealloc-Combine, Alg. 4) bounds its output by ``|N(v', l0)|`` for the
   rarest-labeled linking edge, contributing to the combined GBA buffer;
2. computes ``buf_i = (N(v', l0) \\ m_i) ∩ C(u)`` and intersects with the
   remaining linking edges' neighbor lists;
3. links surviving vertices to ``m_i``, producing rows of ``M'``.

Without Prealloc-Combine the *two-step output scheme* is simulated
instead: the whole per-edge join work runs twice (count pass + write
pass), exactly the doubling GSI eliminates.

Duplicate removal (Alg. 5) and the 4-layer load balance (Section VI) hook
in here as well: the former shares staged neighbor lists between warps of
one block, the latter reshapes kernel task lists before scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arraytypes import Array
from repro.core.config import GSIConfig
from repro.core.dup_removal import sharing_assignment
from repro.core.plan import JoinPlan, JoinStep, select_first_edge
from repro.core.set_ops import CandidateSet, RowCost, SetOpEngine
from repro.errors import BudgetExceeded
from repro.gpusim.constants import CYCLES_PER_GLD, LABEL_JOIN, WARPS_PER_BLOCK
from repro.gpusim.device import Device
from repro.gpusim.transactions import batched_write, contiguous_read
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.trace import get_tracer
from repro.storage.base import NeighborStore

Row = Tuple[int, ...]

#: Placeholder for rows whose buffer the first edge pass has not filled
#: yet; never read (edge 0 always assigns before any refine consumes it).
_UNFILLED_BUF = np.empty(0, dtype=np.int64)


@dataclass
class JoinContext:
    """Everything one join step needs; created once per query."""

    graph: LabeledGraph
    store: NeighborStore
    device: Device
    config: GSIConfig
    set_engine: SetOpEngine
    neighbor_cache: Dict[Tuple[int, int], Tuple[Array, int]] = field(
        default_factory=dict)

    def neighbors(self, v: int, label: int
                  ) -> Tuple[Array, int, int, int]:
        """Memoized ``(N(v, l), locate_tx, read_tx, streamed)``.

        The memo avoids re-running Python-side probes; counted costs are
        still charged per use (unless duplicate removal applies).
        ``read_tx`` and ``streamed`` reflect the storage structure: plain
        CSR streams the entire unfiltered neighborhood.
        """
        key = (v, label)
        hit = self.neighbor_cache.get(key)
        if hit is None:
            # np.unique = sort + dedup: downstream set ops assume the
            # sorted-unique contract (``intersect1d(assume_unique=True)``
            # in refine_edge), so enforce it here rather than trusting
            # every store to never surface a duplicate after churn.
            arr = np.unique(self.store.neighbors(v, label))
            locate = self.store.locate_transactions(v, label)
            read_tx = self.store.read_transactions(v, label)
            streamed = self.store.streamed_elements(v, label)
            hit = (arr, locate, read_tx, streamed)
            self.neighbor_cache[key] = hit
        return hit


def _run_edge_kernel(ctx: JoinContext, costs: List[RowCost],
                     name: str) -> None:
    """Meter and schedule one per-edge kernel from its row costs."""
    device = ctx.device
    total_launches = 0
    cycles: List[float] = []
    units: List[float] = []
    for c in costs:
        device.meter.add_gld(c.gld, label=LABEL_JOIN)
        device.meter.add_gst(c.gst)
        device.meter.add_shared(c.shared)
        device.meter.add_ops(c.ops)
        total_launches += c.launches
        cycles.append(c.cycles())
        units.append(c.units)
    if total_launches:
        device.launch_overhead(total_launches)
    device.run_kernel(cycles, name=name,
                      lb=ctx.config.load_balance_config(),
                      task_units=units)


def _edge_pass(ctx: JoinContext, rows_np: Array, col_of: Dict[int, int],
               edges: List[Tuple[int, int]], cand: CandidateSet,
               bufs: Optional[List[Array]], count_only: bool,
               step_name: str) -> List[Array]:
    """Run all linking-edge kernels over the intermediate table.

    ``bufs`` non-None means results were computed by a previous (count)
    pass; the functional work is reused but costs are charged again —
    that is precisely the two-step scheme's doubled work.
    """
    num_rows = rows_np.shape[0]
    engine = ctx.set_engine
    dr = ctx.config.use_duplicate_removal
    out: List[Array] = (
        [_UNFILLED_BUF] * num_rows if bufs is None else list(bufs))

    for edge_idx, (u_prime, label) in enumerate(edges):
        col = col_of[u_prime]
        costs: List[RowCost] = []
        for block_start in range(0, num_rows, WARPS_PER_BLOCK):
            block_end = min(block_start + WARPS_PER_BLOCK, num_rows)
            block_vertices = [int(rows_np[i, col])
                              for i in range(block_start, block_end)]
            addr = (sharing_assignment(block_vertices) if dr else None)
            for offset, i in enumerate(range(block_start, block_end)):
                v = block_vertices[offset]
                nbrs, locate, read_tx, streamed = ctx.neighbors(v, label)
                shared_hit = addr is not None and addr[offset] != offset
                if edge_idx == 0:
                    buf, cost = engine.first_edge(
                        rows_np[i], nbrs, locate, cand,
                        read_tx=read_tx, streamed=streamed,
                        nbrs_from_shared=shared_hit)
                else:
                    buf, cost = engine.refine_edge(
                        out[i], nbrs, locate,
                        read_tx=read_tx, streamed=streamed,
                        nbrs_from_shared=shared_hit)
                if dr:
                    cost.ops += 4  # Alg. 5 synchronization overhead
                if count_only:
                    cost = engine.count_only_discount(cost)
                out[i] = buf
                costs.append(cost)
        _run_edge_kernel(ctx, costs, name=f"{step_name}_e{edge_idx}")
    return out


def _prealloc_gba(ctx: JoinContext, rows_np: Array,
                  col0: int, label0: int, step_name: str) -> Array:
    """Algorithm 4: per-row capacity bounds and the GBA offset array.

    The per-row ``|N(v', l0)|`` reads are fused into the scan kernel —
    one launch covers both the upper-bound lookup and the prefix sum.
    """
    num_rows = rows_np.shape[0]
    caps = np.empty(num_rows, dtype=np.int64)
    tasks: List[float] = []
    for i in range(num_rows):
        v = int(rows_np[i, col0])
        nbrs, locate, _, _ = ctx.neighbors(v, label0)
        caps[i] = len(nbrs)
        ctx.device.meter.add_gld(locate, label=LABEL_JOIN)
        tasks.append(locate * CYCLES_PER_GLD)
    return ctx.device.exclusive_prefix_sum(
        caps, name=f"{step_name}_prealloc_scan", fused_tasks=tasks)


def _link_kernel(ctx: JoinContext, rows: List[Row], rows_np: Array,
                 bufs: List[Array], step_name: str) -> List[Row]:
    """Alg. 3 lines 14-21: prefix-sum the buffer counts, then copy each
    ``m_i (+) z`` into the new table ``M'``."""
    counts = [len(b) for b in bufs]
    ctx.device.exclusive_prefix_sum(counts, name=f"{step_name}_offsets")

    width = rows_np.shape[1]
    new_rows: List[Row] = []
    cycles: List[float] = []
    units: List[float] = []
    use_cache = ctx.config.use_write_cache and ctx.config.use_gpu_set_ops
    for i, buf in enumerate(bufs):
        cnt = len(buf)
        cost = RowCost(units=float(cnt))
        if cnt:
            cost.gld += contiguous_read(width)       # read m_i (shared stage)
            cost.gld += contiguous_read(cnt)         # read buf_i from GBA
            written = (width + 1) * cnt
            cost.gst += (batched_write(written) if use_cache else written)
            base = rows[i]
            for z in buf:
                new_rows.append(base + (int(z),))
        ctx.device.meter.add_gld(cost.gld, label=LABEL_JOIN)
        ctx.device.meter.add_gst(cost.gst)
        cycles.append(cost.cycles())
        units.append(cost.units)
    ctx.device.run_kernel(cycles, name=f"{step_name}_link",
                          lb=ctx.config.load_balance_config(),
                          task_units=units)
    return new_rows


def _two_step_materialize(ctx: JoinContext, rows: List[Row],
                          rows_np: Array, bufs: List[Array],
                          step_name: str) -> List[Row]:
    """Second half of the two-step scheme: writes of M' happen inside the
    repeated join pass; only the result assembly is shared here."""
    counts = [len(b) for b in bufs]
    ctx.device.exclusive_prefix_sum(counts, name=f"{step_name}_offsets")
    width = rows_np.shape[1]
    new_rows: List[Row] = []
    gst = 0
    for i, buf in enumerate(bufs):
        cnt = len(buf)
        if cnt:
            gst += batched_write((width + 1) * cnt)
            base = rows[i]
            for z in buf:
                new_rows.append(base + (int(z),))
    ctx.device.meter.add_gst(gst)
    return new_rows


def execute_join_step(ctx: JoinContext, rows: List[Row],
                      columns: List[int], step: JoinStep,
                      cand: CandidateSet) -> List[Row]:
    """One iteration of Algorithm 2's loop (i.e. one Alg. 3 invocation).

    ``columns[j]`` names the query vertex of row position ``j``; the new
    vertex's matches are appended as the last position.
    """
    if not rows or len(cand) == 0:
        return []
    if ctx.config.max_intermediate_rows is not None and \
            len(rows) > ctx.config.max_intermediate_rows:
        raise BudgetExceeded(
            "intermediate table exceeded "
            f"{ctx.config.max_intermediate_rows} rows")

    rows_np = np.asarray(rows, dtype=np.int64)
    col_of = {qv: j for j, qv in enumerate(columns)}
    step_name = f"join_u{step.vertex}"

    # Order linking edges so the rarest-label edge comes first (Alg. 4
    # line 1); this is also the edge whose neighbor lists bound the GBA.
    first = select_first_edge(step, ctx.graph)
    edges = [first] + [e for e in step.linking_edges if e != first]

    if ctx.config.use_gpu_set_ops:
        # C(u) is materialized as a bitset for O(1)-transaction probes
        # (Section V): one bit per data vertex, zeroed then set.
        bitset_words = (ctx.graph.num_vertices + 31) // 32
        ctx.device.memset_cycles(bitset_words)

    if ctx.config.use_prealloc_combine:
        _prealloc_gba(ctx, rows_np, col_of[first[0]], first[1], step_name)
        bufs = _edge_pass(ctx, rows_np, col_of, edges, cand,
                          bufs=None, count_only=False, step_name=step_name)
        return _link_kernel(ctx, rows, rows_np, bufs, step_name)

    # Two-step output scheme: identical join work performed twice.
    bufs = _edge_pass(ctx, rows_np, col_of, edges, cand,
                      bufs=None, count_only=True,
                      step_name=step_name + "_count")
    bufs = _edge_pass(ctx, rows_np, col_of, edges, cand,
                      bufs=bufs, count_only=False,
                      step_name=step_name + "_write")
    return _two_step_materialize(ctx, rows, rows_np, bufs, step_name)


def run_join_phase(ctx: JoinContext, plan: JoinPlan,
                   candidates: Dict[int, Array]) -> List[Row]:
    """Execute the full join loop; returns rows aligned with
    ``plan.order`` (caller reorders to query-vertex order)."""
    if ctx.config.join_kernel != "rows":
        # Vectorized lane: byte-identical results and meter totals,
        # bulk NumPy host execution (repro.core.kernels).
        from repro.core.kernels import run_join_phase_vector
        return run_join_phase_vector(ctx, plan, candidates)
    with get_tracer().span("kernel.join_phase", lane="rows",
                           steps=len(plan.steps)) as span:
        start = plan.start_vertex
        start_cands = candidates[start]
        # Materializing M = C(u_start): one coalesced copy.
        tx = contiguous_read(len(start_cands))
        ctx.device.meter.add_gld(tx, label=LABEL_JOIN)
        ctx.device.meter.add_gst(tx)
        ctx.device.run_kernel([float(tx * CYCLES_PER_GLD)],
                              name="init_m")

        rows: List[Row] = [(int(c),) for c in start_cands]
        columns = [start]
        for step in plan.steps:
            cand = CandidateSet(np.asarray(candidates[step.vertex],
                                           dtype=np.int64))
            rows = execute_join_step(ctx, rows, columns, step, cand)
            columns.append(step.vertex)
            if not rows:
                break
        span.set_attribute("rows", len(rows))
    return rows
