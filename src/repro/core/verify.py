"""Embedding verification and post-processing utilities.

Engines are cross-checked in the test suite, but downstream users also
want to *prove* a result is correct (e.g. after changing configs) and to
post-process embeddings — deduplicate automorphic images, or restrict the
non-induced semantics (Definition 3) to induced occurrences.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, List, Sequence, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph

Match = Tuple[int, ...]


def is_valid_embedding(query: LabeledGraph, graph: LabeledGraph,
                       match: Sequence[int]) -> bool:
    """Check one embedding against Definition 3.

    ``match[u]`` is the data vertex assigned to query vertex ``u``.  The
    mapping must be injective, preserve vertex labels, and realize every
    query edge with the right edge label.
    """
    if len(match) != query.num_vertices:
        return False
    if len(set(match)) != len(match):
        return False
    for u in range(query.num_vertices):
        v = match[u]
        if not 0 <= v < graph.num_vertices:
            return False
        if graph.vertex_label(v) != query.vertex_label(u):
            return False
    for u1, u2, lab in query.edges():
        a, b = match[u1], match[u2]
        if not graph.has_edge(a, b) or graph.edge_label(a, b) != lab:
            return False
    return True


def verify_all(query: LabeledGraph, graph: LabeledGraph,
               matches: Iterable[Match]) -> List[Match]:
    """Return the invalid embeddings among ``matches`` (empty == proof)."""
    return [tuple(m) for m in matches
            if not is_valid_embedding(query, graph, m)]


def is_induced_embedding(query: LabeledGraph, graph: LabeledGraph,
                         match: Sequence[int]) -> bool:
    """Whether an embedding is *induced*: non-adjacent query vertices
    must map to non-adjacent data vertices.

    GSI (like GpSM/GunrockSM/VF3 in all-matches mode) enumerates
    non-induced embeddings; this restricts them when induced semantics
    are needed (e.g. network-motif census conventions).
    """
    if not is_valid_embedding(query, graph, match):
        return False
    n = query.num_vertices
    for u1 in range(n):
        for u2 in range(u1 + 1, n):
            if not query.has_edge(u1, u2):
                if graph.has_edge(match[u1], match[u2]):
                    return False
    return True


def filter_induced(query: LabeledGraph, graph: LabeledGraph,
                   matches: Iterable[Match]) -> List[Match]:
    """Keep only induced embeddings."""
    return [tuple(m) for m in matches
            if is_induced_embedding(query, graph, m)]


def query_automorphisms(query: LabeledGraph) -> List[Tuple[int, ...]]:
    """All label- and edge-preserving permutations of the query's own
    vertices (brute force; queries are small by construction)."""
    n = query.num_vertices
    autos = []
    for perm in permutations(range(n)):
        ok = all(query.vertex_label(perm[u]) == query.vertex_label(u)
                 for u in range(n))
        if not ok:
            continue
        # Since perm is a bijection and edge counts are equal, mapping
        # every edge onto an equally-labeled edge makes perm an edge-set
        # automorphism (the image of E(Q) is exactly E(Q)).
        for u1, u2, lab in query.edges():
            a, b = perm[u1], perm[u2]
            if not query.has_edge(a, b) or query.edge_label(a, b) != lab:
                ok = False
                break
        if ok:
            autos.append(perm)
    return autos


def deduplicate_automorphic(query: LabeledGraph,
                            matches: Iterable[Match]) -> List[Match]:
    """Collapse embeddings that are automorphic images of each other.

    Each group of embeddings related by a query automorphism maps to the
    same *subgraph occurrence*; motif counting wants one representative
    per occurrence (e.g. an unlabeled triangle appears 6 times as an
    embedding but once as a motif).
    """
    autos = query_automorphisms(query)
    seen: Set[Match] = set()
    out: List[Match] = []
    for m in matches:
        m = tuple(m)
        if m in seen:
            continue
        out.append(m)
        for perm in autos:
            seen.add(tuple(m[perm[u]] for u in range(len(m))))
    return out
