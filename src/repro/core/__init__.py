"""GSI core: signatures, filtering, planning, and the vertex join."""

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.core.filtering import filter_candidates, label_degree_candidates
from repro.core.plan import (
    JoinPlan,
    JoinStep,
    plan_join_order,
    select_first_edge,
)
from repro.core.result import MatchResult, PhaseBreakdown
from repro.core.set_ops import CandidateSet, RowCost, SetOpEngine
from repro.core.signature import (
    candidate_mask,
    encode_all,
    encode_vertex,
    is_candidate,
)
from repro.core.signature_table import SignatureTable

__all__ = [
    "GSIConfig",
    "GSIEngine",
    "filter_candidates",
    "label_degree_candidates",
    "JoinPlan",
    "JoinStep",
    "plan_join_order",
    "select_first_edge",
    "MatchResult",
    "PhaseBreakdown",
    "CandidateSet",
    "RowCost",
    "SetOpEngine",
    "candidate_mask",
    "encode_all",
    "encode_vertex",
    "is_candidate",
    "SignatureTable",
]
