"""Vertex signatures: the filtering-phase encoding (Section III-A, Fig. 8).

A signature ``S(v)`` is an N-bit vector in two parts:

* the first ``K = 32`` bits store the vertex label *directly* (the paper's
  Section VII-B refinement: exact label comparison instead of hashing);
* the remaining ``N - K`` bits form ``(N - K) / 2`` two-bit groups.  Every
  adjacent ``(edge label, neighbor vertex label)`` pair of ``v`` is hashed
  to a group, whose state encodes how many pairs landed there:
  ``00`` none, ``01`` exactly one, ``11`` more than one.

Filtering rule: ``v`` can only match query vertex ``u`` if the labels are
equal and ``S(v) & S(u) == S(u)`` — i.e. wherever ``u`` has one pair, ``v``
has at least one; wherever ``u`` has several, ``v`` has several.  This is a
*necessary* condition, proved sound in tests (a true match is never
pruned).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.arraytypes import Array
from repro.graph.labeled_graph import LabeledGraph

_PAIR_MIX = 1_000_003
_HASH_MULT = 2654435761
_WORD_BITS = 32


def num_words(signature_bits: int) -> int:
    """32-bit words per signature."""
    return signature_bits // _WORD_BITS


def num_groups(signature_bits: int, label_bits: int = 32) -> int:
    """Two-bit groups available for edge-neighbor pairs."""
    return (signature_bits - label_bits) // 2


def _group_of(edge_label: int, neighbor_label: int, groups: int) -> int:
    """Hash an (edge label, neighbor vertex label) pair to a group id."""
    key = (edge_label * _PAIR_MIX + neighbor_label) & 0xFFFFFFFF
    return ((key * _HASH_MULT) & 0xFFFFFFFF) % groups


def encode_vertex(graph: LabeledGraph, v: int, signature_bits: int,
                  label_bits: int = 32) -> Array:
    """Compute ``S(v)`` as a uint32 word array of length ``N / 32``.

    Word 0 holds the vertex label; subsequent words hold the packed
    two-bit groups (group ``i`` occupies bits ``2i`` and ``2i+1`` of the
    tail region).
    """
    words = np.zeros(num_words(signature_bits), dtype=np.uint32)
    words[0] = np.uint32(graph.vertex_label(v) & 0xFFFFFFFF)
    groups = num_groups(signature_bits, label_bits)
    if groups == 0:
        return words

    counts: Dict[int, int] = {}
    nbrs = graph.neighbors(v)
    labs = graph.incident_labels(v)
    for w, el in zip(nbrs, labs):
        g = _group_of(int(el), graph.vertex_label(int(w)), groups)
        counts[g] = counts.get(g, 0) + 1

    for g, cnt in counts.items():
        bit = 2 * g
        word_idx = 1 + bit // _WORD_BITS
        offset = bit % _WORD_BITS
        # "01" for a single pair, "11" for more than one.
        state = 0b01 if cnt == 1 else 0b11
        words[word_idx] |= np.uint32(state << offset)
    return words


def encode_all(graph: LabeledGraph, signature_bits: int,
               label_bits: int = 32) -> Array:
    """Signature table: one row per data vertex (computed offline)."""
    table = np.zeros((graph.num_vertices, num_words(signature_bits)),
                     dtype=np.uint32)
    for v in range(graph.num_vertices):
        table[v] = encode_vertex(graph, v, signature_bits, label_bits)
    return table


def is_candidate(sig_v: Array, sig_u: Array) -> bool:
    """Whether data signature ``sig_v`` passes query signature ``sig_u``."""
    if sig_v[0] != sig_u[0]:
        return False
    tail_u = sig_u[1:]
    return bool(np.all((sig_v[1:] & tail_u) == tail_u))


def candidate_mask(table: Array, sig_u: Array) -> Array:
    """Vectorized filter of a whole signature table against ``sig_u``.

    Returns a boolean mask over data vertices; this is the functional
    equivalent of the massively parallel scan in Section III-A.
    """
    label_ok = table[:, 0] == sig_u[0]
    tail_u = sig_u[1:]
    structure_ok = np.all((table[:, 1:] & tail_u) == tail_u, axis=1)
    return label_ok & structure_ok
