"""Result types shared by GSI and every baseline engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.gpusim.meter import MeterSnapshot

Match = Tuple[int, ...]


@dataclass
class PhaseBreakdown:
    """Simulated milliseconds split by phase."""

    filter_ms: float = 0.0
    join_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.filter_ms + self.join_ms


@dataclass
class MatchResult:
    """Outcome of one subgraph-isomorphism query.

    Attributes
    ----------
    matches:
        Embeddings as tuples indexed by *query vertex id*: ``match[u]`` is
        the data vertex matched to query vertex ``u``.
    elapsed_ms:
        Simulated query response time (the paper's reported metric).
    timed_out:
        True when the simulated budget was exhausted; ``matches`` is then
        incomplete and should not be used.
    counters:
        GLD / GST / launches etc. accumulated during the run.
    candidate_sizes:
        ``|C(u)|`` per query vertex after filtering (Table IV's metric is
        ``min`` over these).
    join_order:
        The vertex order chosen by the planner (Alg. 2).
    """

    matches: List[Match] = field(default_factory=list)
    elapsed_ms: float = 0.0
    timed_out: bool = False
    counters: MeterSnapshot = field(default_factory=MeterSnapshot)
    phases: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    candidate_sizes: Dict[int, int] = field(default_factory=dict)
    join_order: List[int] = field(default_factory=list)
    engine: str = ""

    @property
    def num_matches(self) -> int:
        """Number of embeddings found."""
        return len(self.matches)

    @property
    def min_candidate_size(self) -> Optional[int]:
        """``min |C(u)|`` — the filtering-power metric of Table IV."""
        if not self.candidate_sizes:
            return None
        return min(self.candidate_sizes.values())

    def match_set(self) -> Set[Match]:
        """Matches as a set, for cross-engine equality checks."""
        return set(self.matches)
