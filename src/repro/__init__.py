"""GSI: GPU-friendly Subgraph Isomorphism (ICDE 2020) — reproduction.

Public API quickstart::

    from repro import GSIEngine, GSIConfig, datasets, random_walk_query

    graph = datasets.gowalla_like()
    query = random_walk_query(graph, num_vertices=8, seed=1)
    engine = GSIEngine(graph, GSIConfig.gsi_opt())
    result = engine.match(query)
    print(result.num_matches, result.elapsed_ms)
"""

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine, PreparedQuery
from repro.core.result import MatchResult
from repro.core.verify import is_valid_embedding, verify_all
from repro.dynamic import DynamicGraph, GraphDelta, StreamEngine
from repro.graph import datasets
from repro.graph.generators import query_workload, random_walk_query
from repro.graph.labeled_graph import GraphBuilder, LabeledGraph
from repro.query import TripleStore, run_pattern
from repro.service import BatchEngine, BatchReport, PlanCache

__version__ = "1.2.0"

__all__ = [
    "GSIConfig",
    "GSIEngine",
    "PreparedQuery",
    "BatchEngine",
    "BatchReport",
    "PlanCache",
    "DynamicGraph",
    "GraphDelta",
    "StreamEngine",
    "MatchResult",
    "is_valid_embedding",
    "verify_all",
    "datasets",
    "query_workload",
    "random_walk_query",
    "GraphBuilder",
    "LabeledGraph",
    "TripleStore",
    "run_pattern",
    "__version__",
]
