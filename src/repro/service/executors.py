"""Pluggable parallel execution for the query services.

The batch service and the stream engine both fan work out over
embarrassingly parallel per-query units — joining a prepared query, or
delta-matching one continuous query against a shared batch seed.  This
module abstracts *how* that fan-out happens behind one
:class:`QueryExecutor` protocol with three implementations:

* :class:`SerialExecutor` — an in-process loop.  The reference
  executor: zero concurrency, zero overhead, bit-for-bit deterministic.
* :class:`ThreadExecutor` — a :class:`~concurrent.futures.
  ThreadPoolExecutor`.  Overlaps I/O and the numpy kernels that release
  the GIL; Python-heavy join loops barely overlap.
* :class:`ProcessExecutor` — a :class:`~concurrent.futures.
  ProcessPoolExecutor`.  True multi-core parallelism for the
  Python/numpy-heavy joining phase, at the cost of pickling work units
  across process boundaries.

All three produce *identical results in submission order*: executors
change wall-clock only, never match sets, simulated measurements, or
transaction totals (each query runs on its own simulated device whose
accounting is deterministic).

Pickling contract (ProcessExecutor)
-----------------------------------

:meth:`QueryExecutor.execute_prepared` ships
:class:`~repro.core.engine.PreparedQuery` objects to the workers, so
everything a prepared query carries must pickle: the query
:class:`~repro.graph.labeled_graph.LabeledGraph` (numpy arrays), the
candidate arrays, the :class:`~repro.core.plan.JoinPlan` (tuples), and
the simulated :class:`~repro.gpusim.device.Device` mid-flight (plain
counters — no locks, no handles).  The data-graph-sized artifacts are
*not* shipped per query: each worker process bootstraps its own engine
exactly once from an :class:`EngineBuildSpec` (graph + config) passed
through the pool initializer, rebuilding the signature table and
storage structure locally.  This requires the served engine's artifacts
to be derivable from ``(graph, config)`` — true for every
:class:`~repro.core.engine.GSIEngine` built the normal way; callers
injecting hand-modified artifacts must stick to in-process executors.

When to use which
-----------------

Process pools win when per-query work is Python-bound and large
relative to the pickle cost of its inputs/outputs (multi-step joins on
non-trivial candidate sets, multi-core hosts).  Thread pools win when
per-query work is dominated by GIL-releasing numpy kernels, or when the
host has a single core and process bootstrap would be pure overhead.
Serial is for debugging and as the determinism oracle.
"""

from __future__ import annotations

import math
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine, PreparedQuery
from repro.core.result import MatchResult
from repro.graph.labeled_graph import LabeledGraph

DEFAULT_EXECUTOR_WORKERS = 4

#: the names accepted by :func:`make_executor` (and the CLI flag)
EXECUTOR_KINDS = ("serial", "thread", "process")

#: how :class:`ProcessExecutor` splits a batch into pickled chunks
CHUNKING_KINDS = ("static", "cost")


@dataclass(frozen=True)
class EngineBuildSpec:
    """Everything needed to reconstruct a serving engine in a worker.

    Workers rebuild the offline artifacts (signature table + storage
    structure) from the graph and config; both builds are deterministic,
    so a worker-built engine executes a prepared query bit-for-bit like
    the parent's engine would.
    """

    graph: LabeledGraph
    config: GSIConfig

    def build(self) -> GSIEngine:
        return GSIEngine(self.graph, self.config)


@dataclass
class EngineHandle:
    """A live engine plus the spec to rebuild it elsewhere.

    In-process executors execute on ``engine`` directly; the process
    executor ships ``spec`` to its workers instead.
    """

    engine: GSIEngine
    spec: EngineBuildSpec

    @classmethod
    def for_engine(cls, engine: GSIEngine) -> "EngineHandle":
        return cls(engine=engine,
                   spec=EngineBuildSpec(engine.graph, engine.config))


@dataclass
class ExecutedQuery:
    """Outcome of executing one prepared query (joins a ``BatchItem``)."""

    index: int
    result: MatchResult
    error: Optional[str] = None
    execute_ms: float = 0.0


#: (submission index, prepared query) pairs fed to an executor
PreparedTask = Tuple[int, PreparedQuery]


def _execute_one(engine: GSIEngine, index: int, prepared: PreparedQuery,
                 error_label: str) -> ExecutedQuery:
    """Execute one prepared query, converting failures to per-item
    errors (shared by every executor so error semantics are uniform)."""
    start = time.perf_counter()
    try:
        result = engine.execute(prepared)
        error = None
    except Exception as exc:  # noqa: BLE001 - one bad query must never
        # abort the rest of the batch; report it per item.
        result = MatchResult(engine=error_label)
        error = f"{type(exc).__name__}: {exc}"
    return ExecutedQuery(index=index, result=result, error=error,
                         execute_ms=(time.perf_counter() - start) * 1000.0)


class QueryExecutor(ABC):
    """How per-query work units run: serially, on threads, or processes.

    Two entry points cover both services:

    * :meth:`execute_prepared` — the batch path: run the joining phase
      of already-prepared queries, returning outcomes in submission
      order.
    * :meth:`map_tasks` — the generic path (stream delta matching):
      apply a module-level function to payloads, sharing one
      batch-constant context object, results in payload order.
    """

    name: str = "abstract"
    workers: int = 1

    @abstractmethod
    def execute_prepared(self, handle: EngineHandle,
                         tasks: Sequence[PreparedTask],
                         error_label: str = "GSI"
                         ) -> List[ExecutedQuery]:
        """Run the joining phase of ``tasks``; submission order kept."""

    @abstractmethod
    def map_tasks(self, fn: Callable[[Any, Any], Any],
                  payloads: Sequence[Any],
                  shared: Any = None) -> List[Any]:
        """``[fn(shared, p) for p in payloads]``, possibly in parallel.

        ``fn`` must be a module-level callable and ``shared``/payloads
        picklable for the process executor; results keep payload order.
        """

    def shutdown(self) -> None:
        """Release pooled resources (idempotent; executor stays usable —
        pools are recreated lazily on the next call)."""

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class SerialExecutor(QueryExecutor):
    """The reference executor: a plain in-process loop."""

    name = "serial"

    def execute_prepared(self, handle: EngineHandle,
                         tasks: Sequence[PreparedTask],
                         error_label: str = "GSI"
                         ) -> List[ExecutedQuery]:
        return [_execute_one(handle.engine, index, prepared, error_label)
                for index, prepared in tasks]

    def map_tasks(self, fn: Callable[[Any, Any], Any],
                  payloads: Sequence[Any],
                  shared: Any = None) -> List[Any]:
        return [fn(shared, payload) for payload in payloads]


class ThreadExecutor(QueryExecutor):
    """Worker threads; best when the work releases the GIL (numpy).

    The thread pool is created lazily and kept across calls (a stream
    applies thousands of batches; spawning threads per batch is pure
    overhead) and released by :meth:`shutdown`.
    """

    name = "thread"

    def __init__(self, max_workers: int = DEFAULT_EXECUTOR_WORKERS) -> None:
        self.workers = max(1, max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        # Guards lazy creation/teardown when one executor is shared by
        # concurrent callers (e.g. a service serving parallel requests).
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
            return self._pool

    def shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def execute_prepared(self, handle: EngineHandle,
                         tasks: Sequence[PreparedTask],
                         error_label: str = "GSI"
                         ) -> List[ExecutedQuery]:
        if self.workers == 1 or len(tasks) <= 1:
            return SerialExecutor().execute_prepared(handle, tasks,
                                                     error_label)
        return list(self._ensure_pool().map(
            lambda task: _execute_one(handle.engine, task[0], task[1],
                                      error_label),
            tasks))

    def map_tasks(self, fn: Callable[[Any, Any], Any],
                  payloads: Sequence[Any],
                  shared: Any = None) -> List[Any]:
        if self.workers == 1 or len(payloads) <= 1:
            return SerialExecutor().map_tasks(fn, payloads, shared)
        return list(self._ensure_pool().map(lambda p: fn(shared, p),
                                            payloads))


# ----------------------------------------------------------------------
# Chunking policies: how a batch splits into pickled work units
# ----------------------------------------------------------------------


def estimated_task_cost(prepared: PreparedQuery) -> int:
    """Join-work proxy for one prepared query: total candidate mass.

    The joining phase starts from a candidate set and repeatedly
    intersects against others, so the summed ``|C(u)|`` is a cheap
    monotone estimate of how heavy a query is relative to its batch
    mates.  Queries with no plan (filtering proved them unmatchable, or
    the budget ran out) cost ~nothing and are scored 1.
    """
    sizes = getattr(prepared, "candidate_sizes", None)
    if not sizes or getattr(prepared, "plan", None) is None:
        return 1
    return max(1, int(sum(sizes.values())))


def balanced_chunks(items: List[Any], num_chunks: int,
                    costs: Sequence[int]) -> List[List[Any]]:
    """Greedy LPT bin packing of ``items`` into ``<= num_chunks`` bins.

    Items are placed heaviest-first onto the currently lightest bin
    (first lightest on ties, original order on equal cost), so a skewed
    batch — one huge query plus many small ones — no longer rides in a
    single static slice that one worker drains alone.  Deterministic;
    empty bins are dropped, bins keep submission order internally and
    are ordered by their first item so downstream index-sorted merges
    see the same contract as static chunking.
    """
    if len(costs) != len(items):
        raise ValueError("need one cost per item")
    num_chunks = max(1, min(num_chunks, len(items)))
    order = sorted(range(len(items)), key=lambda i: (-costs[i], i))
    bins: List[List[int]] = [[] for _ in range(num_chunks)]
    loads = [0] * num_chunks
    for i in order:
        b = loads.index(min(loads))
        bins[b].append(i)
        loads[b] += costs[i]
    chunks = [sorted(b) for b in bins if b]
    chunks.sort(key=lambda chunk: chunk[0])
    return [[items[i] for i in chunk] for chunk in chunks]


# ----------------------------------------------------------------------
# Process pool: per-worker engine bootstrap + chunked work shipping
# ----------------------------------------------------------------------

#: per-worker-process serving engine, built once by the pool initializer
_WORKER_ENGINE: Optional[GSIEngine] = None


def _process_worker_init(spec: Optional[EngineBuildSpec]) -> None:
    """Pool initializer: bootstrap this worker's engine exactly once.

    The spec is pickled once per worker (not per query); the worker
    rebuilds the signature table and storage structure locally, so no
    data-graph-sized artifact ever crosses the process boundary again.
    """
    global _WORKER_ENGINE
    _WORKER_ENGINE = spec.build() if spec is not None else None


def _process_execute_chunk(error_label: str,
                           tasks: List[PreparedTask]
                           ) -> List[ExecutedQuery]:
    """Worker-side joining phase over one pickled chunk."""
    engine = _WORKER_ENGINE
    if engine is None:
        raise RuntimeError(
            "process worker has no engine; the pool was created without "
            "an EngineBuildSpec")
    return [_execute_one(engine, index, prepared, error_label)
            for index, prepared in tasks]


def _process_map_chunk(fn: Callable[[Any, Any], Any], shared: Any,
                       payloads: List[Any]) -> List[Any]:
    """Worker-side generic map over one pickled chunk (``shared`` is
    pickled once per chunk, not once per payload)."""
    return [fn(shared, payload) for payload in payloads]


def _process_engine_probe(_shared: Any, _payload: Any) -> Tuple[int, int]:
    """(pid, id of the worker engine) — lets tests prove the per-worker
    bootstrap happened once, not once per query."""
    import os

    return os.getpid(), 0 if _WORKER_ENGINE is None else id(_WORKER_ENGINE)


class ProcessExecutor(QueryExecutor):
    """Worker processes with a one-time per-worker engine bootstrap.

    The pool is created lazily and kept alive across calls, so repeated
    batches amortize both process spawn and engine reconstruction.  A
    call with a *different* :class:`EngineBuildSpec` tears the pool down
    and rebuilds it for the new engine.

    Parameters
    ----------
    max_workers:
        Worker process count.
    chunk_size:
        Work units per pickled chunk; default spreads each call over
        ``2 x max_workers`` chunks for load balance.
    chunking:
        ``"static"`` slices the batch into equal-count chunks
        (``ceil(n / 2*max_workers)``); ``"cost"`` packs prepared
        queries into the same number of chunks by
        :func:`estimated_task_cost` (greedy LPT), so one heavy query in
        a skewed batch does not pin a whole static slice to a single
        worker.  Results are identical either way — chunking moves
        work, never answers.  Generic :meth:`map_tasks` payloads carry
        no cost estimate and always chunk statically.
    """

    name = "process"

    def __init__(self, max_workers: int = DEFAULT_EXECUTOR_WORKERS,
                 chunk_size: Optional[int] = None,
                 chunking: str = "static") -> None:
        if chunking not in CHUNKING_KINDS:
            raise ValueError(
                f"unknown chunking {chunking!r}; expected one of "
                f"{CHUNKING_KINDS}")
        self.workers = max(1, max_workers)
        self.chunk_size = chunk_size
        self.chunking = chunking
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_spec: Optional[EngineBuildSpec] = None
        # Guards lazy creation/teardown under concurrent callers.  Note
        # that a spec *change* still tears down the old pool, so one
        # ProcessExecutor should serve one engine at a time; concurrent
        # same-spec callers are fine.
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------

    def _ensure_pool(self, spec: Optional[EngineBuildSpec]
                     ) -> ProcessPoolExecutor:
        """The live pool, (re)created when the engine spec changes.

        ``spec=None`` (generic :meth:`map_tasks` work) reuses whatever
        pool exists — a worker engine sitting unused is harmless.
        """
        with self._pool_lock:
            if self._pool is not None and (
                    spec is None or spec == self._pool_spec):
                return self._pool
            old, self._pool = self._pool, None
            if old is not None:
                old.shutdown(wait=True)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_process_worker_init, initargs=(spec,))
            self._pool_spec = spec
            return self._pool

    def _chunks(self, items: List[Any],
                max_parts: Optional[int] = None) -> List[List[Any]]:
        parts = max_parts if max_parts is not None else self.workers * 2
        size = self.chunk_size or max(1, math.ceil(len(items) / parts))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def _prepared_chunks(self, tasks: List[PreparedTask]) -> List[List[Any]]:
        """Chunk prepared-query tasks by the configured policy."""
        if self.chunking != "cost" or self.chunk_size is not None:
            return self._chunks(tasks)
        costs = [estimated_task_cost(prepared) for _, prepared in tasks]
        return balanced_chunks(tasks, self.workers * 2, costs)

    def shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._pool_spec = None
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------

    def _run_chunked(self, spec: Optional[EngineBuildSpec],
                     submit: Callable[[ProcessPoolExecutor, List[Any]],
                                      Any],
                     chunks: List[List[Any]]) -> List[List[Any]]:
        """Submit chunks and gather results in submission order.

        A dead worker (OOM-killed, segfault) breaks the whole pool; the
        broken pool is discarded and the call retried once on a fresh
        one, so a long-lived service recovers from transient worker
        death instead of failing every subsequent batch.
        """
        for attempt in (0, 1):
            try:
                # submit() also raises BrokenProcessPool when a worker
                # died while the pool was idle; keep it inside the
                # retry scope so an idle-broken pool is replaced too.
                pool = self._ensure_pool(spec)
                futures = [submit(pool, chunk) for chunk in chunks]
                return [future.result() for future in futures]
            except BrokenProcessPool:
                # Never hand a dead pool to the next call.
                self.shutdown()
                if attempt == 1:
                    raise
        raise AssertionError("unreachable")

    def execute_prepared(self, handle: EngineHandle,
                         tasks: Sequence[PreparedTask],
                         error_label: str = "GSI"
                         ) -> List[ExecutedQuery]:
        tasks = list(tasks)
        if not tasks:
            return []
        results = self._run_chunked(
            handle.spec,
            lambda pool, chunk: pool.submit(
                _process_execute_chunk, error_label, chunk),
            self._prepared_chunks(tasks))
        executed: List[ExecutedQuery] = [e for res in results for e in res]
        # Chunks preserve submission order already; the explicit sort
        # pins the merge contract independent of chunking policy.
        executed.sort(key=lambda e: e.index)
        return executed

    def map_tasks(self, fn: Callable[[Any, Any], Any],
                  payloads: Sequence[Any],
                  shared: Any = None) -> List[Any]:
        payloads = list(payloads)
        if not payloads:
            return []
        # One chunk per worker, not 2x: ``shared`` (for stream batches,
        # the snapshot graph + signature table) is pickled per chunk, so
        # fewer chunks halve the dominant shipping cost.
        results = self._run_chunked(
            None,
            lambda pool, chunk: pool.submit(
                _process_map_chunk, fn, shared, chunk),
            self._chunks(payloads, max_parts=self.workers))
        return [item for res in results for item in res]


def make_executor(kind: str,
                  max_workers: int = DEFAULT_EXECUTOR_WORKERS,
                  chunking: str = "static") -> QueryExecutor:
    """Build an executor by name (the CLI's ``--executor`` values).

    Arguments are validated eagerly: a non-positive ``max_workers``,
    an unknown ``kind`` or an unknown ``chunking`` policy raise
    :class:`ValueError` here, instead of surfacing later as an opaque
    pool failure mid-batch.  (The executor classes themselves keep
    their historical clamp-to-1 behavior for direct construction.)
    """
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor kind {kind!r}; expected one of "
            f"{EXECUTOR_KINDS}")
    if max_workers <= 0:
        raise ValueError(
            f"max_workers must be >= 1, got {max_workers}")
    if chunking not in CHUNKING_KINDS:
        raise ValueError(
            f"unknown chunking {chunking!r}; expected one of "
            f"{CHUNKING_KINDS}")
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(max_workers=max_workers)
    return ProcessExecutor(max_workers=max_workers, chunking=chunking)
